"""Setuptools shim.

Kept alongside ``pyproject.toml`` so the package can be installed editable on
offline machines that lack the ``wheel`` package (legacy ``pip install -e .``
path); all metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
