#!/usr/bin/env python
"""Chunked prefill vs one-shot: ITL of running streams when a whale lands.

Drives one :class:`BatchedMillionEngine` directly (no HTTP — the stall this
bench measures happens inside ``engine.step()``, so step-granularity
timestamps are the honest measurement).  Four short decode streams warm up,
then a "whale" prompt arrives mid-decode:

* **oneshot** — ``chunked_prefill=False``: admission prefills the whole
  whale inside one step, and every running stream's inter-token gap for
  that step absorbs the full prefill wall;
* **chunked** — the whale prefills in block-aligned chunks under the
  per-step token budget, interleaved with the fused decode batch, so the
  running streams see gaps bounded by one chunk of work.

Gated claims: p99 ITL of the running streams improves ≥3x under chunking,
while the whale's own TTFT stays within 1.5x of one-shot (the chunks do
the same total work; the overhead is the decode work interleaved between
them).  A second chunked run must reproduce every stream's tokens exactly
— the chunked path is its own oracle (cold/warm/restore determinism is
covered in ``tests/serving/test_chunked_prefill.py``; the bench re-checks
cold-vs-cold on the measured workload).

The whale is 8192 tokens full-profile / 2048 smoke: the paper-scale 32k
whale is out of reach for the NumPy reference model (one-shot attention
scores alone would be gigabytes), and 8192 already makes the one-shot
stall two orders of magnitude above a decode step, which is the contrast
the gate certifies.  Registered as ``serving.chunked_prefill``; run
standalone with::

    PYTHONPATH=src python benchmarks/bench_chunked_prefill.py [--smoke]

or through ``python -m repro.bench run --suite serving``.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

import numpy as np

from _bench_shared import run_registered
from repro.bench import HIGHER, LOWER, BenchContext, benchmark_case
from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.models import ModelConfig, build_model
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    PooledMillionCacheFactory,
)


@dataclass(frozen=True)
class Params:
    whale_tokens: int = 8192
    whale_output_tokens: int = 8
    short_streams: int = 4
    short_prompt_tokens: int = 32
    short_output_tokens: int = 96
    prefill_token_budget: int = 256
    block_tokens: int = 16
    pool_blocks: int = 1400
    # Decode steps every short stream completes before the whale arrives —
    # the "running mid-decode" precondition.
    warmup_tokens: int = 8
    seed: int = 11

    @classmethod
    def smoke(cls) -> "Params":
        return cls(
            whale_tokens=2048,
            short_output_tokens=48,
            prefill_token_budget=128,
            pool_blocks=560,
        )


def _build_calibration(params: Params):
    config = ModelConfig(
        name="bench-chunked-prefill",
        vocab_size=256,
        d_model=64,
        n_layers=2,
        n_heads=2,
        max_seq_len=params.whale_tokens + 256,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )
    calibration_model = build_model(config, seed=0)
    calibration = load_corpus("wikitext2-syn", "train", 768, seed=1) % config.vocab_size
    million = MillionConfig.for_equivalent_bits(
        config.head_dim, bits=4, kmeans_iters=4, calibration_samples=1024
    )
    factory = calibrate_million(calibration_model, calibration, million)
    return config, million, factory


def _prompts(params: Params, vocab_size: int):
    corpus = load_corpus(
        "wikitext2-syn",
        "test",
        params.whale_tokens + params.short_streams * params.short_prompt_tokens,
        seed=params.seed,
    ) % vocab_size
    shorts = [
        corpus[i * params.short_prompt_tokens : (i + 1) * params.short_prompt_tokens]
        for i in range(params.short_streams)
    ]
    whale = corpus[params.short_streams * params.short_prompt_tokens :]
    return shorts, whale


def _drive(config, million, base_factory, params: Params, chunked: bool):
    """One whale-mid-decode scenario; returns timing + every stream's tokens.

    The step sequence is wall-clock independent (warm-up ends on a token
    count, the whale lands at a fixed step index), so two runs with the
    same parameters execute identical schedules — which is what makes the
    in-bench determinism check meaningful.
    """
    model = build_model(config, seed=0)
    pool = BlockPool.for_model(
        config, million,
        num_blocks=params.pool_blocks, block_tokens=params.block_tokens,
    )
    engine = BatchedMillionEngine(
        model,
        PooledMillionCacheFactory.from_factory(base_factory, pool),
        max_batch_size=params.short_streams + 1,
        chunked_prefill=chunked,
        prefill_token_budget=params.prefill_token_budget,
    )
    shorts, whale = _prompts(params, config.vocab_size)
    short_ids = [
        engine.add_request(prompt, max_new_tokens=params.short_output_tokens)
        for prompt in shorts
    ]
    token_times: dict[str, list[float]] = {rid: [] for rid in short_ids}

    def step_and_record(whale_id=None, whale_first=None):
        outputs = engine.step()
        now = time.perf_counter()
        for out in outputs:
            if out.token is None:
                continue
            if out.request_id in token_times:
                token_times[out.request_id].append(now)
            elif out.request_id == whale_id and whale_first is None:
                whale_first = now
        return whale_first

    while min(len(times) for times in token_times.values()) < params.warmup_tokens:
        step_and_record()

    whale_submitted = time.perf_counter()
    whale_id = engine.add_request(whale, max_new_tokens=params.whale_output_tokens)
    whale_first = None
    while engine.scheduler.has_work:
        whale_first = step_and_record(whale_id, whale_first)
    assert whale_first is not None, "whale never produced a token"

    itl_samples = [
        later - earlier
        for times in token_times.values()
        for earlier, later in zip(times, times[1:])
    ]
    tokens = {rid: engine.state_of(rid).generated_ids.copy() for rid in short_ids}
    tokens["whale"] = engine.state_of(whale_id).generated_ids.copy()
    return {
        "itl_p99_s": float(np.percentile(itl_samples, 99)),
        "whale_ttft_s": whale_first - whale_submitted,
        "tokens": tokens,
        "prefill_chunks": engine.prefill_chunks_total,
    }


def measure_chunked_prefill(ctx: BenchContext, params: Params) -> None:
    ctx.set_params(**vars(params))
    config, million, base_factory = _build_calibration(params)

    oneshot = _drive(config, million, base_factory, params, chunked=False)
    chunked = _drive(config, million, base_factory, params, chunked=True)
    replay = _drive(config, million, base_factory, params, chunked=True)

    # Chunked-vs-chunked determinism: the chunked path is its own oracle.
    assert chunked["tokens"].keys() == replay["tokens"].keys()
    for rid, want in chunked["tokens"].items():
        np.testing.assert_array_equal(
            want, replay["tokens"][rid],
            err_msg=f"chunked rerun diverged on stream {rid}",
        )
    assert chunked["prefill_chunks"] > params.short_streams, (
        "whale prefill never actually chunked"
    )

    itl_improvement = oneshot["itl_p99_s"] / chunked["itl_p99_s"]
    ttft_ratio = chunked["whale_ttft_s"] / oneshot["whale_ttft_s"]

    ctx.record("itl_p99_improvement_x", itl_improvement, unit="x",
               direction=HIGHER, tolerance_pct=60.0)
    ctx.record("whale_ttft_ratio_x", ttft_ratio, unit="x",
               direction=LOWER, tolerance_pct=40.0)
    ctx.record("chunked_itl_p99_ms", chunked["itl_p99_s"] * 1e3, unit="ms",
               direction=LOWER, gated=False)
    ctx.record("oneshot_itl_p99_ms", oneshot["itl_p99_s"] * 1e3, unit="ms",
               direction=LOWER, gated=False)
    ctx.record("chunked_whale_ttft_ms", chunked["whale_ttft_s"] * 1e3, unit="ms",
               direction=LOWER, gated=False)
    ctx.record("oneshot_whale_ttft_ms", oneshot["whale_ttft_s"] * 1e3, unit="ms",
               direction=LOWER, gated=False)

    ctx.emit(
        f"whale {params.whale_tokens} tokens over {params.short_streams} "
        f"running streams, budget {params.prefill_token_budget} tokens/step",
        f"stream ITL p99:  oneshot {oneshot['itl_p99_s'] * 1e3:9.1f} ms   "
        f"chunked {chunked['itl_p99_s'] * 1e3:9.1f} ms   "
        f"({itl_improvement:.1f}x better)",
        f"whale TTFT:      oneshot {oneshot['whale_ttft_s'] * 1e3:9.1f} ms   "
        f"chunked {chunked['whale_ttft_s'] * 1e3:9.1f} ms   "
        f"({ttft_ratio:.2f}x)",
        f"chunk sub-steps: {chunked['prefill_chunks']} "
        f"(chunked rerun token-identical on every stream)",
    )


@benchmark_case(
    "serving.chunked_prefill", suite="serving", budget_s=600.0, smoke_budget_s=180.0
)
def bench_chunked_prefill(ctx: BenchContext) -> None:
    measure_chunked_prefill(ctx, Params.smoke() if ctx.smoke else Params())


def _assert_claims(metrics: dict[str, float]) -> None:
    assert metrics["itl_p99_improvement_x"] >= 3.0, (
        "chunked prefill must improve running streams' p99 ITL >= 3x, got "
        f"{metrics['itl_p99_improvement_x']:.2f}x"
    )
    assert metrics["whale_ttft_ratio_x"] <= 1.5, (
        "chunked whale TTFT must stay within 1.5x of one-shot, got "
        f"{metrics['whale_ttft_ratio_x']:.2f}x"
    )


def test_chunked_prefill(results_writer):
    result = run_registered("serving.chunked_prefill")
    results_writer("chunked_prefill", result.text)
    _assert_claims({m.name: m.value for m in result.metrics})


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--whale-tokens", type=int, default=None)
    parser.add_argument("--prefill-token-budget", type=int, default=None)
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args()
    params = Params.smoke() if args.smoke else Params()
    overrides = {
        field: getattr(args, field)
        for field in ("whale_tokens", "prefill_token_budget")
        if getattr(args, field) is not None
    }
    params = Params(**{**vars(params), **overrides})

    print("calibrating MILLION codebooks ...")
    ctx = BenchContext(smoke=args.smoke)
    measure_chunked_prefill(ctx, params)
    print(ctx.text)
    _assert_claims({m.name: m.value for m in ctx.metrics})
    print("OK")


if __name__ == "__main__":
    main()
