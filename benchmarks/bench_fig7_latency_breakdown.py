"""FIG7 — per-operator latency breakdown and speedup curves (paper Fig. 7).

For prefill lengths 128-80K, reports the per-operator decode latency of the
fp16 baseline and MILLION-4b, the SDPA speedup, the end-to-end speedup and
the OOM points.  The paper's qualitative findings checked here:

* `cat` (KV-cache management) and `sdpa` dominate the baseline at long
  contexts and are the two operators MILLION shrinks,
* speedups grow with context length, reaching ~2x around 32K,
* the fp16 baseline runs out of memory at 64K/80K while MILLION keeps running.

Registered as ``serving.latency_breakdown``; the analytic model is
deterministic, so the speedup metrics gate tightly.
"""

from __future__ import annotations

from _bench_shared import run_registered
from repro.bench import HIGHER, BenchContext, benchmark_case
from repro.perf import LLAMA_2_7B, A40, ATTENTION_OPERATORS, breakdown_sweep

CONTEXT_LENGTHS = [128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 80000]
REPORTED_OPERATORS = ["cat", "sdpa", "qkv_proj", "o_proj", "rotary_emb", "repeat_kv",
                      "causal_mask", "contiguous"]


def _format(points) -> str:
    lines = [
        f"{'context':>9s} {'scheme':>14s} "
        + "".join(f"{op:>11s}" for op in REPORTED_OPERATORS)
        + f"{'total':>11s}"
    ]
    for point in points:
        for label, breakdown in (("baseline", point.baseline), ("million-4b", point.million)):
            if breakdown.oom:
                lines.append(f"{point.context_length:>9d} {label:>14s} {'OOM':>11s}")
                continue
            cells = "".join(
                f"{breakdown.operator_ms.get(op, 0.0):>11.3f}" for op in REPORTED_OPERATORS
            )
            lines.append(
                f"{point.context_length:>9d} {label:>14s} {cells}{breakdown.total_ms:>11.2f}"
            )
    lines.append("")
    lines.append(f"{'context':>9s} {'SDPA speedup':>13s} {'E2E speedup':>12s}")
    for point in points:
        sdpa = "n/a" if point.baseline.oom or point.million.oom else f"{point.sdpa_speedup:.2f}x"
        e2e = "n/a" if point.baseline.oom or point.million.oom else f"{point.e2e_speedup:.2f}x"
        lines.append(f"{point.context_length:>9d} {sdpa:>13s} {e2e:>12s}")
    lines.append("")
    lines.append("paper: SDPA speedup 2.01x and end-to-end 2.09x at 32K; baseline OOM at 64K+.")
    return "\n".join(lines)


@benchmark_case(
    "serving.latency_breakdown", suite="serving", budget_s=60.0, smoke_budget_s=20.0
)
def bench_latency_breakdown(ctx: BenchContext) -> None:
    points = breakdown_sweep(LLAMA_2_7B, CONTEXT_LENGTHS, device=A40)
    ctx.set_params(context_lengths=CONTEXT_LENGTHS, device="A40")
    by_length = {p.context_length: p for p in points}
    # Deterministic analytic model: 2% tolerance flags any real change.
    for context in (1024, 8192, 32768):
        ctx.record(f"e2e_speedup_{context // 1024}k_x", by_length[context].e2e_speedup,
                   unit="x", direction=HIGHER, tolerance_pct=2.0)
    p32k = by_length[32768]
    ctx.record("sdpa_speedup_32k_x", p32k.sdpa_speedup, unit="x", direction=HIGHER,
               tolerance_pct=2.0)
    ctx.record("baseline_total_ms_32k", p32k.baseline.total_ms, unit="ms", tolerance_pct=2.0)
    ctx.record("million_total_ms_32k", p32k.million.total_ms, unit="ms", tolerance_pct=2.0)
    ctx.record("baseline_cat_ms_32k", p32k.baseline.operator_ms["cat"], unit="ms",
               tolerance_pct=2.0)
    ctx.record("million_cat_ms_32k", p32k.million.operator_ms["cat"], unit="ms",
               tolerance_pct=2.0)
    ctx.record("baseline_cat_sdpa_share_32k",
               (p32k.baseline.operator_ms["cat"] + p32k.baseline.operator_ms["sdpa"])
               / p32k.baseline.total_ms,
               unit="frac", direction=HIGHER, tolerance_pct=5.0)
    oom_contexts = [p.context_length for p in points if p.baseline.oom]
    million_oom = [p.context_length for p in points if p.million.oom]
    ctx.record("baseline_oom_contexts", len(oom_contexts), unit="count", tolerance_pct=0.0)
    ctx.record("million_oom_contexts", len(million_oom), unit="count", tolerance_pct=0.0)
    ctx.emit(_format(points))


def test_fig7_latency_breakdown(results_writer):
    result = run_registered("serving.latency_breakdown")
    results_writer("fig7_latency_breakdown", result.text)
    metrics = {m.name: m.value for m in result.metrics}

    # cat + sdpa dominate the baseline at 32K and MILLION shrinks cat by >5x.
    assert metrics["baseline_cat_sdpa_share_32k"] > 0.5
    assert metrics["million_cat_ms_32k"] < metrics["baseline_cat_ms_32k"] / 5
    # Speedup grows with context and is ~2x at 32K.
    speedups = [metrics[f"e2e_speedup_{c}k_x"] for c in (1, 8, 32)]
    assert speedups[0] < speedups[1] < speedups[2]
    assert 1.7 < speedups[2] < 3.2
    assert 1.3 < metrics["sdpa_speedup_32k_x"] < 3.0
    # Baseline OOM at 64K/80K; MILLION still running.
    assert metrics["baseline_oom_contexts"] == 2
    assert metrics["million_oom_contexts"] == 0
    # Attention-block operators are a strict subset of the total.
    assert set(REPORTED_OPERATORS) <= set(ATTENTION_OPERATORS)
