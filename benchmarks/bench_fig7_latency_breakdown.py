"""FIG7 — per-operator latency breakdown and speedup curves (paper Fig. 7).

For prefill lengths 128-80K, reports the per-operator decode latency of the
fp16 baseline and MILLION-4b, the SDPA speedup, the end-to-end speedup and
the OOM points.  The paper's qualitative findings checked here:

* `cat` (KV-cache management) and `sdpa` dominate the baseline at long
  contexts and are the two operators MILLION shrinks,
* speedups grow with context length, reaching ~2x around 32K,
* the fp16 baseline runs out of memory at 64K/80K while MILLION keeps running.
"""

from __future__ import annotations

from repro.perf import LLAMA_2_7B, A40, ATTENTION_OPERATORS, breakdown_sweep

CONTEXT_LENGTHS = [128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 80000]
REPORTED_OPERATORS = ["cat", "sdpa", "qkv_proj", "o_proj", "rotary_emb", "repeat_kv",
                      "causal_mask", "contiguous"]


def _format(points) -> str:
    lines = [
        f"{'context':>9s} {'scheme':>14s} "
        + "".join(f"{op:>11s}" for op in REPORTED_OPERATORS)
        + f"{'total':>11s}"
    ]
    for point in points:
        for label, breakdown in (("baseline", point.baseline), ("million-4b", point.million)):
            if breakdown.oom:
                lines.append(f"{point.context_length:>9d} {label:>14s} {'OOM':>11s}")
                continue
            cells = "".join(
                f"{breakdown.operator_ms.get(op, 0.0):>11.3f}" for op in REPORTED_OPERATORS
            )
            lines.append(
                f"{point.context_length:>9d} {label:>14s} {cells}{breakdown.total_ms:>11.2f}"
            )
    lines.append("")
    lines.append(f"{'context':>9s} {'SDPA speedup':>13s} {'E2E speedup':>12s}")
    for point in points:
        sdpa = "n/a" if point.baseline.oom or point.million.oom else f"{point.sdpa_speedup:.2f}x"
        e2e = "n/a" if point.baseline.oom or point.million.oom else f"{point.e2e_speedup:.2f}x"
        lines.append(f"{point.context_length:>9d} {sdpa:>13s} {e2e:>12s}")
    lines.append("")
    lines.append("paper: SDPA speedup 2.01x and end-to-end 2.09x at 32K; baseline OOM at 64K+.")
    return "\n".join(lines)


def test_fig7_latency_breakdown(benchmark, results_writer):
    points = benchmark(breakdown_sweep, LLAMA_2_7B, CONTEXT_LENGTHS, device=A40)
    results_writer("fig7_latency_breakdown", _format(points))

    by_length = {p.context_length: p for p in points}
    p32k = by_length[32768]
    # cat + sdpa dominate the baseline at 32K and MILLION shrinks both.
    baseline_ops = p32k.baseline.operator_ms
    assert baseline_ops["cat"] + baseline_ops["sdpa"] > 0.5 * p32k.baseline.total_ms
    assert p32k.million.operator_ms["cat"] < baseline_ops["cat"] / 5
    assert p32k.million.operator_ms["sdpa"] < baseline_ops["sdpa"]
    # Speedup grows with context and is ~2x at 32K.
    speedups = [by_length[c].e2e_speedup for c in (1024, 8192, 32768)]
    assert speedups[0] < speedups[1] < speedups[2]
    assert 1.7 < speedups[2] < 3.2
    assert 1.3 < p32k.sdpa_speedup < 3.0
    # Baseline OOM at 64K/80K; MILLION still running.
    assert by_length[65536].baseline.oom and by_length[80000].baseline.oom
    assert not by_length[65536].million.oom and not by_length[80000].million.oom
    # Attention-block operators are a strict subset of the total.
    assert set(REPORTED_OPERATORS) <= set(ATTENTION_OPERATORS)
