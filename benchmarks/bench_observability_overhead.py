"""Observability overhead: tracing must be ~free when off, cheap when on.

The serving engine carries trace hooks (``if trace.enabled:`` guards around
recorder calls) and always-on latency histograms.  This case bounds their
cost against the fused batched-decode path two ways:

* **Modelled overhead** — microbenchmark the exact per-hook primitives (the
  ``NULL_RECORDER.enabled`` attribute check, ``Histogram.observe``, a live
  ``TraceRecorder.complete``/``instant`` with args), count how many of each
  a real traced serving run executes per decoded token, and express their
  product as a fraction of the measured per-token decode time.  This is the
  number the gates act on: it is deterministic enough for CI, unlike a
  sub-1% wall-clock difference, which drowns in run-to-run noise.
* **Measured throughput ratio** — interleaved A/B decode runs (disabled vs
  enabled recorder), recorded ungated as a sanity cross-check that the
  model is not hiding a real slowdown.

Gates: tracing-disabled overhead < 1% of per-token decode time,
tracing-enabled < 5%.

Run standalone with
``PYTHONPATH=src python -m pytest benchmarks/bench_observability_overhead.py -s``
or through ``PYTHONPATH=src python -m repro.bench run --suite serving``.
"""

from __future__ import annotations

import time
from functools import lru_cache

import numpy as np

from _bench_shared import run_registered
from repro.bench import HIGHER, LOWER, BenchContext, benchmark_case
from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.models import ModelConfig, build_model
from repro.obs.hist import Histogram
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.serving import BatchedMillionEngine

#: Acceptance bars, as fractions of per-token decode wall time.
MAX_DISABLED_OVERHEAD_PCT = 1.0
MAX_ENABLED_OVERHEAD_PCT = 5.0

BATCH = 8


@lru_cache(maxsize=None)
def overhead_setup(smoke: bool = False):
    config = ModelConfig(
        name="obs-overhead-bench-lm",
        vocab_size=256,
        d_model=128,
        n_layers=2,
        n_heads=4,
        max_seq_len=4096,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )
    model = build_model(config, seed=0)
    calibration = load_corpus("wikitext2-syn", "train", 768, seed=0) % config.vocab_size
    million = MillionConfig.for_equivalent_bits(
        config.head_dim, bits=4, kmeans_iters=3 if smoke else 5,
        calibration_samples=1024,
    )
    factory = calibrate_million(model, calibration, million)
    rng = np.random.default_rng(7)
    prompts = [
        load_corpus("wikitext2-syn", "test", int(rng.integers(48, 96)), seed=i)
        % config.vocab_size
        for i in range(BATCH)
    ]
    return {"model": model, "factory": factory, "prompts": prompts}


def _decode_run(model, factory, prompts, trace, warmup_steps, steps):
    """Steady-state decode: (tokens/sec, tokens decoded, recorder events)."""
    engine = BatchedMillionEngine(
        model, factory, max_batch_size=len(prompts), trace=trace
    )
    for prompt in prompts:
        engine.add_request(prompt, max_new_tokens=10_000)
    for _ in range(warmup_steps):
        engine.step()
    events_before = len(trace) if trace is not None else 0
    start = time.perf_counter()
    decoded = 0
    for _ in range(steps):
        decoded += len(engine.step())
    wall = time.perf_counter() - start
    events = (len(trace) - events_before) if trace is not None else 0
    return decoded / wall, decoded, events


def _per_call_seconds(fn, calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls


@benchmark_case(
    "serving.observability_overhead", suite="serving", budget_s=120.0,
    smoke_budget_s=60.0,
)
def bench_observability_overhead(ctx: BenchContext) -> None:
    """Trace-hook and histogram cost as a fraction of per-token decode time."""
    setup = overhead_setup(ctx.smoke)
    model, factory, prompts = setup["model"], setup["factory"], setup["prompts"]
    steps = ctx.pick(full=32, smoke=12)
    warmup = ctx.pick(full=8, smoke=4)
    micro_calls = ctx.pick(full=200_000, smoke=50_000)
    ctx.set_params(
        batch=BATCH, steps=steps, warmup_steps=warmup, micro_calls=micro_calls,
        max_disabled_overhead_pct=MAX_DISABLED_OVERHEAD_PCT,
        max_enabled_overhead_pct=MAX_ENABLED_OVERHEAD_PCT,
    )

    # Interleaved A/B decode runs; the traced run also yields events/token.
    disabled_rates, enabled_rates = [], []
    events_per_token = 0.0
    for _ in range(2):
        off_rate, _, _ = _decode_run(
            model, factory, prompts, NULL_RECORDER, warmup, steps
        )
        recorder = TraceRecorder(capacity=1_000_000)
        on_rate, decoded, events = _decode_run(
            model, factory, prompts, recorder, warmup, steps
        )
        disabled_rates.append(off_rate)
        enabled_rates.append(on_rate)
        events_per_token = events / decoded
    off_rate = max(disabled_rates)
    on_rate = max(enabled_rates)
    token_seconds = 1.0 / off_rate

    # Per-primitive costs, measured on the real objects.
    null = NULL_RECORDER
    check_s = _per_call_seconds(lambda: null.enabled and None, micro_calls)
    hist = Histogram()
    observe_s = _per_call_seconds(lambda: hist.observe(0.01), micro_calls)
    live = TraceRecorder(capacity=4096)
    t0 = live.now()

    def _record_event():
        live.complete("decode_step", t0, t0 + 0.001, track="bench",
                      args={"batch": BATCH, "fused_batch": BATCH})

    record_s = _per_call_seconds(_record_event, micro_calls // 4)

    # Always-on per-token cost: the guard at every hook site plus the step
    # histograms (decode + fused batch size per step, amortised over the
    # batch).  Queue-wait/prefill hooks are per-request, negligible across a
    # long decode, but counted via events_per_token anyway when enabled.
    observes_per_token = 2.0 / BATCH
    disabled_per_token = events_per_token * check_s + observes_per_token * observe_s
    enabled_per_token = (
        events_per_token * record_s + observes_per_token * observe_s
    )
    disabled_pct = 100.0 * disabled_per_token / token_seconds
    enabled_pct = 100.0 * enabled_per_token / token_seconds
    measured_ratio = off_rate / on_rate

    ctx.record("tokens_per_s_tracing_disabled", off_rate, unit="tok/s",
               direction=HIGHER, gated=False)
    ctx.record("tokens_per_s_tracing_enabled", on_rate, unit="tok/s",
               direction=HIGHER, gated=False)
    ctx.record("events_per_token", events_per_token, unit="events",
               direction=LOWER, gated=False)
    ctx.record("measured_enabled_slowdown_x", measured_ratio, unit="x",
               direction=LOWER, gated=False)
    ctx.record("disabled_overhead_pct", disabled_pct, unit="%",
               direction=LOWER, tolerance_pct=400.0, gated=True)
    ctx.record("enabled_overhead_pct", enabled_pct, unit="%",
               direction=LOWER, tolerance_pct=400.0, gated=True)

    ctx.emit(
        f"per-token decode time     {token_seconds * 1e6:9.1f} us "
        f"({off_rate:.0f} tok/s, B={BATCH})",
        f"trace events per token    {events_per_token:9.2f}",
        f"enabled-guard check       {check_s * 1e9:9.1f} ns",
        f"histogram observe         {observe_s * 1e9:9.1f} ns",
        f"recorder event append     {record_s * 1e9:9.1f} ns",
        "",
        f"tracing-disabled overhead {disabled_pct:9.4f} % "
        f"(bar: < {MAX_DISABLED_OVERHEAD_PCT}%)",
        f"tracing-enabled overhead  {enabled_pct:9.4f} % "
        f"(bar: < {MAX_ENABLED_OVERHEAD_PCT}%)",
        f"measured A/B slowdown     {measured_ratio:9.3f} x (ungated cross-check)",
    )


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_observability_overhead_under_bars(results_writer):
    result = run_registered("serving.observability_overhead")
    results_writer("serving_observability_overhead", result.text)
    disabled_pct = result.metric("disabled_overhead_pct").value
    enabled_pct = result.metric("enabled_overhead_pct").value
    assert disabled_pct < MAX_DISABLED_OVERHEAD_PCT, (
        f"tracing-disabled hooks cost {disabled_pct:.3f}% of per-token decode "
        f"time (bar: < {MAX_DISABLED_OVERHEAD_PCT}%)"
    )
    assert enabled_pct < MAX_ENABLED_OVERHEAD_PCT, (
        f"tracing-enabled recording costs {enabled_pct:.3f}% of per-token "
        f"decode time (bar: < {MAX_ENABLED_OVERHEAD_PCT}%)"
    )
    # The wall-clock cross-check should not contradict the model wildly.
    assert result.metric("measured_enabled_slowdown_x").value < 1.25
