"""TAB3 — sensitivity to 1 % sparse outlier isolation (paper Table III).

The paper's "outlier-immune" claim: storing the top 1 % of KV entries in a
sparse full-precision side structure barely changes MILLION's perplexity
(-0.38 % at 3 bits, +0.58 % at 4 bits), whereas KVQuant's accuracy collapses
without it (53.4 % / 26.5 % of its PPL comes from the outlier handling).

This benchmark computes the same sensitivity metric
``(ppl_without - ppl_with) / ppl_without`` for the KVQuant-like baseline and
MILLION at 3 and 4 bits, and asserts that MILLION's sensitivity is small —
i.e. adding outlier isolation to MILLION is pointless, which is the property
that lets it skip the expensive sparse machinery at inference time.
"""

from __future__ import annotations

import numpy as np

from repro.eval import perplexity_by_scheme

PAPER_REFERENCE = """paper (Llama-2-7B, Wikitext-2):
             kv-3b   kv-3b-1%  sensitivity-3b   kv-4b   kv-4b-1%  sensitivity-4b
  KVQuant    11.21       5.22          53.4%     6.99       5.14          26.5%
  MILLION     5.20       5.22          -0.38%    5.21       5.18           0.58%"""

SCHEME_PAIRS = {
    "KVQuant": {"3b": ("kvquant-3b", "kvquant-3b-1pct"), "4b": ("kvquant-4b", "kvquant-4b-1pct")},
    "MILLION": {"3b": ("million-3b", "million-3b-1pct"), "4b": ("million-4b", "million-4b-1pct")},
}

EVAL_WINDOW = 256
CHUNK = 16


def _sensitivity(ppl_without: float, ppl_with: float) -> float:
    return 100.0 * (ppl_without - ppl_with) / ppl_without


def test_table3_outlier_sensitivity(
    benchmark, results_writer, accuracy_model, accuracy_factories, calibration_tokens, evaluation_tokens
):
    # The shared fixture covers the non-outlier variants; build the MILLION
    # outlier variants here (KVQuant outlier variants are already shared).
    from repro.eval import build_scheme_factories

    extra = build_scheme_factories(
        ["million-3b-1pct", "million-4b-1pct"],
        accuracy_model,
        calibration_tokens,
        seed=0,
        kmeans_iters=8,
        calibration_samples=2048,
    )
    factories = {**accuracy_factories, **extra}
    tokens = evaluation_tokens["wikitext2-syn"]

    def run():
        return perplexity_by_scheme(
            accuracy_model, tokens, factories, chunk_size=CHUNK, window=EVAL_WINDOW
        )

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    lines = [
        f"{'scheme':>9s} {'kv-3b':>9s} {'kv-3b-1%':>9s} {'sens-3b':>9s} "
        f"{'kv-4b':>9s} {'kv-4b-1%':>9s} {'sens-4b':>9s}"
    ]
    sensitivities = {}
    for family, pairs in SCHEME_PAIRS.items():
        row = [f"{family:>9s}"]
        for bits in ("3b", "4b"):
            without, with_outliers = pairs[bits]
            ppl_without = results[without].perplexity
            ppl_with = results[with_outliers].perplexity
            sens = _sensitivity(ppl_without, ppl_with)
            sensitivities[(family, bits)] = sens
            row.append(f"{ppl_without:>9.3f} {ppl_with:>9.3f} {sens:>8.2f}%")
        lines.append(" ".join(row))
    lines.append("")
    lines.append(PAPER_REFERENCE)
    results_writer("table3_outlier_sensitivity", "\n".join(lines))

    # MILLION is outlier-immune: isolating 1 % of entries moves PPL by < 2 %.
    assert abs(sensitivities[("MILLION", "3b")]) < 2.0
    assert abs(sensitivities[("MILLION", "4b")]) < 2.0
    # And it never relies on outlier handling more than the KVQuant baseline does.
    assert sensitivities[("MILLION", "3b")] <= sensitivities[("KVQuant", "3b")] + 2.0
    assert sensitivities[("MILLION", "4b")] <= sensitivities[("KVQuant", "4b")] + 2.0
