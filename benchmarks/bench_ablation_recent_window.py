"""ABL3 — residual / recent-window size (paper Fig. 6 stress setting).

The paper evaluates LongBench with the residual block size set to 0 (every
past token quantized) as a stress test.  This ablation varies the recent
full-precision window of the MILLION cache and reports logit fidelity against
the fp16 reference together with the cache footprint, showing the
accuracy/memory trade-off the residual window buys.

Registered as ``quant.recent_window``; seeded and deterministic, so the
fidelity metrics gate with a modest tolerance.
"""

from __future__ import annotations

from _bench_shared import run_registered, tiny_model
from repro.bench import HIGHER, BenchContext, benchmark_case
from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.eval import logit_fidelity
from repro.models.kv_cache import FullPrecisionCacheFactory

WINDOW_SIZES = [0, 8, 32, 128]
SMOKE_WINDOW_SIZES = [0, 32]


@benchmark_case("quant.recent_window", suite="quant", budget_s=300.0, smoke_budget_s=90.0)
def bench_recent_window(ctx: BenchContext) -> None:
    model = tiny_model()
    windows = ctx.pick(full=WINDOW_SIZES, smoke=SMOKE_WINDOW_SIZES)
    n_calibration = ctx.pick(full=768, smoke=384)
    n_test = ctx.pick(full=384, smoke=192)
    kmeans_iters = ctx.pick(full=6, smoke=3)
    ctx.set_params(windows=windows, n_calibration=n_calibration, n_test=n_test,
                   kmeans_iters=kmeans_iters)
    calibration = load_corpus("wikitext2-syn", "train", n_calibration) % model.config.vocab_size
    test = load_corpus("wikitext2-syn", "test", n_test) % model.config.vocab_size

    rows = []
    for window in windows:
        config = MillionConfig.for_equivalent_bits(
            model.config.head_dim, bits=4, recent_window=window, kmeans_iters=kmeans_iters,
            calibration_samples=2048,
        )
        factory = calibrate_million(model, calibration, config)
        fidelity = logit_fidelity(model, test, factory, chunk_size=8, scheme_name=f"window={window}")
        # Measure the cache footprint after a 256-token prefill.
        prefill = min(256, n_test)
        model.reset_cache(factory)
        for start in range(0, prefill, 32):
            model.forward(test[start : start + 32])
        cache_kib = model.cache_memory_bytes() / 1024.0
        model.reset_cache(FullPrecisionCacheFactory())
        rows.append((window, fidelity.mean_kl, fidelity.top1_agreement, cache_kib))
        ctx.record(f"mean_kl_window{window}", fidelity.mean_kl, tolerance_pct=20.0)
        ctx.record(f"top1_agreement_window{window}", fidelity.top1_agreement,
                   direction=HIGHER, tolerance_pct=10.0)
        ctx.record(f"cache_kib_window{window}", cache_kib, unit="KiB", tolerance_pct=5.0)

    ctx.emit(
        f"{'recent window':>14s} {'KL vs fp16':>11s} {'top-1 agree':>12s} {'cache KiB':>15s}"
    )
    for window, kl, agree, kib in rows:
        ctx.emit(f"{window:>14d} {kl:>11.5f} {agree:>12.3f} {kib:>15.1f}")
    ctx.emit(
        "",
        "A larger full-precision recent window improves fidelity monotonically at"
        " the cost of cache memory; window 0 (the paper's stress setting) is"
        " already close to the fp16 reference.",
    )


def test_ablation_recent_window(results_writer):
    result = run_registered("quant.recent_window")
    results_writer("ablation_recent_window", result.text)
    metrics = {m.name: m.value for m in result.metrics}
    windows = result.params["windows"]
    first, last = windows[0], windows[-1]
    # Fidelity improves (KL does not increase) as the window grows.
    assert metrics[f"mean_kl_window{last}"] <= metrics[f"mean_kl_window{first}"] + 1e-6
    assert (
        metrics[f"top1_agreement_window{last}"]
        >= metrics[f"top1_agreement_window{first}"] - 0.05
    )
    # Memory grows with the window.
    assert metrics[f"cache_kib_window{last}"] > metrics[f"cache_kib_window{first}"]
    # Even window 0 keeps top-1 agreement reasonably high.
    assert metrics["top1_agreement_window0"] > 0.3
