"""ABL3 — residual / recent-window size (paper Fig. 6 stress setting).

The paper evaluates LongBench with the residual block size set to 0 (every
past token quantized) as a stress test.  This ablation varies the recent
full-precision window of the MILLION cache and reports logit fidelity against
the fp16 reference together with the cache footprint, showing the
accuracy/memory trade-off the residual window buys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.eval import logit_fidelity
from repro.models import load_model
from repro.models.kv_cache import FullPrecisionCacheFactory

WINDOW_SIZES = [0, 8, 32, 128]


@pytest.fixture(scope="module")
def window_setup():
    model = load_model("llama-2-7b-tiny", seed=0)
    calibration = load_corpus("wikitext2-syn", "train", 768) % model.config.vocab_size
    test = load_corpus("wikitext2-syn", "test", 384) % model.config.vocab_size
    return model, calibration, test


def _run(model, calibration, test):
    rows = []
    for window in WINDOW_SIZES:
        config = MillionConfig.for_equivalent_bits(
            model.config.head_dim, bits=4, recent_window=window, kmeans_iters=6,
            calibration_samples=2048,
        )
        factory = calibrate_million(model, calibration, config)
        fidelity = logit_fidelity(model, test, factory, chunk_size=8, scheme_name=f"window={window}")
        # Measure the cache footprint after a 256-token prefill.
        model.reset_cache(factory)
        for start in range(0, 256, 32):
            model.forward(test[start : start + 32])
        cache_kib = model.cache_memory_bytes() / 1024.0
        model.reset_cache(FullPrecisionCacheFactory())
        rows.append((window, fidelity.mean_kl, fidelity.top1_agreement, cache_kib))
    return rows


def test_ablation_recent_window(benchmark, results_writer, window_setup):
    model, calibration, test = window_setup
    rows = benchmark.pedantic(lambda: _run(model, calibration, test), iterations=1, rounds=1)
    lines = [
        f"{'recent window':>14s} {'KL vs fp16':>11s} {'top-1 agree':>12s} {'cache KiB @256':>15s}"
    ]
    for window, kl, agree, kib in rows:
        lines.append(f"{window:>14d} {kl:>11.5f} {agree:>12.3f} {kib:>15.1f}")
    lines.append("")
    lines.append(
        "A larger full-precision recent window improves fidelity monotonically at"
        " the cost of cache memory; window 0 (the paper's stress setting) is"
        " already close to the fp16 reference."
    )
    results_writer("ablation_recent_window", "\n".join(lines))

    kls = [row[1] for row in rows]
    agreements = [row[2] for row in rows]
    cache_sizes = [row[3] for row in rows]
    # Fidelity improves (KL does not increase) as the window grows.
    assert kls[-1] <= kls[0] + 1e-6
    assert agreements[-1] >= agreements[0] - 0.05
    # Memory grows with the window.
    assert cache_sizes[-1] > cache_sizes[0]
    # Even window 0 keeps top-1 agreement reasonably high.
    assert agreements[0] > 0.3
