"""POL1 — the mixed-precision policy's perplexity / KV-bytes frontier.

The policy layer (`repro.quant.policy`) assigns each (layer, head) its own
MILLION bit-width from calibrated sensitivity under a global KV-bytes
budget.  The claim to reproduce (KVTuner-style, see PAPERS.md): at a fixed
budget the calibrated mixed assignment achieves lower perplexity than
*every* uniform setting that fits the budget.

Protocol.  A tiny model is genuinely trained (cached under
``benchmarks/_cache``) on the synthetic corpora with a 40 % induction-window
/ 25 % retrieval-episode mix, so it develops induction heads whose key
matching is what KV quantization actually damages.  Evaluation runs on
induction-structured streams — windows whose second half repeats the first —
because that is where precision matters: on plain natural-text windows at
this scale, *coarser* quantization can lower perplexity outright (the
regularization effect documented for Table II), which inverts the ordering
the paper-scale frontier shows.  Sensitivity is measured from the same
calibration pass that trains the PQ codebooks; the greedy water-filling
then spends a 1.5× MILLION-4b budget across heads (landing on an 8/4-bit
mix), and the mixed cache is compared against uniform MILLION 2/4/8-bit and
fp16 on the identical stream.

Every stage is seeded, so smoke and full mode run the same recipe and the
recorded metrics are deterministic on a fixed NumPy version.  The case also
asserts the policy plumbing's correctness invariant: a uniform-equivalent
policy cache generates token-identical output to the plain MILLION factory.

Registered as ``quant.policy_pareto``; the mixed/best-uniform perplexity
ratio is the gated headline metric (< 1 means the mix beats every uniform
setting under the budget).
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from _bench_shared import run_registered
from repro.bench import BenchContext, benchmark_case
from repro.core.calibration import (
    collect_kv_samples,
    measure_sensitivity,
    train_million_quantizers,
)
from repro.core.million_cache import MillionCacheFactory
from repro.data import load_corpus
from repro.eval import compute_perplexity
from repro.models.config import ModelConfig
from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.models.weights import OutlierSpec
from repro.quant.policy import QuantPolicy, derive_policy, million_variant
from repro.quant.policy_cache import PolicyCacheFactory
from repro.training import cached_trained_model

CACHE_DIR = Path(__file__).parent / "_cache"

#: Uniform MILLION rungs the mixed policy competes against.
UNIFORM_BITS = (2, 4, 8)

#: Evaluation window: the second half of each window repeats the first.
EVAL_WINDOW = 128
EVAL_WINDOWS = 8
EVAL_CHUNK = 16

MODEL_CONFIG = ModelConfig(
    name="policy-pareto-lm",
    vocab_size=512,
    d_model=128,
    n_layers=2,
    n_heads=4,
    max_seq_len=4096,
    positional="rope",
    norm="rmsnorm",
    activation="silu",
)


def _trained_model():
    model, _ = cached_trained_model(
        MODEL_CONFIG,
        cache_dir=CACHE_DIR,
        corpus_name=("wikitext2-syn", "ptb-syn"),
        steps=400,
        seed=0,
        batch_size=8,
        seq_len=128,
        induction_fraction=0.4,
        task_episode_fraction=0.25,
        outlier_spec=OutlierSpec(
            key_channel_fraction=0.06,
            key_channel_scale=8.0,
            value_element_fraction=0.01,
            value_element_scale=10.0,
        ),
        log_every=0,
    )
    return model


def _induction_eval_stream(vocab_size: int) -> np.ndarray:
    """Windows from the test corpus whose second half repeats the first."""
    test = load_corpus("wikitext2-syn", "test", 4096) % vocab_size
    rng = np.random.default_rng(1)
    windows = []
    for _ in range(EVAL_WINDOWS):
        start = int(rng.integers(0, test.size - EVAL_WINDOW))
        window = test[start : start + EVAL_WINDOW].copy()
        window[EVAL_WINDOW // 2 :] = window[: EVAL_WINDOW // 2]
        windows.append(window)
    return np.concatenate(windows)


def _decode_seconds_per_token(model, factory, prompt: np.ndarray) -> float:
    model.reset_cache(factory or FullPrecisionCacheFactory())
    start = time.perf_counter()
    model.generate(prompt, max_new_tokens=24)
    return (time.perf_counter() - start) / 24.0


@benchmark_case(
    "quant.policy_pareto", suite="quant", budget_s=600.0, smoke_budget_s=480.0
)
def bench_policy_pareto(ctx: BenchContext) -> None:
    cfg = MODEL_CONFIG
    model = _trained_model()

    calibration = load_corpus("wikitext2-syn", "train", 768) % cfg.vocab_size
    collector = collect_kv_samples(
        model, calibration, chunk_size=128, max_samples_per_layer=2048
    )
    sensitivity = measure_sensitivity(collector, kmeans_iters=4)
    bank = {}
    for bits in UNIFORM_BITS:
        variant = million_variant(
            cfg.head_dim, bits, kmeans_iters=4, calibration_samples=1536
        )
        bank[bits] = MillionCacheFactory(
            train_million_quantizers(collector, variant), variant
        )

    budget = 1.5 * QuantPolicy.uniform(cfg, "million", 4).bytes_per_token()
    mixed = derive_policy(cfg, sensitivity, budget, schemes=("million",))
    mixed_factory = PolicyCacheFactory(mixed, cfg, million_factories=bank)

    # Correctness invariant: a uniform-equivalent policy cache is
    # token-identical to the plain MILLION factory it wraps.
    prompt = (np.arange(1, 25, dtype=np.int64) * 7) % cfg.vocab_size
    uniform_policy_factory = PolicyCacheFactory.from_million_factory(
        bank[4], QuantPolicy.uniform(cfg, "million", 4), cfg
    )
    model.reset_cache(bank[4])
    reference = model.generate(prompt, max_new_tokens=12)
    model.reset_cache(uniform_policy_factory)
    via_policy = model.generate(prompt, max_new_tokens=12)
    assert list(reference) == list(via_policy), (
        "uniform-equivalent policy cache diverged from the MILLION factory"
    )

    stream = _induction_eval_stream(cfg.vocab_size)
    schemes = {"fp16": None, **{f"million-{b}b": bank[b] for b in UNIFORM_BITS}}
    bytes_per_token = {
        "fp16": QuantPolicy.uniform(cfg, "fp16", 16).bytes_per_token(),
        **{
            f"million-{b}b": QuantPolicy.uniform(cfg, "million", b).bytes_per_token()
            for b in UNIFORM_BITS
        },
        "mixed": mixed.bytes_per_token(),
    }

    ppl = {}
    tpot = {}
    for label, factory in {**schemes, "mixed": mixed_factory}.items():
        ppl[label] = compute_perplexity(
            model, stream, factory, chunk_size=EVAL_CHUNK, window=EVAL_WINDOW
        ).perplexity
        tpot[label] = _decode_seconds_per_token(model, factory, prompt)
        safe = label.replace("-", "_")
        ctx.record(f"ppl_{safe}", ppl[label], tolerance_pct=5.0)
        ctx.record(f"tpot_{safe}_s", tpot[label], unit="s", gated=False)

    under_budget = [
        f"million-{b}b"
        for b in UNIFORM_BITS
        if bytes_per_token[f"million-{b}b"] <= budget
    ]
    best_uniform = min(under_budget, key=lambda label: ppl[label])
    ratio = ppl["mixed"] / ppl[best_uniform]
    # Deterministic given the seeds, but kmeans details shift across NumPy
    # versions; the pytest wrapper asserts the strict < 1 frontier claim.
    ctx.record("mixed_vs_best_uniform_ppl_ratio", ratio, tolerance_pct=1.0)
    ctx.set_params(
        budget_bytes_per_token=budget,
        mixed_bits=[
            [mixed.assignment(layer, head).bits for head in range(cfg.kv_heads)]
            for layer in range(cfg.n_layers)
        ],
        bytes_per_token=bytes_per_token,
        uniform_under_budget=under_budget,
        best_uniform=best_uniform,
        eval_windows=EVAL_WINDOWS,
        eval_window=EVAL_WINDOW,
        eval_chunk=EVAL_CHUNK,
    )

    ctx.emit(
        f"budget: {budget:.1f} B/token (1.5x MILLION-4b); "
        f"mixed assignment bits {ctx.params['mixed_bits']}",
        "",
        f"{'scheme':>12s} {'B/token':>9s} {'ppl':>10s} {'tpot us':>9s}",
    )
    for label in [*schemes, "mixed"]:
        ctx.emit(
            f"{label:>12s} {bytes_per_token[label]:>9.1f} {ppl[label]:>10.4f} "
            f"{tpot[label] * 1e6:>9.0f}"
        )
    ctx.emit(
        "",
        f"mixed / best-under-budget uniform ({best_uniform}): {ratio:.4f} "
        "(< 1: the calibrated mix beats every uniform setting at the budget)",
    )


def test_policy_pareto(results_writer):
    result = run_registered("quant.policy_pareto")
    results_writer("policy_pareto", result.text)
    metrics = {m.name: m.value for m in result.metrics}
    ratio = metrics["mixed_vs_best_uniform_ppl_ratio"]
    # The frontier claim: at the byte budget, the calibrated mixed policy
    # strictly beats every uniform setting that fits the budget.
    assert ratio < 1.0, f"mixed policy does not beat best uniform: ratio={ratio}"
    # The mix must actually fit the budget it was derived under.
    assert result.params["bytes_per_token"]["mixed"] <= result.params[
        "budget_bytes_per_token"
    ]
    # And quantization must genuinely cost accuracy relative to fp16 here
    # (otherwise the eval stream is not exercising the cache).
    assert metrics["ppl_fp16"] <= metrics["ppl_million_2b"]
