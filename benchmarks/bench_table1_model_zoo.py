"""TAB1 — model roster (paper Table I).

Regenerates the roster of evaluated models: one tiny analogue per
positional-embedding family, with the context length it supports and its
parameter count, next to the full-size model it stands in for.
"""

from __future__ import annotations

import numpy as np

from repro.models import load_model, model_roster


def _format_roster() -> str:
    lines = [
        f"{'tiny analogue':>24s} {'paper model':>18s} {'paper params':>12s} "
        f"{'tiny params':>12s} {'positional':>12s} {'seq len':>8s}"
    ]
    for entry in model_roster():
        lines.append(
            f"{entry.name:>24s} {entry.paper_model:>18s} {entry.paper_params:>12s} "
            f"{entry.tiny_params:>12,d} {entry.positional:>12s} {entry.max_seq_len:>8d}"
        )
    return "\n".join(lines)


def test_table1_model_roster(benchmark, results_writer):
    """Build every zoo model and report the Table I analogue."""

    def build_all():
        roster = model_roster()
        # Instantiating each model exercises the positional-embedding paths.
        models = [load_model(entry.name, seed=0) for entry in roster]
        return models

    models = benchmark.pedantic(build_all, iterations=1, rounds=1)
    assert len(models) == 5
    for model in models:
        logits = model.prefill(np.arange(8) % model.config.vocab_size)
        assert np.isfinite(logits).all()
    results_writer("table1_model_zoo", _format_roster())
