"""Continuous-profiler overhead: phase hooks must be ~free off, cheap on.

The serving engine and the fused attention kernel carry phase hooks
(``if prof.enabled:`` guards around ``PhaseProfiler.lap``/``record``
calls) that attribute decode step time to named phases for
``/debug/prof`` and ``repro_engine_phase_seconds``.  Mirrors the
``serving.observability_overhead`` methodology:

* **Modelled overhead** — microbenchmark the per-hook primitives (the
  ``NULL_PROFILER.enabled`` attribute check, a live
  ``PhaseProfiler.lap``, a live ``record``), count how many fire per
  decoded token in a real profiled run (read off the profiler's own
  snapshot), and express their product as a fraction of the measured
  per-token decode time.  Deterministic enough to gate in CI.
* **Measured throughput ratio** — interleaved A/B decode runs (null vs
  live profiler), recorded ungated as a cross-check.

Gates: profiler-disabled overhead < 1% of per-token decode time,
profiler-enabled < 5%.

Run standalone with
``PYTHONPATH=src python -m pytest benchmarks/bench_profiler_overhead.py -s``
or through ``PYTHONPATH=src python -m repro.bench run --suite serving``.
"""

from __future__ import annotations

import time
from functools import lru_cache

import numpy as np

from _bench_shared import run_registered
from repro.bench import HIGHER, LOWER, BenchContext, benchmark_case
from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.models import ModelConfig, build_model
from repro.obs.prof import NULL_PROFILER, PhaseProfiler
from repro.serving import BatchedMillionEngine

#: Acceptance bars, as fractions of per-token decode wall time.
MAX_DISABLED_OVERHEAD_PCT = 1.0
MAX_ENABLED_OVERHEAD_PCT = 5.0

BATCH = 8


@lru_cache(maxsize=None)
def profiler_setup(smoke: bool = False):
    config = ModelConfig(
        name="prof-overhead-bench-lm",
        vocab_size=256,
        d_model=128,
        n_layers=2,
        n_heads=4,
        max_seq_len=4096,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )
    model = build_model(config, seed=0)
    calibration = load_corpus("wikitext2-syn", "train", 768, seed=0) % config.vocab_size
    million = MillionConfig.for_equivalent_bits(
        config.head_dim, bits=4, kmeans_iters=3 if smoke else 5,
        calibration_samples=1024,
    )
    factory = calibrate_million(model, calibration, million)
    rng = np.random.default_rng(7)
    prompts = [
        load_corpus("wikitext2-syn", "test", int(rng.integers(48, 96)), seed=i)
        % config.vocab_size
        for i in range(BATCH)
    ]
    return {"model": model, "factory": factory, "prompts": prompts}


def _decode_run(model, factory, prompts, prof, warmup_steps, steps):
    """Steady-state decode: (tokens/sec, tokens decoded, phase records)."""
    engine = BatchedMillionEngine(
        model, factory, max_batch_size=len(prompts), prof=prof
    )
    for prompt in prompts:
        engine.add_request(prompt, max_new_tokens=10_000)
    for _ in range(warmup_steps):
        engine.step()
    if prof.enabled:
        prof.reset()
    start = time.perf_counter()
    decoded = 0
    for _ in range(steps):
        decoded += len(engine.step())
    wall = time.perf_counter() - start
    records = (
        sum(entry["count"] for entry in prof.snapshot().values())
        if prof.enabled
        else 0
    )
    return decoded / wall, decoded, records


def _per_call_seconds(fn, calls: int) -> float:
    start = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - start) / calls


@benchmark_case(
    "serving.profiler_overhead", suite="serving", budget_s=120.0,
    smoke_budget_s=60.0,
)
def bench_profiler_overhead(ctx: BenchContext) -> None:
    """Phase-hook cost as a fraction of per-token decode time."""
    setup = profiler_setup(ctx.smoke)
    model, factory, prompts = setup["model"], setup["factory"], setup["prompts"]
    steps = ctx.pick(full=32, smoke=12)
    warmup = ctx.pick(full=8, smoke=4)
    micro_calls = ctx.pick(full=200_000, smoke=50_000)
    ctx.set_params(
        batch=BATCH, steps=steps, warmup_steps=warmup, micro_calls=micro_calls,
        max_disabled_overhead_pct=MAX_DISABLED_OVERHEAD_PCT,
        max_enabled_overhead_pct=MAX_ENABLED_OVERHEAD_PCT,
    )

    # Interleaved A/B decode runs; the profiled run yields records/token.
    disabled_rates, enabled_rates = [], []
    records_per_token = 0.0
    for _ in range(2):
        off_rate, _, _ = _decode_run(
            model, factory, prompts, NULL_PROFILER, warmup, steps
        )
        on_rate, decoded, records = _decode_run(
            model, factory, prompts, PhaseProfiler(), warmup, steps
        )
        disabled_rates.append(off_rate)
        enabled_rates.append(on_rate)
        records_per_token = records / decoded
    off_rate = max(disabled_rates)
    on_rate = max(enabled_rates)
    token_seconds = 1.0 / off_rate

    # Per-primitive costs, measured on the real objects.  Every hook site
    # starts with an ``enabled`` attribute check; when on, it costs a
    # ``lap`` (clock read + locked accumulate) or a bare ``record``.
    null = NULL_PROFILER
    check_s = _per_call_seconds(lambda: null.enabled and None, micro_calls)
    live = PhaseProfiler()
    lap_s = _per_call_seconds(
        lambda: live.lap("decode/bench", live.now()), micro_calls // 4
    )
    record_s = _per_call_seconds(
        lambda: live.record("decode/bench", 1e-6), micro_calls // 4
    )

    disabled_per_token = records_per_token * check_s
    enabled_per_token = records_per_token * max(lap_s, record_s)
    disabled_pct = 100.0 * disabled_per_token / token_seconds
    enabled_pct = 100.0 * enabled_per_token / token_seconds
    measured_ratio = off_rate / on_rate

    ctx.record("tokens_per_s_profiler_disabled", off_rate, unit="tok/s",
               direction=HIGHER, gated=False)
    ctx.record("tokens_per_s_profiler_enabled", on_rate, unit="tok/s",
               direction=HIGHER, gated=False)
    ctx.record("records_per_token", records_per_token, unit="records",
               direction=LOWER, gated=False)
    ctx.record("measured_enabled_slowdown_x", measured_ratio, unit="x",
               direction=LOWER, gated=False)
    ctx.record("disabled_overhead_pct", disabled_pct, unit="%",
               direction=LOWER, tolerance_pct=400.0, gated=True)
    ctx.record("enabled_overhead_pct", enabled_pct, unit="%",
               direction=LOWER, tolerance_pct=400.0, gated=True)

    ctx.emit(
        f"per-token decode time      {token_seconds * 1e6:9.1f} us "
        f"({off_rate:.0f} tok/s, B={BATCH})",
        f"phase records per token    {records_per_token:9.2f}",
        f"enabled-guard check        {check_s * 1e9:9.1f} ns",
        f"profiler lap               {lap_s * 1e9:9.1f} ns",
        f"profiler record            {record_s * 1e9:9.1f} ns",
        "",
        f"profiler-disabled overhead {disabled_pct:9.4f} % "
        f"(bar: < {MAX_DISABLED_OVERHEAD_PCT}%)",
        f"profiler-enabled overhead  {enabled_pct:9.4f} % "
        f"(bar: < {MAX_ENABLED_OVERHEAD_PCT}%)",
        f"measured A/B slowdown      {measured_ratio:9.3f} x (ungated cross-check)",
    )


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_profiler_overhead_under_bars(results_writer):
    result = run_registered("serving.profiler_overhead")
    results_writer("serving_profiler_overhead", result.text)
    disabled_pct = result.metric("disabled_overhead_pct").value
    enabled_pct = result.metric("enabled_overhead_pct").value
    assert disabled_pct < MAX_DISABLED_OVERHEAD_PCT, (
        f"profiler-disabled hooks cost {disabled_pct:.3f}% of per-token decode "
        f"time (bar: < {MAX_DISABLED_OVERHEAD_PCT}%)"
    )
    assert enabled_pct < MAX_ENABLED_OVERHEAD_PCT, (
        f"profiler-enabled recording costs {enabled_pct:.3f}% of per-token "
        f"decode time (bar: < {MAX_ENABLED_OVERHEAD_PCT}%)"
    )
    # The wall-clock cross-check should not contradict the model wildly.
    assert result.metric("measured_enabled_slowdown_x").value < 1.25
