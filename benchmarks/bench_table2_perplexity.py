"""TAB2 — perplexity under KV-cache quantization (paper Table II).

Evaluates the fp16 baseline, the KVQuant-like baseline at 3/4 bits (with and
without 1 % sparse outliers) and MILLION at 3/4 bits on the two synthetic
corpora, using a tiny model trained on the Wikitext-2 analogue.  The context
is fed in chunks so that every prediction attends to a quantized past, and the
evaluation window matches the training length.

What must reproduce (and is asserted):

* MILLION at 4 bits and 3 bits is near-lossless relative to the fp16 baseline
  (the paper reports ≤ 2 % PPL increase),
* MILLION never trails the KVQuant-like baseline at the same bit budget by a
  meaningful margin,
* all schemes stay far below the no-context upper bound (the cache is
  genuinely being used).

Known divergence (documented in EXPERIMENTS.md): the catastrophic PPL
explosions the paper reports for KVQuant-3b/4b *without* outlier handling do
not appear at this scale — per-channel non-uniform codebooks over 32-channel
heads on a 512-token vocabulary are simply not stressed enough — so this
benchmark checks MILLION's claims rather than the baselines' failures.
"""

from __future__ import annotations

import numpy as np

from repro.eval import compute_perplexity, perplexity_by_scheme

# Order of the rows in the report (same set as the shared accuracy fixture).
ACCURACY_SCHEMES = [
    "baseline",
    "kvquant-3b",
    "kvquant-3b-1pct",
    "kvquant-4b",
    "kvquant-4b-1pct",
    "million-3b",
    "million-4b",
]

# Paper Table II, Llama-2-7B column (Wikitext-2 / PTB).
PAPER_REFERENCE = """paper (Llama-2-7B):        Wikitext-2   PTB
  baseline                        5.12   28.31
  KVQuant-3b                     11.21   12323.75
  KVQuant-3b-1%                   5.22   24.34
  MILLION-3b                      5.20   29.55
  KVQuant-4b                      6.99   102.21
  KVQuant-4b-1%                   5.14   25.86
  MILLION-4b                      5.21   29.56"""

EVAL_WINDOW = 256
CHUNK = 16


def test_table2_perplexity(benchmark, results_writer, accuracy_model, accuracy_factories, evaluation_tokens):
    def run():
        table = {}
        for corpus_name, tokens in evaluation_tokens.items():
            table[corpus_name] = perplexity_by_scheme(
                accuracy_model,
                tokens,
                accuracy_factories,
                chunk_size=CHUNK,
                window=EVAL_WINDOW,
            )
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)

    corpora = list(evaluation_tokens)
    lines = [f"{'scheme':>18s}" + "".join(f"{c:>16s}" for c in corpora)]
    for scheme in ACCURACY_SCHEMES:
        cells = "".join(f"{table[c][scheme].perplexity:>16.3f}" for c in corpora)
        lines.append(f"{scheme:>18s}{cells}")
    # Context-free upper bound for reference: reset the cache every chunk.
    no_context = compute_perplexity(
        accuracy_model,
        evaluation_tokens[corpora[0]][: 4 * EVAL_WINDOW],
        chunk_size=CHUNK,
        window=CHUNK,
        scheme_name="no-context",
    )
    lines.append("")
    lines.append(
        f"(for reference, {corpora[0]} perplexity with the context truncated to "
        f"{CHUNK} tokens: {no_context.perplexity:.2f})"
    )
    lines.append("")
    lines.append(PAPER_REFERENCE)
    results_writer("table2_perplexity", "\n".join(lines))

    for corpus_name in corpora:
        results = table[corpus_name]
        baseline = results["baseline"].perplexity
        # MILLION is near-lossless at 4 and 3 bits.
        assert results["million-4b"].perplexity < baseline * 1.05
        assert results["million-3b"].perplexity < baseline * 1.08
        # MILLION does not trail the KVQuant-like baseline meaningfully.
        assert results["million-4b"].perplexity < results["kvquant-4b"].perplexity * 1.05
        assert results["million-3b"].perplexity < results["kvquant-3b"].perplexity * 1.08
    # The model genuinely uses the (quantized) context.
    wikitext = table[corpora[0]]
    assert wikitext["baseline"].perplexity < no_context.perplexity * 0.85
