"""FIG2 — magnitude distribution of the key and value caches (paper Fig. 2).

For two models with different positional encodings, reports the per-channel
magnitude profile of the key and value caches.  The paper's observation —
key-cache outliers concentrate in a few channels while value-cache outliers
have no channel structure — corresponds to the key magnitude-outlier ratio
being much larger than the value ratio.
"""

from __future__ import annotations

import numpy as np

from repro.data import load_corpus
from repro.eval import collect_kv_statistics, summarize_outlier_structure
from repro.models import load_model

MODELS = ("llama-2-7b-tiny", "mpt-7b-tiny")


def _collect(model_name: str):
    model = load_model(model_name, seed=0)
    tokens = load_corpus("wikitext2-syn", "validation", 384) % model.config.vocab_size
    stats = collect_kv_statistics(model, tokens, chunk_size=128, layers=[0])
    return stats


def test_fig2_magnitude_distribution(benchmark, results_writer):
    all_stats = benchmark.pedantic(
        lambda: {name: _collect(name) for name in MODELS}, iterations=1, rounds=1
    )
    lines = [
        f"{'model':>18s} {'kind':>6s} {'|max| median':>13s} {'|max| peak':>11s} "
        f"{'outlier ratio':>14s} {'top channels':>16s}"
    ]
    summaries = {}
    for name, stats in all_stats.items():
        summaries[name] = summarize_outlier_structure(stats)
        for stat in stats:
            lines.append(
                f"{name:>18s} {stat.kind:>6s} {np.median(stat.abs_max):>13.3f} "
                f"{stat.abs_max.max():>11.3f} {stat.magnitude_outlier_ratio():>14.2f} "
                f"{str(stat.top_channels(3).tolist()):>16s}"
            )
    for name, summary in summaries.items():
        lines.append(
            f"{name}: key outlier ratio {summary['key_magnitude_outlier_ratio']:.2f}x "
            f"vs value {summary['value_magnitude_outlier_ratio']:.2f}x"
        )
        # Paper claim: keys have concentrated channel outliers, values do not.
        assert (
            summary["key_magnitude_outlier_ratio"]
            > 1.5 * summary["value_magnitude_outlier_ratio"]
        )
    results_writer("fig2_magnitude_distribution", "\n".join(lines))
