"""Shared setup helpers for the registered benchmark cases.

The quant-suite ablations all sample KV vectors from the same tiny model; the
loaders here are ``lru_cache``-d so one process pays for each setup once, no
matter whether pytest or ``python -m repro.bench run`` drives the cases (or
both — the module is imported under its stem name by either entry point, so
the caches are genuinely shared).
"""

from __future__ import annotations

from functools import lru_cache

from repro.bench import run_case
from repro.bench.schema import CaseResult
from repro.core import collect_kv_samples
from repro.data import load_corpus
from repro.models import load_model


def run_registered(name: str, *, smoke: bool = False) -> CaseResult:
    """Run one registered case for a pytest wrapper, failing on case errors."""
    result = run_case(name, smoke=smoke)
    assert result.error is None, f"benchmark case {name} failed:\n{result.error}"
    return result


@lru_cache(maxsize=None)
def tiny_model():
    """The randomly initialised tiny analogue model shared by the ablations."""
    return load_model("llama-2-7b-tiny", seed=0)


@lru_cache(maxsize=None)
def sampled_kv(smoke: bool = False):
    """Sampled key/value/query vectors from the tiny model's layer-0 cache."""
    model = tiny_model()
    n_tokens = 384 if smoke else 768
    tokens = load_corpus("wikitext2-syn", "train", n_tokens) % model.config.vocab_size
    collector = collect_kv_samples(
        model, tokens, chunk_size=128, max_samples_per_layer=2048 if smoke else 4096
    )
    return {
        "head_dim": model.config.head_dim,
        "keys": collector.key_vectors(0),
        "values": collector.value_vectors(0),
        "queries": collector.key_vectors(1)[:64],
    }
