#!/usr/bin/env python
"""SLO-aware admission under a mixed-tenant burst: priority vs FIFO.

Replays one seeded :mod:`repro.loadgen` schedule — bursty arrivals, Zipf
prefixes, interactive and best-effort tenants — over real HTTP against two
gateways built from the same calibration:

* **fifo** — ``priority_aware=False``: one arrival-order queue, preemption
  youngest-first regardless of class (the pre-priority engine);
* **slo** — priority-class admission plus an :class:`SloPolicy`: interactive
  requests admit ahead of queued best-effort ones, preemption sacrifices
  best-effort first, and the gateway 429s only past SLO capacity.

The block pool is sized well below the workload's footprint, so the burst
genuinely contends for memory and the admission policy decides who waits.
Gated claims: interactive p99 TTFT improves under SLO-aware admission while
best-effort requests still complete — preempted and delayed, not starved.
Registered as ``serving.slo_load``; run standalone with::

    PYTHONPATH=src python benchmarks/bench_slo_load.py [--smoke]

or through ``python -m repro.bench run --suite serving``.
"""

from __future__ import annotations

import argparse
import asyncio
import time
from dataclasses import dataclass

from _bench_shared import run_registered
from repro.bench import HIGHER, LOWER, BenchContext, benchmark_case
from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.gateway import AsyncEngineRunner, GatewayServer, ReplicaRouter
from repro.loadgen import LoadReport, WorkloadSpec, replay, synthesize
from repro.models import ModelConfig, build_model
from repro.serving import (
    BatchedMillionEngine,
    BlockPool,
    PooledMillionCacheFactory,
    SloPolicy,
)


@dataclass(frozen=True)
class Params:
    requests: int = 48
    pool_blocks: int = 28
    max_batch_size: int = 4
    base_rate_rps: float = 12.0
    burst_rate_rps: float = 60.0
    # Replays per mode, pooled into one report: tail quantiles of a single
    # short replay swing wildly with OS scheduling noise, so the gated
    # speedup is computed over the pooled sample.
    repeats: int = 3
    seed: int = 3

    @classmethod
    def smoke(cls) -> "Params":
        return cls(
            requests=20, pool_blocks=20, base_rate_rps=16.0, burst_rate_rps=80.0
        )


def _workload(params: Params) -> WorkloadSpec:
    return WorkloadSpec(
        requests=params.requests,
        base_rate_rps=params.base_rate_rps,
        burst_rate_rps=params.burst_rate_rps,
        burst_every_s=2.0,
        burst_duration_s=0.75,
        prefix_groups=4,
        prefix_tokens=32,
        interactive_prompt_tokens=(8, 24),
        best_effort_prompt_tokens=(32, 64),
        interactive_output_tokens=(4, 10),
        best_effort_output_tokens=(16, 32),
        best_effort_fraction=0.5,
        tenants=4,
        seed=params.seed,
    )


def _build_calibration(params: Params):
    config = ModelConfig(
        name="bench-slo-load",
        vocab_size=256,
        d_model=64,
        n_layers=2,
        n_heads=2,
        max_seq_len=256,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )
    model = build_model(config, seed=0)
    calibration = load_corpus("wikitext2-syn", "train", 768, seed=1) % config.vocab_size
    million = MillionConfig.for_equivalent_bits(
        config.head_dim, bits=4, kmeans_iters=4, calibration_samples=1024
    )
    factory = calibrate_million(model, calibration, million)
    return config, million, factory


async def _run_mode(
    config, million, base_factory, params: Params, schedule, priority_aware: bool
):
    """Replay the schedule ``params.repeats`` times against fresh gateways.

    Each repeat gets its own engine and pool (scheduler/pool state must not
    leak between replays); outcomes are pooled into one report and the
    engine-side counters (preemptions, SLO rejections) are summed.
    """
    outcomes = []
    duration = 0.0
    stats = {
        "preemption_count": 0,
        "priority_preemptions": {"interactive": 0, "best_effort": 0},
        "slo_rejections": 0,
    }
    for _ in range(params.repeats):
        model = build_model(config, seed=0)
        pool = BlockPool.for_model(
            config, million, num_blocks=params.pool_blocks, block_tokens=16
        )
        factory = PooledMillionCacheFactory.from_factory(base_factory, pool)
        engine = BatchedMillionEngine(
            model,
            factory,
            max_batch_size=params.max_batch_size,
            priority_aware=priority_aware,
            # Interactive SLO generous enough that only pathological projected
            # waits 429; best-effort has no SLO, so it queues rather than sheds
            # (the "preempted, not starved" half of the claim).
            slo_policy=SloPolicy(interactive_slo_s=30.0) if priority_aware else None,
        )
        server = GatewayServer(ReplicaRouter([AsyncEngineRunner(engine)]))
        host, port = await server.start(port=0)
        try:
            started = time.perf_counter()
            outcomes.extend(await replay(host, port, schedule))
            duration += time.perf_counter() - started
        finally:
            await server.stop()
        stats["preemption_count"] += engine.preemption_count
        for label, count in engine.priority_preemptions.items():
            stats["priority_preemptions"][label] += count
        stats["slo_rejections"] += sum(engine.scheduler.slo_rejections.values())
    return LoadReport.from_outcomes(outcomes, duration), stats


def measure_slo_load(ctx: BenchContext, params: Params) -> None:
    ctx.set_params(**vars(params))
    config, million, base_factory = _build_calibration(params)
    schedule = synthesize(
        _workload(params), vocab_size=config.vocab_size, max_seq_len=config.max_seq_len
    )

    fifo_report, fifo_stats = asyncio.run(
        _run_mode(config, million, base_factory, params, schedule, False)
    )
    slo_report, slo_stats = asyncio.run(
        _run_mode(config, million, base_factory, params, schedule, True)
    )

    fifo = fifo_report.summary()["classes"]
    slo = slo_report.summary()["classes"]

    # Correctness invariants, not claims: the pool must actually have been
    # contended (otherwise the two policies are indistinguishable and the
    # speedup is noise), and best-effort must have finished work under
    # priority admission — preempted and delayed is fine, starved is not.
    assert slo_stats["preemption_count"] > 0, (
        "pool never contended under SLO-aware admission; shrink pool_blocks"
    )
    assert slo["best_effort"]["completed"] > 0, (
        "best-effort starved under priority admission"
    )
    assert slo["interactive"]["ttft_p99_s"] is not None
    assert fifo["interactive"]["ttft_p99_s"] is not None

    speedup = fifo["interactive"]["ttft_p99_s"] / slo["interactive"]["ttft_p99_s"]

    ctx.record("interactive_p99_ttft_speedup_x", speedup, unit="x",
               direction=HIGHER, tolerance_pct=60.0)
    ctx.record("best_effort_completed_fraction",
               slo["best_effort"]["completed_fraction"], unit="frac",
               direction=HIGHER, tolerance_pct=30.0)
    ctx.record("slo_interactive_p99_ttft_ms",
               slo["interactive"]["ttft_p99_s"] * 1e3, unit="ms",
               direction=LOWER, gated=False)
    ctx.record("fifo_interactive_p99_ttft_ms",
               fifo["interactive"]["ttft_p99_s"] * 1e3, unit="ms",
               direction=LOWER, gated=False)
    ctx.record("slo_best_effort_preemptions",
               float(slo_stats["priority_preemptions"]["best_effort"]),
               unit="count", direction=HIGHER, gated=False)
    ctx.record("slo_rejections",
               float(slo_stats["slo_rejections"]),
               unit="count", direction=LOWER, gated=False)

    def row(label: str, stats: dict) -> str:
        p50 = stats["ttft_p50_s"]
        p99 = stats["ttft_p99_s"]
        return (
            f"{label:<24} {stats['sent']:>4} {stats['completed']:>4} "
            f"{stats['rejected']:>4} "
            f"{p50 * 1e3 if p50 else 0:>9.1f} {p99 * 1e3 if p99 else 0:>9.1f}"
        )

    ctx.emit(
        "mode/class               sent done  429  ttft p50  ttft p99  (ms)",
        row("fifo interactive", fifo["interactive"]),
        row("fifo best_effort", fifo["best_effort"]),
        row("slo  interactive", slo["interactive"]),
        row("slo  best_effort", slo["best_effort"]),
        "",
        f"interactive p99 TTFT speedup under SLO admission: {speedup:.2f}x "
        f"(pooled over {params.repeats} replays)",
        f"preemptions (slo runs): {slo_stats['priority_preemptions']} "
        f"(fifo runs: {fifo_stats['preemption_count']} total)",
    )


@benchmark_case(
    "serving.slo_load", suite="serving", budget_s=300.0, smoke_budget_s=120.0
)
def bench_slo_load(ctx: BenchContext) -> None:
    measure_slo_load(ctx, Params.smoke() if ctx.smoke else Params())


def _assert_claims(metrics: dict[str, float]) -> None:
    assert metrics["interactive_p99_ttft_speedup_x"] > 1.0, (
        "priority admission must improve interactive p99 TTFT under burst, "
        f"got {metrics['interactive_p99_ttft_speedup_x']:.2f}x"
    )
    assert metrics["best_effort_completed_fraction"] > 0.0, (
        "best-effort must complete requests (preempted, not starved)"
    )


def test_slo_load(results_writer):
    result = run_registered("serving.slo_load")
    results_writer("slo_load", result.text)
    _assert_claims({m.name: m.value for m in result.metrics})


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--pool-blocks", type=int, default=None)
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args()
    params = Params.smoke() if args.smoke else Params()
    overrides = {
        field: getattr(args, field)
        for field in ("requests", "pool_blocks")
        if getattr(args, field) is not None
    }
    params = Params(**{**vars(params), **overrides})

    print("calibrating MILLION codebooks ...")
    ctx = BenchContext(smoke=args.smoke)
    measure_slo_load(ctx, params)
    print(ctx.text)
    _assert_claims({m.name: m.value for m in ctx.metrics})
    print("OK")


if __name__ == "__main__":
    main()
