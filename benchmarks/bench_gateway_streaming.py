#!/usr/bin/env python
"""Gateway streaming latency: TTFT and inter-token latency vs direct engine.

Measures what the asyncio HTTP front door costs on top of the raw engine:

* **TTFT** — submit-to-first-token, directly off ``engine.step()`` versus
  through ``POST /v1/completions`` with SSE streaming (one process, real
  localhost socket, stdlib client);
* **inter-token latency** — mean gap between consecutive streamed tokens
  for both paths.

The streamed tokens are asserted identical to the direct engine's output —
the gateway adds transport, never changes results.  Registered as
``serving.gateway_streaming``; run standalone with::

    PYTHONPATH=src python benchmarks/bench_gateway_streaming.py [--smoke]

or through ``python -m repro.bench run --suite serving``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from dataclasses import dataclass

import numpy as np

from _bench_shared import run_registered
from repro.bench import HIGHER, LOWER, BenchContext, benchmark_case
from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.gateway import AsyncEngineRunner, GatewayServer, ReplicaRouter
from repro.models import ModelConfig, build_model
from repro.serving import BatchedMillionEngine


@dataclass(frozen=True)
class Params:
    prompt_tokens: int = 256
    max_new_tokens: int = 64

    @classmethod
    def smoke(cls) -> "Params":
        return cls(prompt_tokens=64, max_new_tokens=16)


def _build(params: Params):
    config = ModelConfig(
        name="bench-gateway",
        vocab_size=256,
        d_model=64,
        n_layers=2,
        n_heads=2,
        max_seq_len=params.prompt_tokens + params.max_new_tokens + 64,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )
    model = build_model(config, seed=0)
    vocab = config.vocab_size
    calibration = load_corpus("wikitext2-syn", "train", 768, seed=1) % vocab
    million = MillionConfig.for_equivalent_bits(
        config.head_dim, bits=4, kmeans_iters=4, calibration_samples=1024
    )
    factory = calibrate_million(model, calibration, million)
    prompt = load_corpus("wikitext2-syn", "test", params.prompt_tokens, seed=2) % vocab
    return config, factory, prompt


def _measure_direct(config, factory, prompt, params: Params):
    """Step the engine by hand, timestamping each token as it appears."""
    engine = BatchedMillionEngine(build_model(config, seed=0), factory)
    engine.add_request(prompt, max_new_tokens=params.max_new_tokens)
    tokens: list[int] = []
    stamps: list[float] = []
    start = time.perf_counter()
    while engine.scheduler.has_work:
        for output in engine.step():
            if output.token is not None:
                tokens.append(output.token)
                stamps.append(time.perf_counter())
    return tokens, start, stamps


async def _measure_gateway(config, factory, prompt, params: Params):
    """Stream the same request over HTTP; timestamp each SSE frame."""
    engine = BatchedMillionEngine(build_model(config, seed=0), factory)
    server = GatewayServer(ReplicaRouter([AsyncEngineRunner(engine)]))
    host, port = await server.start(port=0)
    try:
        reader, writer = await asyncio.open_connection(host, port)
        body = json.dumps(
            {
                "prompt": prompt.tolist(),
                "max_tokens": params.max_new_tokens,
                "stream": True,
            }
        ).encode()
        writer.write(
            (
                f"POST /v1/completions HTTP/1.1\r\nHost: bench\r\n"
                f"Content-Type: application/json\r\nContent-Length: {len(body)}\r\n\r\n"
            ).encode()
            + body
        )
        start = time.perf_counter()
        await writer.drain()
        tokens: list[int] = []
        stamps: list[float] = []
        buffered = b""
        while True:
            chunk = await reader.read(4096)
            if not chunk:
                break
            buffered += chunk
            while b"\n\n" in buffered:
                frame, buffered = buffered.split(b"\n\n", 1)
                for line in frame.split(b"\n"):
                    if not line.startswith(b"data: ") or line == b"data: [DONE]":
                        continue
                    token = json.loads(line[len(b"data: "):])["choices"][0]["token_id"]
                    if token is not None:
                        tokens.append(token)
                        stamps.append(time.perf_counter())
        writer.close()
        return tokens, start, stamps
    finally:
        await server.stop()


def _latencies(start: float, stamps: list[float]) -> tuple[float, float]:
    """(TTFT ms, mean inter-token ms)."""
    ttft_ms = (stamps[0] - start) * 1e3
    gaps = np.diff(np.asarray(stamps))
    itl_ms = float(gaps.mean() * 1e3) if gaps.size else 0.0
    return ttft_ms, itl_ms


def measure_gateway_streaming(ctx: BenchContext, params: Params) -> None:
    ctx.set_params(**vars(params))
    config, factory, prompt = _build(params)

    direct_tokens, direct_start, direct_stamps = _measure_direct(
        config, factory, prompt, params
    )
    gateway_tokens, gateway_start, gateway_stamps = asyncio.run(
        _measure_gateway(config, factory, prompt, params)
    )
    # Correctness invariant, not a claim: the transport must be transparent.
    assert gateway_tokens == direct_tokens, (
        "gateway streamed different tokens than the direct engine"
    )

    direct_ttft, direct_itl = _latencies(direct_start, direct_stamps)
    gateway_ttft, gateway_itl = _latencies(gateway_start, gateway_stamps)
    itl_overhead = gateway_itl / direct_itl if direct_itl > 0 else 1.0

    ctx.record("streamed_tokens", len(gateway_tokens), unit="tokens",
               direction=HIGHER, tolerance_pct=0.0)
    ctx.record("gateway_itl_overhead_x", itl_overhead, unit="x", direction=LOWER,
               tolerance_pct=150.0)
    ctx.record("direct_ttft_ms", direct_ttft, unit="ms", direction=LOWER, gated=False)
    ctx.record("gateway_ttft_ms", gateway_ttft, unit="ms", direction=LOWER, gated=False)
    ctx.record("direct_itl_ms", direct_itl, unit="ms", direction=LOWER, gated=False)
    ctx.record("gateway_itl_ms", gateway_itl, unit="ms", direction=LOWER, gated=False)

    ctx.emit(
        "path      ttft_ms  itl_ms  tokens",
        f"direct    {direct_ttft:7.1f}  {direct_itl:6.2f}  {len(direct_tokens):6d}",
        f"gateway   {gateway_ttft:7.1f}  {gateway_itl:6.2f}  {len(gateway_tokens):6d}",
        "",
        f"inter-token overhead through the gateway: {itl_overhead:.2f}x",
    )


@benchmark_case(
    "serving.gateway_streaming", suite="serving", budget_s=120.0, smoke_budget_s=45.0
)
def bench_gateway_streaming(ctx: BenchContext) -> None:
    measure_gateway_streaming(ctx, Params.smoke() if ctx.smoke else Params())


def _assert_claims(metrics: dict[str, float]) -> None:
    overhead = metrics["gateway_itl_overhead_x"]
    assert overhead < 5.0, (
        f"gateway must not dominate inter-token latency, got {overhead:.2f}x"
    )


def test_gateway_streaming(results_writer):
    result = run_registered("serving.gateway_streaming")
    results_writer("gateway_streaming", result.text)
    _assert_claims({m.name: m.value for m in result.metrics})


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--prompt-tokens", type=int, default=None)
    parser.add_argument("--max-new-tokens", type=int, default=None)
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args()
    params = Params.smoke() if args.smoke else Params()
    overrides = {
        field: getattr(args, field)
        for field in vars(params)
        if getattr(args, field) is not None
    }
    params = Params(**{**vars(params), **overrides})

    print("calibrating MILLION codebooks ...")
    ctx = BenchContext(smoke=args.smoke)
    measure_gateway_streaming(ctx, params)
    print(ctx.text)
    _assert_claims({m.name: m.value for m in ctx.metrics})
    print("OK")


if __name__ == "__main__":
    main()
