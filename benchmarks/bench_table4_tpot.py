"""TAB4 — time per output token versus prefill length (paper Table IV).

Uses the analytic A40 performance model to estimate decode TPOT for the fp16
baseline, KIVI-4b, KVQuant-4b and MILLION-4b at prefill lengths 1K-32K with
100 generated tokens, and checks the qualitative findings of the paper:

* the baseline grows steeply with context length,
* KIVI is slower than the baseline at short contexts, overtakes it around 8K
  and runs out of memory at 16K on the 48 GB A40,
* KVQuant is the slowest scheme at every length,
* MILLION is the fastest at every length and reaches ~2x end-to-end speedup
  at 32K.

Registered as ``serving.tpot_model``: the analytic model is deterministic, so
its metrics gate tightly — any drift in the modelled TPOT numbers is a real
change to the performance model, not noise.
"""

from __future__ import annotations

import numpy as np

from _bench_shared import run_registered
from repro.bench import HIGHER, BenchContext, benchmark_case
from repro.perf import LLAMA_2_7B, A40, tpot_table

SCHEMES = ["baseline-fp16", "kivi-4b", "kvquant-4b", "million-4b"]
PREFILL_LENGTHS = [1024, 2048, 4096, 8192, 16384, 32768]

# Paper Table IV values (ms/token) for reference in the report.
PAPER_TPOT = {
    "baseline-fp16": [32.53, 35.64, 42.04, 54.83, 80.49, 132.97],
    "kivi-4b": [46.69, 46.88, 46.92, 47.86, float("nan"), float("nan")],
    "kvquant-4b": [75.73, 73.92, 75.34, 74.90, 78.17, 90.16],
    "million-4b": [30.36, 31.57, 34.05, 38.34, 46.53, 63.41],
}


def _format(table) -> str:
    header = f"{'scheme':>16s}" + "".join(f"{l // 1024:>8d}K" for l in PREFILL_LENGTHS)
    lines = [header]
    for scheme in SCHEMES:
        cells = "".join(
            f"{'OOM':>9s}" if r.oom else f"{r.tpot_ms:>9.2f}" for r in table[scheme]
        )
        lines.append(f"{scheme:>16s}{cells}")
    lines.append("")
    lines.append("paper-reported values (A40, measured):")
    for scheme in SCHEMES:
        cells = "".join(
            f"{'OOM':>9s}" if np.isnan(v) else f"{v:>9.2f}" for v in PAPER_TPOT[scheme]
        )
        lines.append(f"{scheme:>16s}{cells}")
    return "\n".join(lines)


@benchmark_case("serving.tpot_model", suite="serving", budget_s=60.0, smoke_budget_s=20.0)
def bench_tpot_model(ctx: BenchContext) -> None:
    table = tpot_table(LLAMA_2_7B, SCHEMES, PREFILL_LENGTHS, device=A40, n_decode_tokens=100)
    ctx.set_params(schemes=SCHEMES, prefill_lengths=PREFILL_LENGTHS, device="A40")
    for scheme in SCHEMES:
        for length, row in zip(PREFILL_LENGTHS, table[scheme]):
            if row.oom:
                continue  # OOM rows record no metric (KIVI at 16K+)
            # Deterministic analytic model: 2% tolerance flags any real change.
            ctx.record(
                f"tpot_ms_{scheme}@{length // 1024}k",
                row.tpot_ms,
                unit="ms",
                tolerance_pct=2.0,
            )
    baseline_32k = table["baseline-fp16"][-1].tpot_ms
    million_32k = table["million-4b"][-1].tpot_ms
    ctx.record("e2e_speedup_32k_x", baseline_32k / million_32k, unit="x",
               direction=HIGHER, tolerance_pct=2.0)
    ctx.emit(_format(table))


def test_table4_tpot(results_writer):
    result = run_registered("serving.tpot_model")
    results_writer("table4_tpot", result.text)
    metrics = {m.name: m.value for m in result.metrics}

    baseline = [metrics[f"tpot_ms_baseline-fp16@{l // 1024}k"] for l in PREFILL_LENGTHS]
    million = [metrics[f"tpot_ms_million-4b@{l // 1024}k"] for l in PREFILL_LENGTHS]
    kvquant = [metrics[f"tpot_ms_kvquant-4b@{l // 1024}k"] for l in PREFILL_LENGTHS]
    kivi = [metrics.get(f"tpot_ms_kivi-4b@{l // 1024}k") for l in PREFILL_LENGTHS]

    # Baseline scales steeply with context length.
    assert baseline[-1] > 2.5 * baseline[0]
    # MILLION is fastest at every prefill length.
    for i in range(len(PREFILL_LENGTHS)):
        assert million[i] < baseline[i]
        assert million[i] < kvquant[i]
        if kivi[i] is not None:
            assert million[i] < kivi[i]
    # ~2x end-to-end gain at 32K (paper reports 2.09x).
    assert 1.7 < metrics["e2e_speedup_32k_x"] < 3.2
    # KIVI: slower than baseline at 1K-4K, competitive by 8K, OOM at 16K+.
    assert kivi[0] > baseline[0]
    assert kivi[3] < baseline[3] * 1.05
    assert kivi[4] is None and kivi[5] is None
    # KVQuant is the slowest non-OOM scheme at short contexts.
    assert kvquant[0] > max(baseline[0], million[0], kivi[0])
