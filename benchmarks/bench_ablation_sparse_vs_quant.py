"""ABL5 — token eviction versus quantization at matched memory budgets.

The paper's introduction argues that sparse-attention approaches (sliding
windows with attention sinks, heavy-hitter eviction) "may suffer from accuracy
degradation, as past attention distributions may not reliably predict future
attention needs", while quantization keeps (a coarse version of) every token.

This ablation pits the StreamingLLM-style and H2O-style caches against
MILLION-4b on the same model at a comparable KV memory budget and reports
logit fidelity against the fp16 reference plus the measured cache footprint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import HeavyHitterCacheFactory, SlidingWindowCacheFactory
from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.eval import logit_fidelity
from repro.models import load_model
from repro.models.kv_cache import FullPrecisionCacheFactory

CONTEXT = 512
# A 4-bit quantized cache of 512 tokens costs about as much as ~128 fp16
# tokens, so the eviction baselines get a 128-token budget.
MATCHED_BUDGET = 128


@pytest.fixture(scope="module")
def ablation_setup():
    model = load_model("llama-2-7b-tiny", seed=0)
    calibration = load_corpus("wikitext2-syn", "train", 768) % model.config.vocab_size
    test = load_corpus("wikitext2-syn", "test", CONTEXT) % model.config.vocab_size
    million_config = MillionConfig.for_equivalent_bits(
        model.config.head_dim, bits=4, kmeans_iters=6, calibration_samples=2048
    )
    factories = {
        "million-4b": calibrate_million(model, calibration, million_config),
        "sliding-window": SlidingWindowCacheFactory(window=MATCHED_BUDGET - 4, n_sink=4),
        "heavy-hitter": HeavyHitterCacheFactory(budget=MATCHED_BUDGET, recent=32),
    }
    return model, test, factories


def _cache_kib(model, factory, tokens) -> float:
    model.reset_cache(factory)
    for start in range(0, tokens.size, 64):
        model.forward(tokens[start : start + 64])
    kib = model.cache_memory_bytes() / 1024.0
    model.reset_cache(FullPrecisionCacheFactory())
    return kib


def test_ablation_sparse_vs_quant(benchmark, results_writer, ablation_setup):
    model, test, factories = ablation_setup

    def run():
        rows = []
        for name, factory in factories.items():
            fidelity = logit_fidelity(model, test, factory, chunk_size=32, scheme_name=name)
            rows.append((name, fidelity.mean_kl, fidelity.top1_agreement, _cache_kib(model, factory, test)))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    fp16_kib = CONTEXT * model.config.kv_cache_bytes_per_token() / 1024.0
    lines = [
        f"context {CONTEXT} tokens, fp16 cache {fp16_kib:.0f} KiB, eviction budget "
        f"{MATCHED_BUDGET} tokens",
        f"{'scheme':>16s} {'KL vs fp16':>11s} {'top-1 agree':>12s} {'cache KiB':>10s}",
    ]
    for name, kl, agree, kib in rows:
        lines.append(f"{name:>16s} {kl:>11.4f} {agree:>12.3f} {kib:>10.1f}")
    lines.append("")
    lines.append(
        "At a matched memory budget, keeping every token at 4 bits (MILLION) is"
        " far more faithful to the fp16 model than dropping tokens outright."
    )
    results_writer("ablation_sparse_vs_quant", "\n".join(lines))

    metrics = {name: (kl, agree, kib) for name, kl, agree, kib in rows}
    million_kl, million_agree, million_kib = metrics["million-4b"]
    for baseline in ("sliding-window", "heavy-hitter"):
        kl, agree, kib = metrics[baseline]
        assert million_kl < kl
        assert million_agree > agree
        # Memory budgets are comparable (within ~2.5x, codebooks included).
        assert million_kib < 2.5 * kib
