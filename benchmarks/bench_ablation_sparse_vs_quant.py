"""ABL5 — token eviction versus quantization at matched memory budgets.

The paper's introduction argues that sparse-attention approaches (sliding
windows with attention sinks, heavy-hitter eviction) "may suffer from accuracy
degradation, as past attention distributions may not reliably predict future
attention needs", while quantization keeps (a coarse version of) every token.

This ablation pits the StreamingLLM-style and H2O-style caches against
MILLION-4b on the same model at a comparable KV memory budget and reports
logit fidelity against the fp16 reference plus the measured cache footprint.

Registered as ``quant.sparse_vs_quant``.
"""

from __future__ import annotations

from _bench_shared import run_registered, tiny_model
from repro.bench import HIGHER, BenchContext, benchmark_case
from repro.baselines import HeavyHitterCacheFactory, SlidingWindowCacheFactory
from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.eval import logit_fidelity
from repro.models.kv_cache import FullPrecisionCacheFactory

CONTEXT = 512
# A 4-bit quantized cache of 512 tokens costs about as much as ~128 fp16
# tokens, so the eviction baselines get a 128-token budget.
MATCHED_BUDGET = 128


def _cache_kib(model, factory, tokens) -> float:
    model.reset_cache(factory)
    for start in range(0, tokens.size, 64):
        model.forward(tokens[start : start + 64])
    kib = model.cache_memory_bytes() / 1024.0
    model.reset_cache(FullPrecisionCacheFactory())
    return kib


@benchmark_case("quant.sparse_vs_quant", suite="quant", budget_s=300.0, smoke_budget_s=90.0)
def bench_sparse_vs_quant(ctx: BenchContext) -> None:
    model = tiny_model()
    context = ctx.pick(full=CONTEXT, smoke=256)
    budget = ctx.pick(full=MATCHED_BUDGET, smoke=64)
    kmeans_iters = ctx.pick(full=6, smoke=3)
    ctx.set_params(context_tokens=context, eviction_budget=budget, kmeans_iters=kmeans_iters)
    calibration = load_corpus("wikitext2-syn", "train", 768) % model.config.vocab_size
    test = load_corpus("wikitext2-syn", "test", context) % model.config.vocab_size
    million_config = MillionConfig.for_equivalent_bits(
        model.config.head_dim, bits=4, kmeans_iters=kmeans_iters, calibration_samples=2048
    )
    factories = {
        "million-4b": calibrate_million(model, calibration, million_config),
        "sliding-window": SlidingWindowCacheFactory(window=budget - 4, n_sink=4),
        "heavy-hitter": HeavyHitterCacheFactory(budget=budget, recent=32),
    }

    rows = []
    for name, factory in factories.items():
        fidelity = logit_fidelity(model, test, factory, chunk_size=32, scheme_name=name)
        kib = _cache_kib(model, factory, test)
        rows.append((name, fidelity.mean_kl, fidelity.top1_agreement, kib))
        slug = name.replace("-", "_")
        ctx.record(f"mean_kl_{slug}", fidelity.mean_kl, tolerance_pct=20.0)
        ctx.record(f"top1_agreement_{slug}", fidelity.top1_agreement,
                   direction=HIGHER, tolerance_pct=10.0)
        ctx.record(f"cache_kib_{slug}", kib, unit="KiB", tolerance_pct=5.0)

    fp16_kib = context * model.config.kv_cache_bytes_per_token() / 1024.0
    ctx.emit(
        f"context {context} tokens, fp16 cache {fp16_kib:.0f} KiB, eviction budget "
        f"{budget} tokens",
        f"{'scheme':>16s} {'KL vs fp16':>11s} {'top-1 agree':>12s} {'cache KiB':>10s}",
    )
    for name, kl, agree, kib in rows:
        ctx.emit(f"{name:>16s} {kl:>11.4f} {agree:>12.3f} {kib:>10.1f}")
    ctx.emit(
        "",
        "At a matched memory budget, keeping every token at 4 bits (MILLION) is"
        " far more faithful to the fp16 model than dropping tokens outright.",
    )


def test_ablation_sparse_vs_quant(results_writer):
    result = run_registered("quant.sparse_vs_quant")
    results_writer("ablation_sparse_vs_quant", result.text)
    metrics = {m.name: m.value for m in result.metrics}
    for baseline in ("sliding_window", "heavy_hitter"):
        assert metrics["mean_kl_million_4b"] < metrics[f"mean_kl_{baseline}"]
        assert metrics["top1_agreement_million_4b"] > metrics[f"top1_agreement_{baseline}"]
        # Memory budgets are comparable (within ~2.5x, codebooks included).
        assert metrics["cache_kib_million_4b"] < 2.5 * metrics[f"cache_kib_{baseline}"]
