"""ABL4 — PQ versus uniform integer quantization at equal bit budgets.

The motivation study (Section II-D): uniform integer quantization suffers on
the outlier-heavy key cache, while product quantization spends its centroid
resolution where the data lives.  This ablation quantizes the *same* sampled
key/value vectors with both schemes at 2/3/4 bits per value and compares
reconstruction error and attention-score error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ProductQuantizer, collect_kv_samples
from repro.core.config import MillionConfig
from repro.data import load_corpus
from repro.models import load_model
from repro.quant import quantize_uniform

BIT_BUDGETS = [2, 3, 4]


@pytest.fixture(scope="module")
def sampled_kv():
    model = load_model("llama-2-7b-tiny", seed=0)
    tokens = load_corpus("wikitext2-syn", "train", 768) % model.config.vocab_size
    collector = collect_kv_samples(model, tokens, chunk_size=128, max_samples_per_layer=4096)
    return {
        "head_dim": model.config.head_dim,
        "keys": collector.key_vectors(0),
        "values": collector.value_vectors(0),
        "queries": collector.key_vectors(1)[:64],
    }


def _pq_metrics(vectors, queries, head_dim, bits):
    config = MillionConfig.for_equivalent_bits(head_dim, bits, prefer_small_codebooks=True)
    train, test = vectors[: vectors.shape[0] // 2], vectors[vectors.shape[0] // 2 :][:512]
    pq = ProductQuantizer.fit(
        train, config.m_subspaces, config.nbits, kmeans_iters=8, seed=0, max_samples=4096
    )
    codes = pq.encode(test)
    reconstructed = pq.decode(codes)
    mse = float(np.mean((reconstructed - test) ** 2))
    score_rmse = float(
        np.sqrt(np.mean((pq.adc_scores(pq.build_score_luts(queries), codes) - queries @ test.T) ** 2))
    )
    return mse, score_rmse


def _uniform_metrics(vectors, queries, bits, per_channel: bool):
    test = vectors[vectors.shape[0] // 2 :][:512]
    keep_axes = (1,) if per_channel else None
    reconstructed = quantize_uniform(test, bits, keep_axes=keep_axes).dequantize()
    mse = float(np.mean((reconstructed - test) ** 2))
    score_rmse = float(np.sqrt(np.mean((queries @ reconstructed.T - queries @ test.T) ** 2)))
    return mse, score_rmse


def test_ablation_pq_vs_uniform(benchmark, results_writer, sampled_kv):
    def run():
        rows = []
        for kind in ("keys", "values"):
            vectors = sampled_kv[kind]
            for bits in BIT_BUDGETS:
                pq_mse, pq_rmse = _pq_metrics(
                    vectors, sampled_kv["queries"], sampled_kv["head_dim"], bits
                )
                tensor_mse, tensor_rmse = _uniform_metrics(vectors, sampled_kv["queries"], bits, False)
                channel_mse, channel_rmse = _uniform_metrics(vectors, sampled_kv["queries"], bits, True)
                rows.append((kind, bits, pq_mse, pq_rmse, tensor_mse, tensor_rmse, channel_mse, channel_rmse))
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    lines = [
        f"{'tensor':>7s} {'bits':>5s} {'PQ mse':>10s} {'PQ score':>10s} "
        f"{'int/tensor mse':>15s} {'int/tensor score':>17s} {'int/channel mse':>16s} {'int/channel score':>18s}"
    ]
    for kind, bits, pq_mse, pq_rmse, t_mse, t_rmse, c_mse, c_rmse in rows:
        lines.append(
            f"{kind:>7s} {bits:>5d} {pq_mse:>10.5f} {pq_rmse:>10.4f} "
            f"{t_mse:>15.5f} {t_rmse:>17.4f} {c_mse:>16.5f} {c_rmse:>18.4f}"
        )
    lines.append("")
    lines.append(
        "PQ beats per-tensor integer quantization everywhere and beats even"
        " per-channel integer quantization on the outlier-heavy key cache at"
        " low bit budgets — the 'outlier-immunized' claim."
    )
    results_writer("ablation_pq_vs_uniform", "\n".join(lines))

    by_key = {(r[0], r[1]): r for r in rows}
    for bits in BIT_BUDGETS:
        kind_row = by_key[("keys", bits)]
        # PQ beats per-tensor uniform quantization on keys at every budget.
        assert kind_row[2] < kind_row[4]
        assert kind_row[3] < kind_row[5]
    # At the lowest budgets PQ also beats per-channel uniform on keys.
    assert by_key[("keys", 2)][2] < by_key[("keys", 2)][6]
