"""ABL4 — PQ versus uniform integer quantization at equal bit budgets.

The motivation study (Section II-D): uniform integer quantization suffers on
the outlier-heavy key cache, while product quantization spends its centroid
resolution where the data lives.  This ablation quantizes the *same* sampled
key/value vectors with both schemes at 2/3/4 bits per value and compares
reconstruction error and attention-score error.

Registered as ``quant.pq_vs_uniform``; seeded and deterministic, so the error
metrics gate with a modest tolerance.
"""

from __future__ import annotations

import numpy as np

from _bench_shared import run_registered, sampled_kv
from repro.bench import BenchContext, benchmark_case
from repro.core import ProductQuantizer
from repro.core.config import MillionConfig
from repro.quant import quantize_uniform

BIT_BUDGETS = [2, 3, 4]
SMOKE_BIT_BUDGETS = [2, 4]


def _pq_metrics(vectors, queries, head_dim, bits, kmeans_iters):
    config = MillionConfig.for_equivalent_bits(head_dim, bits, prefer_small_codebooks=True)
    train, test = vectors[: vectors.shape[0] // 2], vectors[vectors.shape[0] // 2 :][:512]
    pq = ProductQuantizer.fit(
        train, config.m_subspaces, config.nbits, kmeans_iters=kmeans_iters, seed=0,
        max_samples=4096,
    )
    codes = pq.encode(test)
    reconstructed = pq.decode(codes)
    mse = float(np.mean((reconstructed - test) ** 2))
    score_rmse = float(
        np.sqrt(np.mean((pq.adc_scores(pq.build_score_luts(queries), codes) - queries @ test.T) ** 2))
    )
    return mse, score_rmse


def _uniform_metrics(vectors, queries, bits, per_channel: bool):
    test = vectors[vectors.shape[0] // 2 :][:512]
    keep_axes = (1,) if per_channel else None
    reconstructed = quantize_uniform(test, bits, keep_axes=keep_axes).dequantize()
    mse = float(np.mean((reconstructed - test) ** 2))
    score_rmse = float(np.sqrt(np.mean((queries @ reconstructed.T - queries @ test.T) ** 2)))
    return mse, score_rmse


@benchmark_case("quant.pq_vs_uniform", suite="quant", budget_s=240.0, smoke_budget_s=60.0)
def bench_pq_vs_uniform(ctx: BenchContext) -> None:
    kv = sampled_kv(ctx.smoke)
    budgets = ctx.pick(full=BIT_BUDGETS, smoke=SMOKE_BIT_BUDGETS)
    kmeans_iters = ctx.pick(full=8, smoke=4)
    ctx.set_params(bit_budgets=budgets, kmeans_iters=kmeans_iters)
    rows = []
    for kind in ("keys", "values"):
        vectors = kv[kind]
        for bits in budgets:
            pq_mse, pq_rmse = _pq_metrics(
                vectors, kv["queries"], kv["head_dim"], bits, kmeans_iters
            )
            tensor_mse, tensor_rmse = _uniform_metrics(vectors, kv["queries"], bits, False)
            channel_mse, channel_rmse = _uniform_metrics(vectors, kv["queries"], bits, True)
            rows.append(
                (kind, bits, pq_mse, pq_rmse, tensor_mse, tensor_rmse, channel_mse, channel_rmse)
            )
            ctx.record(f"pq_mse_{kind}_{bits}b", pq_mse, tolerance_pct=15.0)
            ctx.record(f"uniform_tensor_mse_{kind}_{bits}b", tensor_mse, tolerance_pct=15.0)
            ctx.record(f"uniform_channel_mse_{kind}_{bits}b", channel_mse, tolerance_pct=15.0)
            ctx.record(f"pq_score_rmse_{kind}_{bits}b", pq_rmse, gated=False)
            ctx.record(f"uniform_tensor_score_rmse_{kind}_{bits}b", tensor_rmse, gated=False)

    ctx.emit(
        f"{'tensor':>7s} {'bits':>5s} {'PQ mse':>10s} {'PQ score':>10s} "
        f"{'int/tensor mse':>15s} {'int/tensor score':>17s} {'int/channel mse':>16s} "
        f"{'int/channel score':>18s}"
    )
    for kind, bits, pq_mse, pq_rmse, t_mse, t_rmse, c_mse, c_rmse in rows:
        ctx.emit(
            f"{kind:>7s} {bits:>5d} {pq_mse:>10.5f} {pq_rmse:>10.4f} "
            f"{t_mse:>15.5f} {t_rmse:>17.4f} {c_mse:>16.5f} {c_rmse:>18.4f}"
        )
    ctx.emit(
        "",
        "PQ beats per-tensor integer quantization everywhere and beats even"
        " per-channel integer quantization on the outlier-heavy key cache at"
        " low bit budgets — the 'outlier-immunized' claim.",
    )


def test_ablation_pq_vs_uniform(results_writer):
    result = run_registered("quant.pq_vs_uniform")
    results_writer("ablation_pq_vs_uniform", result.text)
    metrics = {m.name: m.value for m in result.metrics}
    for bits in result.params["bit_budgets"]:
        # PQ beats per-tensor uniform quantization on keys at every budget.
        assert metrics[f"pq_mse_keys_{bits}b"] < metrics[f"uniform_tensor_mse_keys_{bits}b"]
        assert (
            metrics[f"pq_score_rmse_keys_{bits}b"]
            < metrics[f"uniform_tensor_score_rmse_keys_{bits}b"]
        )
    # At the lowest budgets PQ also beats per-channel uniform on keys.
    assert metrics["pq_mse_keys_2b"] < metrics["uniform_channel_mse_keys_2b"]
