#!/usr/bin/env python
"""Prefix-sharing benchmark: shared-prompt prefill throughput and pool memory.

N requests share a long prompt prefix (the "thousands of users behind one
system prompt" workload from the roadmap).  With the serving block pool, the
first request quantizes the aligned prefix into published blocks and every
later request adopts them, so the prefix's prefill compute and pool blocks
are paid once.  The benchmark measures:

* **prefill throughput** (prompt tokens / wall time of the admission step)
  for the shared-prefix workload versus the same shapes with unique
  prefixes, and asserts the sharing speedup is at least 2x;
* **peak pool blocks and modelled KV bytes** right after all prefills, where
  sharing should hold the prefix cost constant in N.

Run with::

    PYTHONPATH=src python benchmarks/bench_prefix_sharing.py [--smoke]

``--smoke`` shrinks every dimension so the benchmark finishes in seconds
(used by CI to keep the file from bit-rotting).
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.models import ModelConfig, build_model
from repro.serving import BatchedMillionEngine, BlockPool, PooledMillionCacheFactory

RESULTS_PATH = Path(__file__).parent / "results" / "prefix_sharing.txt"


def build_engine(model, factory, million_config, args, n_requests):
    per_request_blocks = (
        (args.prefix_tokens + args.suffix_tokens + args.max_new_tokens)
        // args.block_tokens
        + 2
    )
    num_blocks = n_requests * per_request_blocks * model.config.n_layers + 8
    pool = BlockPool.for_model(
        model.config, million_config, num_blocks=num_blocks, block_tokens=args.block_tokens
    )
    pooled = PooledMillionCacheFactory.from_factory(factory, pool)
    return BatchedMillionEngine(model, pooled, max_batch_size=n_requests)


def run_workload(model, factory, million_config, args, prompts):
    """Serve ``prompts`` on a fresh pool; returns timing and peak stats."""
    engine = build_engine(model, factory, million_config, args, len(prompts))
    for prompt in prompts:
        engine.add_request(prompt, max_new_tokens=args.max_new_tokens)
    start = time.perf_counter()
    engine.step()  # admits + prefills every request (batch == len(prompts))
    prefill_seconds = time.perf_counter() - start
    peak = engine.stats()
    engine.run()
    total_prompt_tokens = sum(p.size for p in prompts)
    return {
        "prefill_seconds": prefill_seconds,
        "prefill_tokens_per_s": total_prompt_tokens / prefill_seconds,
        "computed": peak["prefill_tokens_computed"],
        "reused": peak["prefill_tokens_reused"],
        "peak_used_blocks": peak["pool"]["used_blocks"],
        "peak_kv_bytes": peak["active_cache_memory_bytes"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--prefix-tokens", type=int, default=1024)
    parser.add_argument("--suffix-tokens", type=int, default=24)
    parser.add_argument("--max-new-tokens", type=int, default=8)
    parser.add_argument("--block-tokens", type=int, default=32)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke testing"
    )
    args = parser.parse_args()
    if args.smoke:
        args.requests = 4
        args.prefix_tokens = 256
        args.suffix_tokens = 8
        args.max_new_tokens = 2
        args.block_tokens = 16

    config = ModelConfig(
        name="bench-prefix-sharing",
        vocab_size=256,
        d_model=64,
        n_layers=2,
        n_heads=2,
        max_seq_len=args.prefix_tokens + args.suffix_tokens + args.max_new_tokens + 64,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )
    model = build_model(config, seed=0)
    vocab = config.vocab_size
    calibration = load_corpus("wikitext2-syn", "train", 1024, seed=1) % vocab
    million_config = MillionConfig.for_equivalent_bits(
        config.head_dim, bits=4, kmeans_iters=4, calibration_samples=1024
    )
    print("calibrating MILLION codebooks ...")
    factory = calibrate_million(model, calibration, million_config)

    prefix = load_corpus("wikitext2-syn", "test", args.prefix_tokens, seed=2) % vocab
    suffixes = [
        load_corpus("wikitext2-syn", "test", args.suffix_tokens, seed=10 + i) % vocab
        for i in range(args.requests)
    ]
    shared_prompts = [np.concatenate([prefix, suffix]) for suffix in suffixes]
    unique_prompts = [
        np.concatenate(
            [
                load_corpus("wikitext2-syn", "test", args.prefix_tokens, seed=100 + i)
                % vocab,
                suffix,
            ]
        )
        for i, suffix in enumerate(suffixes)
    ]

    print(
        f"serving {args.requests} requests, prefix={args.prefix_tokens} "
        f"suffix={args.suffix_tokens} block={args.block_tokens} ..."
    )
    unshared = run_workload(model, factory, million_config, args, unique_prompts)
    shared = run_workload(model, factory, million_config, args, shared_prompts)
    speedup = shared["prefill_tokens_per_s"] / unshared["prefill_tokens_per_s"]
    block_ratio = unshared["peak_used_blocks"] / shared["peak_used_blocks"]
    kv_ratio = unshared["peak_kv_bytes"] / shared["peak_kv_bytes"]

    rows = [
        "workload   prefill_tok/s  computed  reused  peak_blocks  peak_kv_bytes",
        (
            f"unique     {unshared['prefill_tokens_per_s']:12.1f}  "
            f"{unshared['computed']:8d}  {unshared['reused']:6d}  "
            f"{unshared['peak_used_blocks']:11d}  {unshared['peak_kv_bytes']:13.0f}"
        ),
        (
            f"shared     {shared['prefill_tokens_per_s']:12.1f}  "
            f"{shared['computed']:8d}  {shared['reused']:6d}  "
            f"{shared['peak_used_blocks']:11d}  {shared['peak_kv_bytes']:13.0f}"
        ),
        "",
        f"prefill speedup from sharing: {speedup:.2f}x",
        f"peak pool blocks reduced:     {block_ratio:.2f}x",
        f"peak modelled KV reduced:     {kv_ratio:.2f}x",
    ]
    text = "\n".join(rows)
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(text + "\n")
    print(text)

    assert speedup >= 2.0, (
        f"prefix sharing must speed up prefill by >= 2x, got {speedup:.2f}x"
    )
    assert block_ratio > 1.5, (
        f"sharing must reduce peak pool blocks, got {block_ratio:.2f}x"
    )
    print("OK")


if __name__ == "__main__":
    main()
