#!/usr/bin/env python
"""Prefix-sharing benchmark: shared-prompt prefill throughput and pool memory.

N requests share a long prompt prefix (the "thousands of users behind one
system prompt" workload from the roadmap).  With the serving block pool, the
first request quantizes the aligned prefix into published blocks and every
later request adopts them, so the prefix's prefill compute and pool blocks
are paid once.  The benchmark measures:

* **prefill throughput** (prompt tokens / wall time of the admission step)
  for the shared-prefix workload versus the same shapes with unique
  prefixes, and asserts the sharing speedup is at least 2x;
* **peak pool blocks and modelled KV bytes** right after all prefills, where
  sharing should hold the prefix cost constant in N.

Registered as ``serving.prefix_sharing`` in the unified harness.  Run
standalone with::

    PYTHONPATH=src python benchmarks/bench_prefix_sharing.py [--smoke]

or through ``python -m repro.bench run --suite serving``.  ``--smoke``
shrinks every dimension so the benchmark finishes in seconds.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

import numpy as np

from _bench_shared import run_registered
from repro.bench import HIGHER, BenchContext, benchmark_case
from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.models import ModelConfig, build_model
from repro.serving import BatchedMillionEngine, BlockPool, PooledMillionCacheFactory


@dataclass(frozen=True)
class Params:
    requests: int = 8
    prefix_tokens: int = 1024
    suffix_tokens: int = 24
    max_new_tokens: int = 8
    block_tokens: int = 32

    @classmethod
    def smoke(cls) -> "Params":
        return cls(
            requests=4, prefix_tokens=256, suffix_tokens=8, max_new_tokens=2, block_tokens=16
        )


def build_engine(model, factory, million_config, params: Params, n_requests: int):
    per_request_blocks = (
        (params.prefix_tokens + params.suffix_tokens + params.max_new_tokens)
        // params.block_tokens
        + 2
    )
    num_blocks = n_requests * per_request_blocks * model.config.n_layers + 8
    pool = BlockPool.for_model(
        model.config, million_config, num_blocks=num_blocks, block_tokens=params.block_tokens
    )
    pooled = PooledMillionCacheFactory.from_factory(factory, pool)
    return BatchedMillionEngine(model, pooled, max_batch_size=n_requests)


def run_workload(model, factory, million_config, params: Params, prompts):
    """Serve ``prompts`` on a fresh pool; returns timing and peak stats."""
    engine = build_engine(model, factory, million_config, params, len(prompts))
    for prompt in prompts:
        engine.add_request(prompt, max_new_tokens=params.max_new_tokens)
    start = time.perf_counter()
    engine.step()  # admits + prefills every request (batch == len(prompts))
    prefill_seconds = time.perf_counter() - start
    peak = engine.stats()
    engine.run()
    total_prompt_tokens = sum(p.size for p in prompts)
    return {
        "prefill_seconds": prefill_seconds,
        "prefill_tokens_per_s": total_prompt_tokens / prefill_seconds,
        "computed": peak["prefill_tokens_computed"],
        "reused": peak["prefill_tokens_reused"],
        "peak_used_blocks": peak["pool"]["used_blocks"],
        "peak_kv_bytes": peak["active_cache_memory_bytes"],
    }


def measure_prefix_sharing(ctx: BenchContext, params: Params) -> None:
    """Core measurement shared by the registered case and the CLI script."""
    config = ModelConfig(
        name="bench-prefix-sharing",
        vocab_size=256,
        d_model=64,
        n_layers=2,
        n_heads=2,
        max_seq_len=params.prefix_tokens + params.suffix_tokens + params.max_new_tokens + 64,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )
    ctx.set_params(**vars(params))
    model = build_model(config, seed=0)
    vocab = config.vocab_size
    calibration = load_corpus("wikitext2-syn", "train", 1024, seed=1) % vocab
    million_config = MillionConfig.for_equivalent_bits(
        config.head_dim, bits=4, kmeans_iters=4, calibration_samples=1024
    )
    factory = calibrate_million(model, calibration, million_config)

    prefix = load_corpus("wikitext2-syn", "test", params.prefix_tokens, seed=2) % vocab
    suffixes = [
        load_corpus("wikitext2-syn", "test", params.suffix_tokens, seed=10 + i) % vocab
        for i in range(params.requests)
    ]
    shared_prompts = [np.concatenate([prefix, suffix]) for suffix in suffixes]
    unique_prompts = [
        np.concatenate(
            [
                load_corpus("wikitext2-syn", "test", params.prefix_tokens, seed=100 + i)
                % vocab,
                suffix,
            ]
        )
        for i, suffix in enumerate(suffixes)
    ]

    unshared = run_workload(model, factory, million_config, params, unique_prompts)
    shared = run_workload(model, factory, million_config, params, shared_prompts)
    speedup = shared["prefill_tokens_per_s"] / unshared["prefill_tokens_per_s"]
    block_ratio = unshared["peak_used_blocks"] / shared["peak_used_blocks"]
    kv_ratio = unshared["peak_kv_bytes"] / shared["peak_kv_bytes"]

    ctx.record("prefill_speedup_x", speedup, unit="x", direction=HIGHER, tolerance_pct=60.0)
    # Block/token accounting is deterministic (integer block bookkeeping), so
    # it gates tightly — a prefix-sharing regression shows up here first.
    ctx.record("peak_block_ratio_x", block_ratio, unit="x", direction=HIGHER,
               tolerance_pct=10.0)
    ctx.record("peak_kv_ratio_x", kv_ratio, unit="x", direction=HIGHER, tolerance_pct=10.0)
    ctx.record("prefix_tokens_reused", shared["reused"], unit="tokens", direction=HIGHER,
               tolerance_pct=5.0)
    ctx.record("shared_prefill_tokens_per_s", shared["prefill_tokens_per_s"],
               unit="tok/s", direction=HIGHER, gated=False)
    ctx.record("unique_prefill_tokens_per_s", unshared["prefill_tokens_per_s"],
               unit="tok/s", direction=HIGHER, gated=False)

    ctx.emit(
        "workload   prefill_tok/s  computed  reused  peak_blocks  peak_kv_bytes",
        (
            f"unique     {unshared['prefill_tokens_per_s']:12.1f}  "
            f"{unshared['computed']:8d}  {unshared['reused']:6d}  "
            f"{unshared['peak_used_blocks']:11d}  {unshared['peak_kv_bytes']:13.0f}"
        ),
        (
            f"shared     {shared['prefill_tokens_per_s']:12.1f}  "
            f"{shared['computed']:8d}  {shared['reused']:6d}  "
            f"{shared['peak_used_blocks']:11d}  {shared['peak_kv_bytes']:13.0f}"
        ),
        "",
        f"prefill speedup from sharing: {speedup:.2f}x",
        f"peak pool blocks reduced:     {block_ratio:.2f}x",
        f"peak modelled KV reduced:     {kv_ratio:.2f}x",
    )


@benchmark_case("serving.prefix_sharing", suite="serving", budget_s=300.0, smoke_budget_s=60.0)
def bench_prefix_sharing(ctx: BenchContext) -> None:
    measure_prefix_sharing(ctx, Params.smoke() if ctx.smoke else Params())


def _assert_claims(metrics: dict[str, float]) -> None:
    speedup = metrics["prefill_speedup_x"]
    block_ratio = metrics["peak_block_ratio_x"]
    assert speedup >= 2.0, f"prefix sharing must speed up prefill by >= 2x, got {speedup:.2f}x"
    assert block_ratio > 1.5, f"sharing must reduce peak pool blocks, got {block_ratio:.2f}x"


def test_prefix_sharing(results_writer):
    result = run_registered("serving.prefix_sharing")
    results_writer("prefix_sharing", result.text)
    _assert_claims({m.name: m.value for m in result.metrics})


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--prefix-tokens", type=int, default=None)
    parser.add_argument("--suffix-tokens", type=int, default=None)
    parser.add_argument("--max-new-tokens", type=int, default=None)
    parser.add_argument("--block-tokens", type=int, default=None)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes for CI smoke testing"
    )
    args = parser.parse_args()
    params = Params.smoke() if args.smoke else Params()
    overrides = {
        field: getattr(args, field)
        for field in vars(params)
        if getattr(args, field) is not None
    }
    params = Params(**{**vars(params), **overrides})

    print("calibrating MILLION codebooks ...")
    ctx = BenchContext(smoke=args.smoke)
    measure_prefix_sharing(ctx, params)
    print(ctx.text)
    _assert_claims({m.name: m.value for m in ctx.metrics})
    print("OK")


if __name__ == "__main__":
    main()
