"""Shared fixtures and reporting helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures.  The rows
are printed to stdout (run pytest with ``-s`` to see them live) and written to
``benchmarks/results/<experiment>.txt`` so they can be inspected after a run
and copied into EXPERIMENTS.md.

Scale knobs
-----------
The default configuration finishes the whole suite in a few minutes on a
laptop CPU.  Set ``REPRO_FULL=1`` to train the accuracy model longer, use more
evaluation tokens and more task examples (closer to the paper's protocol, at
the cost of a much longer run).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.data import load_corpus
from repro.eval import build_scheme_factories
from repro.models.config import ModelConfig
from repro.models.weights import OutlierSpec
from repro.training import cached_trained_model

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = Path(__file__).parent / "_cache"

FULL_MODE = os.environ.get("REPRO_FULL", "0") not in ("", "0", "false", "False")

# Schemes evaluated by the accuracy experiments (Table II / III / Fig. 6).
ACCURACY_SCHEMES = [
    "baseline",
    "kvquant-3b",
    "kvquant-3b-1pct",
    "kvquant-4b",
    "kvquant-4b-1pct",
    "million-3b",
    "million-4b",
]


def scale(fast: int, full: int) -> int:
    """Pick a size parameter depending on REPRO_FULL."""
    return full if FULL_MODE else fast


@pytest.fixture(scope="session")
def results_writer():
    """Callable that records one experiment's textual report."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def write(experiment_id: str, text: str) -> None:
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {experiment_id} =====")
        print(text)

    return write


@pytest.fixture(scope="session")
def accuracy_model_config() -> ModelConfig:
    """Configuration of the trained tiny model used by accuracy experiments."""
    return ModelConfig(
        name="bench-accuracy-lm-v2",
        vocab_size=512,
        d_model=128,
        n_layers=2,
        n_heads=4,
        max_seq_len=4096,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )


@pytest.fixture(scope="session")
def accuracy_model(accuracy_model_config):
    """Tiny LM trained on the synthetic corpus (cached across benchmark runs).

    The key-channel / value-element outlier structure of real LLM caches is
    injected at initialisation (see DESIGN.md) and survives the short
    training run; training windows of 256 tokens with a 50 % induction
    fraction teach the model to use long-range context, which is what makes
    KV-cache quantization error observable in the first place.
    """
    steps = scale(fast=400, full=1000)
    model, _ = cached_trained_model(
        accuracy_model_config,
        cache_dir=CACHE_DIR,
        corpus_name=("wikitext2-syn", "ptb-syn"),
        steps=steps,
        seed=0,
        batch_size=8,
        seq_len=256,
        induction_fraction=0.4,
        task_episode_fraction=0.25,
        outlier_spec=OutlierSpec(
            key_channel_fraction=0.06,
            key_channel_scale=8.0,
            value_element_fraction=0.01,
            value_element_scale=10.0,
        ),
        log_every=0,
    )
    return model


@pytest.fixture(scope="session")
def calibration_tokens(accuracy_model_config) -> np.ndarray:
    n_tokens = scale(fast=1024, full=4096)
    return load_corpus("wikitext2-syn", "train", n_tokens) % accuracy_model_config.vocab_size


@pytest.fixture(scope="session")
def evaluation_tokens(accuracy_model_config) -> dict[str, np.ndarray]:
    """Test streams for the two PPL corpora (Wikitext-2 / PTB analogues)."""
    n_tokens = scale(fast=1024, full=4096)
    return {
        "wikitext2-syn": load_corpus("wikitext2-syn", "test", n_tokens)
        % accuracy_model_config.vocab_size,
        "ptb-syn": load_corpus("ptb-syn", "test", n_tokens) % accuracy_model_config.vocab_size,
    }


@pytest.fixture(scope="session")
def accuracy_factories(accuracy_model, calibration_tokens):
    """Calibrated cache factories for every accuracy scheme (shared by benches)."""
    return build_scheme_factories(
        ACCURACY_SCHEMES,
        accuracy_model,
        calibration_tokens,
        seed=0,
        kmeans_iters=scale(fast=8, full=15),
        calibration_samples=scale(fast=2048, full=8192),
    )
