"""FIG6 — LongBench scores with a 4-bit MILLION cache (paper Fig. 6).

Runs the 16-task synthetic LongBench substitute on the trained tiny model
under the fp16 cache and under MILLION-4b with the residual (recent window)
size set to 0 — the paper's stress setting where every past token is
quantized.  The paper's finding is that the average score drop is ≈ 1 point
(llama-2-7b: -0.95, longchat-7b: -0.93, yarn-llama-2-7b: +0.45), i.e. the
quantized cache is "nearly lossless" per task.

The benchmark reports the per-task scores, the per-task loss and the average
loss, and asserts the reproduction's form of the claim: the MILLION-4b
average score stays within a few points of the fp16 average, and no task
collapses from a solved state to an unsolved one.
"""

from __future__ import annotations

import numpy as np

from repro.eval import average_scores, evaluate_longbench, longbench_tasks, relative_loss_percent

PAPER_REFERENCE = (
    "paper: average score drop of 0.95 (llama-2-7b), 0.93 (longchat-7b) and "
    "-0.45 (yarn-llama-2-7b, i.e. a small gain) with 4-bit MILLION, residual size 0."
)

CONTEXT_LENGTH = 640
N_EXAMPLES = 2


def test_fig6_longbench(benchmark, results_writer, accuracy_model, accuracy_factories):
    factories = {
        "fp16": accuracy_factories["baseline"],
        "million-4b": accuracy_factories["million-4b"],
    }
    tasks = longbench_tasks(context_length=CONTEXT_LENGTH)

    def run():
        return evaluate_longbench(
            accuracy_model, factories, tasks=tasks, n_examples=N_EXAMPLES, seed=0
        )

    results = benchmark.pedantic(run, iterations=1, rounds=1)

    by_task: dict[str, dict[str, float]] = {}
    for result in results:
        by_task.setdefault(result.task, {})[result.scheme] = result.score
    lines = [f"{'task':>22s} {'category':>15s} {'fp16':>8s} {'million-4b':>11s} {'loss':>8s}"]
    for task_name, generator in tasks.items():
        fp16 = by_task[task_name]["fp16"]
        million = by_task[task_name]["million-4b"]
        lines.append(
            f"{task_name:>22s} {generator.category:>15s} {fp16:>8.1f} {million:>11.1f} "
            f"{fp16 - million:>8.1f}"
        )
    averages = average_scores(results)
    average_loss = averages["fp16"] - averages["million-4b"]
    lines.append("")
    lines.append(
        f"average: fp16 {averages['fp16']:.2f}  million-4b {averages['million-4b']:.2f}  "
        f"loss {average_loss:.2f} points "
        f"({relative_loss_percent(averages['fp16'], averages['million-4b']):.1f}%)"
    )
    lines.append(PAPER_REFERENCE)
    results_writer("fig6_longbench", "\n".join(lines))

    # Nearly lossless on average: within 5 points of the fp16 average.
    assert abs(average_loss) < 5.0
    # No task collapses from clearly-solved (>50) to clearly-unsolved (<20).
    for task_name, scores in by_task.items():
        if scores["fp16"] > 50.0:
            assert scores["million-4b"] > 20.0, f"{task_name} collapsed under quantization"
