"""Serving-path benchmarks: flat decode-step storage cost and batched throughput.

Two claims introduced by the contiguous-storage refactor and the serving
layer are measured here:

1. **Decode-step storage cost is flat in context length.**  The seed
   implementation re-concatenated every stored code block and every pending
   full-precision block on each step, so the storage overhead of one decode
   step grew linearly with context (O(T²) traffic across a generation).  With
   ``CodeStore``/``PendingBuffer`` the append is amortized O(1) and reads are
   zero-copy views, so the per-step storage cost must not grow with how many
   tokens are already stored.  (The ADC *compute* term is intrinsically O(T)
   per step — that is the attention math itself, reported separately.)

2. **Continuous batching serves many sequences at sequential-loop cost.**
   ``BatchedMillionEngine`` swaps per-request contexts through one model; the
   benchmark verifies the swap overhead is small (aggregate tokens/s within a
   modest factor of the sequential loop at every batch size) and that larger
   batches keep aggregate throughput while interleaving progress across
   requests.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py -s``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import MillionConfig, MillionEngine, ProductQuantizer, calibrate_million
from repro.core.million_cache import MillionKVCacheLayer
from repro.data import load_corpus
from repro.models import ModelConfig, build_model
from repro.serving import BatchedMillionEngine


def _time_per_call(fn, repeats: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        fn()
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


@pytest.fixture(scope="module")
def storage_setup():
    rng = np.random.default_rng(0)
    head_dim = 64
    vectors = rng.normal(size=(4096, head_dim)).astype(np.float32)
    pq = ProductQuantizer.fit(vectors, m_subspaces=32, nbits=8, kmeans_iters=5, seed=0)
    config = ModelConfig(
        vocab_size=256, d_model=256, n_layers=1, n_heads=4, n_kv_heads=2, max_seq_len=65536
    )
    return {"pq": pq, "config": config, "rng": rng, "head_dim": head_dim}


def _filled_cache(storage_setup, n_tokens: int) -> MillionKVCacheLayer:
    pq, config = storage_setup["pq"], storage_setup["config"]
    million = MillionConfig(m_subspaces=32, nbits=8, recent_window=32)
    cache = MillionKVCacheLayer(config, pq, pq, million)
    rng = np.random.default_rng(1)
    block = 512
    for _ in range(n_tokens // block):
        keys = rng.normal(size=(block, 2, 64)).astype(np.float32)
        cache.append(keys, keys)
    return cache


def test_decode_step_storage_cost_flat_in_context(storage_setup, results_writer):
    """Append + stored/pending reads per decode step must not grow with context."""
    rng = np.random.default_rng(2)
    context_lengths = [1024, 4096, 16384]
    rows = ["context_tokens  storage_us_per_step"]
    measured = {}
    for n_tokens in context_lengths:
        cache = _filled_cache(storage_setup, n_tokens)
        key = rng.normal(size=(1, 2, 64)).astype(np.float32)

        def storage_step():
            cache.append(key, key)
            cache._stored_key_codes()
            cache._stored_value_codes()

        per_step = _time_per_call(storage_step, repeats=200)
        measured[n_tokens] = per_step
        rows.append(f"{n_tokens:14d}  {per_step * 1e6:19.2f}")
    results_writer("serving_decode_storage_flat", "\n".join(rows))
    # Before the refactor this grew linearly (16x from 1k to 16k context);
    # flat-with-noise means well under the linear slope.
    assert measured[16384] < 4.0 * measured[1024]


def test_decode_attend_total_cost_reported(storage_setup, results_writer):
    """Full attend per step (storage + ADC compute, the intrinsic O(T) term)."""
    context_lengths = [1024, 4096, 16384]
    rng = np.random.default_rng(3)
    queries = rng.normal(size=(1, 4, 64)).astype(np.float32)
    rows = ["context_tokens  attend_ms_per_step"]
    for n_tokens in context_lengths:
        cache = _filled_cache(storage_setup, n_tokens)
        positions = np.asarray([cache.seq_len - 1])
        per_step = _time_per_call(lambda: cache.attend(queries, positions, 0.125), repeats=20)
        rows.append(f"{n_tokens:14d}  {per_step * 1e3:18.3f}")
    results_writer("serving_decode_attend_total", "\n".join(rows))


@pytest.fixture(scope="module")
def serving_setup():
    config = ModelConfig(
        name="serving-bench-lm",
        vocab_size=256,
        d_model=64,
        n_layers=2,
        n_heads=2,
        max_seq_len=2048,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )
    model = build_model(config, seed=0)
    calibration = load_corpus("wikitext2-syn", "train", 512, seed=0) % config.vocab_size
    million = MillionConfig.for_equivalent_bits(
        config.head_dim, bits=4, kmeans_iters=4, calibration_samples=1024
    )
    factory = calibrate_million(model, calibration, million)
    prompts = [
        load_corpus("wikitext2-syn", "test", 64, seed=i) % config.vocab_size for i in range(8)
    ]
    return {"model": model, "factory": factory, "prompts": prompts}


def test_throughput_across_batch_sizes(serving_setup, results_writer):
    """Aggregate decode throughput for 8 requests under varying batch caps."""
    model, factory = serving_setup["model"], serving_setup["factory"]
    prompts = serving_setup["prompts"]
    max_new = 24
    rows = ["batch_size  wall_s  tokens_per_s"]

    sequential = MillionEngine(model, factory)
    start = time.perf_counter()
    expected = [sequential.generate(p, max_new_tokens=max_new) for p in prompts]
    sequential_wall = time.perf_counter() - start
    total_tokens = sum(len(tokens) for tokens in expected)
    rows.append(f"{'seq-loop':>10s}  {sequential_wall:6.2f}  {total_tokens / sequential_wall:12.1f}")

    throughput = {}
    for batch_size in (1, 2, 4, 8):
        engine = BatchedMillionEngine(model, factory, max_batch_size=batch_size)
        start = time.perf_counter()
        results = engine.generate_batch(prompts, max_new_tokens=max_new)
        wall = time.perf_counter() - start
        for want, got in zip(expected, results):
            np.testing.assert_array_equal(want, got)  # token-identical under greedy
        throughput[batch_size] = total_tokens / wall
        rows.append(f"{batch_size:10d}  {wall:6.2f}  {throughput[batch_size]:12.1f}")
    results_writer("serving_throughput_batch", "\n".join(rows))
    # Context swapping must not tax throughput: every batch size stays within
    # a modest factor of the sequential loop.
    sequential_throughput = total_tokens / sequential_wall
    for batch_size, tokens_per_s in throughput.items():
        assert tokens_per_s > 0.6 * sequential_throughput, (
            f"batch={batch_size} throughput collapsed: "
            f"{tokens_per_s:.1f} vs sequential {sequential_throughput:.1f} tok/s"
        )
