"""Serving-path benchmarks: flat decode-step storage cost and batched throughput.

Two claims introduced by the contiguous-storage refactor and the serving
layer are measured here:

1. **Decode-step storage cost is flat in context length.**  The seed
   implementation re-concatenated every stored code block and every pending
   full-precision block on each step, so the storage overhead of one decode
   step grew linearly with context (O(T²) traffic across a generation).  With
   ``CodeStore``/``PendingBuffer`` the append is amortized O(1) and reads are
   zero-copy views, so the per-step storage cost must not grow with how many
   tokens are already stored.  (The ADC *compute* term is intrinsically O(T)
   per step — that is the attention math itself, reported separately.)

2. **Continuous batching serves many sequences at sequential-loop cost.**
   ``BatchedMillionEngine`` swaps per-request contexts through one model; the
   benchmark verifies the swap overhead is small (aggregate tokens/s within a
   modest factor of the sequential loop at every batch size) and that larger
   batches keep aggregate throughput while interleaving progress across
   requests.

Registered as part of the ``serving`` suite; run standalone with
``PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py -s``
or through ``PYTHONPATH=src python -m repro.bench run --suite serving``.
"""

from __future__ import annotations

import time
from functools import lru_cache

import numpy as np

from _bench_shared import run_registered
from repro.bench import HIGHER, BenchContext, benchmark_case
from repro.core import MillionConfig, MillionEngine, ProductQuantizer, calibrate_million
from repro.core.million_cache import MillionKVCacheLayer
from repro.data import load_corpus
from repro.models import ModelConfig, build_model
from repro.serving import BatchedMillionEngine


@lru_cache(maxsize=None)
def storage_setup():
    rng = np.random.default_rng(0)
    head_dim = 64
    vectors = rng.normal(size=(4096, head_dim)).astype(np.float32)
    pq = ProductQuantizer.fit(vectors, m_subspaces=32, nbits=8, kmeans_iters=5, seed=0)
    config = ModelConfig(
        vocab_size=256, d_model=256, n_layers=1, n_heads=4, n_kv_heads=2, max_seq_len=65536
    )
    return {"pq": pq, "config": config, "head_dim": head_dim}


def _filled_cache(n_tokens: int) -> MillionKVCacheLayer:
    setup = storage_setup()
    pq, config = setup["pq"], setup["config"]
    million = MillionConfig(m_subspaces=32, nbits=8, recent_window=32)
    cache = MillionKVCacheLayer(config, pq, pq, million)
    rng = np.random.default_rng(1)
    block = 512
    for _ in range(n_tokens // block):
        keys = rng.normal(size=(block, 2, 64)).astype(np.float32)
        cache.append(keys, keys)
    return cache


def _context_lengths(ctx: BenchContext) -> list[int]:
    return ctx.pick(full=[1024, 4096, 16384], smoke=[1024, 4096])


@benchmark_case(
    "serving.decode_storage_flat", suite="serving", budget_s=120.0, smoke_budget_s=30.0
)
def bench_decode_storage_flat(ctx: BenchContext) -> None:
    """Append + stored/pending reads per decode step must not grow with context."""
    rng = np.random.default_rng(2)
    context_lengths = _context_lengths(ctx)
    repeats = ctx.pick(full=200, smoke=100)
    ctx.set_params(context_lengths=context_lengths, repeats=repeats)
    ctx.emit("context_tokens  storage_us_per_step")
    measured = {}
    for n_tokens in context_lengths:
        cache = _filled_cache(n_tokens)
        key = rng.normal(size=(1, 2, 64)).astype(np.float32)

        def storage_step():
            cache.append(key, key)
            cache._stored_key_codes()
            cache._stored_value_codes()

        per_step = ctx.measure(storage_step, repeats=repeats, warmup=3)
        measured[n_tokens] = per_step
        ctx.record(f"storage_us_per_step@{n_tokens}", per_step * 1e6, unit="us", gated=False)
        ctx.emit(f"{n_tokens:14d}  {per_step * 1e6:19.2f}")
    # Before the refactor this ratio tracked the context growth itself (16x
    # from 1k to 16k); flat-with-noise keeps it near 1 regardless of scale.
    ratio = measured[context_lengths[-1]] / measured[context_lengths[0]]
    span = context_lengths[-1] // context_lengths[0]
    ctx.record("flatness_ratio", ratio, unit="x", tolerance_pct=150.0)
    ctx.emit("", f"storage cost ratio {context_lengths[-1]}/{context_lengths[0]}: "
                 f"{ratio:.2f}x (linear growth would be {span}x)")


@benchmark_case("serving.decode_attend", suite="serving", budget_s=120.0, smoke_budget_s=30.0)
def bench_decode_attend(ctx: BenchContext) -> None:
    """Full attend per step (storage + ADC compute, the intrinsic O(T) term)."""
    context_lengths = _context_lengths(ctx)
    rng = np.random.default_rng(3)
    queries = rng.normal(size=(1, 4, 64)).astype(np.float32)
    repeats = ctx.pick(full=20, smoke=10)
    ctx.set_params(context_lengths=context_lengths, repeats=repeats)
    ctx.emit("context_tokens  attend_ms_per_step")
    for n_tokens in context_lengths:
        cache = _filled_cache(n_tokens)
        positions = np.asarray([cache.seq_len - 1])
        per_step = ctx.measure(
            lambda: cache.attend(queries, positions, 0.125), repeats=repeats, warmup=2
        )
        ctx.record(f"attend_ms_per_step@{n_tokens}", per_step * 1e3, unit="ms", gated=False)
        ctx.emit(f"{n_tokens:14d}  {per_step * 1e3:18.3f}")


@lru_cache(maxsize=None)
def serving_setup(smoke: bool = False):
    config = ModelConfig(
        name="serving-bench-lm",
        vocab_size=256,
        d_model=64,
        n_layers=2,
        n_heads=2,
        max_seq_len=2048,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )
    model = build_model(config, seed=0)
    calibration = load_corpus("wikitext2-syn", "train", 512, seed=0) % config.vocab_size
    million = MillionConfig.for_equivalent_bits(
        config.head_dim, bits=4, kmeans_iters=3 if smoke else 4, calibration_samples=1024
    )
    factory = calibrate_million(model, calibration, million)
    n_prompts = 4 if smoke else 8
    prompts = [
        load_corpus("wikitext2-syn", "test", 64, seed=i) % config.vocab_size
        for i in range(n_prompts)
    ]
    return {"model": model, "factory": factory, "prompts": prompts}


@benchmark_case(
    "serving.batched_throughput", suite="serving", budget_s=300.0, smoke_budget_s=90.0
)
def bench_batched_throughput(ctx: BenchContext) -> None:
    """Aggregate decode throughput for N requests under varying batch caps."""
    setup = serving_setup(ctx.smoke)
    model, factory, prompts = setup["model"], setup["factory"], setup["prompts"]
    max_new = ctx.pick(full=24, smoke=8)
    batch_sizes = ctx.pick(full=(1, 2, 4, 8), smoke=(1, 4))
    ctx.set_params(n_prompts=len(prompts), max_new_tokens=max_new, batch_sizes=batch_sizes)
    ctx.emit("batch_size  wall_s  tokens_per_s")

    sequential = MillionEngine(model, factory)
    start = time.perf_counter()
    expected = [sequential.generate(p, max_new_tokens=max_new) for p in prompts]
    sequential_wall = time.perf_counter() - start
    total_tokens = sum(len(tokens) for tokens in expected)
    sequential_throughput = total_tokens / sequential_wall
    ctx.record("sequential_tokens_per_s", sequential_throughput, unit="tok/s",
               direction=HIGHER, gated=False)
    ctx.emit(f"{'seq-loop':>10s}  {sequential_wall:6.2f}  {sequential_throughput:12.1f}")

    for batch_size in batch_sizes:
        engine = BatchedMillionEngine(model, factory, max_batch_size=batch_size)
        start = time.perf_counter()
        results = engine.generate_batch(prompts, max_new_tokens=max_new)
        wall = time.perf_counter() - start
        for want, got in zip(expected, results):
            np.testing.assert_array_equal(want, got)  # token-identical under greedy
        tokens_per_s = total_tokens / wall
        ctx.record(f"batch{batch_size}_tokens_per_s", tokens_per_s, unit="tok/s",
                   direction=HIGHER, gated=False)
        # Relative throughput is far more CI-stable than absolute tok/s, so the
        # gate watches the swap-overhead ratio instead of the raw rate.
        ctx.record(f"batch{batch_size}_rel_throughput", tokens_per_s / sequential_throughput,
                   unit="x", direction=HIGHER, tolerance_pct=40.0)
        ctx.emit(f"{batch_size:10d}  {wall:6.2f}  {tokens_per_s:12.1f}")


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_decode_step_storage_cost_flat_in_context(results_writer):
    result = run_registered("serving.decode_storage_flat")
    results_writer("serving_decode_storage_flat", result.text)
    # Flat-with-noise means well under the 16x linear slope from 1k to 16k.
    assert result.metric("flatness_ratio").value < 4.0


def test_decode_attend_total_cost_reported(results_writer):
    result = run_registered("serving.decode_attend")
    results_writer("serving_decode_attend_total", result.text)
    assert result.metric("attend_ms_per_step@16384").value > 0


def test_throughput_across_batch_sizes(results_writer):
    result = run_registered("serving.batched_throughput")
    results_writer("serving_throughput_batch", result.text)
    # Context swapping must not tax throughput: every batch size stays within
    # a modest factor of the sequential loop.
    for batch_size in result.params["batch_sizes"]:
        rel = result.metric(f"batch{batch_size}_rel_throughput").value
        assert rel > 0.6, f"batch={batch_size} throughput collapsed to {rel:.2f}x sequential"
