"""FIG3 — channel-wise standard deviation of the KV cache (paper Fig. 3).

Reports the per-channel standard deviation of keys and values for the first
and last layer of two models.  The paper's observation is that key standard
deviations spike in a few channels ("standard deviation outliers") while value
standard deviations stay flat — which is why per-channel uniform quantization
of keys needs wide ranges and non-uniform/PQ quantization helps.
"""

from __future__ import annotations

import numpy as np

from repro.data import load_corpus
from repro.eval import collect_kv_statistics
from repro.models import load_model

MODELS = ("llama-2-7b-tiny", "mpt-7b-tiny")


def _collect(model_name: str):
    model = load_model(model_name, seed=0)
    tokens = load_corpus("wikitext2-syn", "validation", 384) % model.config.vocab_size
    layers = [0, model.config.n_layers - 1]
    return collect_kv_statistics(model, tokens, chunk_size=128, layers=layers)


def test_fig3_std_distribution(benchmark, results_writer):
    all_stats = benchmark.pedantic(
        lambda: {name: _collect(name) for name in MODELS}, iterations=1, rounds=1
    )
    lines = [
        f"{'model':>18s} {'layer':>6s} {'kind':>6s} {'std median':>11s} {'std peak':>9s} "
        f"{'std outlier ratio':>18s}"
    ]
    key_ratios, value_ratios = [], []
    for name, stats in all_stats.items():
        for stat in stats:
            ratio = stat.std_outlier_ratio()
            (key_ratios if stat.kind == "key" else value_ratios).append(ratio)
            lines.append(
                f"{name:>18s} {stat.layer:>6d} {stat.kind:>6s} "
                f"{np.median(stat.std):>11.3f} {stat.std.max():>9.3f} {ratio:>18.2f}"
            )
    lines.append(
        f"mean key std-outlier ratio {np.mean(key_ratios):.2f}x vs "
        f"value {np.mean(value_ratios):.2f}x"
    )
    # Paper claim: key std outliers are pronounced, value std stays flat.
    assert np.mean(key_ratios) > 1.5 * np.mean(value_ratios)
    results_writer("fig3_std_distribution", "\n".join(lines))
