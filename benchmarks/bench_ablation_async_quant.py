"""ABL2 — asynchronous quantization on/off (paper Fig. 5 design choice).

MILLION assigns KV quantization to a low-priority CUDA stream so it overlaps
with the memory-bound decode work.  This ablation compares modelled TPOT with
the quantization stream enabled versus forced onto the main stream, across
prefill lengths, and reports how much quantization time stays hidden.

Registered as ``quant.async_quant``; the analytic model is deterministic, so
its metrics gate tightly.
"""

from __future__ import annotations

from _bench_shared import run_registered
from repro.bench import BenchContext, benchmark_case
from repro.perf import (
    LLAMA_2_7B,
    A40,
    MILLION_4BIT,
    MILLION_4BIT_SYNC,
    decode_step_ops,
    estimate_tpot,
    schedule_step,
    time_decode_ops,
)

PREFILL_LENGTHS = [1024, 4096, 16384, 32768, 65536]


@benchmark_case("quant.async_quant", suite="quant", budget_s=60.0, smoke_budget_s=20.0)
def bench_async_quant(ctx: BenchContext) -> None:
    ctx.set_params(prefill_lengths=PREFILL_LENGTHS, device="A40")
    rows = []
    for prefill in PREFILL_LENGTHS:
        async_result = estimate_tpot(LLAMA_2_7B, MILLION_4BIT, prefill, device=A40)
        sync_result = estimate_tpot(LLAMA_2_7B, MILLION_4BIT_SYNC, prefill, device=A40)
        timings = time_decode_ops(
            decode_step_ops(LLAMA_2_7B, MILLION_4BIT, prefill), MILLION_4BIT, LLAMA_2_7B, A40
        )
        step = schedule_step(timings, async_enabled=True)
        rows.append(
            (
                prefill,
                async_result.tpot_ms,
                sync_result.tpot_ms,
                step.quant_time_s * 1e3,
                step.hidden_quant_time_s * 1e3,
            )
        )
        label = f"{prefill // 1024}k"
        ctx.record(f"async_tpot_ms@{label}", async_result.tpot_ms, unit="ms",
                   tolerance_pct=2.0)
        ctx.record(f"sync_tpot_ms@{label}", sync_result.tpot_ms, unit="ms",
                   tolerance_pct=2.0)
        ctx.record(f"hidden_quant_frac@{label}",
                   step.hidden_quant_time_s / step.quant_time_s if step.quant_time_s else 1.0,
                   unit="frac", direction="higher_is_better", tolerance_pct=2.0)

    ctx.emit(
        f"{'prefill':>9s} {'async TPOT':>11s} {'sync TPOT':>10s} {'quant ms':>9s} "
        f"{'hidden ms':>10s} {'saving %':>9s}"
    )
    for prefill, async_ms, sync_ms, quant_ms, hidden_ms in rows:
        saving = 100.0 * (sync_ms - async_ms) / sync_ms
        ctx.emit(
            f"{prefill:>9d} {async_ms:>11.2f} {sync_ms:>10.2f} {quant_ms:>9.3f} "
            f"{hidden_ms:>10.3f} {saving:>9.2f}"
        )
    ctx.emit(
        "",
        "The async stream hides essentially all quantization work behind the"
        " memory-bound decode step, so enabling it never hurts and its relative"
        " benefit is largest at short contexts where the step is cheapest.",
    )


def test_ablation_async_quantization(results_writer):
    result = run_registered("quant.async_quant")
    results_writer("ablation_async_quant", result.text)
    metrics = {m.name: m.value for m in result.metrics}
    for prefill in PREFILL_LENGTHS:
        label = f"{prefill // 1024}k"
        assert metrics[f"async_tpot_ms@{label}"] <= metrics[f"sync_tpot_ms@{label}"]
        # Decode is memory-bound, so it hides (nearly) all quantization work.
        assert metrics[f"hidden_quant_frac@{label}"] >= 0.9
