"""Fused cross-request batched decode: tokens/sec vs batch size.

The serving engine's fused decode path runs **one** stacked forward per
engine step for the whole running batch (one paired-GEMM projection pass per
layer, one LUT build for all B*H query heads, one segment-ADC gather over a
packed code buffer, one batched flush encode) instead of one full Python
model traversal per sequence.  Token streams are bit-identical to the
sequential loop — asserted here on the measured workload — so the only
difference is wall time.

This case records aggregate decode tokens/sec for fused vs sequential at
B in {1, 4, 16} and gates the B=16 speedup ratio: the fused path must stay
at least 2x faster than the per-sequence reference loop on the smoke model
(ratios are far more CI-stable than absolute tok/s).

Run standalone with
``PYTHONPATH=src python -m pytest benchmarks/bench_serving_batched_decode.py -s``
or through ``PYTHONPATH=src python -m repro.bench run --suite serving``.
"""

from __future__ import annotations

import time
from functools import lru_cache

import numpy as np

from _bench_shared import run_registered
from repro.bench import HIGHER, BenchContext, benchmark_case
from repro.core import MillionConfig, calibrate_million
from repro.data import load_corpus
from repro.models import ModelConfig, build_model
from repro.serving import BatchedMillionEngine

BATCH_SIZES = (1, 4, 16)
#: Acceptance bar for the fused path at the largest batch size.
MIN_SPEEDUP_B16 = 2.0


@lru_cache(maxsize=None)
def decode_setup(smoke: bool = False):
    config = ModelConfig(
        name="batched-decode-bench-lm",
        vocab_size=256,
        d_model=128,
        n_layers=2,
        n_heads=4,
        max_seq_len=4096,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    )
    model = build_model(config, seed=0)
    calibration = load_corpus("wikitext2-syn", "train", 768, seed=0) % config.vocab_size
    million = MillionConfig.for_equivalent_bits(
        config.head_dim, bits=4, kmeans_iters=3 if smoke else 5,
        calibration_samples=1024,
    )
    factory = calibrate_million(model, calibration, million)
    rng = np.random.default_rng(12)
    prompts = [
        load_corpus("wikitext2-syn", "test", int(rng.integers(48, 128)), seed=i)
        % config.vocab_size
        for i in range(max(BATCH_SIZES))
    ]
    return {"model": model, "factory": factory, "prompts": prompts}


def _decode_tokens_per_s(
    model, factory, prompts, fused: bool, warmup_steps: int, steps: int
) -> tuple[float, list[np.ndarray]]:
    """Steady-state decode throughput plus the tokens decoded while timing."""
    engine = BatchedMillionEngine(
        model, factory, max_batch_size=len(prompts), fused_decode=fused
    )
    for prompt in prompts:
        # A budget no request exhausts: every timed step decodes the full batch.
        engine.add_request(prompt, max_new_tokens=10_000)
    for _ in range(warmup_steps):
        engine.step()
    streams: list[list[int]] = [[] for _ in prompts]
    start = time.perf_counter()
    decoded = 0
    for _ in range(steps):
        for output in engine.step():
            index = int(output.request_id.split("-")[-1]) % len(prompts)
            streams[index].append(output.token)
            decoded += 1
    wall = time.perf_counter() - start
    return decoded / wall, [np.asarray(s) for s in streams]


@benchmark_case(
    "serving.batched_decode_scaling", suite="serving", budget_s=300.0,
    smoke_budget_s=90.0,
)
def bench_batched_decode_scaling(ctx: BenchContext) -> None:
    """Fused one-forward-per-step decode vs the per-sequence reference loop."""
    setup = decode_setup(ctx.smoke)
    model, factory = setup["model"], setup["factory"]
    steps = ctx.pick(full=48, smoke=16)
    warmup = ctx.pick(full=12, smoke=6)
    ctx.set_params(
        batch_sizes=list(BATCH_SIZES), steps=steps, warmup_steps=warmup,
        min_speedup_b16=MIN_SPEEDUP_B16,
    )
    ctx.emit("batch  sequential_tok_s  fused_tok_s  speedup")
    speedups = {}
    for batch in BATCH_SIZES:
        prompts = setup["prompts"][:batch]
        seq_rate, seq_streams = _decode_tokens_per_s(
            model, factory, prompts, fused=False, warmup_steps=warmup, steps=steps
        )
        fused_rate, fused_streams = _decode_tokens_per_s(
            model, factory, prompts, fused=True, warmup_steps=warmup, steps=steps
        )
        # The speedup claim only counts if the outputs are the same outputs.
        for want, got in zip(seq_streams, fused_streams):
            np.testing.assert_array_equal(want, got)
        speedup = fused_rate / seq_rate
        speedups[batch] = speedup
        ctx.record(f"sequential_b{batch}_tokens_per_s", seq_rate, unit="tok/s",
                   direction=HIGHER, gated=False)
        ctx.record(f"fused_b{batch}_tokens_per_s", fused_rate, unit="tok/s",
                   direction=HIGHER, gated=False)
        gated = batch == max(BATCH_SIZES)
        ctx.record(
            f"fused_speedup_b{batch}", speedup, unit="x", direction=HIGHER,
            tolerance_pct=35.0, gated=gated,
        )
        ctx.emit(f"{batch:5d}  {seq_rate:16.1f}  {fused_rate:11.1f}  {speedup:6.2f}x")
    ctx.emit(
        "",
        f"B={max(BATCH_SIZES)} fused/sequential speedup "
        f"{speedups[max(BATCH_SIZES)]:.2f}x (bar: >= {MIN_SPEEDUP_B16:.1f}x)",
    )


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------


def test_fused_decode_scaling_meets_speedup_bar(results_writer):
    result = run_registered("serving.batched_decode_scaling")
    results_writer("serving_batched_decode_scaling", result.text)
    top = max(BATCH_SIZES)
    speedup = result.metric(f"fused_speedup_b{top}").value
    assert speedup >= MIN_SPEEDUP_B16, (
        f"fused decode at B={top} is only {speedup:.2f}x the sequential loop "
        f"(bar: {MIN_SPEEDUP_B16:.1f}x)"
    )
    # Fused decode must never lose throughput at small batches either.
    assert result.metric("fused_speedup_b1").value > 0.7
