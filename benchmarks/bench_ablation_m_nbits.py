"""ABL1 — (M, nbits) sweep (paper footnote 2 design choice).

The paper scanned combinations of the PQ subspace count ``M`` and the code
width ``nbits`` and picked (64, 8) for 4-bit and (32, 12) for 3-bit budgets at
head_dim 128.  This ablation sweeps the same trade-off on real (sampled) key
and value vectors of the tiny model: at a fixed bit budget, more subspaces
with smaller codebooks versus fewer subspaces with larger codebooks, reporting
reconstruction MSE and attention-score error.

Registered as ``quant.m_nbits_sweep``; the sweep is seeded and deterministic,
so the error metrics gate with a modest tolerance for cross-platform float
drift.
"""

from __future__ import annotations

import numpy as np

from _bench_shared import run_registered, sampled_kv
from repro.bench import BenchContext, benchmark_case
from repro.core import ProductQuantizer

# (label, M, nbits) grouped by equivalent bit budget for head_dim = 64.
SWEEP = [
    ("4-bit", 32, 8),
    ("4-bit", 16, 16),   # too large a codebook to train well from small samples
    ("4-bit", 64, 4),
    ("3-bit", 32, 6),
    ("3-bit", 16, 12),
    ("2-bit", 32, 4),
    ("2-bit", 16, 8),
]
# One point per budget so the monotonicity claims stay checkable in smoke mode.
SMOKE_SWEEP = [
    ("4-bit", 32, 8),
    ("3-bit", 32, 6),
    ("2-bit", 32, 4),
]


def _evaluate(kv_vectors, m_subspaces: int, nbits: int, kmeans_iters: int) -> dict[str, float]:
    keys = kv_vectors["keys"]
    queries = kv_vectors["queries"]
    head_dim = keys.shape[1]
    n_centroids = 2**nbits
    # Train on a split disjoint from the evaluation vectors.
    train, test = keys[: keys.shape[0] // 2], keys[keys.shape[0] // 2 :][:512]
    pq = ProductQuantizer.fit(
        train, m_subspaces, nbits, kmeans_iters=kmeans_iters, seed=0,
        max_samples=min(8 * n_centroids, 4096),
    )
    codes = pq.encode(test)
    reconstruction_mse = float(np.mean((pq.decode(codes) - test) ** 2))
    exact_scores = queries @ test.T
    adc_scores = pq.adc_scores(pq.build_score_luts(queries), codes)
    score_rmse = float(np.sqrt(np.mean((adc_scores - exact_scores) ** 2)))
    return {
        "bits_per_value": m_subspaces * nbits / head_dim,
        "reconstruction_mse": reconstruction_mse,
        "score_rmse": score_rmse,
        "codebook_kib": pq.codebook_memory_bytes() / 1024.0,
    }


@benchmark_case("quant.m_nbits_sweep", suite="quant", budget_s=240.0, smoke_budget_s=60.0)
def bench_m_nbits_sweep(ctx: BenchContext) -> None:
    sweep = ctx.pick(full=SWEEP, smoke=SMOKE_SWEEP)
    kmeans_iters = ctx.pick(full=8, smoke=4)
    kv_vectors = sampled_kv(ctx.smoke)
    ctx.set_params(sweep=[list(point) for point in sweep], kmeans_iters=kmeans_iters)
    results = {(m, b): _evaluate(kv_vectors, m, b, kmeans_iters) for _, m, b in sweep}

    ctx.emit(
        f"{'budget':>8s} {'M':>4s} {'nbits':>6s} {'bits/val':>9s} {'recon MSE':>11s} "
        f"{'score RMSE':>11s} {'codebook KiB':>13s}"
    )
    for label, m, b in sweep:
        metrics = results[(m, b)]
        ctx.record(f"recon_mse_m{m}_b{b}", metrics["reconstruction_mse"],
                   tolerance_pct=15.0)
        ctx.record(f"score_rmse_m{m}_b{b}", metrics["score_rmse"], gated=False)
        ctx.emit(
            f"{label:>8s} {m:>4d} {b:>6d} {metrics['bits_per_value']:>9.2f} "
            f"{metrics['reconstruction_mse']:>11.5f} {metrics['score_rmse']:>11.4f} "
            f"{metrics['codebook_kib']:>13.1f}"
        )
    ctx.emit(
        "",
        "Within a bit budget, moderate codebooks (nbits 6-8) beat very large ones"
        " trained from limited calibration data — matching the paper's preference"
        " for (64, 8) at 4 bits.",
    )
    best: dict[str, float] = {}
    for label, m, b in sweep:
        err = results[(m, b)]["reconstruction_mse"]
        best[label] = min(best.get(label, np.inf), err)
    for label, err in best.items():
        ctx.record(f"best_recon_mse_{label}", err, tolerance_pct=15.0)


def test_ablation_m_nbits(results_writer):
    result = run_registered("quant.m_nbits_sweep")
    results_writer("ablation_m_nbits", result.text)
    metrics = {m.name: m.value for m in result.metrics}
    # Higher bit budgets must reconstruct better (comparing the best of each budget).
    assert metrics["best_recon_mse_4-bit"] < metrics["best_recon_mse_3-bit"]
    assert metrics["best_recon_mse_3-bit"] < metrics["best_recon_mse_2-bit"]
    # The oversized 16-bit codebook at 4-bit budget must not beat the (32, 8) preset.
    assert metrics["recon_mse_m32_b8"] <= metrics["recon_mse_m16_b16"] * 1.5
