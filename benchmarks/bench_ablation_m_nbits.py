"""ABL1 — (M, nbits) sweep (paper footnote 2 design choice).

The paper scanned combinations of the PQ subspace count ``M`` and the code
width ``nbits`` and picked (64, 8) for 4-bit and (32, 12) for 3-bit budgets at
head_dim 128.  This ablation sweeps the same trade-off on real (sampled) key
and value vectors of the tiny model: at a fixed bit budget, more subspaces
with smaller codebooks versus fewer subspaces with larger codebooks, reporting
reconstruction MSE and attention-score error.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ProductQuantizer, collect_kv_samples
from repro.data import load_corpus
from repro.models import load_model

# (label, M, nbits) grouped by equivalent bit budget for head_dim = 64.
SWEEP = [
    ("4-bit", 32, 8),
    ("4-bit", 16, 16),   # too large a codebook to train well from small samples
    ("4-bit", 64, 4),
    ("3-bit", 32, 6),
    ("3-bit", 16, 12),
    ("2-bit", 32, 4),
    ("2-bit", 16, 8),
]


@pytest.fixture(scope="module")
def kv_vectors():
    model = load_model("llama-2-7b-tiny", seed=0)
    tokens = load_corpus("wikitext2-syn", "train", 768) % model.config.vocab_size
    collector = collect_kv_samples(model, tokens, chunk_size=128, max_samples_per_layer=4096)
    return {
        "keys": collector.key_vectors(0),
        "values": collector.value_vectors(0),
        "queries": collector.key_vectors(1)[:64],  # arbitrary query stand-ins
    }


def _evaluate(kv_vectors, m_subspaces: int, nbits: int) -> dict[str, float]:
    keys = kv_vectors["keys"]
    queries = kv_vectors["queries"]
    head_dim = keys.shape[1]
    n_centroids = 2**nbits
    # Train on a split disjoint from the evaluation vectors.
    train, test = keys[: keys.shape[0] // 2], keys[keys.shape[0] // 2 :][:512]
    pq = ProductQuantizer.fit(
        train, m_subspaces, nbits, kmeans_iters=8, seed=0, max_samples=min(8 * n_centroids, 4096)
    )
    codes = pq.encode(test)
    reconstruction_mse = float(np.mean((pq.decode(codes) - test) ** 2))
    exact_scores = queries @ test.T
    adc_scores = pq.adc_scores(pq.build_score_luts(queries), codes)
    score_rmse = float(np.sqrt(np.mean((adc_scores - exact_scores) ** 2)))
    return {
        "bits_per_value": m_subspaces * nbits / head_dim,
        "reconstruction_mse": reconstruction_mse,
        "score_rmse": score_rmse,
        "codebook_kib": pq.codebook_memory_bytes() / 1024.0,
    }


def test_ablation_m_nbits(benchmark, results_writer, kv_vectors):
    results = benchmark.pedantic(
        lambda: {(m, b): _evaluate(kv_vectors, m, b) for _, m, b in SWEEP},
        iterations=1,
        rounds=1,
    )
    lines = [
        f"{'budget':>8s} {'M':>4s} {'nbits':>6s} {'bits/val':>9s} {'recon MSE':>11s} "
        f"{'score RMSE':>11s} {'codebook KiB':>13s}"
    ]
    for label, m, b in SWEEP:
        metrics = results[(m, b)]
        lines.append(
            f"{label:>8s} {m:>4d} {b:>6d} {metrics['bits_per_value']:>9.2f} "
            f"{metrics['reconstruction_mse']:>11.5f} {metrics['score_rmse']:>11.4f} "
            f"{metrics['codebook_kib']:>13.1f}"
        )
    lines.append("")
    lines.append(
        "Within a bit budget, moderate codebooks (nbits 6-8) beat very large ones"
        " trained from limited calibration data — matching the paper's preference"
        " for (64, 8) at 4 bits."
    )
    results_writer("ablation_m_nbits", "\n".join(lines))

    # Higher bit budgets must reconstruct better (comparing the best of each budget).
    best = {}
    for label, m, b in SWEEP:
        err = results[(m, b)]["reconstruction_mse"]
        best[label] = min(best.get(label, np.inf), err)
    assert best["4-bit"] < best["3-bit"] < best["2-bit"]
    # The oversized 16-bit codebook at 4-bit budget must not beat the (32, 8) preset.
    assert results[(32, 8)]["reconstruction_mse"] <= results[(16, 16)]["reconstruction_mse"] * 1.5
