"""Micro-benchmarks of the MILLION computational kernels (NumPy host versions).

These time the actual library code (encode, LUT build, ADC gather, weighted
decode, full cache attention) rather than the analytic GPU model — useful for
tracking host-side regressions of the reproduction itself.

Registered as the ``kernels`` suite of the unified harness; absolute call
times are informational (CI machines are too noisy to gate on), while the
vectorized-vs-naive ADC speedup ratio is gated against the baseline.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from _bench_shared import run_registered
from repro.bench import HIGHER, BenchContext, benchmark_case
from repro.core import MillionConfig, ProductQuantizer
from repro.core.million_cache import MillionKVCacheLayer
from repro.models.config import ModelConfig


@lru_cache(maxsize=None)
def kernel_setup(smoke: bool = False):
    rng = np.random.default_rng(0)
    head_dim = 64
    n_vectors = 2048 if smoke else 8192
    n_tokens = 512 if smoke else 2048
    vectors = rng.normal(size=(n_vectors, head_dim)).astype(np.float32)
    vectors[:, 5] *= 6.0
    pq = ProductQuantizer.fit(
        vectors, m_subspaces=32, nbits=8, kmeans_iters=3 if smoke else 6, seed=0
    )
    keys = rng.normal(size=(n_tokens, 2, head_dim)).astype(np.float32)
    values = rng.normal(size=(n_tokens, 2, head_dim)).astype(np.float32)
    queries = rng.normal(size=(1, 4, head_dim)).astype(np.float32)
    codes = pq.encode(keys.reshape(-1, head_dim))
    config = ModelConfig(
        vocab_size=512, d_model=256, n_layers=1, n_heads=4, n_kv_heads=2, max_seq_len=8192
    )
    return {
        "pq": pq,
        "vectors": vectors,
        "keys": keys,
        "values": values,
        "queries": queries,
        "codes": codes,
        "config": config,
        "n_tokens": n_tokens,
    }


def _repeats(ctx: BenchContext) -> int:
    return 5 if ctx.smoke else 20


@benchmark_case("kernels.pq_encode", suite="kernels", budget_s=60.0, smoke_budget_s=20.0)
def bench_pq_encode(ctx: BenchContext) -> None:
    setup = kernel_setup(ctx.smoke)
    pq, n = setup["pq"], setup["n_tokens"]
    batch = setup["vectors"][:n]
    ctx.set_params(n_vectors=n, m_subspaces=pq.m_subspaces, nbits=pq.nbits)
    per_call = ctx.measure(lambda: pq.encode(batch), repeats=_repeats(ctx))
    assert pq.encode(batch).shape == (n, pq.m_subspaces)
    ctx.record("encode_us", per_call * 1e6, unit="us", gated=False)
    ctx.emit(f"pq.encode of {n} vectors: {per_call * 1e6:.1f} us/call")


@benchmark_case("kernels.lut_build", suite="kernels", budget_s=60.0, smoke_budget_s=20.0)
def bench_lut_build(ctx: BenchContext) -> None:
    setup = kernel_setup(ctx.smoke)
    pq = setup["pq"]
    queries = setup["queries"].reshape(-1, 64)
    per_call = ctx.measure(lambda: pq.build_score_luts(queries), repeats=_repeats(ctx))
    assert pq.build_score_luts(queries).shape == (4, pq.m_subspaces, 2**pq.nbits)
    ctx.record("lut_build_us", per_call * 1e6, unit="us", gated=False)
    ctx.emit(f"pq.build_score_luts for 4 queries: {per_call * 1e6:.1f} us/call")


@benchmark_case("kernels.adc_scores", suite="kernels", budget_s=90.0, smoke_budget_s=25.0)
def bench_adc_scores(ctx: BenchContext) -> None:
    """Vectorized ADC gather, including the speedup over the naive loop."""
    setup = kernel_setup(ctx.smoke)
    pq, codes = setup["pq"], setup["codes"]
    luts = pq.build_score_luts(setup["queries"].reshape(-1, 64))
    ctx.set_params(n_codes=int(codes.shape[0]))

    def naive_adc():
        # The pre-optimization fancy-indexing loop, kept for speedup comparison.
        scores = np.zeros((luts.shape[0], codes.shape[0]), dtype=np.float32)
        for m in range(pq.m_subspaces):
            scores += luts[:, m, :][:, codes[:, m]]
        return scores

    np.testing.assert_array_equal(naive_adc(), pq.adc_scores(luts, codes))
    fast = ctx.measure(lambda: pq.adc_scores(luts, codes), repeats=_repeats(ctx))
    naive = ctx.measure(naive_adc, repeats=_repeats(ctx))
    ctx.record("adc_us", fast * 1e6, unit="us", gated=False)
    ctx.record("naive_adc_us", naive * 1e6, unit="us", gated=False)
    ctx.record(
        "adc_speedup_vs_naive_x",
        naive / fast,
        unit="x",
        direction=HIGHER,
        tolerance_pct=60.0,
    )
    ctx.emit(
        f"adc_scores over {codes.shape[0]} codes: {fast * 1e6:.1f} us vectorized, "
        f"{naive * 1e6:.1f} us naive ({naive / fast:.2f}x speedup)"
    )


@benchmark_case("kernels.weighted_decode", suite="kernels", budget_s=60.0, smoke_budget_s=20.0)
def bench_weighted_decode(ctx: BenchContext) -> None:
    setup = kernel_setup(ctx.smoke)
    pq, codes = setup["pq"], setup["codes"]
    probs = np.random.default_rng(1).random((4, codes.shape[0])).astype(np.float32)
    per_call = ctx.measure(lambda: pq.weighted_decode(probs, codes), repeats=_repeats(ctx))
    assert pq.weighted_decode(probs, codes).shape == (4, 64)
    ctx.record("weighted_decode_us", per_call * 1e6, unit="us", gated=False)
    ctx.emit(f"pq.weighted_decode over {codes.shape[0]} codes: {per_call * 1e6:.1f} us/call")


@benchmark_case(
    "kernels.cache_decode_attend", suite="kernels", budget_s=90.0, smoke_budget_s=25.0
)
def bench_cache_decode_attend(ctx: BenchContext) -> None:
    setup = kernel_setup(ctx.smoke)
    config, n_tokens = setup["config"], setup["n_tokens"]
    million = MillionConfig(m_subspaces=32, nbits=8, recent_window=32)
    cache = MillionKVCacheLayer(config, setup["pq"], setup["pq"], million)
    keys, values = setup["keys"], setup["values"]
    for start in range(0, n_tokens, 256):
        cache.append(keys[start : start + 256], values[start : start + 256])
    queries = setup["queries"]
    positions = np.asarray([n_tokens - 1])
    ctx.set_params(context_tokens=n_tokens, recent_window=32)
    per_call = ctx.measure(
        lambda: cache.attend(queries, positions, 0.125), repeats=_repeats(ctx)
    )
    assert cache.attend(queries, positions, 0.125).shape == (1, 4, 64)
    ctx.record("decode_attend_us", per_call * 1e6, unit="us", gated=False)
    ctx.emit(
        f"MillionKVCacheLayer.attend at {n_tokens} context tokens: "
        f"{per_call * 1e6:.1f} us/step"
    )


# ---------------------------------------------------------------------------
# pytest entry points (``PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -s``)
# ---------------------------------------------------------------------------


def test_kernel_pq_encode(results_writer):
    result = run_registered("kernels.pq_encode")
    results_writer("kernels_pq_encode", result.text)
    assert result.metric("encode_us").value > 0


def test_kernel_lut_build(results_writer):
    result = run_registered("kernels.lut_build")
    results_writer("kernels_lut_build", result.text)
    assert result.metric("lut_build_us").value > 0


def test_kernel_adc_scores(results_writer):
    result = run_registered("kernels.adc_scores")
    results_writer("kernels_adc_scores", result.text)
    # The vectorized gather must not be slower than the fancy-indexing loop it
    # replaced (PR 1 measured ~2x; CI noise makes the exact factor ungateable
    # here — the gate tracks it against the committed baseline instead).
    assert result.metric("adc_speedup_vs_naive_x").value > 1.0


def test_kernel_weighted_decode(results_writer):
    result = run_registered("kernels.weighted_decode")
    results_writer("kernels_weighted_decode", result.text)
    assert result.metric("weighted_decode_us").value > 0


def test_kernel_million_cache_decode_attention(results_writer):
    result = run_registered("kernels.cache_decode_attend")
    results_writer("kernels_cache_decode_attend", result.text)
    assert result.metric("decode_attend_us").value > 0
