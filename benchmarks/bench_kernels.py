"""Micro-benchmarks of the MILLION computational kernels (NumPy host versions).

These time the actual library code (encode, LUT build, ADC gather, weighted
decode, full cache attention) rather than the analytic GPU model — useful for
tracking host-side regressions of the reproduction itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MillionConfig, ProductQuantizer
from repro.core.million_cache import MillionKVCacheLayer
from repro.models.config import ModelConfig


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(0)
    head_dim = 64
    vectors = rng.normal(size=(8192, head_dim)).astype(np.float32)
    vectors[:, 5] *= 6.0
    pq = ProductQuantizer.fit(vectors, m_subspaces=32, nbits=8, kmeans_iters=6, seed=0)
    keys = rng.normal(size=(2048, 2, head_dim)).astype(np.float32)
    values = rng.normal(size=(2048, 2, head_dim)).astype(np.float32)
    queries = rng.normal(size=(1, 4, head_dim)).astype(np.float32)
    codes = pq.encode(keys.reshape(-1, head_dim))
    config = ModelConfig(
        vocab_size=512, d_model=256, n_layers=1, n_heads=4, n_kv_heads=2, max_seq_len=8192
    )
    return {
        "pq": pq,
        "vectors": vectors,
        "keys": keys,
        "values": values,
        "queries": queries,
        "codes": codes,
        "config": config,
    }


def test_kernel_pq_encode(benchmark, setup):
    pq, vectors = setup["pq"], setup["vectors"]
    codes = benchmark(pq.encode, vectors[:2048])
    assert codes.shape == (2048, 32)


def test_kernel_lut_build(benchmark, setup):
    pq = setup["pq"]
    queries = setup["queries"].reshape(-1, 64)
    luts = benchmark(pq.build_score_luts, queries)
    assert luts.shape == (4, 32, 256)


def test_kernel_adc_scores(benchmark, setup):
    pq, codes = setup["pq"], setup["codes"]
    luts = pq.build_score_luts(setup["queries"].reshape(-1, 64))
    scores = benchmark(pq.adc_scores, luts, codes)
    assert scores.shape == (4, codes.shape[0])


def test_kernel_adc_scores_naive_reference(benchmark, setup):
    """The pre-optimization fancy-indexing loop, kept for speedup comparison."""
    pq, codes = setup["pq"], setup["codes"]
    luts = pq.build_score_luts(setup["queries"].reshape(-1, 64))

    def naive_adc():
        scores = np.zeros((luts.shape[0], codes.shape[0]), dtype=np.float32)
        for m in range(pq.m_subspaces):
            scores += luts[:, m, :][:, codes[:, m]]
        return scores

    reference = benchmark(naive_adc)
    np.testing.assert_array_equal(reference, pq.adc_scores(luts, codes))


def test_kernel_weighted_decode(benchmark, setup):
    pq, codes = setup["pq"], setup["codes"]
    probs = np.random.default_rng(1).random((4, codes.shape[0])).astype(np.float32)
    out = benchmark(pq.weighted_decode, probs, codes)
    assert out.shape == (4, 64)


def test_kernel_million_cache_decode_attention(benchmark, setup):
    config = setup["config"]
    million = MillionConfig(m_subspaces=32, nbits=8, recent_window=32)
    cache = MillionKVCacheLayer(config, setup["pq"], setup["pq"], million)
    keys, values = setup["keys"], setup["values"]
    for start in range(0, 2048, 256):
        cache.append(keys[start : start + 256], values[start : start + 256])
    queries = setup["queries"]

    def decode_attend():
        return cache.attend(queries, np.asarray([2047]), 0.125)

    out = benchmark(decode_attend)
    assert out.shape == (1, 4, 64)
