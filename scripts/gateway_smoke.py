#!/usr/bin/env python
"""CI smoke test for the serving gateway, across a real process boundary.

Starts ``python -m repro.gateway`` as a subprocess on an ephemeral port,
then from this process:

1. waits for ``/healthz`` to come up;
2. streams one completion over HTTP (SSE) and asserts the tokens are
   **identical** to a direct :meth:`BatchedMillionEngine.run` on an engine
   built from the same :class:`GatewayConfig` — everything the demo gateway
   serves is synthesized from seeds, so both processes hold the same model;
3. exercises ``/metrics``: validates the whole scrape as Prometheus text
   exposition (:func:`repro.obs.promtext.parse_exposition`), checks the
   gateway/engine/pool counters moved, and that the TTFT/ITL histogram
   families exist with ``_count`` matching the requests served;
4. pulls ``/debug/trace`` and asserts it is a schema-valid Chrome trace
   containing at least one complete request span;
5. pulls ``/debug/prof`` and validates the profiler payload (phase table +
   collapsed stacks + speedscope document) with
   :func:`repro.obs.prof.validate_prof_payload`;
6. streams a long "whale" prompt concurrently with a short request and
   asserts the short one finishes first — chunked prefill (on for the
   whole smoke, reference engine included) must not let the whale starve
   running streams — and that ``repro_engine_prefill_chunks_total`` and
   ``repro_engine_step_budget_utilization`` are exported;
7. checks ``/readyz`` reports ready and renders one frame of the
   ``repro-obs top`` dashboard (``python -m repro.obs top --once``);
8. checks a malformed request is rejected with 400.

Run from the repository root::

    PYTHONPATH=src python scripts/gateway_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.data import load_corpus  # noqa: E402
from repro.gateway import GatewayConfig, build_engines  # noqa: E402
from repro.obs.export import validate_chrome_trace  # noqa: E402
from repro.obs.prof import validate_prof_payload  # noqa: E402
from repro.obs.promtext import ExpositionError, parse_exposition  # noqa: E402

#: Histogram families the serving gate relies on; a scrape without them is
#: a failure even if the rest of the exposition parses.
GATED_FAMILIES = (
    "repro_gateway_ttft_seconds",
    "repro_gateway_itl_seconds",
    "repro_gateway_priority_ttft_seconds",
    "repro_gateway_priority_itl_seconds",
    "repro_engine_queue_wait_seconds",
    "repro_engine_step_seconds",
    "repro_engine_fused_batch_size",
)

CONFIG = GatewayConfig(
    max_seq_len=512,
    calibration_tokens=512,
    pool_blocks=256,
    replicas=1,
    # Chunked prefill changes sampled tokens vs one-shot, so it must be on
    # in BOTH processes for the token-identity check to compare like with
    # like.  The tight budget makes the whale scenario genuinely chunk.
    chunked_prefill=1,
    prefill_token_budget=32,
)
MAX_TOKENS = 12
WHALE_PROMPT_TOKENS = 384
WHALE_MAX_TOKENS = 16


def start_gateway() -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.gateway", "--port", "0",
            "--max-seq-len", str(CONFIG.max_seq_len),
            "--calibration-tokens", str(CONFIG.calibration_tokens),
            "--pool-blocks", str(CONFIG.pool_blocks),
            "--replicas", str(CONFIG.replicas),
            "--chunked-prefill", str(CONFIG.chunked_prefill),
            "--prefill-token-budget", str(CONFIG.prefill_token_budget),
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + 180
    assert process.stdout is not None
    while time.time() < deadline:
        line = process.stdout.readline()
        if not line:
            raise SystemExit(f"gateway exited early (rc={process.poll()})")
        print(f"  [gateway] {line.rstrip()}")
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            return process, int(match.group(1))
    raise SystemExit("gateway did not start within 180s")


def request(port: int, method: str, path: str, payload=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    body = json.dumps(payload) if payload is not None else None
    headers = {"Content-Type": "application/json"} if body else {}
    connection.request(method, path, body=body, headers=headers)
    response = connection.getresponse()
    data = response.read()
    connection.close()
    return response.status, data


def main() -> None:
    print("building reference engine (same seeds as the gateway subprocess) ...")
    reference_engine = build_engines(CONFIG)[0]
    vocab = reference_engine.model.config.vocab_size
    prompt = (load_corpus("wikitext2-syn", "test", 48, seed=11) % vocab).tolist()
    request_id = reference_engine.add_request(
        np.asarray(prompt), max_new_tokens=MAX_TOKENS
    )
    expected = reference_engine.run()[request_id].tolist()
    print(f"reference tokens: {expected}")

    print("starting gateway subprocess ...")
    process, port = start_gateway()
    try:
        status, body = request(port, "GET", "/healthz")
        assert status == 200, (status, body)
        assert json.loads(body)["status"] == "ok"
        print("healthz ok")

        status, body = request(
            port, "POST", "/v1/completions",
            {"prompt": prompt, "max_tokens": MAX_TOKENS, "stream": True},
        )
        assert status == 200, (status, body)
        streamed = []
        for line in body.decode().splitlines():
            if line.startswith("data: ") and line != "data: [DONE]":
                token = json.loads(line[len("data: "):])["choices"][0]["token_id"]
                if token is not None:
                    streamed.append(token)
        print(f"streamed tokens:  {streamed}")
        assert streamed == expected, (
            "gateway stream diverged from direct engine.run():\n"
            f"  gateway: {streamed}\n  direct:  {expected}"
        )
        print("token identity across the HTTP boundary ok")

        status, body = request(port, "GET", "/metrics")
        assert status == 200
        metrics = body.decode()
        for needle in (
            f"repro_gateway_tokens_streamed_total {len(expected)}",
            'repro_gateway_http_requests_total{path="/v1/completions",status="200"} 1',
            'repro_engine_finished{replica="0"} 1',
            "repro_pool_utilization",
            "repro_router_decisions_total",
            "repro_engine_prefill_chunks_total",
            "repro_engine_step_budget_utilization",
        ):
            assert needle in metrics, f"missing from /metrics: {needle}\n{metrics}"
        try:
            families = parse_exposition(metrics)
        except ExpositionError as error:
            raise SystemExit(
                "/metrics is not valid Prometheus text exposition:\n"
                + "\n".join(error.errors)
            )
        for family in GATED_FAMILIES:
            assert family in families, f"gated family missing from /metrics: {family}"
            assert families[family].type == "histogram", family
        ttft = families["repro_gateway_ttft_seconds"]
        assert ttft.value(tier="default", le="+Inf") == 1.0, (
            "TTFT _count should match the 1 request served"
        )
        itl = families["repro_gateway_itl_seconds"]
        assert itl.value(tier="default", le="+Inf") == float(len(expected) - 1), (
            "ITL _count should be tokens served minus the first"
        )
        priority_ttft = families["repro_gateway_priority_ttft_seconds"]
        assert priority_ttft.value(priority="interactive", le="+Inf") == 1.0, (
            "a request without an explicit priority is interactive"
        )
        print(f"metrics ok ({len(families)} families, exposition valid)")

        status, body = request(port, "GET", "/debug/trace")
        assert status == 200, (status, body)
        trace = json.loads(body)
        validate_chrome_trace(trace)
        request_spans = [
            e for e in trace["traceEvents"]
            if e.get("ph") == "X" and e.get("name") == "request"
        ]
        assert request_spans, "no complete request span in /debug/trace"
        engine_names = {e.get("name") for e in trace["traceEvents"]}
        assert {"queue_wait", "prefill", "first_token"} <= engine_names, (
            f"lifecycle spans missing from trace: {sorted(engine_names)}"
        )
        print(
            f"trace ok ({trace['otherData']['events']} events, "
            f"{len(request_spans)} request span(s))"
        )

        status, body = request(port, "GET", "/debug/prof")
        assert status == 200, (status, body)
        prof_payload = json.loads(body)
        validate_prof_payload(prof_payload)
        assert prof_payload["enabled"], "profiler should default on"
        prof_phases = {row["phase"] for row in prof_payload["phases"]}
        assert {"decode", "prefill"} <= prof_phases, (
            f"profiler missing top-level phases: {sorted(prof_phases)}"
        )
        assert "repro_engine_phase_seconds" in families, (
            "profiled gateway should export repro_engine_phase_seconds"
        )
        assert "repro_health_state" in families, (
            "gateway should export its health verdict"
        )
        print(f"prof ok ({len(prof_phases)} phases, payload valid)")

        assert "prefill/chunk" in prof_phases, (
            f"chunked prefill never profiled a chunk: {sorted(prof_phases)}"
        )

        # A whale prompt must stream to completion without starving a
        # concurrent short request: under chunked prefill the short one
        # keeps decoding between the whale's chunks and finishes first.
        whale_prompt = (
            load_corpus("wikitext2-syn", "test", WHALE_PROMPT_TOKENS, seed=5)
            % vocab
        ).tolist()
        short_prompt = prompt[:8]
        outcome: dict = {}

        def stream(key, req_prompt, max_tokens):
            status, body = request(
                port, "POST", "/v1/completions",
                {"prompt": req_prompt, "max_tokens": max_tokens, "stream": True},
            )
            tokens = sum(
                1
                for line in body.decode().splitlines()
                if line.startswith("data: ") and line != "data: [DONE]"
                and json.loads(line[len("data: "):])["choices"][0]["token_id"]
                is not None
            )
            outcome[key] = (status, tokens, time.perf_counter())

        whale_thread = threading.Thread(
            target=stream, args=("whale", whale_prompt, WHALE_MAX_TOKENS)
        )
        whale_thread.start()
        time.sleep(0.1)  # let the whale's first chunks land
        stream("short", short_prompt, 4)
        whale_thread.join(timeout=120)
        assert not whale_thread.is_alive(), "whale stream never completed"
        assert outcome["whale"][0] == 200 and outcome["short"][0] == 200, outcome
        assert outcome["whale"][1] == WHALE_MAX_TOKENS, outcome
        assert outcome["short"][1] == 4, outcome
        assert outcome["short"][2] < outcome["whale"][2], (
            "short request starved behind the whale prefill: "
            f"short finished at {outcome['short'][2]:.3f}, "
            f"whale at {outcome['whale'][2]:.3f}"
        )
        status, body = request(port, "GET", "/metrics")
        assert status == 200
        chunk_samples = parse_exposition(body.decode())[
            "repro_engine_prefill_chunks_total"
        ]
        chunks_total = chunk_samples.value(replica="0")
        assert chunks_total >= WHALE_PROMPT_TOKENS // CONFIG.prefill_token_budget, (
            f"whale prefill barely chunked: {chunks_total} sub-steps"
        )
        print(
            f"whale ok ({WHALE_PROMPT_TOKENS} tokens chunked into "
            f"{int(chunks_total)} sub-steps; concurrent short request "
            "finished first)"
        )

        status, body = request(port, "GET", "/readyz")
        assert status == 200, (status, body)
        assert json.loads(body)["ready"] is True
        print("readyz ok")

        top = subprocess.run(
            [
                sys.executable, "-m", "repro.obs", "top", "--once",
                "--no-color", "--target", f"127.0.0.1:{port}",
            ],
            env={
                **os.environ,
                "PYTHONPATH": str(REPO_ROOT / "src")
                + os.pathsep
                + os.environ.get("PYTHONPATH", ""),
            },
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert top.returncode == 0, (top.returncode, top.stdout, top.stderr)
        assert "repro-obs top" in top.stdout and "health=ok" in top.stdout, (
            top.stdout
        )
        print("repro-obs top --once ok")

        status, body = request(port, "POST", "/v1/completions", {"max_tokens": 4})
        assert status == 400, (status, body)
        print("validation ok")
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
    print("gateway smoke PASS")


if __name__ == "__main__":
    main()
