"""Building blocks for synthetic long-context documents.

The LongBench substitute (:mod:`repro.eval.longbench`) assembles its 16 tasks
from the primitives here: filler passages, embedded key/value facts, repeated
patterns and section markers, all expressed directly as token-id sequences so
they can be fed to the tiny models without a natural-language tokenizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import SeedLike, get_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class SpecialTokens:
    """Reserved token ids used by the synthetic long-context tasks.

    Content tokens start at :attr:`content_start`; everything below is a
    marker.  The defaults fit any vocabulary of at least 32 tokens.
    """

    pad: int = 0
    bos: int = 1
    eos: int = 2
    separator: int = 3
    question: int = 4
    answer: int = 5
    key_marker: int = 6
    value_marker: int = 7
    passage_start: int = 8
    passage_end: int = 9
    example_start: int = 10
    label_marker: int = 11
    line_break: int = 12
    content_start: int = 16

    def content_vocab(self, vocab_size: int) -> int:
        """Number of usable content tokens for a model vocabulary."""
        require(
            vocab_size > self.content_start + 8,
            f"vocab_size {vocab_size} too small for long-context tasks",
        )
        return vocab_size - self.content_start


SPECIAL_TOKENS = SpecialTokens()


def random_content_tokens(
    n_tokens: int, vocab_size: int, rng: np.random.Generator, specials: SpecialTokens = SPECIAL_TOKENS
) -> np.ndarray:
    """Uniform random content tokens (never collide with marker ids)."""
    require(n_tokens >= 0, "n_tokens must be >= 0")
    content = specials.content_vocab(vocab_size)
    return rng.integers(specials.content_start, specials.content_start + content, size=n_tokens)


class ContextBuilder:
    """Incrementally assemble a long context out of passages and markers.

    The builder records where each semantic element (passage, fact, question)
    starts so task scorers can point at the answer span.
    """

    def __init__(self, vocab_size: int, seed: SeedLike = None, specials: SpecialTokens = SPECIAL_TOKENS) -> None:
        specials.content_vocab(vocab_size)  # validates the vocabulary size
        self.vocab_size = vocab_size
        self.specials = specials
        self.rng = get_rng(seed)
        self._segments: list[np.ndarray] = []
        self._length = 0
        self.annotations: list[dict] = []

    # Low-level appends ----------------------------------------------------

    def append(self, tokens: np.ndarray, kind: str = "raw", **metadata) -> int:
        """Append raw tokens; returns the start offset of the appended span."""
        tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
        start = self._length
        self._segments.append(tokens)
        self._length += tokens.size
        self.annotations.append(
            {"kind": kind, "start": start, "length": tokens.size, **metadata}
        )
        return start

    def append_marker(self, marker: int) -> int:
        return self.append(np.asarray([marker]), kind="marker")

    # Semantic elements ----------------------------------------------------

    def append_filler(self, n_tokens: int) -> int:
        """Append unrelated filler text."""
        tokens = random_content_tokens(n_tokens, self.vocab_size, self.rng, self.specials)
        return self.append(tokens, kind="filler")

    def append_passage(self, n_tokens: int, passage_id: int | None = None) -> int:
        """Append a delimited passage of filler text."""
        sp = self.specials
        body = random_content_tokens(n_tokens, self.vocab_size, self.rng, self.specials)
        tokens = np.concatenate(([sp.passage_start], body, [sp.passage_end]))
        return self.append(tokens, kind="passage", passage_id=passage_id)

    def append_fact(self, key: np.ndarray, value: np.ndarray) -> int:
        """Append a ``KEY key VALUE value`` fact ("needle")."""
        sp = self.specials
        tokens = np.concatenate(
            ([sp.key_marker], np.asarray(key), [sp.value_marker], np.asarray(value))
        )
        return self.append(tokens, kind="fact", key=np.asarray(key), value=np.asarray(value))

    def append_example(self, prompt: np.ndarray, label: np.ndarray) -> int:
        """Append a few-shot example ``EX prompt LABEL label``."""
        sp = self.specials
        tokens = np.concatenate(
            ([sp.example_start], np.asarray(prompt), [sp.label_marker], np.asarray(label))
        )
        return self.append(tokens, kind="example", label=np.asarray(label))

    def append_question(self, question: np.ndarray) -> int:
        """Append ``QUESTION question ANSWER`` — generation starts after this."""
        sp = self.specials
        tokens = np.concatenate(([sp.question], np.asarray(question), [sp.answer]))
        return self.append(tokens, kind="question")

    # Accessors --------------------------------------------------------------

    def new_key(self, length: int = 3) -> np.ndarray:
        """Draw a random content-token key phrase."""
        return random_content_tokens(length, self.vocab_size, self.rng, self.specials)

    def new_value(self, length: int = 3) -> np.ndarray:
        """Draw a random content-token value phrase."""
        return random_content_tokens(length, self.vocab_size, self.rng, self.specials)

    @property
    def length(self) -> int:
        return self._length

    def tokens(self) -> np.ndarray:
        """Materialise the full context as a token-id array."""
        if not self._segments:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self._segments)
