"""Synthetic datasets standing in for Wikitext-2, PTB and LongBench documents."""

from repro.data.corpus import (
    CORPUS_REGISTRY,
    CorpusConfig,
    MarkovCorpus,
    available_corpora,
    load_corpus,
)
from repro.data.longcontext import (
    SPECIAL_TOKENS,
    ContextBuilder,
    SpecialTokens,
    random_content_tokens,
)

__all__ = [
    "CORPUS_REGISTRY",
    "CorpusConfig",
    "MarkovCorpus",
    "available_corpora",
    "load_corpus",
    "SPECIAL_TOKENS",
    "ContextBuilder",
    "SpecialTokens",
    "random_content_tokens",
]
