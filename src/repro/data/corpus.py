"""Synthetic language-modelling corpora.

The paper evaluates perplexity on Wikitext-2 and PTB.  Offline we substitute
two corpora drawn from first-order Markov chains over a Zipfian vocabulary
("wikitext2-syn" and "ptb-syn", distinguished by vocabulary statistics and
seed).  A Markov corpus has genuine sequential structure, so the tiny trained
models in :mod:`repro.training` achieve perplexities far below the uniform
bound and KV-cache quantization error shows up as a measurable PPL increase —
which is all the Table II comparison needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, derive_seed, get_rng
from repro.utils.validation import require, require_in


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of a synthetic Markov corpus.

    ``repetition_period`` / ``repetition_span`` add *long-range* structure:
    roughly every ``repetition_period`` tokens, a span of ``repetition_span``
    tokens copied from earlier in the stream is inserted.  Natural text has
    exactly this kind of re-occurring phrase structure; it is what makes the
    perplexity of a context-using model depend on the fidelity of the
    (quantized) KV cache far behind the current position.  Set
    ``repetition_period=0`` for a pure first-order Markov stream.
    """

    name: str
    vocab_size: int = 512
    zipf_alpha: float = 1.1
    branching_factor: int = 24
    repetition_period: int = 0
    repetition_span: int = 24
    seed: int = 1234

    def __post_init__(self) -> None:
        require(self.vocab_size >= 8, "vocab_size must be >= 8")
        require(self.zipf_alpha > 0.0, "zipf_alpha must be positive")
        require(
            2 <= self.branching_factor <= self.vocab_size,
            "branching_factor must be in [2, vocab_size]",
        )
        require(self.repetition_period >= 0, "repetition_period must be >= 0")
        if self.repetition_period:
            require(
                0 < self.repetition_span < self.repetition_period,
                "repetition_span must be in (0, repetition_period)",
            )


# Named corpora standing in for the paper's evaluation datasets.
CORPUS_REGISTRY: dict[str, CorpusConfig] = {
    "wikitext2-syn": CorpusConfig(
        name="wikitext2-syn",
        vocab_size=512,
        zipf_alpha=1.05,
        branching_factor=32,
        repetition_period=96,
        repetition_span=24,
        seed=1234,
    ),
    "ptb-syn": CorpusConfig(
        name="ptb-syn",
        vocab_size=512,
        zipf_alpha=1.3,
        branching_factor=16,
        repetition_period=128,
        repetition_span=20,
        seed=4321,
    ),
}

_SPLIT_OFFSETS = {"train": 0, "validation": 1, "test": 2}


class MarkovCorpus:
    """First-order Markov chain with Zipfian marginals and sparse transitions.

    Each token may transition only to ``branching_factor`` successors; the
    successor probabilities follow a Zipf law, so the entropy rate is well
    below ``log(vocab_size)`` and the structure is learnable by a small
    transformer (the FFN alone can memorise a first-order chain).
    """

    def __init__(self, config: CorpusConfig) -> None:
        self.config = config
        rng = get_rng(config.seed)
        v, b = config.vocab_size, config.branching_factor
        # Zipfian weights over ranks, shared by all rows.
        ranks = np.arange(1, b + 1, dtype=np.float64)
        weights = ranks ** (-config.zipf_alpha)
        weights = weights / weights.sum()
        successors = np.empty((v, b), dtype=np.int64)
        for token in range(v):
            successors[token] = rng.choice(v, size=b, replace=False)
        self._successors = successors
        self._weights = weights
        self._cumulative = np.cumsum(weights)
        # Unigram distribution used to draw the first token of a stream.
        unigram = rng.permutation(np.arange(1, v + 1, dtype=np.float64) ** (-config.zipf_alpha))
        self._unigram = unigram / unigram.sum()

    @property
    def vocab_size(self) -> int:
        return self.config.vocab_size

    def entropy_rate(self) -> float:
        """Per-token entropy of the chain in nats (lower bound on achievable PPL)."""
        w = self._weights
        return float(-(w * np.log(w)).sum())

    def sample(self, n_tokens: int, seed: SeedLike = None) -> np.ndarray:
        """Sample a contiguous stream of ``n_tokens`` tokens.

        When the corpus is configured with a repetition period, spans copied
        from earlier in the stream are spliced in at roughly that period,
        giving the stream long-range dependencies on top of the Markov
        structure.
        """
        require(n_tokens >= 1, "n_tokens must be >= 1")
        rng = get_rng(seed)
        tokens = np.empty(n_tokens, dtype=np.int64)
        tokens[0] = rng.choice(self.vocab_size, p=self._unigram)
        uniform = rng.random(n_tokens)
        for i in range(1, n_tokens):
            rank = int(np.searchsorted(self._cumulative, uniform[i]))
            rank = min(rank, self.config.branching_factor - 1)
            tokens[i] = self._successors[tokens[i - 1], rank]
        period = self.config.repetition_period
        if period:
            span = self.config.repetition_span
            position = period
            while position + span < n_tokens:
                # Copy a span that already occurred at least `span` tokens ago.
                source = int(rng.integers(0, position - span))
                tokens[position : position + span] = tokens[source : source + span]
                jitter = int(rng.integers(-period // 4, period // 4 + 1))
                position += max(period + jitter, span + 1)
        return tokens

    def transition_log_prob(self, prev_token: int, next_token: int) -> float:
        """Log-probability of ``next_token`` following ``prev_token`` (or -inf)."""
        row = self._successors[prev_token]
        matches = np.nonzero(row == next_token)[0]
        if matches.size == 0:
            return float("-inf")
        return float(np.log(self._weights[matches[0]]))

    def sequence_log_prob(self, tokens: np.ndarray) -> float:
        """Total log-probability of a sampled stream under the true chain."""
        tokens = np.asarray(tokens)
        total = float(np.log(self._unigram[tokens[0]]))
        for prev, nxt in zip(tokens[:-1], tokens[1:]):
            total += self.transition_log_prob(int(prev), int(nxt))
        return total


def available_corpora() -> list[str]:
    """Names accepted by :func:`load_corpus`."""
    return sorted(CORPUS_REGISTRY)


def get_corpus(name: str) -> MarkovCorpus:
    """Build the generator behind a named corpus."""
    require_in(name, tuple(CORPUS_REGISTRY), "corpus name")
    return MarkovCorpus(CORPUS_REGISTRY[name])


def load_corpus(
    name: str,
    split: str = "test",
    n_tokens: int = 4096,
    seed: SeedLike = None,
) -> np.ndarray:
    """Return ``n_tokens`` tokens of the named corpus for ``split``.

    Splits are disjoint pseudo-random streams of the same chain; passing the
    same arguments always returns the same tokens.
    """
    require_in(split, tuple(_SPLIT_OFFSETS), "split")
    corpus = get_corpus(name)
    stream_seed = derive_seed(
        CORPUS_REGISTRY[name].seed if seed is None else seed,
        "corpus-split",
        _SPLIT_OFFSETS[split],
    )
    return corpus.sample(n_tokens, seed=stream_seed)
