"""Non-quantization KV-cache baselines (sparse-attention family).

The paper's related-work section contrasts KV quantization with two other
ways of taming the KV cache: windowed attention with "attention sinks"
(StreamingLLM-style) and importance-based token eviction (H2O-style).  Both
are implemented here as ordinary :class:`~repro.models.kv_cache.KVCacheLayer`
schemes so they can be compared head-to-head with MILLION under the same
models, metrics and memory accounting.
"""

from repro.baselines.heavy_hitter import HeavyHitterCacheFactory, HeavyHitterKVCache
from repro.baselines.sliding_window import SlidingWindowCacheFactory, SlidingWindowKVCache

__all__ = [
    "HeavyHitterCacheFactory",
    "HeavyHitterKVCache",
    "SlidingWindowCacheFactory",
    "SlidingWindowKVCache",
]
