"""Heavy-hitter token eviction (H2O-style KV sparsification).

The cache keeps a fixed budget of tokens: the ``recent`` most recent ones are
always retained, and the remaining budget goes to the tokens that accumulated
the largest attention mass so far ("heavy hitters").  After every attention
call, the accumulated scores are updated and the lowest-scoring non-recent
tokens are evicted.

The paper cites this family as an alternative to quantization and notes its
known weakness: past attention patterns do not always predict which tokens
future queries will need, so evicted information is simply gone.  The
head-to-head benchmark (``bench_ablation_sparse_vs_quant.py``) measures
exactly that trade-off against MILLION at a matched memory budget.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.attention_math import attention_scores, repeat_kv_heads
from repro.models.config import ModelConfig
from repro.models.kv_cache import FP16_BYTES, KVCacheLayer
from repro.models.tensor_ops import softmax
from repro.utils.validation import require


class HeavyHitterKVCache(KVCacheLayer):
    """Budget-constrained cache retaining recent tokens plus heavy hitters."""

    def __init__(self, config: ModelConfig, budget: int = 256, recent: int = 32) -> None:
        super().__init__(config)
        require(budget >= 1, "budget must be >= 1")
        require(0 <= recent <= budget, "recent must be in [0, budget]")
        self.budget = budget
        self.recent = recent
        shape = (0, config.kv_heads, config.head_dim)
        self._keys = np.zeros(shape, dtype=np.float32)
        self._values = np.zeros(shape, dtype=np.float32)
        self._positions = np.zeros(0, dtype=np.int64)
        self._accumulated_scores = np.zeros(0, dtype=np.float64)

    # Bookkeeping --------------------------------------------------------------

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        self._validate_append(keys, values)
        new_positions = np.arange(self._seq_len, self._seq_len + keys.shape[0])
        self._keys = np.concatenate([self._keys, keys], axis=0)
        self._values = np.concatenate([self._values, values], axis=0)
        self._positions = np.concatenate([self._positions, new_positions])
        self._accumulated_scores = np.concatenate(
            [self._accumulated_scores, np.zeros(keys.shape[0], dtype=np.float64)]
        )
        self._seq_len += keys.shape[0]
        self._evict()

    def _evict(self) -> None:
        retained = self._positions.size
        if retained <= self.budget:
            return
        recent_cutoff = self._seq_len - self.recent
        is_recent = self._positions >= recent_cutoff
        n_heavy = self.budget - int(is_recent.sum())
        candidate_indices = np.flatnonzero(~is_recent)
        if n_heavy <= 0:
            keep_mask = is_recent.copy()
            # Budget smaller than the recent window: keep the newest `budget`.
            if int(keep_mask.sum()) > self.budget:
                newest = np.argsort(-self._positions)[: self.budget]
                keep_mask = np.zeros_like(is_recent)
                keep_mask[newest] = True
        else:
            candidate_scores = self._accumulated_scores[candidate_indices]
            order = np.argsort(-candidate_scores, kind="stable")
            keep_candidates = candidate_indices[order[:n_heavy]]
            keep_mask = is_recent.copy()
            keep_mask[keep_candidates] = True
        self._keys = self._keys[keep_mask]
        self._values = self._values[keep_mask]
        self._positions = self._positions[keep_mask]
        self._accumulated_scores = self._accumulated_scores[keep_mask]

    @property
    def retained_tokens(self) -> int:
        return int(self._positions.size)

    @property
    def retained_positions(self) -> np.ndarray:
        return self._positions.copy()

    # Attention -----------------------------------------------------------------

    def attend(
        self,
        queries: np.ndarray,
        query_positions: np.ndarray,
        scale: float,
        alibi_head_slopes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        scores = attention_scores(
            queries,
            self._keys,
            query_positions,
            self._positions,
            scale,
            alibi_head_slopes=alibi_head_slopes,
            causal=True,
        )
        probs = softmax(scores, axis=-1)
        # Accumulate attention mass per retained token (summed over heads and
        # queries), the statistic H2O uses to rank heavy hitters.
        self._accumulated_scores += probs.sum(axis=(0, 1)).astype(np.float64)
        values = repeat_kv_heads(self._values, queries.shape[1])
        context = np.einsum("hqk,khd->qhd", probs, values)
        return context.astype(np.float32)

    def memory_bytes(self) -> float:
        per_token = 2 * self.config.kv_heads * self.config.head_dim * FP16_BYTES
        # One fp32 accumulator per retained token for the eviction statistic.
        return float(self.retained_tokens * (per_token + 4.0))

    def reset(self) -> None:
        super().reset()
        shape = (0, self.config.kv_heads, self.config.head_dim)
        self._keys = np.zeros(shape, dtype=np.float32)
        self._values = np.zeros(shape, dtype=np.float32)
        self._positions = np.zeros(0, dtype=np.int64)
        self._accumulated_scores = np.zeros(0, dtype=np.float64)


class HeavyHitterCacheFactory:
    """Creates :class:`HeavyHitterKVCache` layers (H2O-style)."""

    def __init__(self, budget: int = 256, recent: int = 32) -> None:
        self.budget = budget
        self.recent = recent

    def create(self, layer_index: int, config: ModelConfig) -> KVCacheLayer:
        return HeavyHitterKVCache(config, budget=self.budget, recent=self.recent)
