"""Sliding-window attention with optional attention-sink tokens.

This is the StreamingLLM-style baseline the paper's related-work section
describes: keep the KV pairs of the first ``n_sink`` tokens (the "attention
sinks") and of the most recent ``window`` tokens, and drop everything in
between.  Memory is constant in the context length, but any information that
only lives in evicted tokens is unrecoverable — the failure mode quantization
avoids.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.attention_math import dense_attention
from repro.models.config import ModelConfig
from repro.models.kv_cache import FP16_BYTES, KVCacheLayer
from repro.utils.validation import require


class SlidingWindowKVCache(KVCacheLayer):
    """Keeps sink tokens plus a recency window; evicts everything else."""

    def __init__(self, config: ModelConfig, window: int = 256, n_sink: int = 4) -> None:
        super().__init__(config)
        require(window >= 1, "window must be >= 1")
        require(n_sink >= 0, "n_sink must be >= 0")
        self.window = window
        self.n_sink = n_sink
        shape = (0, config.kv_heads, config.head_dim)
        self._keys = np.zeros(shape, dtype=np.float32)
        self._values = np.zeros(shape, dtype=np.float32)
        self._positions = np.zeros(0, dtype=np.int64)

    # Bookkeeping --------------------------------------------------------------

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        self._validate_append(keys, values)
        new_positions = np.arange(self._seq_len, self._seq_len + keys.shape[0])
        self._keys = np.concatenate([self._keys, keys], axis=0)
        self._values = np.concatenate([self._values, values], axis=0)
        self._positions = np.concatenate([self._positions, new_positions])
        self._seq_len += keys.shape[0]
        self._evict()

    def _evict(self) -> None:
        keep = self.retained_mask(self._positions, self._seq_len)
        self._keys = self._keys[keep]
        self._values = self._values[keep]
        self._positions = self._positions[keep]

    def retained_mask(self, positions: np.ndarray, seq_len: int) -> np.ndarray:
        """Boolean mask over ``positions``: sinks or within the recency window."""
        recent_start = max(seq_len - self.window, 0)
        return (positions < self.n_sink) | (positions >= recent_start)

    @property
    def retained_tokens(self) -> int:
        return int(self._positions.size)

    @property
    def retained_positions(self) -> np.ndarray:
        return self._positions.copy()

    # Attention -----------------------------------------------------------------

    def attend(
        self,
        queries: np.ndarray,
        query_positions: np.ndarray,
        scale: float,
        alibi_head_slopes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return dense_attention(
            queries,
            self._keys,
            self._values,
            query_positions,
            self._positions,
            scale,
            alibi_head_slopes=alibi_head_slopes,
        )

    def memory_bytes(self) -> float:
        per_token = 2 * self.config.kv_heads * self.config.head_dim * FP16_BYTES
        return float(self.retained_tokens * per_token)

    def reset(self) -> None:
        super().reset()
        shape = (0, self.config.kv_heads, self.config.head_dim)
        self._keys = np.zeros(shape, dtype=np.float32)
        self._values = np.zeros(shape, dtype=np.float32)
        self._positions = np.zeros(0, dtype=np.int64)


class SlidingWindowCacheFactory:
    """Creates :class:`SlidingWindowKVCache` layers (StreamingLLM-style)."""

    def __init__(self, window: int = 256, n_sink: int = 4) -> None:
        self.window = window
        self.n_sink = n_sink

    def create(self, layer_index: int, config: ModelConfig) -> KVCacheLayer:
        return SlidingWindowKVCache(config, window=self.window, n_sink=self.n_sink)
