"""Dense attention helpers shared by every KV-cache implementation.

All full-precision and dequantizing caches funnel through
:func:`dense_attention`; the MILLION cache reuses the masking/bias helpers but
computes its scores through ADC lookup tables instead of materialised keys.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.positional import alibi_bias
from repro.models.tensor_ops import NEG_INF, softmax


def repeat_kv_heads(kv: np.ndarray, n_query_heads: int) -> np.ndarray:
    """Expand ``(tokens, kv_heads, d)`` to ``(tokens, n_query_heads, d)`` for GQA."""
    kv = np.asarray(kv)
    tokens, kv_heads, d = kv.shape
    if n_query_heads == kv_heads:
        return kv
    if n_query_heads % kv_heads != 0:
        raise ValueError(
            f"n_query_heads {n_query_heads} must be a multiple of kv_heads {kv_heads}"
        )
    group = n_query_heads // kv_heads
    return np.repeat(kv, group, axis=1)


def causal_score_mask(
    query_positions: np.ndarray, key_positions: np.ndarray
) -> np.ndarray:
    """Additive mask ``(n_queries, n_keys)``: 0 where key <= query, -inf otherwise."""
    q = np.asarray(query_positions)[:, None]
    k = np.asarray(key_positions)[None, :]
    return np.where(k <= q, 0.0, NEG_INF).astype(np.float32)


def attention_scores(
    queries: np.ndarray,
    keys: np.ndarray,
    query_positions: np.ndarray,
    key_positions: np.ndarray,
    scale: float,
    alibi_head_slopes: Optional[np.ndarray] = None,
    causal: bool = True,
) -> np.ndarray:
    """Masked, scaled attention logits.

    Parameters
    ----------
    queries:
        ``(n_queries, n_heads, head_dim)``.
    keys:
        ``(n_keys, kv_heads, head_dim)``; expanded to the query head count.
    Returns
    -------
    ``(n_heads, n_queries, n_keys)`` float32 logits with the causal mask and
    optional ALiBi bias already applied.
    """
    queries = np.asarray(queries, dtype=np.float32)
    keys = repeat_kv_heads(np.asarray(keys, dtype=np.float32), queries.shape[1])
    scores = np.einsum("qhd,khd->hqk", queries, keys) * scale
    if alibi_head_slopes is not None:
        scores = scores + alibi_bias(alibi_head_slopes, query_positions, key_positions)
    if causal:
        scores = scores + causal_score_mask(query_positions, key_positions)[None, :, :]
    return scores.astype(np.float32)


def dense_attention(
    queries: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    query_positions: np.ndarray,
    key_positions: np.ndarray,
    scale: float,
    alibi_head_slopes: Optional[np.ndarray] = None,
    causal: bool = True,
) -> np.ndarray:
    """Full softmax attention; returns context of shape ``(n_queries, n_heads, d)``."""
    scores = attention_scores(
        queries,
        keys,
        query_positions,
        key_positions,
        scale,
        alibi_head_slopes=alibi_head_slopes,
        causal=causal,
    )
    probs = softmax(scores, axis=-1)
    values = repeat_kv_heads(np.asarray(values, dtype=np.float32), queries.shape[1])
    context = np.einsum("hqk,khd->qhd", probs, values)
    return context.astype(np.float32)
