"""Multi-head / grouped-query attention block with a pluggable KV cache."""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.models.config import ModelConfig
from repro.models.kv_cache import KVCacheLayer
from repro.models.linear import Linear
from repro.models.positional import RotaryEmbedding

KVObserver = Callable[[np.ndarray, np.ndarray], None]

# Fused multi-sequence attention strategy: called with (attention_block,
# caches, q, k, v, positions, layer_index=...) where q is (B, n_heads,
# head_dim) and k/v are (B, kv_heads, head_dim) — one token per sequence —
# and must return context of shape (B, n_heads, head_dim).  It owns
# appending k/v to each cache; layer_index keys any per-layer scratch state.
BatchAttend = Callable[..., np.ndarray]


class AttentionBlock:
    """Self-attention with rotary/ALiBi support and cache-owned attention.

    The block projects the hidden states to queries/keys/values, applies the
    positional transform, hands the new keys/values to the cache and asks the
    cache for the attention context.  The cache therefore decides *how*
    attention over past tokens is computed (full precision, de-quantized or
    MILLION's ADC path).
    """

    def __init__(
        self,
        config: ModelConfig,
        wq: Linear,
        wk: Linear,
        wv: Linear,
        wo: Linear,
        rope: Optional[RotaryEmbedding] = None,
        alibi_head_slopes: Optional[np.ndarray] = None,
    ) -> None:
        self.config = config
        self.wq = wq
        self.wk = wk
        self.wv = wv
        self.wo = wo
        self.rope = rope
        self.alibi_head_slopes = alibi_head_slopes
        base_scale = 1.0 / math.sqrt(config.head_dim)
        if rope is not None:
            base_scale *= rope.attention_scale
        self.scale = base_scale

    def project_qkv(
        self, x: np.ndarray, positions: np.ndarray, paired: bool = False
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Project hidden states to (q, k, v) with positional transform applied.

        ``paired`` selects the row-invariant projection kernel used on the
        decode path (see :meth:`Linear.__call__`); the rotary transform is
        per-row elementwise, so the full tuple is row-invariant with it.
        """
        n_tokens = x.shape[0]
        cfg = self.config
        q = self.wq(x, paired=paired).reshape(n_tokens, cfg.n_heads, cfg.head_dim)
        k = self.wk(x, paired=paired).reshape(n_tokens, cfg.kv_heads, cfg.head_dim)
        v = self.wv(x, paired=paired).reshape(n_tokens, cfg.kv_heads, cfg.head_dim)
        if self.rope is not None:
            q = self.rope.apply(q, positions)
            k = self.rope.apply(k, positions)
        return q, k, v

    def forward(
        self,
        x: np.ndarray,
        cache: KVCacheLayer,
        positions: np.ndarray,
        kv_observer: Optional[KVObserver] = None,
        paired: bool = False,
    ) -> np.ndarray:
        """Run attention for ``x`` of shape ``(tokens, d_model)``.

        New keys/values are appended to ``cache`` (post-RoPE, exactly as they
        would be stored on a real serving stack) before the cache computes the
        causal attention context.
        """
        x = np.asarray(x, dtype=np.float32)
        if x.ndim != 2 or x.shape[1] != self.config.d_model:
            raise ValueError(
                f"expected x of shape (tokens, {self.config.d_model}), got {x.shape}"
            )
        q, k, v = self.project_qkv(x, positions, paired=paired)
        if kv_observer is not None:
            kv_observer(k, v)
        cache.append(k, v)
        context = cache.attend(
            q,
            positions,
            self.scale,
            alibi_head_slopes=self.alibi_head_slopes,
        )
        context = context.reshape(x.shape[0], self.config.n_heads * self.config.head_dim)
        return self.wo(context, paired=paired)

    def fused_decode(
        self,
        x: np.ndarray,
        caches: list[KVCacheLayer],
        positions: np.ndarray,
        batch_attend: Optional["BatchAttend"] = None,
        layer_index: int = 0,
    ) -> np.ndarray:
        """One attention step for ``B`` independent sequences stacked row-wise.

        ``x`` is ``(B, d_model)`` — one single-token hidden state per
        sequence — and ``caches[b]`` / ``positions[b]`` belong to sequence
        ``b``.  Projections run as stacked row-invariant GEMMs, so each row's
        (q, k, v) is bit-identical to what the sequential path computes for
        that sequence alone.  Attention is delegated to ``batch_attend``
        (e.g. the fused MILLION ADC path) or falls back to one
        ``append`` + ``attend`` per sequence — same calls, same bits, as the
        sequential path.
        """
        x = np.asarray(x, dtype=np.float32)
        n_seqs = x.shape[0]
        q, k, v = self.project_qkv(x, positions, paired=True)
        if batch_attend is not None:
            context = batch_attend(
                self, caches, q, k, v, positions, layer_index=layer_index
            )
        else:
            context = np.empty_like(q)
            for b, cache in enumerate(caches):
                cache.append(k[b : b + 1], v[b : b + 1])
                context[b] = cache.attend(
                    q[b : b + 1],
                    positions[b : b + 1],
                    self.scale,
                    alibi_head_slopes=self.alibi_head_slopes,
                )[0]
        context = context.reshape(n_seqs, self.config.n_heads * self.config.head_dim)
        return self.wo(context, paired=True)

    def num_parameters(self) -> int:
        return sum(layer.num_parameters() for layer in (self.wq, self.wk, self.wv, self.wo))
