"""Decoder-only transformer language model with prefill/decode semantics.

The model is deliberately faithful to the structure sketched in the paper's
Fig. 1: an embedding, a stack of pre-norm attention + feed-forward blocks, a
final norm and an LM head.  The per-layer KV caches are pluggable so every
quantization scheme under study (fp16, KIVI-like, KVQuant-like, MILLION) can
be swapped in without touching the model code.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.models.attention import AttentionBlock
from repro.models.config import ModelConfig
from repro.models.kv_cache import (
    FullPrecisionCacheFactory,
    KVCacheFactory,
    KVCacheLayer,
)
from repro.models.linear import Embedding, Linear
from repro.models.sampling import GreedySampler
from repro.models.tensor_ops import ACTIVATION_FUNCTIONS, layer_norm, rms_norm
from repro.utils.rng import SeedLike, get_rng
from repro.utils.validation import require

# Called with (layer_index, keys, values) whenever a layer produces new KV.
LayerKVObserver = Callable[[int, np.ndarray, np.ndarray], None]


@dataclass
class ModelContext:
    """Snapshot of a model's mutable inference state (caches + position).

    A context holds *references* to the per-layer caches, not copies: saving
    a context and continuing to run the model mutates the saved caches.  It
    is the unit of sequence identity — swapping contexts in and out of one
    :class:`TransformerLM` lets many independent sequences share the same
    weights (see :mod:`repro.serving`), and lets callers run a throwaway
    computation (e.g. full-precision reference logits) without disturbing the
    live context.
    """

    caches: list[KVCacheLayer]
    cache_factory: KVCacheFactory
    next_position: int = 0

    @property
    def context_length(self) -> int:
        return self.next_position


class Norm:
    """RMSNorm or LayerNorm selected by the model configuration."""

    def __init__(
        self,
        kind: str,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        eps: float = 1e-5,
    ) -> None:
        require(kind in ("rmsnorm", "layernorm"), f"unknown norm kind {kind!r}")
        self.kind = kind
        self.weight = np.asarray(weight, dtype=np.float32)
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float32)
        self.eps = eps

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if self.kind == "rmsnorm":
            return rms_norm(x, self.weight, eps=self.eps)
        return layer_norm(x, self.weight, self.bias, eps=self.eps)

    def num_parameters(self) -> int:
        return self.weight.size + (self.bias.size if self.bias is not None else 0)


class FeedForward:
    """Position-wise MLP: SwiGLU for ``silu`` models, plain MLP for ``gelu``."""

    def __init__(
        self,
        activation: str,
        w_in: Linear,
        w_out: Linear,
        w_gate: Optional[Linear] = None,
    ) -> None:
        require(activation in ACTIVATION_FUNCTIONS, f"unknown activation {activation!r}")
        if activation == "silu" and w_gate is None:
            raise ValueError("silu feed-forward requires a gate projection")
        self.activation_name = activation
        self.activation = ACTIVATION_FUNCTIONS[activation]
        self.w_in = w_in
        self.w_out = w_out
        self.w_gate = w_gate

    def __call__(self, x: np.ndarray, paired: bool = False) -> np.ndarray:
        if self.w_gate is not None:
            hidden = self.activation(self.w_gate(x, paired=paired)) * self.w_in(
                x, paired=paired
            )
        else:
            hidden = self.activation(self.w_in(x, paired=paired))
        return self.w_out(hidden, paired=paired)

    def num_parameters(self) -> int:
        total = self.w_in.num_parameters() + self.w_out.num_parameters()
        if self.w_gate is not None:
            total += self.w_gate.num_parameters()
        return total


class TransformerBlock:
    """Pre-norm residual block: ``x + attn(norm(x))`` then ``x + ffn(norm(x))``."""

    def __init__(
        self,
        attention: AttentionBlock,
        feed_forward: FeedForward,
        attention_norm: Norm,
        ffn_norm: Norm,
    ) -> None:
        self.attention = attention
        self.feed_forward = feed_forward
        self.attention_norm = attention_norm
        self.ffn_norm = ffn_norm

    def forward(
        self,
        x: np.ndarray,
        cache: KVCacheLayer,
        positions: np.ndarray,
        kv_observer=None,
        paired: bool = False,
    ) -> np.ndarray:
        attn_out = self.attention.forward(
            self.attention_norm(x), cache, positions, kv_observer=kv_observer,
            paired=paired,
        )
        x = x + attn_out
        x = x + self.feed_forward(self.ffn_norm(x), paired=paired)
        return x

    def fused_decode(
        self,
        x: np.ndarray,
        caches: Sequence[KVCacheLayer],
        positions: np.ndarray,
        batch_attend=None,
        layer_index: int = 0,
    ) -> np.ndarray:
        """One block step for stacked single-token rows of ``B`` sequences.

        Norms, residual adds and activations are row-wise, and the linear
        projections use the row-invariant paired kernel, so row ``b`` is
        bit-identical to running :meth:`forward` on sequence ``b`` alone.
        """
        attn_out = self.attention.fused_decode(
            self.attention_norm(x), list(caches), positions, batch_attend,
            layer_index=layer_index,
        )
        x = x + attn_out
        x = x + self.feed_forward(self.ffn_norm(x), paired=True)
        return x

    def num_parameters(self) -> int:
        return (
            self.attention.num_parameters()
            + self.feed_forward.num_parameters()
            + self.attention_norm.num_parameters()
            + self.ffn_norm.num_parameters()
        )


class TransformerLM:
    """Auto-regressive language model with pluggable per-layer KV caches.

    Typical usage::

        model = load_model("llama-2-7b-tiny")
        model.reset_cache(MillionCacheFactory(quantizers))
        logits = model.prefill(prompt_ids)
        token = int(np.argmax(logits[-1]))
        logits = model.decode_step(token)
    """

    def __init__(
        self,
        config: ModelConfig,
        token_embedding: Embedding,
        blocks: Sequence[TransformerBlock],
        final_norm: Norm,
        position_embedding: Optional[Embedding] = None,
        lm_head: Optional[Linear] = None,
        cache_factory: Optional[KVCacheFactory] = None,
    ) -> None:
        require(len(blocks) == config.n_layers, "number of blocks must match config")
        if config.positional == "absolute" and position_embedding is None:
            raise ValueError("absolute positional model requires a position embedding")
        self.config = config
        self.token_embedding = token_embedding
        self.position_embedding = position_embedding
        self.blocks = list(blocks)
        self.final_norm = final_norm
        self.lm_head = lm_head
        self.cache_factory: KVCacheFactory = cache_factory or FullPrecisionCacheFactory()
        self.kv_observers: list[LayerKVObserver] = []
        self.caches: list[KVCacheLayer] = []
        self._next_position = 0
        self.reset_cache()

    # Cache management ---------------------------------------------------

    def reset_cache(self, factory: Optional[KVCacheFactory] = None) -> None:
        """Drop cached context; optionally switch the KV-cache scheme."""
        self.restore_context(self.fresh_context(factory))

    @property
    def context_length(self) -> int:
        """Number of tokens currently held in the KV caches."""
        return self._next_position

    # Context save/restore ------------------------------------------------

    def save_context(self) -> ModelContext:
        """Snapshot the current inference state (caches, factory, position).

        The snapshot shares the cache objects with the model — it is a handle
        for swapping, not a deep copy.  Pair with :meth:`restore_context`.
        """
        return ModelContext(self.caches, self.cache_factory, self._next_position)

    def restore_context(self, context: ModelContext) -> None:
        """Make ``context`` the model's live inference state."""
        self.caches = context.caches
        self.cache_factory = context.cache_factory
        self._next_position = context.next_position

    def fresh_context(self, factory: Optional[KVCacheFactory] = None) -> ModelContext:
        """Build an empty context (new caches, position 0) without adopting it."""
        factory = factory or self.cache_factory
        caches = [factory.create(i, self.config) for i in range(self.config.n_layers)]
        return ModelContext(caches, factory, 0)

    @contextmanager
    def temporary_context(
        self, factory: Optional[KVCacheFactory] = None
    ) -> Iterator["TransformerLM"]:
        """Run with a throwaway empty context, then restore the previous one.

        Example::

            with model.temporary_context(FullPrecisionCacheFactory()):
                reference = model.forward(token_ids)
        """
        saved = self.save_context()
        self.restore_context(self.fresh_context(factory))
        try:
            yield self
        finally:
            self.restore_context(saved)

    def cache_memory_bytes(self) -> float:
        """Total modelled KV-cache footprint across all layers."""
        return float(sum(cache.memory_bytes() for cache in self.caches))

    def advance_position(self, n_tokens: int) -> None:
        """Advance the decode position without running the model.

        For callers that install cached KV state into the per-layer caches
        directly — e.g. shared prompt-prefix blocks adopted from a serving
        block pool — so that subsequent :meth:`forward` calls assign the
        correct positions to new tokens.  The caches themselves must already
        hold ``n_tokens`` additional tokens; this only moves the position
        counter.
        """
        require(n_tokens >= 0, "n_tokens must be >= 0")
        require(
            self._next_position + n_tokens <= self.config.max_seq_len,
            f"advancing by {n_tokens} tokens exceeds max_seq_len "
            f"{self.config.max_seq_len}",
        )
        self._next_position += n_tokens

    # Forward passes -----------------------------------------------------

    def forward(self, token_ids: np.ndarray) -> np.ndarray:
        """Append ``token_ids`` to the context and return their logits.

        ``token_ids`` is a 1-D array; the returned logits have shape
        ``(len(token_ids), vocab_size)``.  Calling ``forward`` repeatedly
        continues the same sequence (prefill followed by single-token decode
        steps is simply ``forward(prompt)`` then ``forward([token])``).
        """
        token_ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
        require(token_ids.size > 0, "token_ids must contain at least one token")
        positions = np.arange(
            self._next_position, self._next_position + token_ids.size, dtype=np.int64
        )
        if int(positions[-1]) >= self.config.max_seq_len:
            raise ValueError(
                f"context length {int(positions[-1]) + 1} exceeds max_seq_len "
                f"{self.config.max_seq_len}"
            )
        # Single-token (decode-style) forwards use the row-invariant paired
        # projection kernel so their logits match the rows of a fused batched
        # decode step bit for bit; multi-token prefill keeps full GEMMs.
        paired = token_ids.size == 1
        x = self.token_embedding(token_ids)
        if self.position_embedding is not None:
            x = x + self.position_embedding(positions)
        for layer_index, block in enumerate(self.blocks):
            observer = self._make_layer_observer(layer_index)
            x = block.forward(
                x, self.caches[layer_index], positions, kv_observer=observer,
                paired=paired,
            )
        x = self.final_norm(x)
        logits = self._project_logits(x, paired=paired)
        self._next_position += token_ids.size
        return logits

    def fused_decode_step(
        self,
        tokens: np.ndarray,
        contexts: Sequence[ModelContext],
        batch_attend=None,
    ) -> np.ndarray:
        """Advance ``B`` independent sequences by one token in one pass.

        ``tokens[b]`` is appended to ``contexts[b]`` (each context carries its
        own per-layer caches and position); the return value is ``(B, vocab)``
        logits.  Every layer runs one stacked traversal — norms, paired
        projections, one (possibly fused) attention call — instead of ``B``
        full model traversals, and each row is bit-identical to calling
        :meth:`decode_step` on that context alone (the engine's sequential
        path is the reference oracle; a test sweeps both).

        ``batch_attend`` follows :data:`repro.models.attention.BatchAttend`;
        ``None`` falls back to per-sequence ``append``/``attend`` against
        each context's caches, which supports every cache scheme.
        """
        require(not self.kv_observers, "fused decode does not support kv observers")
        tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
        require(tokens.size == len(contexts), "one token per context required")
        require(tokens.size > 0, "tokens must contain at least one token")
        positions = np.asarray(
            [context.next_position for context in contexts], dtype=np.int64
        )
        if int(positions.max()) >= self.config.max_seq_len:
            raise ValueError(
                f"context length {int(positions.max()) + 1} exceeds max_seq_len "
                f"{self.config.max_seq_len}"
            )
        x = self.token_embedding(tokens)
        if self.position_embedding is not None:
            x = x + self.position_embedding(positions)
        for layer_index, block in enumerate(self.blocks):
            caches = [context.caches[layer_index] for context in contexts]
            x = block.fused_decode(
                x, caches, positions, batch_attend, layer_index=layer_index
            )
        x = self.final_norm(x)
        logits = self._project_logits(x, paired=True)
        for context in contexts:
            context.next_position += 1
        return logits

    def prefill(self, token_ids: np.ndarray) -> np.ndarray:
        """Process the prompt in one batch (the paper's prefill stage)."""
        return self.forward(token_ids)

    def decode_step(self, token_id: int) -> np.ndarray:
        """Generate logits for one new token (the paper's decode stage)."""
        return self.forward(np.asarray([token_id], dtype=np.int64))[0]

    def generate(
        self,
        prompt_ids: np.ndarray,
        max_new_tokens: int,
        sampler=None,
        seed: SeedLike = None,
        stop_token: Optional[int] = None,
        reset: bool = True,
    ) -> np.ndarray:
        """Auto-regressively generate up to ``max_new_tokens`` tokens."""
        require(max_new_tokens >= 0, "max_new_tokens must be >= 0")
        sampler = sampler or GreedySampler()
        rng = get_rng(seed)
        if reset:
            self.reset_cache()
        logits = self.prefill(np.asarray(prompt_ids, dtype=np.int64))
        generated: list[int] = []
        next_logits = logits[-1]
        for _ in range(max_new_tokens):
            if self._next_position >= self.config.max_seq_len:
                break
            token = sampler(next_logits, rng)
            generated.append(token)
            if stop_token is not None and token == stop_token:
                break
            if self._next_position >= self.config.max_seq_len:
                break
            next_logits = self.decode_step(token)
        return np.asarray(generated, dtype=np.int64)

    # Introspection ------------------------------------------------------

    def num_parameters(self) -> int:
        total = self.token_embedding.num_parameters()
        if self.position_embedding is not None:
            total += self.position_embedding.num_parameters()
        total += sum(block.num_parameters() for block in self.blocks)
        total += self.final_norm.num_parameters()
        if self.lm_head is not None:
            total += self.lm_head.num_parameters()
        return total

    # Internal helpers ---------------------------------------------------

    def _project_logits(self, x: np.ndarray, paired: bool = False) -> np.ndarray:
        if self.lm_head is not None:
            return self.lm_head(x, paired=paired)
        if paired:
            from repro.models.tensor_ops import paired_rows_matmul

            return paired_rows_matmul(x, self.token_embedding.weight.T)
        return x @ self.token_embedding.weight.T

    def _make_layer_observer(self, layer_index: int):
        if not self.kv_observers:
            return None

        def observer(keys: np.ndarray, values: np.ndarray) -> None:
            for callback in self.kv_observers:
                callback(layer_index, keys, values)

        return observer
