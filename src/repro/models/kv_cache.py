"""KV-cache abstractions.

Every cache scheme (full precision, KIVI-like, KVQuant-like, MILLION) is a
:class:`KVCacheLayer`.  The cache owns the attention computation over the
tokens it stores, which is what allows MILLION to answer attention queries
through ADC lookup tables without ever de-quantizing its keys while simpler
schemes materialise ``(K̂, V̂)`` and share :func:`dense_attention`.

The interface is *lazy*: keys/values appended by the most recent call stay in
a full-precision pending block until the next append, mirroring the paper's
dataflow where the current token's KV participates in attention at full
precision and is quantized asynchronously afterwards (Fig. 5).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Protocol

import numpy as np

from repro.models.attention_math import dense_attention
from repro.models.config import ModelConfig

FP16_BYTES = 2.0


def fp16_kv_bytes(
    n_tokens: int,
    kv_heads: int,
    head_dim: int,
    bytes_per_value: float = FP16_BYTES,
) -> float:
    """Full-precision footprint of ``n_tokens`` key+value rows.

    The one shared accounting rule every cache adapter and the serving
    layer's reports derive from — keeping the "what would fp16 cost"
    baseline identical across schemes is what makes compression ratios and
    the Pareto bench's KV-bytes axis comparable.
    """
    return float(2 * n_tokens * kv_heads * head_dim * bytes_per_value)


class KVCacheLayer(ABC):
    """Per-layer key/value cache with scheme-specific attention."""

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        self._seq_len = 0

    @property
    def seq_len(self) -> int:
        """Number of tokens whose KV pairs are currently cached."""
        return self._seq_len

    def full_precision_bytes(self) -> float:
        """What this cache's tokens would cost stored as fp16."""
        return fp16_kv_bytes(
            self.seq_len, self.config.kv_heads, self.config.head_dim
        )

    def compression_ratio(self) -> float:
        """Full-precision footprint divided by the actual footprint."""
        actual = self.memory_bytes()
        if actual <= 0:
            return 1.0
        return float(self.full_precision_bytes() / actual)

    @abstractmethod
    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Add post-positional keys/values of shape ``(t, kv_heads, head_dim)``."""

    @abstractmethod
    def attend(
        self,
        queries: np.ndarray,
        query_positions: np.ndarray,
        scale: float,
        alibi_head_slopes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Causal attention of ``queries`` over all cached tokens.

        ``queries`` has shape ``(n_queries, n_heads, head_dim)``; the result
        has the same shape.
        """

    @abstractmethod
    def memory_bytes(self) -> float:
        """Model the cache footprint in bytes (fp16 accounting for baselines)."""

    def reset(self) -> None:
        """Drop all cached tokens."""
        self._seq_len = 0

    def _validate_append(self, keys: np.ndarray, values: np.ndarray) -> None:
        expected = (self.config.kv_heads, self.config.head_dim)
        if keys.ndim != 3 or keys.shape[1:] != expected:
            raise ValueError(
                f"keys must have shape (t, {expected[0]}, {expected[1]}), got {keys.shape}"
            )
        if values.shape != keys.shape:
            raise ValueError(
                f"values shape {values.shape} must match keys shape {keys.shape}"
            )


class KVCacheFactory(Protocol):
    """Creates one :class:`KVCacheLayer` per transformer layer."""

    def create(self, layer_index: int, config: ModelConfig) -> KVCacheLayer:
        """Build the cache for ``layer_index``."""
        ...


class FullPrecisionKVCacheLayer(KVCacheLayer):
    """Reference fp16-style cache: stores keys/values verbatim."""

    def __init__(self, config: ModelConfig, bytes_per_value: float = FP16_BYTES) -> None:
        super().__init__(config)
        self.bytes_per_value = bytes_per_value
        self._key_blocks: list[np.ndarray] = []
        self._value_blocks: list[np.ndarray] = []
        self._key_positions: list[np.ndarray] = []

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        self._validate_append(keys, values)
        positions = np.arange(self._seq_len, self._seq_len + keys.shape[0])
        self._key_blocks.append(keys)
        self._value_blocks.append(values)
        self._key_positions.append(positions)
        self._seq_len += keys.shape[0]

    def materialize_kv(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(keys, values, positions)`` over all cached tokens."""
        if not self._key_blocks:
            shape = (0, self.config.kv_heads, self.config.head_dim)
            empty = np.zeros(shape, dtype=np.float32)
            return empty, empty.copy(), np.zeros(0, dtype=np.int64)
        keys = np.concatenate(self._key_blocks, axis=0)
        values = np.concatenate(self._value_blocks, axis=0)
        positions = np.concatenate(self._key_positions, axis=0)
        return keys, values, positions

    def attend(
        self,
        queries: np.ndarray,
        query_positions: np.ndarray,
        scale: float,
        alibi_head_slopes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        keys, values, key_positions = self.materialize_kv()
        return dense_attention(
            queries,
            keys,
            values,
            query_positions,
            key_positions,
            scale,
            alibi_head_slopes=alibi_head_slopes,
        )

    def memory_bytes(self) -> float:
        return fp16_kv_bytes(
            self._seq_len,
            self.config.kv_heads,
            self.config.head_dim,
            bytes_per_value=self.bytes_per_value,
        )

    def reset(self) -> None:
        super().reset()
        self._key_blocks.clear()
        self._value_blocks.clear()
        self._key_positions.clear()


class FullPrecisionCacheFactory:
    """Factory producing :class:`FullPrecisionKVCacheLayer` for every layer."""

    def __init__(self, bytes_per_value: float = FP16_BYTES) -> None:
        self.bytes_per_value = bytes_per_value

    def create(self, layer_index: int, config: ModelConfig) -> KVCacheLayer:
        return FullPrecisionKVCacheLayer(config, bytes_per_value=self.bytes_per_value)
