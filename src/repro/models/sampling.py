"""Token samplers used by :meth:`TransformerLM.generate`."""

from __future__ import annotations

import numpy as np

from repro.models.tensor_ops import softmax
from repro.utils.rng import SeedLike, get_rng
from repro.utils.validation import require


class GreedySampler:
    """Always pick the highest-probability token (deterministic)."""

    def __call__(self, logits: np.ndarray, rng: np.random.Generator) -> int:
        return int(np.argmax(logits))


class TemperatureSampler:
    """Sample from the softmax distribution at a given temperature."""

    def __init__(self, temperature: float = 1.0) -> None:
        require(temperature > 0, f"temperature must be positive, got {temperature}")
        self.temperature = temperature

    def __call__(self, logits: np.ndarray, rng: np.random.Generator) -> int:
        probs = softmax(np.asarray(logits, dtype=np.float64) / self.temperature)
        probs = probs / probs.sum()
        return int(rng.choice(len(probs), p=probs))


class TopKSampler:
    """Sample among the ``k`` highest-probability tokens."""

    def __init__(self, k: int, temperature: float = 1.0) -> None:
        require(k >= 1, f"k must be >= 1, got {k}")
        require(temperature > 0, f"temperature must be positive, got {temperature}")
        self.k = k
        self.temperature = temperature

    def __call__(self, logits: np.ndarray, rng: np.random.Generator) -> int:
        logits = np.asarray(logits, dtype=np.float64) / self.temperature
        k = min(self.k, logits.shape[-1])
        top_indices = np.argpartition(logits, -k)[-k:]
        probs = softmax(logits[top_indices])
        probs = probs / probs.sum()
        return int(top_indices[rng.choice(k, p=probs)])


class TopPSampler:
    """Nucleus sampling: sample from the smallest set with cumulative prob >= p."""

    def __init__(self, p: float = 0.9, temperature: float = 1.0) -> None:
        require(0.0 < p <= 1.0, f"p must be in (0, 1], got {p}")
        require(temperature > 0, f"temperature must be positive, got {temperature}")
        self.p = p
        self.temperature = temperature

    def __call__(self, logits: np.ndarray, rng: np.random.Generator) -> int:
        logits = np.asarray(logits, dtype=np.float64) / self.temperature
        probs = softmax(logits).astype(np.float64)
        order = np.argsort(-probs)
        sorted_probs = probs[order]
        cumulative = np.cumsum(sorted_probs)
        cutoff = int(np.searchsorted(cumulative, self.p) + 1)
        kept = order[:cutoff]
        kept_probs = probs[kept]
        kept_probs = kept_probs / kept_probs.sum()
        return int(kept[rng.choice(cutoff, p=kept_probs)])


def sample_token(
    logits: np.ndarray, sampler=None, seed: SeedLike = None
) -> int:
    """Convenience wrapper: sample one token id from ``logits``."""
    sampler = sampler or GreedySampler()
    return sampler(logits, get_rng(seed))
