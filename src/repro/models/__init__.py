"""NumPy transformer substrate: configs, layers, caches and the model zoo."""

from repro.models.attention import AttentionBlock
from repro.models.attention_math import (
    attention_scores,
    causal_score_mask,
    dense_attention,
    repeat_kv_heads,
)
from repro.models.config import ModelConfig
from repro.models.kv_cache import (
    FullPrecisionCacheFactory,
    FullPrecisionKVCacheLayer,
    KVCacheFactory,
    KVCacheLayer,
)
from repro.models.linear import Embedding, Linear
from repro.models.model_zoo import (
    MODEL_ZOO,
    ModelRosterEntry,
    available_models,
    get_model_config,
    load_model,
    model_roster,
)
from repro.models.positional import (
    RotaryEmbedding,
    alibi_bias,
    alibi_slopes,
    rope_frequencies,
    yarn_attention_scale,
    yarn_frequencies,
)
from repro.models.sampling import (
    GreedySampler,
    TemperatureSampler,
    TopKSampler,
    TopPSampler,
    sample_token,
)
from repro.models.tensor_ops import (
    OnlineSoftmaxState,
    cross_entropy,
    gelu,
    layer_norm,
    log_softmax,
    rms_norm,
    silu,
    softmax,
)
from repro.models.tokenizer import ByteTokenizer, WordTokenizer
from repro.models.transformer import (
    FeedForward,
    ModelContext,
    Norm,
    TransformerBlock,
    TransformerLM,
)
from repro.models.weights import OutlierSpec, build_model

__all__ = [
    "AttentionBlock",
    "attention_scores",
    "causal_score_mask",
    "dense_attention",
    "repeat_kv_heads",
    "ModelConfig",
    "FullPrecisionCacheFactory",
    "FullPrecisionKVCacheLayer",
    "KVCacheFactory",
    "KVCacheLayer",
    "Embedding",
    "Linear",
    "MODEL_ZOO",
    "ModelRosterEntry",
    "available_models",
    "get_model_config",
    "load_model",
    "model_roster",
    "RotaryEmbedding",
    "alibi_bias",
    "alibi_slopes",
    "rope_frequencies",
    "yarn_attention_scale",
    "yarn_frequencies",
    "GreedySampler",
    "TemperatureSampler",
    "TopKSampler",
    "TopPSampler",
    "sample_token",
    "OnlineSoftmaxState",
    "cross_entropy",
    "gelu",
    "layer_norm",
    "log_softmax",
    "rms_norm",
    "silu",
    "softmax",
    "ByteTokenizer",
    "WordTokenizer",
    "FeedForward",
    "ModelContext",
    "Norm",
    "TransformerBlock",
    "TransformerLM",
    "OutlierSpec",
    "build_model",
]
