"""Model configuration for the NumPy transformer substrate."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Optional

from repro.utils.validation import require, require_divisible, require_in

POSITIONAL_KINDS = ("absolute", "rope", "alibi", "yarn")
NORM_KINDS = ("rmsnorm", "layernorm")
ACTIVATIONS = ("silu", "gelu")


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters of a decoder-only transformer language model.

    The defaults describe a tiny model suitable for unit tests; the model zoo
    (:mod:`repro.models.model_zoo`) builds the five analogues of the paper's
    Table I from this class.
    """

    name: str = "tiny"
    vocab_size: int = 512
    d_model: int = 128
    n_layers: int = 2
    n_heads: int = 4
    n_kv_heads: Optional[int] = None
    d_ff: Optional[int] = None
    max_seq_len: int = 1024
    positional: str = "rope"
    rope_theta: float = 10000.0
    rope_scaling_factor: float = 1.0
    original_max_seq_len: Optional[int] = None
    norm: str = "rmsnorm"
    norm_eps: float = 1e-5
    activation: str = "silu"
    tie_embeddings: bool = True
    dtype: str = "float32"

    def __post_init__(self) -> None:
        require(self.vocab_size >= 2, f"vocab_size must be >= 2, got {self.vocab_size}")
        require(self.d_model >= 1, f"d_model must be >= 1, got {self.d_model}")
        require(self.n_layers >= 1, f"n_layers must be >= 1, got {self.n_layers}")
        require(self.n_heads >= 1, f"n_heads must be >= 1, got {self.n_heads}")
        require_divisible(self.d_model, self.n_heads, "d_model must be divisible by n_heads")
        require_in(self.positional, POSITIONAL_KINDS, "positional")
        require_in(self.norm, NORM_KINDS, "norm")
        require_in(self.activation, ACTIVATIONS, "activation")
        require(self.max_seq_len >= 1, f"max_seq_len must be >= 1, got {self.max_seq_len}")
        kv_heads = self.n_kv_heads if self.n_kv_heads is not None else self.n_heads
        require(kv_heads >= 1, f"n_kv_heads must be >= 1, got {kv_heads}")
        require_divisible(
            self.n_heads, kv_heads, "n_heads must be divisible by n_kv_heads"
        )
        if self.positional == "yarn":
            require(
                self.rope_scaling_factor >= 1.0,
                "yarn positional embedding requires rope_scaling_factor >= 1.0",
            )

    # Derived quantities -------------------------------------------------

    @property
    def head_dim(self) -> int:
        """Dimension of a single attention head."""
        return self.d_model // self.n_heads

    @property
    def kv_heads(self) -> int:
        """Number of key/value heads (GQA when smaller than ``n_heads``)."""
        return self.n_kv_heads if self.n_kv_heads is not None else self.n_heads

    @property
    def kv_dim(self) -> int:
        """Total key (or value) width per token."""
        return self.kv_heads * self.head_dim

    @property
    def ffn_dim(self) -> int:
        """Hidden width of the feed-forward block."""
        return self.d_ff if self.d_ff is not None else 4 * self.d_model

    @property
    def gqa_group_size(self) -> int:
        """How many query heads share one KV head."""
        return self.n_heads // self.kv_heads

    def kv_cache_bytes_per_token(self, bytes_per_value: float = 2.0) -> float:
        """KV-cache footprint of one token across all layers.

        ``bytes_per_value`` defaults to fp16 (2 bytes) as used by the paper's
        baseline.
        """
        return 2.0 * self.n_layers * self.kv_dim * bytes_per_value

    def num_parameters(self) -> int:
        """Approximate parameter count (used to report the Table I analogue)."""
        d, v = self.d_model, self.vocab_size
        embed = v * d
        pos = self.max_seq_len * d if self.positional == "absolute" else 0
        attn = d * d + 2 * d * self.kv_dim + d * d  # wq + wk + wv + wo
        if self.activation == "silu":
            ffn = 3 * d * self.ffn_dim  # gate, up, down
        else:
            ffn = 2 * d * self.ffn_dim
        norms = 2 * d
        per_layer = attn + ffn + norms
        head = 0 if self.tie_embeddings else v * d
        return embed + pos + self.n_layers * per_layer + d + head

    def to_dict(self) -> dict:
        """Serialise the configuration to a plain dictionary."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ModelConfig":
        """Construct a configuration from :meth:`to_dict` output."""
        return cls(**data)
