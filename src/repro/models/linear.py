"""Minimal parameterised layers (linear projection and embedding lookup)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.tensor_ops import paired_rows_matmul


class Linear:
    """Dense projection ``y = x @ weight + bias``.

    ``weight`` has shape ``(in_features, out_features)`` so activations are
    row-major, matching the rest of the library.
    """

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray] = None) -> None:
        weight = np.asarray(weight, dtype=np.float32)
        if weight.ndim != 2:
            raise ValueError(f"weight must be 2-D, got shape {weight.shape}")
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float32)
            if bias.shape != (weight.shape[1],):
                raise ValueError(
                    f"bias shape {bias.shape} does not match out_features {weight.shape[1]}"
                )
        self.weight = weight
        self.bias = bias

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def __call__(self, x: np.ndarray, paired: bool = False) -> np.ndarray:
        """Project ``x``; with ``paired=True`` use the row-invariant kernel.

        Decode-path projections must produce the same bits whether a step
        processes one sequence's row or a stacked batch of rows (the fused
        engine runs both against each other), so they go through
        :func:`paired_rows_matmul` which pins every BLAS call to a fixed
        two-row shape.  Prefill keeps the plain full-size GEMM.
        """
        x = np.asarray(x, dtype=np.float32)
        out = paired_rows_matmul(x, self.weight) if paired else x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def num_parameters(self) -> int:
        return self.weight.size + (self.bias.size if self.bias is not None else 0)


class Embedding:
    """Token (or position) embedding lookup table."""

    def __init__(self, weight: np.ndarray) -> None:
        weight = np.asarray(weight, dtype=np.float32)
        if weight.ndim != 2:
            raise ValueError(f"embedding weight must be 2-D, got shape {weight.shape}")
        self.weight = weight

    @property
    def num_embeddings(self) -> int:
        return self.weight.shape[0]

    @property
    def embedding_dim(self) -> int:
        return self.weight.shape[1]

    def __call__(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"indices must be in [0, {self.num_embeddings}), "
                f"got range [{indices.min()}, {indices.max()}]"
            )
        return self.weight[indices]

    def num_parameters(self) -> int:
        return self.weight.size
