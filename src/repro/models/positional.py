"""Positional-embedding machinery: RoPE, YaRN-scaled RoPE and ALiBi.

The paper's Table I spans four positional-encoding families (absolute
learned, RoPE, ALiBi and YaRN-extended RoPE); KV quantization interacts with
each differently because RoPE is applied to keys *before* caching whereas
ALiBi is a score-time bias, so all four are implemented here.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.utils.validation import require, require_divisible


def rope_frequencies(head_dim: int, theta: float = 10000.0) -> np.ndarray:
    """Standard RoPE inverse frequencies, shape ``(head_dim // 2,)``."""
    require_divisible(head_dim, 2, "RoPE requires an even head dimension")
    exponents = np.arange(0, head_dim, 2, dtype=np.float64) / head_dim
    return 1.0 / (theta**exponents)


def yarn_frequencies(
    head_dim: int,
    theta: float = 10000.0,
    scaling_factor: float = 1.0,
    original_max_seq_len: int = 4096,
    beta_fast: float = 32.0,
    beta_slow: float = 1.0,
) -> np.ndarray:
    """YaRN "NTK-by-parts" interpolated RoPE frequencies.

    High-frequency dimensions (short wavelengths, local information) keep
    their original frequencies; low-frequency dimensions are divided by the
    scaling factor (position interpolation); intermediate dimensions are
    linearly blended.  This follows the YaRN construction used by
    Yarn-Llama-2 models to extend 4K-trained RoPE to 128K.
    """
    require(scaling_factor >= 1.0, "scaling_factor must be >= 1.0")
    base_freqs = rope_frequencies(head_dim, theta)
    if scaling_factor == 1.0:
        return base_freqs
    wavelengths = 2.0 * math.pi / base_freqs
    # Number of rotations a dimension completes over the original context.
    rotations = original_max_seq_len / wavelengths
    # Ramp from 0 (keep original frequency) to 1 (fully interpolate).
    ramp = (rotations - beta_fast) / (beta_slow - beta_fast)
    ramp = np.clip(ramp, 0.0, 1.0)
    interpolated = base_freqs / scaling_factor
    return base_freqs * (1.0 - ramp) + interpolated * ramp


def yarn_attention_scale(scaling_factor: float) -> float:
    """Logit temperature correction used by YaRN (``0.1 ln(s) + 1``)."""
    if scaling_factor <= 1.0:
        return 1.0
    return 0.1 * math.log(scaling_factor) + 1.0


class RotaryEmbedding:
    """Precomputed rotary positional embedding.

    Parameters
    ----------
    head_dim:
        Per-head dimension (must be even).
    max_seq_len:
        Largest position that will be requested.
    theta:
        RoPE base.
    scaling_factor, original_max_seq_len:
        When ``scaling_factor > 1`` the YaRN NTK-by-parts frequencies are used
        together with the YaRN attention-scale correction.
    """

    def __init__(
        self,
        head_dim: int,
        max_seq_len: int,
        theta: float = 10000.0,
        scaling_factor: float = 1.0,
        original_max_seq_len: Optional[int] = None,
    ) -> None:
        require_divisible(head_dim, 2, "RoPE requires an even head dimension")
        require(max_seq_len >= 1, "max_seq_len must be >= 1")
        self.head_dim = head_dim
        self.max_seq_len = max_seq_len
        self.theta = theta
        self.scaling_factor = scaling_factor
        original = original_max_seq_len or max_seq_len
        if scaling_factor > 1.0:
            freqs = yarn_frequencies(
                head_dim,
                theta=theta,
                scaling_factor=scaling_factor,
                original_max_seq_len=original,
            )
            self.attention_scale = yarn_attention_scale(scaling_factor)
        else:
            freqs = rope_frequencies(head_dim, theta)
            self.attention_scale = 1.0
        positions = np.arange(max_seq_len, dtype=np.float64)
        angles = np.outer(positions, freqs)  # (max_seq_len, head_dim // 2)
        self._cos = np.cos(angles).astype(np.float32)
        self._sin = np.sin(angles).astype(np.float32)

    def apply(self, x: np.ndarray, positions: np.ndarray) -> np.ndarray:
        """Rotate ``x`` of shape ``(tokens, heads, head_dim)`` by ``positions``.

        The rotation uses the half-split convention (first half paired with
        second half), matching Llama-family implementations.
        """
        x = np.asarray(x, dtype=np.float32)
        positions = np.asarray(positions, dtype=np.int64)
        if x.ndim != 3 or x.shape[-1] != self.head_dim:
            raise ValueError(
                f"expected x of shape (tokens, heads, {self.head_dim}), got {x.shape}"
            )
        if positions.shape != (x.shape[0],):
            raise ValueError(
                f"positions shape {positions.shape} does not match token count {x.shape[0]}"
            )
        if positions.size and int(positions.max()) >= self.max_seq_len:
            raise ValueError(
                f"position {int(positions.max())} exceeds max_seq_len {self.max_seq_len}"
            )
        half = self.head_dim // 2
        cos = self._cos[positions][:, None, :]  # (tokens, 1, half)
        sin = self._sin[positions][:, None, :]
        x1 = x[..., :half]
        x2 = x[..., half:]
        rotated = np.empty_like(x)
        rotated[..., :half] = x1 * cos - x2 * sin
        rotated[..., half:] = x2 * cos + x1 * sin
        return rotated


def alibi_slopes(n_heads: int) -> np.ndarray:
    """Per-head ALiBi slopes as defined by Press et al. (2022).

    For ``n_heads`` a power of two, slopes are a geometric sequence starting at
    ``2^(-8 / n_heads)``; otherwise the standard interleaving fallback is used.
    """
    require(n_heads >= 1, "n_heads must be >= 1")

    def power_of_two_slopes(n: int) -> list[float]:
        start = 2.0 ** (-(2.0 ** -(math.log2(n) - 3)))
        return [start * (start**i) for i in range(n)]

    if math.log2(n_heads).is_integer():
        slopes = power_of_two_slopes(n_heads)
    else:
        closest = 2 ** math.floor(math.log2(n_heads))
        slopes = power_of_two_slopes(closest)
        extra = power_of_two_slopes(2 * closest)[0::2][: n_heads - closest]
        slopes = slopes + extra
    return np.asarray(slopes, dtype=np.float32)


def alibi_bias(
    slopes: np.ndarray, query_positions: np.ndarray, key_positions: np.ndarray
) -> np.ndarray:
    """ALiBi score bias of shape ``(n_heads, n_queries, n_keys)``.

    The bias is ``-slope * (query_pos - key_pos)`` for keys at or before the
    query; positions after the query are handled separately by the causal
    mask, so no masking is applied here.
    """
    slopes = np.asarray(slopes, dtype=np.float32)
    q = np.asarray(query_positions, dtype=np.float32)
    k = np.asarray(key_positions, dtype=np.float32)
    distance = q[:, None] - k[None, :]
    return -slopes[:, None, None] * distance[None, :, :]
