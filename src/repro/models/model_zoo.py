"""Model zoo: tiny analogues of the paper's Table I roster.

Each entry keeps the *structural* property the paper cares about — the
positional-embedding family and the supported context length — while shrinking
width/depth so the models run quickly in NumPy.  The analogy is what matters
for KV quantization: RoPE models cache rotated keys, ALiBi models cache raw
keys and bias scores, YaRN models stretch RoPE to very long contexts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.models.config import ModelConfig
from repro.models.transformer import TransformerLM
from repro.models.weights import OutlierSpec, build_model
from repro.utils.rng import SeedLike
from repro.utils.validation import require

MODEL_ZOO: dict[str, ModelConfig] = {
    # GPT2-xl: absolute learned positions, 1K context, LayerNorm + GELU.
    "gpt2-xl-tiny": ModelConfig(
        name="gpt2-xl-tiny",
        vocab_size=512,
        d_model=256,
        n_layers=4,
        n_heads=4,
        max_seq_len=1024,
        positional="absolute",
        norm="layernorm",
        activation="gelu",
    ),
    # LLaMA-2-7B: RoPE, 4K context, RMSNorm + SwiGLU.
    "llama-2-7b-tiny": ModelConfig(
        name="llama-2-7b-tiny",
        vocab_size=512,
        d_model=256,
        n_layers=4,
        n_heads=4,
        max_seq_len=4096,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    ),
    # MPT-7B: ALiBi, 2K context, LayerNorm + GELU.
    "mpt-7b-tiny": ModelConfig(
        name="mpt-7b-tiny",
        vocab_size=512,
        d_model=256,
        n_layers=4,
        n_heads=4,
        max_seq_len=2048,
        positional="alibi",
        norm="layernorm",
        activation="gelu",
    ),
    # Longchat-7B: RoPE stretched to 32K context.
    "longchat-7b-tiny": ModelConfig(
        name="longchat-7b-tiny",
        vocab_size=512,
        d_model=256,
        n_layers=4,
        n_heads=4,
        max_seq_len=32768,
        positional="rope",
        norm="rmsnorm",
        activation="silu",
    ),
    # Yarn-Llama-2-7B: YaRN-extended RoPE, 128K context, GQA to exercise
    # grouped key/value heads.
    "yarn-llama-2-7b-tiny": ModelConfig(
        name="yarn-llama-2-7b-tiny",
        vocab_size=512,
        d_model=256,
        n_layers=4,
        n_heads=4,
        n_kv_heads=2,
        max_seq_len=131072,
        positional="yarn",
        rope_scaling_factor=32.0,
        original_max_seq_len=4096,
        norm="rmsnorm",
        activation="silu",
    ),
}

# The real models each tiny analogue stands in for (paper Table I).
PAPER_MODEL_ANALOGUES: dict[str, dict] = {
    "gpt2-xl-tiny": {"paper_model": "GPT2-xl", "paper_params": "1.5B", "positional": "Absolute", "seq_len": 1024},
    "llama-2-7b-tiny": {"paper_model": "LLaMA-2-7B", "paper_params": "7B", "positional": "RoPE", "seq_len": 4096},
    "mpt-7b-tiny": {"paper_model": "MPT-7B", "paper_params": "7B", "positional": "ALiBi", "seq_len": 2048},
    "longchat-7b-tiny": {"paper_model": "Longchat-7B", "paper_params": "7B", "positional": "RoPE", "seq_len": 32768},
    "yarn-llama-2-7b-tiny": {"paper_model": "Yarn-LlaMA-2-7B", "paper_params": "7B", "positional": "RoPE (YaRN)", "seq_len": 131072},
}


@dataclass(frozen=True)
class ModelRosterEntry:
    """One row of the Table I analogue produced by :func:`model_roster`."""

    name: str
    paper_model: str
    paper_params: str
    tiny_params: int
    positional: str
    max_seq_len: int


def available_models() -> list[str]:
    """Names accepted by :func:`load_model`."""
    return sorted(MODEL_ZOO)


def get_model_config(name: str, max_seq_len: Optional[int] = None) -> ModelConfig:
    """Return the zoo configuration for ``name`` (optionally overriding length)."""
    require(name in MODEL_ZOO, f"unknown model {name!r}; available: {available_models()}")
    config = MODEL_ZOO[name]
    if max_seq_len is not None and max_seq_len != config.max_seq_len:
        config = ModelConfig(**{**config.to_dict(), "max_seq_len": max_seq_len})
    return config


def load_model(
    name: str,
    seed: SeedLike = 0,
    outlier_spec: Optional[OutlierSpec] = None,
    max_seq_len: Optional[int] = None,
    cache_factory=None,
) -> TransformerLM:
    """Instantiate a zoo model with structured random weights."""
    config = get_model_config(name, max_seq_len=max_seq_len)
    return build_model(
        config, seed=seed, outlier_spec=outlier_spec, cache_factory=cache_factory
    )


def model_roster() -> list[ModelRosterEntry]:
    """Rows for the Table I analogue benchmark."""
    rows = []
    for name in available_models():
        config = MODEL_ZOO[name]
        meta = PAPER_MODEL_ANALOGUES[name]
        rows.append(
            ModelRosterEntry(
                name=name,
                paper_model=meta["paper_model"],
                paper_params=meta["paper_params"],
                tiny_params=config.num_parameters(),
                positional=meta["positional"],
                max_seq_len=config.max_seq_len,
            )
        )
    return rows
