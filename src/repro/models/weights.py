"""Structured weight initialisation.

Real LLMs exhibit two phenomena that MILLION exploits (paper Figs. 2 and 3):

* the **key** cache has a handful of channels with much larger magnitude and
  standard deviation than the rest ("channel outliers"),
* the **value** cache has isolated large entries without channel structure.

Since no pretrained weights are available offline, :func:`build_model`
re-creates those statistics structurally: a fraction of the key-projection
output channels is scaled up (producing key channel outliers after RoPE), and
the value projection receives a sparse heavy-tail mask (producing isotropic
value outliers).  The distribution-analysis benchmarks (Fig. 2/3) verify that
the resulting caches reproduce the qualitative shape the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.attention import AttentionBlock
from repro.models.config import ModelConfig
from repro.models.linear import Embedding, Linear
from repro.models.positional import RotaryEmbedding, alibi_slopes
from repro.models.transformer import FeedForward, Norm, TransformerBlock, TransformerLM
from repro.utils.rng import SeedLike, get_rng, spawn_rngs


@dataclass(frozen=True)
class OutlierSpec:
    """Controls the synthetic outlier structure injected into the weights.

    Attributes
    ----------
    key_channel_fraction:
        Fraction of key channels (per layer) whose projection is amplified.
    key_channel_scale:
        Amplification factor for those channels.
    value_element_fraction:
        Fraction of value-projection entries receiving a heavy-tail boost.
    value_element_scale:
        Boost factor for those entries.
    """

    key_channel_fraction: float = 0.06
    key_channel_scale: float = 6.0
    value_element_fraction: float = 0.01
    value_element_scale: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.key_channel_fraction <= 1.0:
            raise ValueError("key_channel_fraction must be in [0, 1]")
        if not 0.0 <= self.value_element_fraction <= 1.0:
            raise ValueError("value_element_fraction must be in [0, 1]")


def _linear(
    rng: np.random.Generator,
    in_features: int,
    out_features: int,
    std: float,
    with_bias: bool = False,
) -> Linear:
    weight = rng.normal(0.0, std, size=(in_features, out_features)).astype(np.float32)
    bias = np.zeros(out_features, dtype=np.float32) if with_bias else None
    return Linear(weight, bias)


def _norm(config: ModelConfig, rng: np.random.Generator) -> Norm:
    weight = np.ones(config.d_model, dtype=np.float32)
    bias = (
        np.zeros(config.d_model, dtype=np.float32)
        if config.norm == "layernorm"
        else None
    )
    return Norm(config.norm, weight, bias, eps=config.norm_eps)


def _key_projection(
    config: ModelConfig, rng: np.random.Generator, spec: OutlierSpec, std: float
) -> Linear:
    """Key projection with a subset of output channels amplified."""
    weight = rng.normal(0.0, std, size=(config.d_model, config.kv_dim)).astype(np.float32)
    n_outlier = int(round(spec.key_channel_fraction * config.kv_dim))
    if n_outlier > 0 and spec.key_channel_scale != 1.0:
        outlier_channels = rng.choice(config.kv_dim, size=n_outlier, replace=False)
        weight[:, outlier_channels] *= spec.key_channel_scale
    return Linear(weight)


def _value_projection(
    config: ModelConfig, rng: np.random.Generator, spec: OutlierSpec, std: float
) -> Linear:
    """Value projection with sparse heavy-tailed entries (no channel structure)."""
    weight = rng.normal(0.0, std, size=(config.d_model, config.kv_dim)).astype(np.float32)
    if spec.value_element_fraction > 0 and spec.value_element_scale != 1.0:
        mask = rng.random(weight.shape) < spec.value_element_fraction
        weight[mask] *= spec.value_element_scale
    return Linear(weight)


def _build_rope(config: ModelConfig) -> RotaryEmbedding | None:
    if config.positional == "rope":
        return RotaryEmbedding(
            config.head_dim, config.max_seq_len, theta=config.rope_theta
        )
    if config.positional == "yarn":
        return RotaryEmbedding(
            config.head_dim,
            config.max_seq_len,
            theta=config.rope_theta,
            scaling_factor=config.rope_scaling_factor,
            original_max_seq_len=config.original_max_seq_len or config.max_seq_len,
        )
    return None


def _build_block(
    config: ModelConfig,
    rng: np.random.Generator,
    spec: OutlierSpec,
    rope: RotaryEmbedding | None,
    head_slopes: np.ndarray | None,
) -> TransformerBlock:
    d = config.d_model
    proj_std = 1.0 / np.sqrt(d)
    residual_std = proj_std / np.sqrt(2.0 * config.n_layers)
    wq = _linear(rng, d, d, proj_std)
    wk = _key_projection(config, rng, spec, proj_std)
    wv = _value_projection(config, rng, spec, proj_std)
    wo = _linear(rng, d, d, residual_std)
    attention = AttentionBlock(
        config, wq, wk, wv, wo, rope=rope, alibi_head_slopes=head_slopes
    )
    ffn_std = 1.0 / np.sqrt(d)
    ffn_out_std = 1.0 / np.sqrt(config.ffn_dim) / np.sqrt(2.0 * config.n_layers)
    if config.activation == "silu":
        feed_forward = FeedForward(
            "silu",
            w_in=_linear(rng, d, config.ffn_dim, ffn_std),
            w_out=_linear(rng, config.ffn_dim, d, ffn_out_std),
            w_gate=_linear(rng, d, config.ffn_dim, ffn_std),
        )
    else:
        feed_forward = FeedForward(
            "gelu",
            w_in=_linear(rng, d, config.ffn_dim, ffn_std, with_bias=True),
            w_out=_linear(rng, config.ffn_dim, d, ffn_out_std, with_bias=True),
        )
    return TransformerBlock(
        attention,
        feed_forward,
        attention_norm=_norm(config, rng),
        ffn_norm=_norm(config, rng),
    )


def build_model(
    config: ModelConfig,
    seed: SeedLike = 0,
    outlier_spec: OutlierSpec | None = None,
    cache_factory=None,
) -> TransformerLM:
    """Construct a :class:`TransformerLM` with structured random weights.

    The weights are deterministic for a given ``(config, seed, outlier_spec)``
    triple.
    """
    spec = outlier_spec or OutlierSpec()
    layer_rngs = spawn_rngs(seed, config.n_layers + 2)
    embed_rng, head_rng = layer_rngs[-2], layer_rngs[-1]

    token_embedding = Embedding(
        embed_rng.normal(0.0, 0.05, size=(config.vocab_size, config.d_model)).astype(
            np.float32
        )
    )
    position_embedding = None
    if config.positional == "absolute":
        position_embedding = Embedding(
            embed_rng.normal(0.0, 0.02, size=(config.max_seq_len, config.d_model)).astype(
                np.float32
            )
        )
    rope = _build_rope(config)
    head_slopes = alibi_slopes(config.n_heads) if config.positional == "alibi" else None
    blocks = [
        _build_block(config, layer_rngs[i], spec, rope, head_slopes)
        for i in range(config.n_layers)
    ]
    final_norm = _norm(config, get_rng(seed))
    lm_head = None
    if not config.tie_embeddings:
        lm_head = _linear(head_rng, config.d_model, config.vocab_size, 1.0 / np.sqrt(config.d_model))
    return TransformerLM(
        config,
        token_embedding,
        blocks,
        final_norm,
        position_embedding=position_embedding,
        lm_head=lm_head,
        cache_factory=cache_factory,
    )
