"""Simple tokenizers for the synthetic corpora and example scripts."""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import require


class ByteTokenizer:
    """UTF-8 byte-level tokenizer with BOS/EOS specials.

    Vocabulary: ids 0-255 are raw bytes, 256 is BOS, 257 is EOS.
    """

    BOS = 256
    EOS = 257

    @property
    def vocab_size(self) -> int:
        return 258

    def encode(self, text: str, add_bos: bool = True, add_eos: bool = False) -> np.ndarray:
        ids = list(text.encode("utf-8"))
        if add_bos:
            ids = [self.BOS] + ids
        if add_eos:
            ids = ids + [self.EOS]
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: Sequence[int]) -> str:
        raw = bytes(int(i) for i in ids if 0 <= int(i) < 256)
        return raw.decode("utf-8", errors="replace")


class WordTokenizer:
    """Whitespace word tokenizer with a frequency-capped vocabulary."""

    PAD = 0
    UNK = 1
    BOS = 2
    EOS = 3
    _SPECIALS = ("<pad>", "<unk>", "<bos>", "<eos>")

    def __init__(self, vocab: Sequence[str]) -> None:
        self._id_to_word = list(self._SPECIALS) + [
            w for w in vocab if w not in self._SPECIALS
        ]
        self._word_to_id = {w: i for i, w in enumerate(self._id_to_word)}

    @classmethod
    def from_texts(cls, texts: Iterable[str], max_vocab: int = 1024) -> "WordTokenizer":
        """Build a vocabulary from the ``max_vocab`` most frequent words."""
        require(max_vocab > len(cls._SPECIALS), "max_vocab too small for special tokens")
        counts: Counter[str] = Counter()
        for text in texts:
            counts.update(text.split())
        most_common = [w for w, _ in counts.most_common(max_vocab - len(cls._SPECIALS))]
        return cls(most_common)

    @property
    def vocab_size(self) -> int:
        return len(self._id_to_word)

    def encode(self, text: str, add_bos: bool = True, add_eos: bool = False) -> np.ndarray:
        ids = [self._word_to_id.get(w, self.UNK) for w in text.split()]
        if add_bos:
            ids = [self.BOS] + ids
        if add_eos:
            ids = ids + [self.EOS]
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: Sequence[int]) -> str:
        words = []
        for i in ids:
            i = int(i)
            if i in (self.PAD, self.BOS, self.EOS):
                continue
            if 0 <= i < len(self._id_to_word):
                words.append(self._id_to_word[i])
            else:
                words.append("<unk>")
        return " ".join(words)

    def token_to_id(self, word: str) -> int:
        return self._word_to_id.get(word, self.UNK)

    def id_to_token(self, token_id: int) -> str:
        if 0 <= token_id < len(self._id_to_word):
            return self._id_to_word[token_id]
        return "<unk>"
