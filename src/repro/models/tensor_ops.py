"""Numerically-stable tensor primitives shared across the library.

Everything operates on plain ``numpy.ndarray`` in float32/float64.  The
:class:`OnlineSoftmaxState` implements the "OlSoftmax" merge used by MILLION's
Eq. (7) to combine the quantized-past attention with the full-precision
recent-window attention without ever materialising a single softmax over the
whole context.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

NEG_INF = -1e30

#: Row-chunk width of :func:`paired_rows_matmul`.  Every BLAS call it issues
#: has exactly this many rows, which is what makes the kernel row-invariant.
PAIRED_MATMUL_ROWS = 2


def paired_rows_matmul(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``x @ weight`` computed in fixed two-row chunks; row results are
    invariant to how rows are batched.

    BLAS picks its kernel and blocking from the operand shapes: a single-row
    product is forwarded to GEMV (SIMD partial sums along ``k``) while larger
    shapes select size-dependent GEMM blockings, so row ``i`` of a stacked
    ``(B, k) @ (k, n)`` product is *not* bit-identical to computing that row
    alone.  Serving needs exactly that identity — the fused batched decode
    path stacks the per-sequence rows that the sequential reference path
    computes one at a time — so this kernel pins every BLAS call to the same
    ``(2, k) @ (k, n)`` shape: rows are processed in pairs and a lone row is
    duplicated and sliced.  GEMM never mixes one row's data into another
    row's accumulators, so each output row depends only on its own input row
    and the fixed schedule, making the result independent of batch size and
    of which row shares the call.
    """
    x = np.asarray(x, dtype=np.float32)
    n_rows, n_cols = x.shape
    if n_rows == PAIRED_MATMUL_ROWS:
        return x @ weight
    if n_rows == 1:
        return (np.concatenate([x, x], axis=0) @ weight)[:1]
    even = n_rows - (n_rows % PAIRED_MATMUL_ROWS)
    # Stacked matmul runs the identical (2, k) @ (k, n) kernel per slice in
    # one call (bit-equality with the slice-by-slice loop is pinned by a
    # unit test), skipping the Python chunk loop.
    stacked = np.matmul(
        x[:even].reshape(even // PAIRED_MATMUL_ROWS, PAIRED_MATMUL_ROWS, n_cols),
        weight,
    )
    if even == n_rows:
        return np.ascontiguousarray(stacked.reshape(n_rows, weight.shape[1]))
    out = np.empty((n_rows, weight.shape[1]), dtype=np.float32)
    out[:even] = stacked.reshape(even, weight.shape[1])
    tail = x[even:]
    out[even:] = (np.concatenate([tail, tail], axis=0) @ weight)[:1]
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return (exp / np.sum(exp, axis=axis, keepdims=True)).astype(np.float32)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    log_sum = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
    return (shifted - log_sum).astype(np.float32)


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean negative log-likelihood of ``targets`` under ``logits``.

    ``logits`` has shape ``(n, vocab)`` and ``targets`` shape ``(n,)``.
    """
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets shape {targets.shape} does not match logits rows {logits.shape[0]}"
        )
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(targets.shape[0]), targets]
    return float(-np.mean(picked))


def rms_norm(x: np.ndarray, weight: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Root-mean-square layer normalisation (as used by Llama-family models)."""
    x64 = np.asarray(x, dtype=np.float64)
    scale = np.sqrt(np.mean(x64 * x64, axis=-1, keepdims=True) + eps)
    return ((x64 / scale) * weight).astype(np.float32)


def layer_norm(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    eps: float = 1e-5,
) -> np.ndarray:
    """Standard layer normalisation with learnable scale and optional bias."""
    x64 = np.asarray(x, dtype=np.float64)
    mean = np.mean(x64, axis=-1, keepdims=True)
    var = np.var(x64, axis=-1, keepdims=True)
    out = (x64 - mean) / np.sqrt(var + eps) * weight
    if bias is not None:
        out = out + bias
    return out.astype(np.float32)


def silu(x: np.ndarray) -> np.ndarray:
    """Sigmoid-weighted linear unit, ``x * sigmoid(x)``."""
    x64 = np.asarray(x, dtype=np.float64)
    return (x64 / (1.0 + np.exp(-x64))).astype(np.float32)


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (tanh approximation, as in GPT-2)."""
    x64 = np.asarray(x, dtype=np.float64)
    inner = np.sqrt(2.0 / np.pi) * (x64 + 0.044715 * x64**3)
    return (0.5 * x64 * (1.0 + np.tanh(inner))).astype(np.float32)


ACTIVATION_FUNCTIONS = {"silu": silu, "gelu": gelu}


class OnlineSoftmaxState:
    """Streaming softmax-weighted-sum accumulator (flash-attention style).

    Partial attention results over disjoint key blocks are merged without
    re-normalising earlier blocks: for each query we keep the running maximum
    logit ``m``, the running denominator ``l = sum exp(score - m)`` and the
    running numerator ``acc = sum exp(score - m) * value``.

    Shapes: queries are indexed by an arbitrary leading shape ``Q`` (for
    attention this is ``(n_heads, n_queries)``); values have trailing
    dimension ``d``.  ``update`` takes ``scores`` of shape ``Q + (n_keys,)``
    and ``values`` of shape ``(n_keys, d)`` or ``Q + (n_keys, d)``.
    """

    def __init__(self, query_shape: tuple[int, ...], value_dim: int) -> None:
        self.query_shape = tuple(query_shape)
        self.value_dim = int(value_dim)
        self._max = np.full(self.query_shape, NEG_INF, dtype=np.float64)
        self._denom = np.zeros(self.query_shape, dtype=np.float64)
        self._acc = np.zeros(self.query_shape + (value_dim,), dtype=np.float64)

    def update(self, scores: np.ndarray, values: np.ndarray) -> None:
        """Fold one block of scores/values into the running state."""
        scores = np.asarray(scores, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if scores.shape[:-1] != self.query_shape:
            raise ValueError(
                f"scores leading shape {scores.shape[:-1]} does not match "
                f"query shape {self.query_shape}"
            )
        if scores.shape[-1] == 0:
            return
        block_max = np.max(scores, axis=-1)
        new_max = np.maximum(self._max, block_max)
        # Rescale previous accumulators to the new maximum.
        correction = np.exp(self._max - new_max)
        correction = np.where(np.isfinite(correction), correction, 0.0)
        probs = np.exp(scores - new_max[..., None])
        if values.ndim == 2:
            block_acc = probs @ values
        else:
            if values.shape[:-2] != self.query_shape:
                raise ValueError(
                    f"values leading shape {values.shape[:-2]} does not match "
                    f"query shape {self.query_shape}"
                )
            block_acc = np.einsum("...k,...kd->...d", probs, values)
        self._acc = self._acc * correction[..., None] + block_acc
        self._denom = self._denom * correction + probs.sum(axis=-1)
        self._max = new_max

    def merge(self, other: "OnlineSoftmaxState") -> None:
        """Fold another accumulator (over a disjoint key block) into this one."""
        if other.query_shape != self.query_shape or other.value_dim != self.value_dim:
            raise ValueError("cannot merge OnlineSoftmaxState with different shapes")
        new_max = np.maximum(self._max, other._max)
        self_corr = np.where(np.isfinite(self._max), np.exp(self._max - new_max), 0.0)
        other_corr = np.where(np.isfinite(other._max), np.exp(other._max - new_max), 0.0)
        self._acc = self._acc * self_corr[..., None] + other._acc * other_corr[..., None]
        self._denom = self._denom * self_corr + other._denom * other_corr
        self._max = new_max

    def finalize(self) -> np.ndarray:
        """Return the softmax-weighted sum for every query position."""
        denom = np.where(self._denom > 0.0, self._denom, 1.0)
        return (self._acc / denom[..., None]).astype(np.float32)

    @property
    def has_observations(self) -> np.ndarray:
        """Boolean mask of query positions that have received at least one key."""
        return self._denom > 0.0
