"""Observability: request-lifecycle tracing, latency histograms, exposition.

``repro.obs`` is the measurement substrate for the serving stack — one
shared :class:`TraceRecorder` for gateway + replicas (Perfetto-loadable
Chrome trace export), fixed-bucket :class:`Histogram` instances behind
the TTFT/ITL/queue-wait/step-time Prometheus families, a request-id
contextvar correlating logs with spans, and a text-exposition parser the
tests and smoke script use to hold ``/metrics`` to its contract.
"""

from repro.obs.context import (
    bind_request_id,
    current_request_id,
    reset_request_id,
)
from repro.obs.export import (
    chrome_trace_events,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.hist import (
    BATCH_BUCKETS,
    Histogram,
    LATENCY_BUCKETS_S,
    merge_snapshots,
)
from repro.obs.promtext import ExpositionError, Family, Sample, parse_exposition
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    PHASE_COMPLETE,
    PHASE_INSTANT,
    TraceEvent,
    TraceRecorder,
)

__all__ = [
    "BATCH_BUCKETS",
    "ExpositionError",
    "Family",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "NULL_RECORDER",
    "NullRecorder",
    "PHASE_COMPLETE",
    "PHASE_INSTANT",
    "Sample",
    "TraceEvent",
    "TraceRecorder",
    "bind_request_id",
    "chrome_trace_events",
    "current_request_id",
    "merge_snapshots",
    "parse_exposition",
    "reset_request_id",
    "to_chrome_trace",
    "validate_chrome_trace",
]
