"""Observability: tracing, histograms, profiling, health, exposition.

``repro.obs`` is the measurement substrate for the serving stack — one
shared :class:`TraceRecorder` for gateway + replicas (Perfetto-loadable
Chrome trace export), fixed-bucket :class:`Histogram` instances behind
the TTFT/ITL/queue-wait/step-time Prometheus families, a
:class:`PhaseProfiler` attributing fused-decode step time to named
kernels, a :class:`HealthEngine` turning those signals into SLO burn
rates and ok/degraded/unhealthy verdicts, a request-id contextvar
correlating logs with spans, and a text-exposition parser the tests and
smoke script use to hold ``/metrics`` to its contract.
"""

from repro.obs.context import (
    bind_request_id,
    current_request_id,
    reset_request_id,
)
from repro.obs.export import (
    chrome_trace_events,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.health import (
    HEALTH_STATES,
    HealthCheck,
    HealthEngine,
    HealthPolicy,
    HealthSample,
    state_value,
)
from repro.obs.hist import (
    BATCH_BUCKETS,
    Histogram,
    LATENCY_BUCKETS_S,
    delta_snapshots,
    merge_snapshots,
    snapshot_fraction_over,
    snapshot_quantile,
)
from repro.obs.prof import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    merge_phase_snapshots,
    phase_table,
    to_collapsed,
    to_speedscope,
    validate_prof_payload,
)
from repro.obs.promtext import ExpositionError, Family, Sample, parse_exposition
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    PHASE_COMPLETE,
    PHASE_INSTANT,
    TraceEvent,
    TraceRecorder,
)

__all__ = [
    "BATCH_BUCKETS",
    "ExpositionError",
    "Family",
    "HEALTH_STATES",
    "HealthCheck",
    "HealthEngine",
    "HealthPolicy",
    "HealthSample",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "NULL_PROFILER",
    "NULL_RECORDER",
    "NullProfiler",
    "NullRecorder",
    "PHASE_COMPLETE",
    "PHASE_INSTANT",
    "PhaseProfiler",
    "Sample",
    "TraceEvent",
    "TraceRecorder",
    "bind_request_id",
    "chrome_trace_events",
    "current_request_id",
    "delta_snapshots",
    "merge_phase_snapshots",
    "merge_snapshots",
    "parse_exposition",
    "phase_table",
    "reset_request_id",
    "snapshot_fraction_over",
    "snapshot_quantile",
    "state_value",
    "to_chrome_trace",
    "to_collapsed",
    "to_speedscope",
    "validate_chrome_trace",
    "validate_prof_payload",
]
