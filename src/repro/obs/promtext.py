"""Parser/validator for the Prometheus text exposition format.

``/metrics`` is an interface contract: a scrape that renders but does not
*parse* — a stray float ``inf``, a non-monotonic histogram bucket, an
unescaped label value — silently breaks every dashboard built on it.
This module is the consumer side of that contract, used three ways:

* the gateway test suite validates every scrape it takes;
* ``scripts/gateway_smoke.py`` fails CI on an invalid exposition or a
  missing gated family;
* benchmarks read histogram families back without regexes.

Only the subset the gateway emits is supported (``counter``, ``gauge``,
``histogram``; optional timestamps are rejected as unexpected), which is
the point — anything outside the subset is a bug, not an extension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")

#: Suffixes a histogram family's samples may carry.
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class ExpositionError(ValueError):
    """The scrape violates the text exposition format; ``errors`` lists how."""

    def __init__(self, errors: list[str]) -> None:
        super().__init__(
            f"{len(errors)} exposition error(s):\n" + "\n".join(f"- {e}" for e in errors)
        )
        self.errors = errors


@dataclass
class Sample:
    """One sample line: metric name, label dict, parsed float value."""

    name: str
    labels: dict
    value: float
    line_no: int = 0


@dataclass
class Family:
    """One metric family: HELP/TYPE header plus its samples."""

    name: str
    type: str = ""
    help: str = ""
    samples: list[Sample] = field(default_factory=list)

    def value(self, **labels) -> float:
        """The single sample matching ``labels`` exactly (raises otherwise)."""
        matches = [s for s in self.samples if s.labels == labels]
        if len(matches) != 1:
            raise KeyError(
                f"{self.name}: {len(matches)} samples match labels {labels!r}"
            )
        return matches[0].value


def _parse_labels(blob: str, line_no: int, errors: list[str]) -> dict:
    """Parse ``name="value",...`` honouring ``\\\\``, ``\\"`` and ``\\n`` escapes."""
    labels: dict[str, str] = {}
    i = 0
    n = len(blob)
    while i < n:
        eq = blob.find("=", i)
        if eq < 0:
            errors.append(f"line {line_no}: malformed label pair in {{{blob}}}")
            return labels
        name = blob[i:eq].strip().lstrip(",").strip()
        if eq + 1 >= n or blob[eq + 1] != '"':
            errors.append(f"line {line_no}: label {name!r} value is not quoted")
            return labels
        value_chars: list[str] = []
        j = eq + 2
        closed = False
        while j < n:
            ch = blob[j]
            if ch == "\\":
                if j + 1 >= n:
                    break
                escaped = blob[j + 1]
                if escaped == "n":
                    value_chars.append("\n")
                elif escaped in ('"', "\\"):
                    value_chars.append(escaped)
                else:
                    errors.append(
                        f"line {line_no}: invalid escape '\\{escaped}' in label "
                        f"{name!r}"
                    )
                    value_chars.append(escaped)
                j += 2
                continue
            if ch == '"':
                closed = True
                j += 1
                break
            value_chars.append(ch)
            j += 1
        if not closed:
            errors.append(f"line {line_no}: unterminated label value for {name!r}")
            return labels
        labels[name] = "".join(value_chars)
        i = j
    return labels


def _parse_value(text: str, line_no: int, errors: list[str]) -> float:
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    lowered = text.lower()
    if "inf" in lowered or "nan" in lowered:
        # Python float() would happily accept "inf"/"nan", but Prometheus
        # requires the canonical spellings above — this is exactly the
        # ``repr(float)`` bug class the renderer must not regress into.
        errors.append(
            f"line {line_no}: non-finite value {text!r} must be rendered as "
            "+Inf/-Inf/NaN"
        )
        return float(lowered)
    try:
        return float(text)
    except ValueError:
        errors.append(f"line {line_no}: unparseable sample value {text!r}")
        return math.nan


def parse_exposition(text: str) -> dict[str, Family]:
    """Parse a scrape into families; raises :class:`ExpositionError` on faults.

    Beyond shape, this checks the invariants dashboards rely on: HELP and
    TYPE headers precede every family's samples, histogram buckets are
    cumulative-monotonic with a ``+Inf`` bucket equal to ``_count``,
    counters are finite and non-negative, and no sample is duplicated.
    """
    errors: list[str] = []
    families: dict[str, Family] = {}

    def family_for(sample_name: str) -> str:
        if sample_name in families:
            return sample_name
        for suffix in _HISTOGRAM_SUFFIXES:
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if base in families and families[base].type in ("histogram", "summary"):
                    return base
        return sample_name

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            name = parts[0]
            family = families.setdefault(name, Family(name))
            if family.help:
                errors.append(f"line {line_no}: duplicate HELP for {name}")
            family.help = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2 or parts[1] not in _VALID_TYPES:
                errors.append(f"line {line_no}: malformed TYPE line {line!r}")
                continue
            name, metric_type = parts
            family = families.setdefault(name, Family(name))
            if family.type:
                errors.append(f"line {line_no}: duplicate TYPE for {name}")
            if family.samples:
                errors.append(
                    f"line {line_no}: TYPE for {name} appears after its samples"
                )
            family.type = metric_type
            continue
        if line.startswith("#"):
            continue  # free-form comment

        # Sample line: name[{labels}] value
        brace = line.find("{")
        labels: dict = {}
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                errors.append(f"line {line_no}: unbalanced braces in {line!r}")
                continue
            name = line[:brace]
            labels = _parse_labels(line[brace + 1 : close], line_no, errors)
            rest = line[close + 1 :].strip()
        else:
            name, _, rest = line.partition(" ")
            rest = rest.strip()
        if not name or not rest:
            errors.append(f"line {line_no}: malformed sample line {line!r}")
            continue
        if " " in rest:
            errors.append(
                f"line {line_no}: unexpected trailing fields (timestamps are "
                f"not emitted by this gateway): {line!r}"
            )
            rest = rest.split()[0]
        value = _parse_value(rest, line_no, errors)
        base = family_for(name)
        if base not in families:
            errors.append(
                f"line {line_no}: sample {name!r} has no preceding HELP/TYPE "
                "header"
            )
            families[base] = Family(base)
        families[base].samples.append(Sample(name, labels, value, line_no))

    _validate_families(families, errors)
    if errors:
        raise ExpositionError(errors)
    return families


def _validate_families(families: dict[str, Family], errors: list[str]) -> None:
    for family in families.values():
        if not family.type:
            errors.append(f"family {family.name}: missing TYPE header")
        if not family.help:
            errors.append(f"family {family.name}: missing HELP header")
        seen: set[tuple] = set()
        for sample in family.samples:
            key = (sample.name, tuple(sorted(sample.labels.items())))
            if key in seen:
                errors.append(
                    f"line {sample.line_no}: duplicate sample {sample.name} "
                    f"{sample.labels!r}"
                )
            seen.add(key)
        if family.type == "counter":
            for sample in family.samples:
                if math.isnan(sample.value) or sample.value < 0:
                    errors.append(
                        f"family {family.name}: counter value {sample.value} "
                        "is negative or NaN"
                    )
        if family.type == "histogram":
            _validate_histogram(family, errors)


def _series_key(labels: dict, drop: tuple = ("le",)) -> tuple:
    return tuple(sorted((k, v) for k, v in labels.items() if k not in drop))


def _validate_histogram(family: Family, errors: list[str]) -> None:
    buckets: dict[tuple, list[tuple[float, float]]] = {}
    sums: dict[tuple, float] = {}
    counts: dict[tuple, float] = {}
    for sample in family.samples:
        series = _series_key(sample.labels)
        if sample.name == f"{family.name}_bucket":
            le_text = sample.labels.get("le")
            if le_text is None:
                errors.append(
                    f"family {family.name}: _bucket sample without an 'le' label"
                )
                continue
            le = math.inf if le_text == "+Inf" else float(le_text)
            buckets.setdefault(series, []).append((le, sample.value))
        elif sample.name == f"{family.name}_sum":
            sums[series] = sample.value
        elif sample.name == f"{family.name}_count":
            counts[series] = sample.value
        else:
            errors.append(
                f"family {family.name}: unexpected histogram sample "
                f"{sample.name!r}"
            )
    for series in buckets.keys() | sums.keys() | counts.keys():
        label_text = dict(series)
        series_buckets = sorted(buckets.get(series, []))
        if not series_buckets or series_buckets[-1][0] != math.inf:
            errors.append(
                f"family {family.name} {label_text}: missing '+Inf' bucket"
            )
            continue
        last = -math.inf
        for le, cumulative in series_buckets:
            if cumulative < last:
                errors.append(
                    f"family {family.name} {label_text}: bucket le={le} count "
                    f"{cumulative} below previous bucket's {last} "
                    "(buckets must be cumulative and monotonic)"
                )
            last = cumulative
        if series not in counts:
            errors.append(f"family {family.name} {label_text}: missing _count")
        elif counts[series] != series_buckets[-1][1]:
            errors.append(
                f"family {family.name} {label_text}: _count {counts[series]} "
                f"!= +Inf bucket {series_buckets[-1][1]}"
            )
        if series not in sums:
            errors.append(f"family {family.name} {label_text}: missing _sum")
        elif math.isnan(sums[series]):
            errors.append(f"family {family.name} {label_text}: _sum is NaN")


__all__ = ["ExpositionError", "Family", "Sample", "parse_exposition"]
