"""Request-id propagation: one contextvar correlating logs with traces.

The gateway binds the engine-assigned request id for the duration of each
HTTP completion handler; anything that logs inside that context — engine
warnings surfaced through the runner, gateway handler logs — can stamp
the id without threading it through every call signature.  The JSON log
formatter (:func:`repro.utils.logging.enable_json_logging`) reads it, so
a log line and a trace span for the same request share the same key.

Contextvars follow asyncio tasks natively, which is exactly the
propagation the gateway needs: concurrent requests in one event loop each
see their own binding.
"""

from __future__ import annotations

import contextvars
from typing import Optional

_request_id: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_request_id", default=None
)


def bind_request_id(request_id: Optional[str]) -> contextvars.Token:
    """Bind the current context's request id; returns the reset token."""
    return _request_id.set(request_id)


def reset_request_id(token: contextvars.Token) -> None:
    """Undo a :func:`bind_request_id` (restores the previous binding)."""
    _request_id.reset(token)


def current_request_id() -> Optional[str]:
    """The request id bound in this context, or ``None`` outside a request."""
    return _request_id.get()


__all__ = ["bind_request_id", "current_request_id", "reset_request_id"]
