"""``repro-obs``: operator console for a running gateway.

Subcommands::

    repro-obs top --target 127.0.0.1:8707          # live dashboard, ctrl-c to exit
    repro-obs top --target 127.0.0.1:8707 --once   # one frame, no screen clearing (CI)

Also reachable without installing the console script as
``python -m repro.obs top ...``.  The dashboard only *reads* ``/metrics``
and ``/healthz`` — pointing it at a production gateway is always safe.
"""

from __future__ import annotations

import argparse
from typing import Optional


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)
    top = commands.add_parser(
        "top", help="live per-replica dashboard over /metrics and /healthz"
    )
    top.add_argument(
        "--target",
        metavar="HOST:PORT",
        default="127.0.0.1:8707",
        help="gateway to scrape (default %(default)s)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between scrapes (default %(default)s)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render one frame and exit (no screen clearing; CI mode)",
    )
    top.add_argument(
        "--no-color", action="store_true", help="disable ANSI colors"
    )
    top.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        help="per-request HTTP timeout in seconds (default %(default)s)",
    )
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.command == "top":
        # Imported lazily so `repro-obs --help` stays instant.
        from repro.obs.top import run_top

        return run_top(
            args.target,
            interval_s=args.interval,
            once=args.once,
            color=not args.no_color,
            timeout=args.timeout,
        )
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
