"""Chrome trace-event JSON export of a :class:`TraceRecorder`'s buffer.

The output follows the Trace Event Format's *JSON object* flavour —
``{"traceEvents": [...], ...}`` — and loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* every recorder *track* becomes one named thread (``thread_name``
  metadata events), so each replica's engine steps render as their own
  timeline next to the gateway's;
* spans are ``"X"`` (complete) events with microsecond timestamps
  relative to the recorder's epoch; instants are ``"i"`` events;
* each request's spans are chained with flow events (``"s"``/``"t"``/
  ``"f"`` sharing one flow id), so Perfetto draws arrows from the
  gateway's request span through queue wait, prefill and decode on the
  serving replica — the cross-track correlation the trace exists for.

Truncation is explicit: when the ring buffer dropped events, the export's
``otherData.truncated``/``otherData.dropped_events`` say so, instead of a
partial trace masquerading as the whole story.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.trace import PHASE_COMPLETE, TraceEvent, TraceRecorder

#: Synthetic process id for every track (one serving process, many tracks).
_PID = 1


def _microseconds(recorder_seconds: float, epoch: float) -> float:
    return (recorder_seconds - epoch) * 1e6


def chrome_trace_events(
    events: list[TraceEvent],
    *,
    epoch: float = 0.0,
) -> list[dict]:
    """Render recorder events as a Chrome ``traceEvents`` list.

    ``epoch`` is subtracted from every timestamp so traces start near 0.
    """
    tids: dict[str, int] = {}
    out: list[dict] = []
    for event in events:
        tid = tids.get(event.track)
        if tid is None:
            tid = tids[event.track] = len(tids) + 1
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "args": {"name": event.track},
                }
            )
        args = dict(event.args)
        if event.request_id is not None:
            args["request_id"] = event.request_id
        rendered = {
            "name": event.name,
            "ph": event.phase,
            "ts": _microseconds(event.ts, epoch),
            "pid": _PID,
            "tid": tid,
            "args": args,
        }
        if event.phase == PHASE_COMPLETE:
            rendered["dur"] = event.dur * 1e6
        else:
            rendered["s"] = "t"  # instant scope: thread
        out.append(rendered)

    # Flow arrows: chain each request's *spans* in time order.  Flow events
    # bind to the slice at the same (pid, tid, ts), so they are emitted at
    # the exact start timestamps of the spans they connect.
    flows: dict[str, list[TraceEvent]] = {}
    for event in events:
        if event.request_id is not None and event.phase == PHASE_COMPLETE:
            flows.setdefault(event.request_id, []).append(event)
    for flow_id, (request_id, spans) in enumerate(sorted(flows.items()), start=1):
        if len(spans) < 2:
            continue  # an arrow needs two ends
        spans = sorted(spans, key=lambda e: e.ts)
        for index, span in enumerate(spans):
            phase = "s" if index == 0 else ("f" if index == len(spans) - 1 else "t")
            flow = {
                "name": f"request:{request_id}",
                "cat": "request",
                "ph": phase,
                "id": flow_id,
                "ts": _microseconds(span.ts, epoch),
                "pid": _PID,
                "tid": tids[span.track],
            }
            if phase == "f":
                flow["bp"] = "e"  # bind to the enclosing slice
            out.append(flow)
    return out


def to_chrome_trace(
    recorder: TraceRecorder,
    *,
    since: float = 0.0,
    request_id: Optional[str] = None,
) -> dict:
    """Export a recorder snapshot as a Perfetto-loadable JSON object.

    ``since``/``request_id`` filter as in :meth:`TraceRecorder.snapshot`.
    """
    events = recorder.snapshot(since=since, request_id=request_id)
    dropped = recorder.dropped
    return {
        "traceEvents": chrome_trace_events(events, epoch=recorder.epoch),
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "perf_counter",
            "truncated": dropped > 0,
            "dropped_events": dropped,
            "events": len(events),
            "enabled": recorder.enabled,
        },
    }


#: Required trace-event fields per phase (the subset this exporter emits).
_REQUIRED_BY_PHASE = {
    "X": frozenset(("name", "ph", "ts", "dur", "pid", "tid")),
    "i": frozenset(("name", "ph", "ts", "pid", "tid", "s")),
    "M": frozenset(("name", "ph", "pid", "tid", "args")),
    "s": frozenset(("name", "ph", "id", "ts", "pid", "tid")),
    "t": frozenset(("name", "ph", "id", "ts", "pid", "tid")),
    "f": frozenset(("name", "ph", "id", "ts", "pid", "tid")),
}


def validate_chrome_trace(trace: dict) -> None:
    """Raise ``ValueError`` unless ``trace`` is a well-formed export.

    Checks the JSON-object envelope and, for every event, the fields its
    phase requires — the contract Perfetto loading depends on.  Used by the
    trace tests and the CI smoke script against live ``/debug/trace`` output.
    """
    if not isinstance(trace.get("traceEvents"), list):
        raise ValueError("trace is missing a 'traceEvents' list")
    other = trace.get("otherData")
    if not isinstance(other, dict) or "truncated" not in other:
        raise ValueError("trace is missing 'otherData.truncated'")
    for event in trace["traceEvents"]:
        phase = event.get("ph")
        required = _REQUIRED_BY_PHASE.get(phase)
        if required is None:
            raise ValueError(f"unknown event phase {phase!r}: {event}")
        missing = required - set(event)
        if missing:
            raise ValueError(f"{phase!r} event missing {sorted(missing)}: {event}")
        if "ts" in event and not isinstance(event["ts"], (int, float)):
            raise ValueError(f"non-numeric ts in {event}")
        if phase == "X" and event["dur"] < 0:
            raise ValueError(f"negative duration in {event}")
        if phase == "f" and event.get("bp") != "e":
            raise ValueError(f"flow finish without bp='e': {event}")


__all__ = ["chrome_trace_events", "to_chrome_trace", "validate_chrome_trace"]
