"""Phase profiler: attribute fused-decode step time to named kernels.

The request-lifecycle trace (:mod:`repro.obs.trace`) answers *when* a
request queued, prefilled and decoded; it cannot answer *where inside a
decode step the time went* — recording one trace event per kernel per
layer per step would swamp the ring buffer and the hot path alike.
:class:`PhaseProfiler` is the aggregation-first counterpart: hot paths
accumulate ``(count, seconds)`` per named phase and nothing else, so the
enabled cost is two clock reads and a dict update per hook, and the
disabled cost is one attribute check (the same contract as tracing; the
``serving.profiler_overhead`` benchmark gates both).

Phases are ``/``-separated paths forming a static call tree:
``decode/adc_gather`` is time inside the fused attention's segment-ADC
gather, attributed under the engine's ``decode`` span.  The engine
records the *parent* phases (``decode``, ``prefill``) from the same wall
split it already exports as ``decode_seconds_total``, so per-phase
**self time** — a phase's total minus its direct children — sums exactly
to the measured step wall time, with the un-instrumented remainder
(norms, MLPs, logit projections, Python glue) showing up as the parent's
own self time rather than silently vanishing.

Exports (all derived from one :meth:`PhaseProfiler.snapshot`):

* :func:`phase_table` — per-phase count/total/self rows for ``/metrics``
  and the ``repro-obs top`` dashboard;
* :func:`to_collapsed` — Brendan-Gregg collapsed stacks
  (``a;b self_us``), pipe into any flamegraph tool;
* :func:`to_speedscope` — a `speedscope <https://www.speedscope.app>`_
  evented profile laying the aggregated tree out sequentially, loadable
  directly in the browser UI.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

from repro.utils.validation import require

#: Sentinel speedscope schema URL (also how importers sniff the format).
_SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


class PhaseProfiler:
    """Thread-safe per-phase time accumulator.

    ``record(phase, seconds)`` adds one timed occurrence of ``phase`` (a
    ``/``-separated path such as ``"decode/lut_build"``).  Engine stepper
    threads record while scrape handlers snapshot; one lock serializes
    both.  There is deliberately no per-event storage — memory is
    O(distinct phases) no matter how long the server runs.
    """

    #: Hot paths check this before taking any timestamps.
    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # phase -> [count, total_seconds]
        self._phases: dict[str, list] = {}

    # Clock ------------------------------------------------------------------

    @staticmethod
    def now() -> float:
        """The profiler's clock (monotonic, cross-thread, seconds)."""
        return time.perf_counter()

    # Recording --------------------------------------------------------------

    def record(self, phase: str, seconds: float, count: int = 1) -> None:
        """Accumulate ``seconds`` of wall time into ``phase``."""
        with self._lock:
            entry = self._phases.get(phase)
            if entry is None:
                entry = self._phases[phase] = [0, 0.0]
            entry[0] += count
            entry[1] += seconds

    def lap(self, phase: str, start: float) -> float:
        """Record ``start``..now as one ``phase`` occurrence; returns now.

        The idiom for instrumenting a straight-line pipeline::

            if prof.enabled:
                t = prof.now()
            stage_one()
            if prof.enabled:
                t = prof.lap("decode/stage_one", t)
        """
        now = time.perf_counter()
        self.record(phase, now - start)
        return now

    # Reading ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """``{phase: {"count": int, "total_s": float}}``, a consistent copy."""
        with self._lock:
            return {
                phase: {"count": entry[0], "total_s": entry[1]}
                for phase, entry in self._phases.items()
            }

    def reset(self) -> None:
        with self._lock:
            self._phases.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._phases)


class NullProfiler(PhaseProfiler):
    """The disabled profiler: recording is a no-op, snapshots are empty."""

    enabled = False

    def record(self, phase, seconds, count=1) -> None:  # pragma: no cover
        pass

    def lap(self, phase: str, start: float) -> float:  # pragma: no cover
        return start


#: Shared no-op profiler; identity-comparable (``prof is NULL_PROFILER``).
NULL_PROFILER = NullProfiler()


# Snapshot algebra -----------------------------------------------------------


def merge_phase_snapshots(snapshots: Sequence[dict]) -> dict:
    """Sum per-phase counts/totals across snapshots (e.g. replicas)."""
    merged: dict[str, dict] = {}
    for snap in snapshots:
        for phase, entry in snap.items():
            slot = merged.setdefault(phase, {"count": 0, "total_s": 0.0})
            slot["count"] += int(entry["count"])
            slot["total_s"] += float(entry["total_s"])
    return merged


def _children(snapshot: dict, phase: str) -> list[str]:
    prefix = phase + "/"
    return [
        other
        for other in snapshot
        if other.startswith(prefix) and "/" not in other[len(prefix):]
    ]


def phase_table(snapshot: dict) -> list[dict]:
    """Per-phase rows with **self time** (total minus direct children).

    Rows are sorted by self time, largest first.  Because the engine
    records parent phases from its own wall split, the sum of every
    row's ``self_s`` under a root equals that root's measured wall time.
    """
    rows = []
    for phase, entry in snapshot.items():
        child_total = sum(
            snapshot[child]["total_s"] for child in _children(snapshot, phase)
        )
        total = float(entry["total_s"])
        rows.append(
            {
                "phase": phase,
                "count": int(entry["count"]),
                "total_s": total,
                "self_s": max(0.0, total - child_total),
            }
        )
    rows.sort(key=lambda row: (-row["self_s"], row["phase"]))
    return rows


def to_collapsed(snapshot: dict) -> list[str]:
    """Collapsed-stack lines (``a;b self_microseconds``), self-time weighted."""
    lines = []
    for row in phase_table(snapshot):
        stack = row["phase"].replace("/", ";")
        lines.append(f"{stack} {max(0, round(row['self_s'] * 1e6))}")
    return sorted(lines)


def to_speedscope(snapshot: dict, name: str = "repro fused-decode phases") -> dict:
    """An evented speedscope profile of the aggregated phase tree.

    The tree is laid out sequentially — siblings one after another inside
    their parent's span, the parent's self time as the trailing gap — so
    the flamegraph's widths are the aggregate totals.  Children whose
    totals overrun their parent (clock jitter on very short spans) are
    clamped to the parent's remaining width rather than breaking event
    nesting, which speedscope rejects.
    """
    frames: list[dict] = []
    frame_index: dict[str, int] = {}

    def frame(phase: str) -> int:
        if phase not in frame_index:
            frame_index[phase] = len(frames)
            frames.append({"name": phase})
        return frame_index[phase]

    events: list[dict] = []

    def place(phase: str, start: float, limit: float) -> float:
        total = min(float(snapshot[phase]["total_s"]), limit)
        events.append({"type": "O", "frame": frame(phase), "at": start})
        cursor = start
        for child in sorted(_children(snapshot, phase)):
            cursor = place(child, cursor, max(0.0, start + total - cursor))
        end = max(cursor, start + total)
        events.append({"type": "C", "frame": frame(phase), "at": end})
        return end

    roots = sorted(phase for phase in snapshot if "/" not in phase)
    cursor = 0.0
    for root in roots:
        cursor = place(root, cursor, float("inf"))
    return {
        "$schema": _SPEEDSCOPE_SCHEMA,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "seconds",
                "startValue": 0.0,
                "endValue": cursor,
                "events": events,
            }
        ],
        "name": name,
    }


def validate_prof_payload(payload: dict) -> None:
    """Schema-check a ``/debug/prof`` response (tests and CI smoke share this).

    Raises ``ValueError`` listing every violation rather than stopping at
    the first, mirroring :func:`repro.obs.export.validate_chrome_trace`.
    """
    errors: list[str] = []
    for key in ("enabled", "phases", "collapsed", "speedscope"):
        if key not in payload:
            errors.append(f"missing top-level key {key!r}")
    for row in payload.get("phases", []):
        for key in ("phase", "count", "total_s", "self_s"):
            if key not in row:
                errors.append(f"phase row {row!r} missing {key!r}")
                break
    speedscope = payload.get("speedscope")
    if isinstance(speedscope, dict):
        if speedscope.get("$schema") != _SPEEDSCOPE_SCHEMA:
            errors.append("speedscope $schema is wrong or missing")
        profiles = speedscope.get("profiles")
        if not isinstance(profiles, list) or not profiles:
            errors.append("speedscope profiles must be a non-empty list")
        else:
            profile = profiles[0]
            open_depth = 0
            last_at = -1.0
            for event in profile.get("events", []):
                if event["at"] < last_at:
                    errors.append("speedscope events are not time-ordered")
                    break
                last_at = event["at"]
                open_depth += 1 if event["type"] == "O" else -1
                if open_depth < 0:
                    errors.append("speedscope close event without a matching open")
                    break
            else:
                if open_depth != 0:
                    errors.append(f"{open_depth} speedscope frame(s) left open")
            n_frames = len(speedscope.get("shared", {}).get("frames", []))
            if any(
                event["frame"] >= n_frames for event in profile.get("events", [])
            ):
                errors.append("speedscope event references a missing frame")
    elif speedscope is not None:
        errors.append("speedscope must be an object")
    require(not errors, "invalid /debug/prof payload:\n" + "\n".join(errors))


__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "PhaseProfiler",
    "merge_phase_snapshots",
    "phase_table",
    "to_collapsed",
    "to_speedscope",
    "validate_prof_payload",
]
