"""Request-lifecycle tracing: a bounded, thread-safe span/event recorder.

One :class:`TraceRecorder` is shared by the whole serving process — the
gateway's HTTP handlers, every replica engine's stepper thread, and the
block pools all record into it.  Events carry a *track* (one per replica,
plus ``"gateway"``) and, where applicable, a *request id*, so a request's
journey from HTTP accept through queueing, prefill, decode steps and
stream end can be reassembled after the fact (see
:mod:`repro.obs.export` for the Chrome trace-event rendering Perfetto
loads).

Design constraints, in order:

* **Disabled must be (almost) free.**  Hot paths guard every hook with
  ``if recorder.enabled:`` — one attribute read on the decode path.  The
  :class:`NullRecorder` singleton (``NULL_RECORDER``) is what disabled
  components hold, so even an unguarded call is a cheap no-op.
* **Bounded.**  Events live in a ring buffer (``deque(maxlen=...)``);
  a long-running server overwrites its oldest history instead of growing.
  ``dropped`` reports how many events fell off the ring, so exports can
  flag truncation instead of silently presenting a partial trace as
  complete.
* **Thread-safe.**  Engine steppers record from executor threads while
  the event loop records from HTTP handlers; a single lock serializes
  appends and snapshots.  Timestamps come from ``time.perf_counter()`` —
  one monotonic clock per process, valid across threads — so gateway and
  engine events order correctly.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.utils.validation import require

#: Event phases (a subset of the Chrome trace-event phases).
PHASE_COMPLETE = "X"  # a span: start timestamp + duration
PHASE_INSTANT = "i"  # a point event


@dataclass(frozen=True)
class TraceEvent:
    """One recorded span or instant.

    ``ts`` and ``dur`` are seconds on the recorder's monotonic clock
    (``time.perf_counter``); ``dur`` is 0.0 for instants.  ``track`` names
    the timeline the event belongs to (``"gateway"``, ``"replica-0"``,
    ...); ``request_id`` correlates events of one request across tracks.
    """

    name: str
    phase: str
    ts: float
    dur: float = 0.0
    track: str = "main"
    request_id: Optional[str] = None
    args: dict = field(default_factory=dict)


class TraceRecorder:
    """Bounded ring buffer of :class:`TraceEvent` objects.

    ``capacity`` bounds memory: once full, appending drops the oldest
    event (and counts it in :attr:`dropped`).  All methods are safe to
    call from any thread.
    """

    #: Hot paths check this before building event arguments.
    enabled = True

    def __init__(self, capacity: int = 65536) -> None:
        require(capacity >= 1, "trace capacity must be >= 1")
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._events_total = 0
        # Zero of the recorder's clock, so exports can report times
        # relative to recorder creation instead of an arbitrary epoch.
        self.epoch = time.perf_counter()

    # Clock -----------------------------------------------------------------

    @staticmethod
    def now() -> float:
        """The recorder's clock (monotonic, cross-thread, seconds)."""
        return time.perf_counter()

    # Recording -------------------------------------------------------------

    def _append(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)
            self._events_total += 1

    def complete(
        self,
        name: str,
        start: float,
        end: float,
        *,
        track: str = "main",
        request_id: Optional[str] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a finished span from explicit clock readings."""
        self._append(
            TraceEvent(
                name, PHASE_COMPLETE, start, max(0.0, end - start),
                track, request_id, args or {},
            )
        )

    def instant(
        self,
        name: str,
        *,
        track: str = "main",
        request_id: Optional[str] = None,
        ts: Optional[float] = None,
        args: Optional[dict] = None,
    ) -> None:
        """Record a point event (``ts`` defaults to now)."""
        self._append(
            TraceEvent(
                name, PHASE_INSTANT, self.now() if ts is None else ts, 0.0,
                track, request_id, args or {},
            )
        )

    @contextmanager
    def span(
        self,
        name: str,
        *,
        track: str = "main",
        request_id: Optional[str] = None,
        args: Optional[dict] = None,
    ) -> Iterator[None]:
        """Record the wrapped block as a complete span (even if it raises)."""
        start = self.now()
        try:
            yield
        finally:
            self.complete(
                name, start, self.now(), track=track, request_id=request_id,
                args=args,
            )

    # Introspection ----------------------------------------------------------

    @property
    def events_total(self) -> int:
        """Events ever recorded (including those the ring dropped)."""
        return self._events_total

    @property
    def dropped(self) -> int:
        """Events that fell off the ring buffer (oldest-first truncation)."""
        with self._lock:
            return self._events_total - len(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def snapshot(
        self,
        since: float = 0.0,
        request_id: Optional[str] = None,
    ) -> list[TraceEvent]:
        """A consistent copy of the buffered events, oldest first.

        ``since`` keeps only events *ending* at or after that clock
        reading (so a span still in the window is kept even if it started
        before); ``request_id`` keeps only one request's events plus the
        request-less events (engine steps) overlapping them.
        """
        with self._lock:
            events = list(self._events)
        if since > 0.0:
            events = [e for e in events if e.ts + e.dur >= since]
        if request_id is not None:
            events = [e for e in events if e.request_id == request_id]
        return events

    def clear(self) -> None:
        """Drop every buffered event (the drop counter keeps counting)."""
        with self._lock:
            self._events.clear()

    def to_chrome_trace(
        self, since: float = 0.0, request_id: Optional[str] = None
    ) -> dict:
        """Chrome trace-event JSON of the buffer; see :mod:`repro.obs.export`."""
        from repro.obs.export import to_chrome_trace

        return to_chrome_trace(self, since=since, request_id=request_id)


class NullRecorder(TraceRecorder):
    """The disabled recorder: every operation is a no-op.

    Components default to holding :data:`NULL_RECORDER`, so tracing costs
    one ``enabled`` attribute check where guarded and a no-op method call
    where not.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def _append(self, event: TraceEvent) -> None:  # pragma: no cover - trivial
        pass

    @contextmanager
    def span(self, name, **kwargs) -> Iterator[None]:
        yield


#: Shared no-op recorder; identity-comparable (``trace is NULL_RECORDER``).
NULL_RECORDER = NullRecorder()


__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "PHASE_COMPLETE",
    "PHASE_INSTANT",
    "TraceEvent",
    "TraceRecorder",
]
