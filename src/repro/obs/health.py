"""SLO health engine: burn rates and ok/degraded/unhealthy verdicts.

PR 7 exported raw signals (TTFT/ITL histograms, pool pressure, HTTP
counters); this module turns them into *state*.  A :class:`HealthEngine`
keeps a rolling window of :class:`HealthSample` scrapes — cumulative
histogram/counter snapshots stamped on the shared
``time.perf_counter()`` clock — and evaluates rules over the **deltas**
between the newest and oldest sample in the window, so verdicts reflect
the last ``window_s`` seconds of traffic rather than lifetime averages
that can never recover.

The headline rule is the **SLO burn rate**, the standard SRE construct:
with an objective of ``0.95`` ("95% of interactive requests see TTFT
under the SLO"), the error budget is 5% of requests; the burn rate is
the fraction of in-window requests breaching the SLO divided by that
budget.  Burn 1.0 spends the budget exactly as fast as it accrues;
sustained burn above :attr:`HealthPolicy.degraded_burn` marks the
gateway degraded, above :attr:`HealthPolicy.unhealthy_burn` unhealthy.
Breach fractions come straight from the existing TTFT histograms
(:func:`repro.obs.hist.snapshot_fraction_over` on the window delta) —
no extra bookkeeping on the request path.

Replica-scoped rules (pool pressure, queue depth, a dead stepper thread)
give each replica its own state; the gateway's
:class:`~repro.gateway.router.ReplicaRouter` consults those to
deprioritize degraded replicas while they recover.  Every state
transition emits an instant into the shared
:class:`~repro.obs.trace.TraceRecorder` and a structured log line, so an
operator can line alerts up against the request timeline in Perfetto.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.obs.hist import delta_snapshots, snapshot_fraction_over
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.utils.validation import require


def _logger():
    # Imported lazily: repro.utils.logging itself imports repro.obs (the
    # request-id contextvar), so a module-level import here would be circular.
    from repro.utils.logging import get_logger

    return get_logger("health")

#: Health states, worst last; gauges export their index
#: (``repro_health_state``: 0 ok, 1 degraded, 2 unhealthy).
HEALTH_STATES = ("ok", "degraded", "unhealthy")
_RANK = {state: index for index, state in enumerate(HEALTH_STATES)}


def _worst(states: Sequence[str]) -> str:
    return max(states, key=_RANK.__getitem__, default="ok")


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds the health engine evaluates every scrape.

    ``ttft_slo_s`` maps priority classes to their TTFT SLO in seconds;
    classes absent from the map have no burn rule.  The defaults carry no
    SLOs, so a bare gateway reports ``ok`` on liveness alone.
    """

    window_s: float = 60.0
    #: Fraction of requests that must meet their SLO (0.95 = error budget 5%).
    objective: float = 0.95
    ttft_slo_s: Mapping[str, float] = field(default_factory=dict)
    degraded_burn: float = 1.0
    unhealthy_burn: float = 6.0
    #: Minimum in-window observations before a burn/error verdict is made.
    min_samples: int = 1
    #: Sustained block-pool pressure above this degrades the replica.
    max_pool_pressure: float = 0.95
    #: In-window HTTP 5xx fraction above this degrades the gateway.
    max_error_rate: float = 0.05
    #: Queue depth above this degrades the replica; ``None`` disables.
    max_queued: Optional[int] = None

    def __post_init__(self) -> None:
        require(self.window_s > 0.0, "health window must be positive")
        require(0.0 < self.objective < 1.0, "objective must be in (0, 1)")
        require(self.min_samples >= 1, "min_samples must be >= 1")
        require(
            0.0 < self.degraded_burn <= self.unhealthy_burn,
            "need 0 < degraded_burn <= unhealthy_burn",
        )
        for priority, slo in self.ttft_slo_s.items():
            require(slo > 0.0, f"TTFT SLO for {priority!r} must be positive")


@dataclass(frozen=True)
class HealthSample:
    """One scrape's worth of cumulative state, stamped on the shared clock.

    ``ttft`` holds per-priority-class histogram snapshots
    (:meth:`repro.obs.hist.Histogram.snapshot`); ``replicas`` one dict per
    replica with ``queued``, ``running``, ``pool_pressure`` and ``failed``.
    """

    ts: float
    ttft: Mapping[str, dict] = field(default_factory=dict)
    http_total: int = 0
    http_errors: int = 0
    replicas: Sequence[dict] = ()


@dataclass(frozen=True)
class HealthCheck:
    """One rule's verdict: what fired, where, and the number behind it."""

    rule: str
    state: str
    scope: str  # "gateway" or "replica-<i>"
    reason: str
    value: Optional[float] = None

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "state": self.state,
            "scope": self.scope,
            "reason": self.reason,
            "value": self.value,
        }


class HealthEngine:
    """Rolling-window rule evaluation over health samples.

    :meth:`observe` is the single entry point: the gateway feeds it one
    :class:`HealthSample` per ``/healthz`` or ``/metrics`` scrape and gets
    the machine-readable report back.  State between scrapes (the window,
    last verdicts for transition alerts) lives here, never in the server.
    """

    def __init__(
        self,
        policy: Optional[HealthPolicy] = None,
        trace: Optional[TraceRecorder] = None,
        track: str = "gateway",
    ) -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        self.trace = trace if trace is not None else NULL_RECORDER
        self.track = track
        self._lock = threading.Lock()
        self._samples: deque[HealthSample] = deque()
        self._last_states: dict[str, str] = {}
        # Last evaluation, for consumers that must not re-sample (metrics
        # rendering after a /healthz scrape, tests).
        self.state = "ok"
        self.burn_rates: dict[str, float] = {}
        self.replica_states: list[str] = []

    # Evaluation -------------------------------------------------------------

    def observe(self, sample: HealthSample) -> dict:
        """Fold one scrape into the window and evaluate every rule."""
        with self._lock:
            self._samples.append(sample)
            while (
                len(self._samples) > 1
                and self._samples[0].ts < sample.ts - self.policy.window_s
            ):
                self._samples.popleft()
            oldest = self._samples[0]
            checks = self._evaluate(oldest, sample)
            replica_states = [
                _worst(
                    [c.state for c in checks if c.scope == f"replica-{index}"]
                )
                for index in range(len(sample.replicas))
            ]
            state = _worst([check.state for check in checks])
            self._alert_transitions(checks, state)
            self.state = state
            self.replica_states = replica_states
            return {
                "status": state,
                "window_s": sample.ts - oldest.ts,
                "samples": len(self._samples),
                "burn_rates": dict(self.burn_rates),
                "checks": [check.to_json() for check in checks],
                "replicas": [
                    {
                        "replica": index,
                        "state": replica_states[index],
                        "reasons": [
                            check.reason
                            for check in checks
                            if check.scope == f"replica-{index}"
                            and check.state != "ok"
                        ],
                    }
                    for index in range(len(sample.replicas))
                ],
            }

    def _evaluate(
        self, oldest: HealthSample, newest: HealthSample
    ) -> list[HealthCheck]:
        policy = self.policy
        checks: list[HealthCheck] = []
        burn_rates: dict[str, float] = {}
        budget = 1.0 - policy.objective
        for priority, slo_s in sorted(policy.ttft_slo_s.items()):
            burn_rates[priority] = 0.0
            old_snap = oldest.ttft.get(priority)
            new_snap = newest.ttft.get(priority)
            if old_snap is None or new_snap is None or oldest is newest:
                continue
            delta = delta_snapshots(new_snap, old_snap)
            if delta["count"] < policy.min_samples:
                continue
            fraction = snapshot_fraction_over(delta, slo_s) or 0.0
            burn = fraction / budget
            burn_rates[priority] = burn
            if burn >= policy.degraded_burn:
                state = (
                    "unhealthy" if burn >= policy.unhealthy_burn else "degraded"
                )
                checks.append(
                    HealthCheck(
                        rule="slo_burn",
                        state=state,
                        scope="gateway",
                        reason=(
                            f"slo_burn:{priority} burning {burn:.2f}x the error "
                            f"budget ({fraction:.0%} of {delta['count']} "
                            f"requests over the {slo_s * 1000:.0f}ms TTFT SLO, "
                            f"objective {policy.objective:.0%})"
                        ),
                        value=burn,
                    )
                )
        self.burn_rates = burn_rates

        if oldest is not newest:
            requests = newest.http_total - oldest.http_total
            errors = newest.http_errors - oldest.http_errors
            if requests >= policy.min_samples and errors > 0:
                rate = errors / requests
                if rate > policy.max_error_rate:
                    checks.append(
                        HealthCheck(
                            rule="error_rate",
                            state="degraded",
                            scope="gateway",
                            reason=(
                                f"error_rate {rate:.1%} over the last "
                                f"{requests} requests exceeds "
                                f"{policy.max_error_rate:.0%}"
                            ),
                            value=rate,
                        )
                    )

        for index, replica in enumerate(newest.replicas):
            scope = f"replica-{index}"
            if replica.get("failed"):
                checks.append(
                    HealthCheck(
                        rule="replica_failed",
                        state="unhealthy",
                        scope=scope,
                        reason=f"{scope} stepper died: {replica.get('error', '')}",
                    )
                )
                continue
            pressure = float(replica.get("pool_pressure", 0.0))
            if pressure > policy.max_pool_pressure:
                checks.append(
                    HealthCheck(
                        rule="pool_pressure",
                        state="degraded",
                        scope=scope,
                        reason=(
                            f"{scope} pool pressure {pressure:.2f} exceeds "
                            f"{policy.max_pool_pressure:.2f}"
                        ),
                        value=pressure,
                    )
                )
            queued = int(replica.get("queued", 0))
            if policy.max_queued is not None and queued > policy.max_queued:
                checks.append(
                    HealthCheck(
                        rule="queue_depth",
                        state="degraded",
                        scope=scope,
                        reason=(
                            f"{scope} has {queued} queued requests "
                            f"(limit {policy.max_queued})"
                        ),
                        value=float(queued),
                    )
                )
        return checks

    # Alerting ---------------------------------------------------------------

    def _alert_transitions(self, checks: list[HealthCheck], state: str) -> None:
        """Emit trace instants + logs when any rule (or the overall state)
        changes verdict; steady states stay silent."""
        current: dict[str, tuple[str, str]] = {"overall": (state, f"gateway {state}")}
        for check in checks:
            key = f"{check.rule}@{check.scope}"
            current[key] = (check.state, check.reason)
        for key in set(self._last_states) | set(current):
            before = self._last_states.get(key, "ok")
            after, reason = current.get(key, ("ok", f"{key} recovered"))
            if after == before:
                continue
            logger = _logger()
            worsened = _RANK[after] > _RANK[before]
            log = logger.warning if worsened else logger.info
            log("health %s: %s -> %s (%s)", key, before, after, reason)
            if self.trace.enabled:
                self.trace.instant(
                    "health_alert",
                    track=self.track,
                    args={
                        "key": key,
                        "from": before,
                        "to": after,
                        "reason": reason,
                    },
                )
        self._last_states = {
            key: value[0] for key, value in current.items() if value[0] != "ok"
        }


def state_value(state: str) -> int:
    """Numeric gauge value of a health state (0 ok, 1 degraded, 2 unhealthy)."""
    return _RANK[state]


__all__ = [
    "HEALTH_STATES",
    "HealthCheck",
    "HealthEngine",
    "HealthPolicy",
    "HealthSample",
    "state_value",
]
