"""Fixed-bucket histograms for latency and batch-size distributions.

Every distributional gate on the roadmap ("p99 ITL under load") needs more
than counters and gauges: :class:`Histogram` is the zero-dependency
primitive behind the gateway's TTFT/ITL families and the engine's
queue-wait / step-time / fused-batch-size metrics.  It is deliberately
shaped like a Prometheus *histogram* metric — fixed upper bounds chosen at
construction, cumulative rendering left to the exposition layer — so
:func:`repro.gateway.metrics.render_prometheus` can emit proper
``_bucket``/``_sum``/``_count`` families and any Prometheus server can
compute quantiles with ``histogram_quantile()``.

Observation is O(log buckets) (a bisect) plus three scalar updates, under
a lock so engine stepper threads and the event loop can share one
instance.  :meth:`quantile` gives in-process p50/p99 estimates (linear
interpolation within a bucket, the same estimate PromQL makes) for
benchmarks and tests that do not want to round-trip through text format.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Optional, Sequence

from repro.utils.validation import require

#: Latency buckets (seconds): ~0.1 ms to 60 s, roughly log-spaced.  Shared
#: by TTFT, ITL, queue-wait and step-time histograms so the families are
#: directly comparable in dashboards.
LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Batch-size buckets (sequences per fused decode step).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Histogram:
    """A thread-safe fixed-bucket histogram.

    ``buckets`` are the finite upper bounds, strictly increasing; every
    observation beyond the last bound lands in the implicit ``+Inf``
    bucket (tracked by ``count`` minus the finite buckets).
    """

    __slots__ = ("buckets", "_counts", "_inf", "_sum", "_count", "_lock")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS_S) -> None:
        bounds = tuple(float(b) for b in buckets)
        require(len(bounds) >= 1, "histogram needs at least one bucket bound")
        require(
            all(lo < hi for lo, hi in zip(bounds, bounds[1:])),
            "histogram bucket bounds must be strictly increasing",
        )
        require(
            all(b == b and b != float("inf") for b in bounds),
            "histogram bucket bounds must be finite (+Inf is implicit)",
        )
        self.buckets = bounds
        self._counts = [0] * len(bounds)
        self._inf = 0
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (Prometheus ``le`` semantics: ``v <= bound``)."""
        value = float(value)
        with self._lock:
            index = bisect_left(self.buckets, value)
            if index < len(self.buckets):
                self._counts[index] += 1
            else:
                self._inf += 1
            self._sum += value
            self._count += 1

    # Reading ----------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict:
        """A consistent, JSON-serializable copy of the histogram state.

        ``counts`` are per-bucket (non-cumulative) observation counts for
        the finite bounds in ``buckets``; ``count`` additionally includes
        the implicit ``+Inf`` bucket.  This is the shape
        ``engine.stats()`` carries and the Prometheus renderer consumes.
        """
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self._counts),
                "sum": self._sum,
                "count": self._count,
            }

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (0..1), interpolated within its bucket.

        Mirrors PromQL's ``histogram_quantile``: linear interpolation
        inside the bucket the quantile falls in, the lower bound of the
        first bucket treated as 0.  Observations in ``+Inf`` clamp to the
        largest finite bound.  ``None`` when the histogram is empty.
        """
        return snapshot_quantile(self.snapshot(), q)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self._count}, sum={self._sum:.6g}, "
            f"buckets={len(self.buckets)})"
        )


def snapshot_quantile(snapshot: dict, q: float) -> Optional[float]:
    """:meth:`Histogram.quantile` on a detached snapshot dict.

    Shared by the live histograms, the health engine (which quantiles
    window *deltas* rather than lifetime state) and the ``repro-obs top``
    dashboard (which reconstructs snapshots from a parsed ``/metrics``
    scrape).  ``None`` when the snapshot holds no observations.
    """
    require(0.0 <= q <= 1.0, "quantile must be in [0, 1]")
    count = int(snapshot["count"])
    if count == 0:
        return None
    buckets = snapshot["buckets"]
    rank = q * count
    cumulative = 0
    for index, bucket_count in enumerate(snapshot["counts"]):
        cumulative += bucket_count
        if cumulative >= rank and bucket_count > 0:
            hi = buckets[index]
            lo = buckets[index - 1] if index > 0 else 0.0
            within = (rank - (cumulative - bucket_count)) / bucket_count
            return lo + (hi - lo) * min(1.0, max(0.0, within))
    return buckets[-1]


def snapshot_fraction_over(snapshot: dict, threshold: float) -> Optional[float]:
    """Estimated fraction of observations strictly above ``threshold``.

    The burn-rate primitive: observations are spread uniformly within
    their bucket (the same assumption :func:`snapshot_quantile` makes),
    the ``+Inf`` bucket counts entirely as over.  ``None`` when empty.
    """
    count = int(snapshot["count"])
    if count == 0:
        return None
    buckets = snapshot["buckets"]
    over = count - sum(snapshot["counts"])  # the +Inf bucket
    for index in range(len(buckets) - 1, -1, -1):
        hi = buckets[index]
        if hi <= threshold:
            break
        lo = buckets[index - 1] if index > 0 else 0.0
        bucket_count = snapshot["counts"][index]
        if threshold <= lo:
            over += bucket_count
        else:
            over += bucket_count * (hi - threshold) / (hi - lo)
    return min(1.0, max(0.0, over / count))


def delta_snapshots(new: dict, old: dict) -> dict:
    """``new - old`` for snapshots of the *same* histogram over time.

    The window primitive behind SLO burn rates: two scrapes of a
    cumulative histogram family differ by exactly the observations made
    between them.  Bucket bounds must match (same guarantee as
    :func:`merge_snapshots`); counts going backwards mean the histograms
    are unrelated and raise rather than mis-subtract.
    """
    require(
        list(new["buckets"]) == list(old["buckets"]),
        "cannot diff histograms with different bucket bounds",
    )
    counts = [a - b for a, b in zip(new["counts"], old["counts"])]
    count = int(new["count"]) - int(old["count"])
    require(
        count >= 0 and all(c >= 0 for c in counts),
        "histogram delta went backwards (snapshots are not from one series)",
    )
    return {
        "buckets": list(new["buckets"]),
        "counts": counts,
        "sum": float(new["sum"]) - float(old["sum"]),
        "count": count,
    }


def merge_snapshots(snapshots: Sequence[dict]) -> dict:
    """Sum histogram snapshots with identical bucket bounds (e.g. replicas)."""
    require(len(snapshots) >= 1, "need at least one snapshot to merge")
    base = snapshots[0]
    merged = {
        "buckets": list(base["buckets"]),
        "counts": list(base["counts"]),
        "sum": float(base["sum"]),
        "count": int(base["count"]),
    }
    for snap in snapshots[1:]:
        require(
            list(snap["buckets"]) == merged["buckets"],
            "cannot merge histograms with different bucket bounds",
        )
        merged["counts"] = [
            a + b for a, b in zip(merged["counts"], snap["counts"])
        ]
        merged["sum"] += float(snap["sum"])
        merged["count"] += int(snap["count"])
    return merged


__all__ = [
    "BATCH_BUCKETS",
    "Histogram",
    "LATENCY_BUCKETS_S",
    "delta_snapshots",
    "merge_snapshots",
    "snapshot_fraction_over",
    "snapshot_quantile",
]
