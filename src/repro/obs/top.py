"""`repro-obs top`: a live terminal dashboard over /metrics and /healthz.

The gateway already exports everything an operator needs — the problem is
that raw exposition text and health JSON are unreadable at a glance.  This
module polls both endpoints and renders one ANSI frame per interval:
gateway throughput, per-replica queue depth and health state, windowed
TTFT quantiles per priority class, and the fused-decode phase breakdown
from the continuous profiler (``repro_engine_phase_seconds``).

Everything here is stdlib-only (``urllib`` + ANSI escapes, no curses) and
split so it stays testable without a terminal or a server:

* :func:`poll` does the two HTTP GETs and returns a :class:`TopSample`;
* :func:`render_frame` is a **pure function** from two samples (current +
  previous, for rate deltas) to the frame string;
* :func:`run_top` owns the loop, the screen clearing and the clock.

Rates and quantiles are *windowed*: each frame diffs the cumulative
counters and histogram buckets against the previous poll
(:func:`repro.obs.hist.delta_snapshots`), so the numbers describe the
last interval, not the process lifetime.  ``--once`` renders a single
frame without clearing the screen — that is what CI runs.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.hist import delta_snapshots, snapshot_quantile
from repro.obs.promtext import parse_exposition

#: ANSI SGR codes by role; :func:`_paint` no-ops when color is off.
_COLORS = {
    "ok": "\x1b[32m",
    "degraded": "\x1b[33m",
    "unhealthy": "\x1b[31m",
    "dim": "\x1b[2m",
    "bold": "\x1b[1m",
}
_RESET = "\x1b[0m"
CLEAR_SCREEN = "\x1b[2J\x1b[H"


def _paint(text: str, role: str, color: bool) -> str:
    if not color or role not in _COLORS:
        return text
    return f"{_COLORS[role]}{text}{_RESET}"


@dataclass
class TopSample:
    """One poll: parsed /metrics families + /healthz JSON, timestamped."""

    ts: float
    families: dict = field(default_factory=dict)
    health: dict = field(default_factory=dict)


def fetch(url: str, timeout: float = 5.0) -> str:
    """GET ``url`` and return the decoded body (raises on HTTP errors)."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def poll(target: str, ts: float, timeout: float = 5.0) -> TopSample:
    """Scrape ``host:port`` once; the caller supplies the timestamp."""
    base = f"http://{target}"
    families = parse_exposition(fetch(f"{base}/metrics", timeout=timeout))
    health = json.loads(fetch(f"{base}/healthz", timeout=timeout))
    return TopSample(ts=ts, families=families, health=health)


# Reading parsed families ---------------------------------------------------


def family_value(
    families: dict, name: str, default: float = 0.0, **labels
) -> float:
    """One sample's value, or ``default`` when the family/series is absent."""
    family = families.get(name)
    if family is None:
        return default
    try:
        return family.value(**labels)
    except KeyError:
        return default


def sum_family(families: dict, name: str, **labels) -> float:
    """Sum every sample whose labels are a superset of ``labels``."""
    family = families.get(name)
    if family is None:
        return 0.0
    return sum(
        s.value
        for s in family.samples
        if all(s.labels.get(k) == v for k, v in labels.items())
    )


def histogram_snapshot(
    families: dict, name: str, **labels
) -> Optional[dict]:
    """Rebuild a :meth:`repro.obs.hist.Histogram.snapshot` from a scrape.

    Inverts the renderer: cumulative ``_bucket`` samples (matched on
    ``labels`` ignoring ``le``) become per-bucket counts, ``+Inf`` becomes
    the total ``count``.  Returns ``None`` when the series is absent, so
    callers can distinguish "no such histogram" from "empty histogram".
    """
    family = families.get(name)
    if family is None:
        return None
    bounds: list[float] = []
    cumulative: list[float] = []
    inf_count = None
    total_sum = None
    for sample in family.samples:
        series = {k: v for k, v in sample.labels.items() if k != "le"}
        if series != labels:
            continue
        if sample.name == f"{name}_bucket":
            le = sample.labels["le"]
            if le == "+Inf":
                inf_count = sample.value
            else:
                bounds.append(float(le))
                cumulative.append(sample.value)
        elif sample.name == f"{name}_sum":
            total_sum = sample.value
    if inf_count is None:
        return None
    order = sorted(range(len(bounds)), key=bounds.__getitem__)
    bounds = [bounds[i] for i in order]
    cumulative = [cumulative[i] for i in order]
    counts = [
        int(b - a) for a, b in zip([0.0] + cumulative[:-1], cumulative)
    ]
    return {
        "buckets": bounds,
        "counts": counts,
        "sum": float(total_sum or 0.0),
        "count": int(inf_count),
    }


def _windowed_snapshot(
    current: TopSample, previous: Optional[TopSample], name: str, **labels
) -> Optional[dict]:
    """Histogram delta over the poll interval; lifetime on the first frame."""
    now = histogram_snapshot(current.families, name, **labels)
    if now is None:
        return None
    if previous is None:
        return now
    then = histogram_snapshot(previous.families, name, **labels)
    if then is None:
        return now
    try:
        return delta_snapshots(now, then)
    except ValueError:
        return now  # server restarted between polls; fall back to lifetime


def _rate(
    current: TopSample, previous: Optional[TopSample], name: str, **labels
) -> float:
    """Per-second rate of a cumulative counter over the poll interval."""
    if previous is None:
        return 0.0
    dt = current.ts - previous.ts
    if dt <= 0:
        return 0.0
    delta = family_value(current.families, name, **labels) - family_value(
        previous.families, name, **labels
    )
    return max(0.0, delta) / dt


# Rendering -----------------------------------------------------------------


def _fmt_ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1000.0:.1f}ms"


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _replica_indices(families: dict) -> list[int]:
    indices: set[int] = set()
    family = families.get("repro_engine_running")
    if family is not None:
        for sample in family.samples:
            try:
                indices.add(int(sample.labels.get("replica", "")))
            except ValueError:
                continue
    return sorted(indices)


def _phase_rows(
    current: TopSample, previous: Optional[TopSample]
) -> list[tuple[str, float]]:
    """Per-phase seconds over the window, summed across replicas."""
    family = current.families.get("repro_engine_phase_seconds")
    if family is None:
        return []
    totals: dict[str, float] = {}
    for sample in family.samples:
        phase = sample.labels.get("phase", "?")
        totals[phase] = totals.get(phase, 0.0) + sample.value
    if previous is not None:
        prev_family = previous.families.get("repro_engine_phase_seconds")
        if prev_family is not None:
            for sample in prev_family.samples:
                phase = sample.labels.get("phase", "?")
                totals[phase] = totals.get(phase, 0.0) - sample.value
    rows = [(p, max(0.0, s)) for p, s in totals.items() if s > 1e-12]
    rows.sort(key=lambda pair: (-pair[1], pair[0]))
    return rows


def render_frame(
    current: TopSample,
    previous: Optional[TopSample] = None,
    color: bool = True,
    max_phases: int = 12,
) -> str:
    """Render one dashboard frame (pure: samples in, string out)."""
    fam = current.families
    health = current.health
    status = str(health.get("status", "?"))
    lines: list[str] = []

    tok_rate = _rate(
        current, previous, "repro_gateway_tokens_streamed_total"
    )
    in_flight = family_value(fam, "repro_gateway_requests_in_flight")
    window = "lifetime" if previous is None else (
        f"last {current.ts - previous.ts:.1f}s"
    )
    lines.append(
        _paint(f"repro-obs top — {health.get('model', '?')}", "bold", color)
        + f"  health={_paint(status, status, color)}"
        + f"  tok/s={tok_rate:.1f}  in_flight={int(in_flight)}"
        + f"  ({window})"
    )

    burn = health.get("burn_rates", {})
    if burn:
        parts = []
        for priority in sorted(burn):
            value = float(burn[priority])
            role = "unhealthy" if value >= 6.0 else (
                "degraded" if value >= 1.0 else "ok"
            )
            parts.append(f"{priority}={_paint(f'{value:.2f}x', role, color)}")
        lines.append("slo burn: " + "  ".join(parts))

    # Per-replica table -----------------------------------------------------
    # /healthz reports one {replica, state, reasons} entry per replica.
    replica_states = {
        int(entry.get("replica", index)): str(entry.get("state", "ok"))
        for index, entry in enumerate(health.get("replica_health", []))
        if isinstance(entry, dict)
    }
    lines.append(
        _paint(
            f"{'replica':<9} {'state':<10} {'run':>4} {'queue':>5} "
            f"{'steps/s':>8} {'pool':>5}  pressure",
            "dim",
            color,
        )
    )
    for index in _replica_indices(fam):
        labels = {"replica": str(index)}
        state = replica_states.get(index, "ok")
        steps = _rate(
            current, previous, "repro_engine_fused_decode_steps_total",
            **labels,
        )
        utilization = family_value(fam, "repro_pool_utilization", **labels)
        pressure = family_value(fam, "repro_pool_pressure", **labels)
        lines.append(
            f"{index:<9} {_paint(f'{state:<10}', state, color)} "
            f"{int(family_value(fam, 'repro_engine_running', **labels)):>4} "
            f"{int(family_value(fam, 'repro_engine_queued', **labels)):>5} "
            f"{steps:>8.1f} {utilization:>5.0%}  {_bar(pressure)}"
        )

    # TTFT quantiles by priority class --------------------------------------
    lines.append(
        _paint(
            f"{'class':<14} {'reqs':>5} {'ttft p50':>9} {'ttft p99':>9}",
            "dim",
            color,
        )
    )
    for priority in ("interactive", "best_effort"):
        snap = _windowed_snapshot(
            current, previous, "repro_gateway_priority_ttft_seconds",
            priority=priority,
        )
        if snap is None:
            continue
        lines.append(
            f"{priority:<14} {snap['count']:>5} "
            f"{_fmt_ms(snapshot_quantile(snap, 0.5)):>9} "
            f"{_fmt_ms(snapshot_quantile(snap, 0.99)):>9}"
        )

    # Phase breakdown from the continuous profiler --------------------------
    phases = _phase_rows(current, previous)
    if phases:
        total = sum(seconds for _, seconds in phases)
        lines.append(_paint("engine phases (window):", "dim", color))
        for phase, seconds in phases[:max_phases]:
            share = seconds / total if total > 0 else 0.0
            lines.append(
                f"  {phase:<24} {seconds * 1000.0:>9.1f}ms "
                f"{share:>5.0%} {_bar(share, width=24)}"
            )
        if len(phases) > max_phases:
            lines.append(
                _paint(f"  ... {len(phases) - max_phases} more phases", "dim", color)
            )

    # Active health checks --------------------------------------------------
    checks = [
        check for check in health.get("checks", [])
        if check.get("state") != "ok"
    ]
    if checks:
        lines.append(_paint("active checks:", "dim", color))
        for check in checks:
            lines.append(
                f"  {_paint(str(check.get('state')), str(check.get('state')), color)}"
                f" {check.get('reason', check.get('rule', '?'))}"
            )
    return "\n".join(lines)


def run_top(
    target: str,
    interval_s: float = 2.0,
    once: bool = False,
    color: bool = True,
    timeout: float = 5.0,
    out=None,
) -> int:
    """Poll-and-render loop; returns a process exit code."""
    import sys
    import time

    out = out if out is not None else sys.stdout
    previous: Optional[TopSample] = None
    while True:
        try:
            current = poll(target, ts=time.perf_counter(), timeout=timeout)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"repro-obs top: cannot scrape {target}: {exc}", file=sys.stderr)
            return 1
        frame = render_frame(current, previous, color=color)
        if once:
            print(frame, file=out)
            return 0
        print(CLEAR_SCREEN + frame, file=out, flush=True)
        previous = current
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0


__all__ = [
    "CLEAR_SCREEN",
    "TopSample",
    "family_value",
    "fetch",
    "histogram_snapshot",
    "poll",
    "render_frame",
    "run_top",
    "sum_family",
]
