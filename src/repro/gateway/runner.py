"""Async driver for one :class:`~repro.serving.engine.BatchedMillionEngine`.

The engine is synchronous and single-threaded by design; the runner is the
bridge between it and the asyncio gateway:

* a background *stepper* task calls ``engine.step()`` in the default thread
  executor whenever the engine has work, so the event loop stays responsive
  while a long prefill runs;
* every engine interaction (submit, cancel, stats, eviction) is serialized
  behind one :class:`asyncio.Lock` — the engine itself never sees
  concurrency;
* the engine's incremental output hook
  (:meth:`~repro.serving.engine.BatchedMillionEngine.add_output_listener`)
  fans each :class:`~repro.serving.request.StepOutput` out to a per-request
  :class:`asyncio.Queue` the moment the token is decoded, which is what the
  SSE handler streams from.

The listener runs on the executor thread mid-``step``; it only performs a
dict lookup and a ``call_soon_threadsafe`` hand-off, so the decode loop is
never blocked on a slow client (the queue buffers, bounded by the request's
``max_tokens``).
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.serving.engine import BatchedMillionEngine
from repro.serving.request import FinishReason, GenerationRequest, StepOutput
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError, require

logger = get_logger("gateway")


class ReplicaFailedError(RuntimeError):
    """The replica's stepper died on an engine exception; see ``__cause__``."""


class AsyncEngineRunner:
    """Drive one engine replica on a background stepper task.

    ``evict_after`` bounds finished-request bookkeeping: once that many
    finished states accumulate the runner evicts them (their tokens were
    already streamed through the per-request queues, so nothing is lost).
    """

    def __init__(
        self,
        engine: BatchedMillionEngine,
        name: str = "replica-0",
        evict_after: int = 64,
    ) -> None:
        require(evict_after >= 1, "evict_after must be >= 1")
        self.engine = engine
        self.name = name
        self.evict_after = evict_after
        self._lock = asyncio.Lock()
        self._queues: dict[str, asyncio.Queue] = {}
        self._wake: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.steps = 0
        # Set when the stepper dies on an engine exception; the replica
        # refuses further work and the router stops placing requests on it.
        self.error: Optional[BaseException] = None

    # Lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Attach to the running loop and launch the stepper task."""
        require(self._task is None, f"runner {self.name!r} already started")
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self.engine.add_output_listener(self._on_output)
        self._task = asyncio.create_task(self._step_loop(), name=f"stepper-{self.name}")

    async def stop(self) -> None:
        """Stop the stepper; in-flight requests are abandoned, not cancelled."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None
        self.engine.remove_output_listener(self._on_output)

    @property
    def started(self) -> bool:
        return self._task is not None

    # Request plumbing -----------------------------------------------------

    async def submit(
        self, request: GenerationRequest
    ) -> tuple[str, "asyncio.Queue[StepOutput]"]:
        """Queue a request; returns its id and the queue its outputs land on.

        Raises :class:`~repro.serving.scheduler.QueueFullError` when the
        replica's wait queue is at capacity (the server maps this to 429)
        and ``ValueError`` for invalid requests — both before any state is
        created.
        """
        require(self._task is not None, f"runner {self.name!r} is not started")
        if self.error is not None:
            raise ReplicaFailedError(
                f"replica {self.name!r} failed and accepts no new requests"
            ) from self.error
        async with self._lock:
            request_id = self.engine.submit(request)
            # Register under the lock so no step can emit for this id before
            # the queue exists.
            queue: asyncio.Queue[StepOutput] = asyncio.Queue()
            self._queues[request_id] = queue
        if self.engine.trace.enabled:
            self.engine.trace.instant(
                "submit",
                track="gateway",
                request_id=request_id,
                args={"replica": self.name},
            )
        assert self._wake is not None
        self._wake.set()
        return request_id, queue

    async def cancel(self, request_id: str) -> bool:
        """Propagate a client disconnect (or explicit abort) to the engine.

        The engine emits a ``CANCELLED`` finish marker through the output
        hook, so a consumer blocked on the request's queue wakes up.
        Returns ``False`` if the request already finished.
        """
        async with self._lock:
            try:
                return self.engine.cancel(request_id)
            except ValidationError:
                # Already evicted: the request finished long ago.
                return False

    def release(self, request_id: str) -> None:
        """Drop the per-request queue once its consumer is done."""
        self._queues.pop(request_id, None)

    async def stats(self) -> dict:
        """Engine statistics snapshot, serialized against the stepper."""
        async with self._lock:
            return self.engine.stats()

    # Routing probes (lock-free; approximate by design) --------------------

    @property
    def load(self) -> int:
        """Queued + running requests — the router's least-loaded signal.

        Read without the lock: both counts are plain ``len()`` reads, and a
        router decision made one step early or late is still correct.
        """
        return self.engine.queued_count + self.engine.running_count

    @property
    def queue_full(self) -> bool:
        """True when this replica must not receive new work (full or failed)."""
        return self.error is not None or self.engine.queue_full

    def prefix_hit_blocks(self, prompt_ids) -> int:
        """Published pool blocks this replica already holds for a prompt."""
        return self.engine.prefix_hit_blocks(prompt_ids)

    def longest_prefix(self, hashes, block_tokens: int) -> int:
        """Published leading groups for a precomputed chain-hash sequence.

        The router hashes a prompt once and probes every replica with the
        same chain, so routing costs one hash pass per request instead of
        one per replica.  Returns 0 without a pool, or when the pool's
        block size differs from the chain's (the hashes would not
        correspond to this pool's groups).
        """
        pool = self.engine.pool
        if pool is None or pool.block_tokens != block_tokens:
            return 0
        return pool.longest_prefix(hashes)

    # Stepper --------------------------------------------------------------

    def _on_output(self, output: StepOutput) -> None:
        # Called from the executor thread mid-step (or the loop thread for
        # cancel); hand off to the loop without touching asyncio.Queue
        # internals from the wrong thread.
        queue = self._queues.get(output.request_id)
        if queue is None or self._loop is None:
            return
        self._loop.call_soon_threadsafe(queue.put_nowait, output)

    async def _step_loop(self) -> None:
        assert self._loop is not None and self._wake is not None
        try:
            while True:
                self._wake.clear()
                async with self._lock:
                    has_work = self.engine.scheduler.has_work
                    if has_work:
                        await self._loop.run_in_executor(None, self.engine.step)
                        self.steps += 1
                        if self.engine.finished_count >= self.evict_after:
                            self.engine.evict_finished()
                if has_work:
                    # Yield so SSE handlers drain their queues between steps.
                    await asyncio.sleep(0)
                else:
                    # clear() above happens before the has_work read, so a
                    # submit racing this branch has already set the event and
                    # wait() returns immediately — no lost wakeups.
                    await self._wake.wait()
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # An engine exception (e.g. PoolExhaustedError from a forced
            # admission) must not wedge the replica silently: record the
            # failure, unblock every waiting consumer with an ERROR finish,
            # and let the router route around this replica (queue_full).
            self.error = exc
            logger.exception(
                "stepper for %s died; failing the replica and unblocking "
                "%d in-flight request(s)",
                self.name,
                len(self._queues),
            )
            for request_id, queue in list(self._queues.items()):
                queue.put_nowait(
                    StepOutput(request_id, None, True, FinishReason.ERROR)
                )


__all__ = ["AsyncEngineRunner", "ReplicaFailedError"]
