"""Deterministic gateway assembly shared by the CLI, CI smoke and benchmarks.

Everything the demo gateway serves is synthesized reproducibly from seeds
(zoo model weights, synthetic calibration corpus, MILLION codebooks), so two
processes that call :func:`build_gateway` with the same :class:`GatewayConfig`
hold *identical* engines.  That property is what the CI smoke test leans on:
it streams a completion from a gateway subprocess and compares the tokens
against a direct :meth:`BatchedMillionEngine.run` on an engine it built
itself — token identity across the HTTP boundary, asserted end to end.

Calibration runs once; replicas share the read-only quantizers but each gets
its own model instance and its own block pool (engines step concurrently on
executor threads, so no mutable state may be shared between replicas).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.calibration import (
    calibrate_million,
    collect_kv_samples,
    measure_sensitivity,
    train_million_quantizers,
)
from repro.core.config import MillionConfig
from repro.core.million_cache import MillionCacheFactory
from repro.data.corpus import load_corpus
from repro.models.model_zoo import load_model
from repro.models.tokenizer import ByteTokenizer
from repro.obs.health import HealthEngine, HealthPolicy
from repro.obs.prof import PhaseProfiler
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.quant.policy import QuantPolicy, derive_policy, million_variant
from repro.quant.policy_cache import PolicyCacheFactory
from repro.serving.engine import BatchedMillionEngine
from repro.serving.scheduler import SloPolicy
from repro.serving.memory import (
    BlockPool,
    PooledMillionCacheFactory,
    PooledPolicyCacheFactory,
)

from repro.gateway.runner import AsyncEngineRunner
from repro.gateway.router import ReplicaRouter
from repro.gateway.server import GatewayServer


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs for the self-contained demo gateway (all defaults are tiny).

    ``tiers=True`` additionally calibrates per-request quality tiers:
    ``"quality"`` (mixed policy at 1.5x the default uniform byte budget),
    ``"balanced"`` (alias of the default factory) and ``"compact"`` (mixed
    policy below the default budget).  Clients pick one with the request's
    ``tier`` field; tiered engines decode mixed batches through the generic
    fused path (different tiers use different codebooks, so the shared-ADC
    fast path does not apply), hence the default is off.
    """

    model: str = "llama-2-7b-tiny"
    seed: int = 0
    max_seq_len: int = 1024
    replicas: int = 1
    max_batch_size: int = 4
    max_queue_size: int = 64
    pool_blocks: int = 512
    block_tokens: int = 16
    calibration_tokens: int = 768
    bits: int = 4
    tiers: bool = False
    # Ring-buffer capacity (events) of the shared request-lifecycle trace
    # recorder; 0 disables tracing (hooks cost one attribute check).
    trace_capacity: int = 65536
    # Priority-class admission: 0 collapses the interactive/best_effort
    # queues into one FIFO (the pre-priority baseline the serving.slo_load
    # benchmark compares against).  Integer because every non-model knob
    # becomes a ``type=int`` CLI flag.
    priority_aware: int = 1
    # Per-class queue-wait SLOs in milliseconds; 0 disables that class's SLO
    # (submissions are then only refused at the max_queue_size hard cap).
    interactive_ttft_slo_ms: int = 0
    best_effort_ttft_slo_ms: int = 0
    # Phase profiler (repro.obs.prof): 1 gives every replica a profiler —
    # /debug/prof and the repro_engine_phase_seconds family light up; 0
    # leaves the no-op profiler (each hook costs one attribute check).
    profiler: int = 1
    # Health engine rolling window, seconds (deltas between scrapes).
    health_window_s: int = 60
    # Per-class TTFT SLOs (milliseconds) for the health engine's burn-rate
    # rules; 0 inherits the admission SLO knob of the same class, and if
    # both are 0 the class has no burn rule.  Separate knobs because the
    # admission gate *sheds* load while the burn rule only *reports* —
    # an operator may want alerting well before refusing requests.
    burn_interactive_slo_ms: int = 0
    burn_best_effort_slo_ms: int = 0
    # Chunked prefill (Sarathi-style stall-free batching): 1 makes every
    # pooled replica split long prompts into block-aligned chunks and
    # interleave them with the fused decode batch under the per-step token
    # budget below.  Requires a block pool (``pool_blocks > 0``); ignored
    # otherwise.  Chunked token streams are deterministic but not
    # bit-identical to one-shot prefill, so flipping this knob changes
    # sampled tokens — compare like against like.
    chunked_prefill: int = 0
    # Per-step prefill token budget for chunked mode; 0 derives the engine
    # default (8 blocks' worth, i.e. ``8 * block_tokens``).
    prefill_token_budget: int = 0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


def _tier_policies(model_config, sensitivity) -> dict[str, QuantPolicy]:
    """The two non-default tier policies (mixed, all-MILLION, poolable)."""
    b2 = QuantPolicy.uniform(model_config, "million", 2).bytes_per_token()
    b4 = QuantPolicy.uniform(model_config, "million", 4).bytes_per_token()
    return {
        "quality": derive_policy(
            model_config, sensitivity, 1.5 * b4, schemes=("million",)
        ),
        "compact": derive_policy(
            model_config, sensitivity, (b2 + b4) / 2.0, schemes=("million",)
        ),
    }


def build_engines(
    config: GatewayConfig, trace: Optional[TraceRecorder] = None
) -> list[BatchedMillionEngine]:
    """One engine per replica; weights and codebooks identical across calls.

    ``trace`` is the shared recorder every replica records into (each on its
    own ``replica-<i>`` track); ``None`` builds one from
    ``config.trace_capacity`` (0 = tracing disabled).
    """
    if trace is None and config.trace_capacity > 0:
        trace = TraceRecorder(capacity=config.trace_capacity)
    models = [
        load_model(config.model, seed=config.seed, max_seq_len=config.max_seq_len)
        for _ in range(config.replicas)
    ]
    vocab = models[0].config.vocab_size
    calibration = load_corpus(
        "wikitext2-syn", "train", config.calibration_tokens, seed=config.seed
    ) % vocab
    million = MillionConfig.for_equivalent_bits(
        models[0].config.head_dim,
        bits=config.bits,
        kmeans_iters=4,
        calibration_samples=1536,
    )
    base_factory = calibrate_million(models[0], calibration, million)
    tier_policies: dict[str, QuantPolicy] = {}
    factory_bank: dict[int, MillionCacheFactory] = {config.bits: base_factory}
    if config.tiers:
        collector = collect_kv_samples(
            models[0], calibration, max_samples_per_layer=1536, seed=config.seed
        )
        sensitivity = measure_sensitivity(collector, kmeans_iters=4)
        tier_policies = _tier_policies(models[0].config, sensitivity)
        needed_bits = {
            assignment.bits
            for policy in tier_policies.values()
            for assignment in policy.distinct_assignments()
        }
        for bits in sorted(needed_bits - set(factory_bank)):
            variant = million_variant(
                models[0].config.head_dim,
                bits,
                kmeans_iters=4,
                calibration_samples=1536,
            )
            factory_bank[bits] = MillionCacheFactory(
                train_million_quantizers(collector, variant), variant
            )
    engines = []
    for replica_index, model in enumerate(models):
        if config.pool_blocks > 0:
            pool = BlockPool.for_model(
                model.config,
                million,
                num_blocks=config.pool_blocks,
                block_tokens=config.block_tokens,
            )
            factory = PooledMillionCacheFactory.from_factory(base_factory, pool)
        else:
            factory = base_factory
        tier_factories = {}
        if config.tiers:
            # "balanced" aliases this replica's default factory, so balanced
            # requests are token- and accounting-identical to untiered ones.
            tier_factories["balanced"] = factory
            for name, policy in tier_policies.items():
                if config.pool_blocks > 0:
                    tier_pool = BlockPool.for_policy(
                        model.config,
                        policy,
                        num_blocks=config.pool_blocks,
                        block_tokens=config.block_tokens,
                    )
                    tier_factories[name] = PooledPolicyCacheFactory(
                        policy, model.config, factory_bank, tier_pool
                    )
                else:
                    tier_factories[name] = PolicyCacheFactory(
                        policy, model.config, million_factories=factory_bank
                    )
        slo_policy = None
        if config.interactive_ttft_slo_ms > 0 or config.best_effort_ttft_slo_ms > 0:
            slo_policy = SloPolicy(
                interactive_slo_s=(
                    config.interactive_ttft_slo_ms / 1000.0
                    if config.interactive_ttft_slo_ms > 0
                    else None
                ),
                best_effort_slo_s=(
                    config.best_effort_ttft_slo_ms / 1000.0
                    if config.best_effort_ttft_slo_ms > 0
                    else None
                ),
            )
        engines.append(
            BatchedMillionEngine(
                model,
                factory,
                max_batch_size=config.max_batch_size,
                max_queue_size=config.max_queue_size,
                tier_factories=tier_factories or None,
                trace=trace,
                trace_track=f"replica-{replica_index}",
                priority_aware=bool(config.priority_aware),
                slo_policy=slo_policy,
                prof=PhaseProfiler() if config.profiler else None,
                chunked_prefill=bool(config.chunked_prefill)
                and config.pool_blocks > 0,
                prefill_token_budget=config.prefill_token_budget or None,
            )
        )
    return engines


def health_policy_from_config(config: GatewayConfig) -> HealthPolicy:
    """The health engine thresholds a :class:`GatewayConfig` implies."""
    ttft_slo_s: dict[str, float] = {}
    interactive_ms = (
        config.burn_interactive_slo_ms or config.interactive_ttft_slo_ms
    )
    best_effort_ms = (
        config.burn_best_effort_slo_ms or config.best_effort_ttft_slo_ms
    )
    if interactive_ms > 0:
        ttft_slo_s["interactive"] = interactive_ms / 1000.0
    if best_effort_ms > 0:
        ttft_slo_s["best_effort"] = best_effort_ms / 1000.0
    return HealthPolicy(
        window_s=float(config.health_window_s), ttft_slo_s=ttft_slo_s
    )


def build_gateway(config: GatewayConfig) -> GatewayServer:
    """Assemble runners, router, health engine and server (not yet started)."""
    trace = (
        TraceRecorder(capacity=config.trace_capacity)
        if config.trace_capacity > 0
        else None
    )
    engines = build_engines(config, trace=trace)
    runners = [
        AsyncEngineRunner(engine, name=f"replica-{i}")
        for i, engine in enumerate(engines)
    ]
    router = ReplicaRouter(runners)
    health = HealthEngine(
        health_policy_from_config(config),
        trace=trace if trace is not None else NULL_RECORDER,
    )
    return GatewayServer(
        router,
        tokenizer=ByteTokenizer(),
        model_name=config.model,
        health=health,
    )


__all__ = [
    "GatewayConfig",
    "build_engines",
    "build_gateway",
    "health_policy_from_config",
]
