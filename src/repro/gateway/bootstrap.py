"""Deterministic gateway assembly shared by the CLI, CI smoke and benchmarks.

Everything the demo gateway serves is synthesized reproducibly from seeds
(zoo model weights, synthetic calibration corpus, MILLION codebooks), so two
processes that call :func:`build_gateway` with the same :class:`GatewayConfig`
hold *identical* engines.  That property is what the CI smoke test leans on:
it streams a completion from a gateway subprocess and compares the tokens
against a direct :meth:`BatchedMillionEngine.run` on an engine it built
itself — token identity across the HTTP boundary, asserted end to end.

Calibration runs once; replicas share the read-only quantizers but each gets
its own model instance and its own block pool (engines step concurrently on
executor threads, so no mutable state may be shared between replicas).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calibration import calibrate_million
from repro.core.config import MillionConfig
from repro.data.corpus import load_corpus
from repro.models.model_zoo import load_model
from repro.models.tokenizer import ByteTokenizer
from repro.serving.engine import BatchedMillionEngine
from repro.serving.memory import BlockPool, PooledMillionCacheFactory

from repro.gateway.runner import AsyncEngineRunner
from repro.gateway.router import ReplicaRouter
from repro.gateway.server import GatewayServer


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs for the self-contained demo gateway (all defaults are tiny)."""

    model: str = "llama-2-7b-tiny"
    seed: int = 0
    max_seq_len: int = 1024
    replicas: int = 1
    max_batch_size: int = 4
    max_queue_size: int = 64
    pool_blocks: int = 512
    block_tokens: int = 16
    calibration_tokens: int = 768
    bits: int = 4

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")


def build_engines(config: GatewayConfig) -> list[BatchedMillionEngine]:
    """One engine per replica; weights and codebooks identical across calls."""
    models = [
        load_model(config.model, seed=config.seed, max_seq_len=config.max_seq_len)
        for _ in range(config.replicas)
    ]
    vocab = models[0].config.vocab_size
    calibration = load_corpus(
        "wikitext2-syn", "train", config.calibration_tokens, seed=config.seed
    ) % vocab
    million = MillionConfig.for_equivalent_bits(
        models[0].config.head_dim,
        bits=config.bits,
        kmeans_iters=4,
        calibration_samples=1536,
    )
    base_factory = calibrate_million(models[0], calibration, million)
    engines = []
    for model in models:
        if config.pool_blocks > 0:
            pool = BlockPool.for_model(
                model.config,
                million,
                num_blocks=config.pool_blocks,
                block_tokens=config.block_tokens,
            )
            factory = PooledMillionCacheFactory.from_factory(base_factory, pool)
        else:
            factory = base_factory
        engines.append(
            BatchedMillionEngine(
                model,
                factory,
                max_batch_size=config.max_batch_size,
                max_queue_size=config.max_queue_size,
            )
        )
    return engines


def build_gateway(config: GatewayConfig) -> GatewayServer:
    """Assemble runners, router and server (not yet started)."""
    engines = build_engines(config)
    runners = [
        AsyncEngineRunner(engine, name=f"replica-{i}")
        for i, engine in enumerate(engines)
    ]
    router = ReplicaRouter(runners)
    return GatewayServer(router, tokenizer=ByteTokenizer(), model_name=config.model)


__all__ = ["GatewayConfig", "build_engines", "build_gateway"]
