"""OpenAI-style completion protocol: request parsing and response shaping.

The gateway speaks a subset of the OpenAI *completions* wire format so any
OpenAI-compatible client can drive the engine:

* ``POST /v1/completions`` with a JSON body; ``prompt`` is either a string
  (encoded with the gateway's tokenizer and folded into the model's
  vocabulary) or a list of token ids (the native currency of the synthetic
  models in this repo).
* ``stream: true`` selects server-sent events — one ``data:`` JSON chunk per
  decoded token, then a final chunk carrying ``finish_reason`` and the
  ``data: [DONE]`` sentinel.

Beyond the OpenAI subset the body accepts repo extensions: ``tier`` (quality
tier name, existence checked by the engine), ``priority`` (``"interactive"``
/ ``"best_effort"`` serving class, validated here against
:data:`~repro.serving.request.PRIORITIES`) and ``tenant`` (opaque
accounting tag, ≤ 64 chars).

Everything here is pure data shaping: no I/O, no engine access.  Validation
errors raise :class:`ProtocolError` with the HTTP status the server should
return, so malformed requests are rejected before they reach a replica.
Capacity refusals are *not* protocol errors: the server maps the engine's
:class:`~repro.serving.scheduler.QueueFullError` /
:class:`~repro.serving.scheduler.SloCapacityError` to HTTP 429 with a
``Retry-After`` header after parsing succeeds.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.serving.request import PRIORITIES, FinishReason, GenerationRequest

#: SSE terminal sentinel, exactly as the OpenAI streaming API sends it.
SSE_DONE = b"data: [DONE]\n\n"

#: Upper bound a single request may ask for; guards against a client tying a
#: replica slot to one request forever.
MAX_TOKENS_LIMIT = 4096

_FINISH_LABELS = {
    FinishReason.LENGTH: "length",
    FinishReason.STOP_TOKEN: "stop",
    FinishReason.CONTEXT_FULL: "context_full",
    FinishReason.CANCELLED: "cancelled",
    FinishReason.ERROR: "error",
}


class ProtocolError(ValueError):
    """A malformed API request; carries the HTTP status to respond with."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def finish_reason_label(reason: Optional[FinishReason]) -> Optional[str]:
    """Wire-format string for an engine finish reason (``None`` passes through)."""
    if reason is None:
        return None
    return _FINISH_LABELS[reason]


@dataclass
class CompletionRequest:
    """One parsed ``/v1/completions`` body."""

    prompt_ids: np.ndarray
    max_tokens: int = 16
    stream: bool = False
    stop_token_id: Optional[int] = None
    seed: Optional[int] = None
    tier: Optional[str] = None
    priority: str = "interactive"
    tenant: Optional[str] = None
    model: str = "repro-million"
    extra: dict = field(default_factory=dict)

    @classmethod
    def from_json(
        cls,
        payload: Any,
        *,
        tokenizer=None,
        vocab_size: Optional[int] = None,
    ) -> "CompletionRequest":
        """Parse and validate a decoded JSON body.

        ``tokenizer`` + ``vocab_size`` turn string prompts into folded token
        ids; token-id prompts are validated against ``vocab_size`` directly.
        """
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object")
        prompt = payload.get("prompt")
        if prompt is None:
            raise ProtocolError("missing required field 'prompt'")
        prompt_ids = _parse_prompt(prompt, tokenizer=tokenizer, vocab_size=vocab_size)

        max_tokens = payload.get("max_tokens", 16)
        if not isinstance(max_tokens, int) or isinstance(max_tokens, bool):
            raise ProtocolError("'max_tokens' must be an integer")
        if not 1 <= max_tokens <= MAX_TOKENS_LIMIT:
            raise ProtocolError(
                f"'max_tokens' must be in [1, {MAX_TOKENS_LIMIT}], got {max_tokens}"
            )

        stream = payload.get("stream", False)
        if not isinstance(stream, bool):
            raise ProtocolError("'stream' must be a boolean")

        stop_token_id = payload.get("stop_token_id")
        if stop_token_id is not None:
            if not isinstance(stop_token_id, int) or isinstance(stop_token_id, bool):
                raise ProtocolError("'stop_token_id' must be an integer token id")

        seed = payload.get("seed")
        if seed is not None and (not isinstance(seed, int) or isinstance(seed, bool)):
            raise ProtocolError("'seed' must be an integer")

        tier = payload.get("tier")
        if tier is not None and (not isinstance(tier, str) or tier == ""):
            raise ProtocolError(
                "'tier' must be a non-empty string naming a quality tier "
                '(e.g. "quality", "balanced", "compact")'
            )

        priority = payload.get("priority", "interactive")
        if priority not in PRIORITIES:
            raise ProtocolError(
                f"'priority' must be one of {list(PRIORITIES)}, got {priority!r}"
            )

        tenant = payload.get("tenant")
        if tenant is not None and (
            not isinstance(tenant, str) or not 0 < len(tenant) <= 64
        ):
            raise ProtocolError(
                "'tenant' must be a non-empty string of at most 64 characters"
            )

        return cls(
            prompt_ids=prompt_ids,
            max_tokens=max_tokens,
            stream=stream,
            stop_token_id=stop_token_id,
            seed=seed,
            tier=tier,
            priority=priority,
            tenant=tenant,
            model=str(payload.get("model", "repro-million")),
        )

    def to_generation_request(self) -> GenerationRequest:
        """Engine-side request (ids are always gateway-assigned).

        ``tier`` passes through verbatim; whether the tier exists is the
        engine's call (it raises at submission, which the server maps to a
        400), so the protocol layer stays configuration-agnostic.
        ``priority`` is validated here against :data:`PRIORITIES` (unknown
        classes never reach a replica) and ``tenant`` passes through as an
        opaque accounting tag.
        """
        return GenerationRequest(
            prompt_ids=self.prompt_ids,
            max_new_tokens=self.max_tokens,
            stop_token=self.stop_token_id,
            seed=self.seed,
            tier=self.tier,
            priority=self.priority,
            tenant=self.tenant,
        )


def _parse_prompt(prompt: Any, *, tokenizer, vocab_size: Optional[int]) -> np.ndarray:
    if isinstance(prompt, str):
        if tokenizer is None:
            raise ProtocolError(
                "string prompts need a tokenizer; send a list of token ids"
            )
        if not prompt:
            raise ProtocolError("'prompt' must not be empty")
        ids = np.asarray(tokenizer.encode(prompt, add_bos=False), dtype=np.int64)
        if vocab_size is not None:
            # The synthetic zoo models have tiny vocabularies; fold the
            # tokenizer's id space into them the same way the examples do.
            ids = ids % vocab_size
        return ids
    if isinstance(prompt, (list, tuple)):
        if not prompt:
            raise ProtocolError("'prompt' must not be empty")
        if not all(isinstance(t, int) and not isinstance(t, bool) for t in prompt):
            raise ProtocolError("'prompt' list must contain only integer token ids")
        ids = np.asarray(prompt, dtype=np.int64)
        if (ids < 0).any():
            raise ProtocolError("'prompt' token ids must be non-negative")
        if vocab_size is not None and int(ids.max()) >= vocab_size:
            raise ProtocolError(
                f"'prompt' token id {int(ids.max())} is outside the model "
                f"vocabulary (size {vocab_size})"
            )
        return ids
    raise ProtocolError("'prompt' must be a string or a list of token ids")


# Response shaping -----------------------------------------------------------


def _decode(tokenizer, token_ids: Sequence[int]) -> str:
    if tokenizer is None:
        return ""
    return tokenizer.decode(list(token_ids))


def completion_json(
    request_id: str,
    request: CompletionRequest,
    token_ids: Sequence[int],
    finish_reason: Optional[FinishReason],
    *,
    tokenizer=None,
) -> dict:
    """Full (non-streaming) completion response body."""
    prompt_tokens = int(request.prompt_ids.size)
    completion_tokens = len(token_ids)
    return {
        "id": f"cmpl-{request_id}",
        "object": "text_completion",
        "created": int(time.time()),
        "model": request.model,
        "choices": [
            {
                "index": 0,
                "text": _decode(tokenizer, token_ids),
                "token_ids": [int(t) for t in token_ids],
                "finish_reason": finish_reason_label(finish_reason),
            }
        ],
        "usage": {
            "prompt_tokens": prompt_tokens,
            "completion_tokens": completion_tokens,
            "total_tokens": prompt_tokens + completion_tokens,
        },
    }


def chunk_json(
    request_id: str,
    request: CompletionRequest,
    token_id: Optional[int],
    finish_reason: Optional[FinishReason],
    *,
    tokenizer=None,
) -> dict:
    """One SSE streaming chunk (one token, or the final finish marker)."""
    return {
        "id": f"cmpl-{request_id}",
        "object": "text_completion.chunk",
        "created": int(time.time()),
        "model": request.model,
        "choices": [
            {
                "index": 0,
                "text": _decode(tokenizer, [token_id]) if token_id is not None else "",
                "token_id": int(token_id) if token_id is not None else None,
                "finish_reason": finish_reason_label(finish_reason),
            }
        ],
    }


def sse_event(body: dict) -> bytes:
    """Encode one JSON object as a server-sent-events ``data:`` frame."""
    return b"data: " + json.dumps(body, separators=(",", ":")).encode() + b"\n\n"


__all__ = [
    "CompletionRequest",
    "MAX_TOKENS_LIMIT",
    "ProtocolError",
    "SSE_DONE",
    "chunk_json",
    "completion_json",
    "finish_reason_label",
    "sse_event",
]
