"""Async serving gateway: a network front door for the batched engine.

The gateway is the engine/frontend split production LLM servers use — the
synchronous :class:`~repro.serving.engine.BatchedMillionEngine` stays a pure
compute loop, and this package adds the asynchronous serving shell:

* :mod:`~repro.gateway.protocol` — OpenAI-style ``/v1/completions`` request
  parsing and response/SSE shaping (pure data, no I/O);
* :mod:`~repro.gateway.runner` — :class:`AsyncEngineRunner`, a background
  stepper that drives one engine replica in a thread executor and fans each
  decoded token out to per-request asyncio queues;
* :mod:`~repro.gateway.router` — :class:`ReplicaRouter`, prefix-affinity
  placement over the block pool's chained prompt hashes with least-loaded
  fallback; capacity refusals (hard queue cap or SLO admission, see
  :class:`~repro.serving.scheduler.SloPolicy`) surface as 429 backpressure;
* :mod:`~repro.gateway.metrics` — Prometheus text rendering of gateway,
  router and per-replica engine statistics;
* :mod:`~repro.gateway.server` — :class:`GatewayServer`, the stdlib asyncio
  HTTP server with SSE token streaming and disconnect-driven cancellation;
* :mod:`~repro.gateway.bootstrap` — deterministic assembly of a demo
  gateway (``python -m repro.gateway``), reused by CI smoke and benchmarks.
"""

from repro.gateway.bootstrap import GatewayConfig, build_engines, build_gateway
from repro.gateway.metrics import GatewayMetrics, render_prometheus
from repro.gateway.protocol import (
    CompletionRequest,
    ProtocolError,
    chunk_json,
    completion_json,
    sse_event,
)
from repro.gateway.router import ReplicaRouter, RoutingDecision
from repro.gateway.runner import AsyncEngineRunner, ReplicaFailedError
from repro.gateway.server import GatewayServer

__all__ = [
    "AsyncEngineRunner",
    "ReplicaFailedError",
    "CompletionRequest",
    "GatewayConfig",
    "GatewayMetrics",
    "GatewayServer",
    "ProtocolError",
    "ReplicaRouter",
    "RoutingDecision",
    "build_engines",
    "build_gateway",
    "chunk_json",
    "completion_json",
    "render_prometheus",
    "sse_event",
]
