"""Prefix-affinity routing across engine replicas.

Prefix sharing (PR 2's block pool) only pays off if requests with a common
prompt prefix land on the replica that already holds the published blocks —
otherwise every replica prefills the shared system prompt once.  The router
therefore scores each replica by how deep a published block chain it holds
for the incoming prompt — the prompt's chained BLAKE2b hashes are computed
once and every replica's pool is probed with the same chain
(:meth:`BlockPool.longest_prefix`) — and only falls back to least-loaded
placement when no replica has seen the prefix:

1. **Pool affinity** — deepest published prefix wins (ties: lower load).
2. **Sticky affinity** — an LRU table of recently routed chain hashes covers
   the window before a prefix's blocks are published (two requests arriving
   back-to-back must not land on different replicas just because the first
   one has not prefilled yet) and replicas without a pool.
3. **Least loaded** — fewest queued + running requests.

A replica whose wait queue is full is never chosen; if every replica is
saturated the router raises
:class:`~repro.serving.scheduler.QueueFullError`, which the server maps to
HTTP 429 — backpressure instead of unbounded buffering.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.gateway.runner import AsyncEngineRunner
from repro.serving.memory import chain_hashes
from repro.serving.scheduler import QueueFullError
from repro.utils.validation import require


@dataclass(frozen=True)
class RoutingDecision:
    """Where one request was placed and why."""

    replica_index: int
    runner: AsyncEngineRunner
    affinity_blocks: int
    reason: str  # "prefix" | "sticky" | "least_loaded"


class ReplicaRouter:
    """Route requests to the replica most likely to reuse their prefix."""

    def __init__(
        self,
        runners: Sequence[AsyncEngineRunner],
        block_tokens: Optional[int] = None,
        max_sticky_entries: int = 4096,
    ) -> None:
        require(len(runners) >= 1, "router needs at least one replica")
        require(max_sticky_entries >= 1, "max_sticky_entries must be >= 1")
        self.runners = list(runners)
        if block_tokens is None:
            pools = [r.engine.pool for r in self.runners if r.engine.pool is not None]
            block_tokens = pools[0].block_tokens if pools else 16
        require(block_tokens >= 1, "block_tokens must be >= 1")
        self.block_tokens = int(block_tokens)
        self.max_sticky_entries = max_sticky_entries
        # chain hash -> replica index, most recently routed last.
        self._sticky: "OrderedDict[bytes, int]" = OrderedDict()
        # Per-replica health states (0 ok, 1 degraded, 2 unhealthy) pushed by
        # the gateway's health engine after every scrape; empty = all healthy.
        self._replica_health: list[int] = []
        # Decision counters (reported by /metrics).
        self.prefix_routed = 0
        self.sticky_routed = 0
        self.load_routed = 0
        self.rejected = 0
        self.health_avoided = 0

    def route(self, prompt_ids: np.ndarray) -> RoutingDecision:
        """Pick a replica for a prompt and register its prefix affinity."""
        prompt_ids = np.asarray(prompt_ids, dtype=np.int64).reshape(-1)
        # Hash the span the prefill protocol would seal (see
        # BlockPool.longest_token_prefix for the -1 alignment).
        aligned = self.block_tokens * max(0, (prompt_ids.size - 1) // self.block_tokens)
        hashes = chain_hashes(prompt_ids[:aligned], self.block_tokens)
        candidates = [
            (index, runner)
            for index, runner in enumerate(self.runners)
            if not runner.queue_full
        ]
        if not candidates:
            self.rejected += 1
            raise QueueFullError(
                f"all {len(self.runners)} replicas are at queue capacity"
            )
        candidates = self._prefer_healthy(candidates)
        decision = (
            self._route_by_pool(candidates, hashes)
            or self._route_by_sticky(candidates, hashes)
            or self._route_least_loaded(candidates)
        )
        if decision.reason == "prefix":
            self.prefix_routed += 1
        elif decision.reason == "sticky":
            self.sticky_routed += 1
        else:
            self.load_routed += 1
        self._register(hashes, decision.replica_index)
        return decision

    # Health ---------------------------------------------------------------

    def set_replica_health(self, states: Sequence[int]) -> None:
        """Record per-replica health (0 ok, 1 degraded, 2 unhealthy).

        Pushed by the gateway after every health evaluation, so routing
        never blocks on the health engine itself.
        """
        self._replica_health = [int(state) for state in states]

    def _replica_state(self, index: int) -> int:
        if index < len(self._replica_health):
            return self._replica_health[index]
        return 0

    def _prefer_healthy(self, candidates):
        """Deprioritize degraded replicas: route within the healthiest
        non-empty tier (ok > degraded > unhealthy).  A degraded replica
        still serves when every healthy one is at queue capacity —
        shedding load beats rejecting it, and the verdict may be stale."""
        best = min(self._replica_state(index) for index, _ in candidates)
        preferred = [
            pair for pair in candidates if self._replica_state(pair[0]) == best
        ]
        if len(preferred) < len(candidates):
            self.health_avoided += 1
        return preferred

    # Strategies -----------------------------------------------------------

    def _route_by_pool(self, candidates, hashes) -> Optional[RoutingDecision]:
        if not hashes:
            return None
        best: Optional[tuple[int, int, AsyncEngineRunner]] = None
        for index, runner in candidates:
            hits = runner.longest_prefix(hashes, self.block_tokens)
            if hits == 0:
                continue
            if best is None or (hits, -runner.load) > (best[1], -best[2].load):
                best = (index, hits, runner)
        if best is None:
            return None
        return RoutingDecision(best[0], best[2], best[1], "prefix")

    def _route_by_sticky(self, candidates, hashes) -> Optional[RoutingDecision]:
        eligible = {index for index, _ in candidates}
        for depth in range(len(hashes), 0, -1):
            index = self._sticky.get(hashes[depth - 1])
            if index is not None and index in eligible:
                return RoutingDecision(index, self.runners[index], depth, "sticky")
        return None

    def _route_least_loaded(self, candidates) -> RoutingDecision:
        index, runner = min(candidates, key=lambda pair: (pair[1].load, pair[0]))
        return RoutingDecision(index, runner, 0, "least_loaded")

    def _register(self, hashes: Sequence[bytes], replica_index: int) -> None:
        for chain_hash in hashes:
            self._sticky[chain_hash] = replica_index
            self._sticky.move_to_end(chain_hash)
        while len(self._sticky) > self.max_sticky_entries:
            self._sticky.popitem(last=False)

    # Introspection --------------------------------------------------------

    def stats(self) -> dict:
        return {
            "replicas": len(self.runners),
            "prefix_routed": self.prefix_routed,
            "sticky_routed": self.sticky_routed,
            "load_routed": self.load_routed,
            "rejected": self.rejected,
            "health_avoided": self.health_avoided,
            "sticky_entries": len(self._sticky),
        }


__all__ = ["ReplicaRouter", "RoutingDecision"]
