"""Asyncio HTTP front door: streaming completions over stdlib only.

:class:`GatewayServer` is a minimal HTTP/1.1 server built directly on
``asyncio.start_server`` (the repo takes no third-party dependencies), with
three endpoints:

* ``POST /v1/completions`` — OpenAI-style completion; ``"stream": true``
  responds with server-sent events, one ``data:`` chunk per decoded token
  as the engine produces it, else a single JSON body.
* ``GET /healthz`` — liveness + the health engine's rolling-window verdict
  (``ok``/``degraded``/``unhealthy`` with per-rule checks, SLO burn rates
  and per-replica reasons); always 200 while the process serves.
* ``GET /readyz`` — readiness: 503 until :meth:`GatewayServer.finish_startup`
  brings the replicas up (and again if the gateway turns unhealthy), so a
  booting/calibrating gateway reports not-ready instead of ok.
* ``GET /metrics`` — Prometheus text format (see :mod:`repro.gateway.metrics`),
  including per-tier TTFT/ITL histograms observed by the completion handlers.
* ``GET /debug/trace`` — Chrome trace-event JSON of the shared
  :class:`~repro.obs.trace.TraceRecorder` (load it in Perfetto); supports
  ``?since=<seconds>`` on the recorder's clock.
* ``GET /debug/prof`` — the phase profiler's aggregated view: per-phase
  self-time table, collapsed stacks and a speedscope flamegraph JSON.
* ``GET /v1/requests/<id>/trace`` — one request's slice of the same trace.

Design points:

* every connection is ``Connection: close`` — one exchange per socket keeps
  the parser small and makes disconnect detection unambiguous;
* requests are routed by :class:`~repro.gateway.router.ReplicaRouter`;
  capacity refusals — the ``max_queue_size`` hard cap, or an
  :class:`~repro.serving.scheduler.SloCapacityError` when the replica's SLO
  admission gate projects the request would miss its class's queue-wait SLO
  — surface as **429** with a ``Retry-After`` hint rather than unbounded
  buffering;
* a *disconnect watcher* reads the socket while a stream is in flight —
  client EOF (curl hit Ctrl-C) cancels the request inside the engine via
  :meth:`AsyncEngineRunner.cancel`, freeing its batch slot and pool blocks
  immediately.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Optional, Sequence
from urllib.parse import parse_qsl

from repro.gateway.metrics import GatewayMetrics, render_prometheus
from repro.obs.context import bind_request_id, reset_request_id
from repro.obs.health import HealthEngine, HealthSample, state_value
from repro.obs.prof import (
    merge_phase_snapshots,
    phase_table,
    to_collapsed,
    to_speedscope,
)
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.gateway.protocol import (
    SSE_DONE,
    CompletionRequest,
    ProtocolError,
    chunk_json,
    completion_json,
    sse_event,
)
from repro.gateway.router import ReplicaRouter
from repro.serving.request import FinishReason, StepOutput
from repro.serving.scheduler import QueueFullError
from repro.utils.logging import get_logger

logger = get_logger("gateway")

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 4 * 1024 * 1024

_STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Request:
    """One parsed HTTP request."""

    def __init__(
        self,
        method: str,
        path: str,
        headers: dict,
        body: bytes,
        query: Optional[dict] = None,
    ) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.query = query or {}


async def _read_request(reader: asyncio.StreamReader) -> Optional[_Request]:
    """Parse one HTTP/1.1 request; ``None`` on immediate EOF."""
    try:
        request_line = await reader.readline()
    except ConnectionError:
        return None
    except ValueError:
        # StreamReader.readline wraps a line longer than the reader limit
        # (64 KiB default) in ValueError — a client error, not a server one.
        raise _HttpError(400, "request line too long") from None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3:
        raise _HttpError(400, "malformed request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    total = len(request_line)
    while True:
        try:
            line = await reader.readline()
        except ValueError:
            raise _HttpError(400, "header line too long") from None
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise _HttpError(400, "headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise _HttpError(400, "invalid Content-Length") from None
        if n < 0:
            raise _HttpError(400, "invalid Content-Length")
        if n > _MAX_BODY_BYTES:
            raise _HttpError(413, f"body larger than {_MAX_BODY_BYTES} bytes")
        body = await reader.readexactly(n)
    path, _, query_string = target.partition("?")
    query = dict(parse_qsl(query_string)) if query_string else {}
    return _Request(method, path, headers, body, query)


def _response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Sequence[tuple[str, str]] = (),
) -> bytes:
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _json_body(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode()


def _error_body(status: int, message: str) -> bytes:
    return _json_body(
        {"error": {"message": message, "type": "invalid_request_error", "code": status}}
    )


class GatewayServer:
    """Serve one :class:`ReplicaRouter` over HTTP."""

    def __init__(
        self,
        router: ReplicaRouter,
        tokenizer=None,
        model_name: str = "repro-million",
        trace: Optional[TraceRecorder] = None,
        health: Optional[HealthEngine] = None,
    ) -> None:
        self.router = router
        self.tokenizer = tokenizer
        self.model_name = model_name
        self.metrics = GatewayMetrics()
        # The process-wide recorder.  Bootstrap hands every replica engine
        # the same instance, so defaulting to the first engine's recorder
        # picks up the shared one; without tracing this is NULL_RECORDER and
        # the trace endpoints serve an empty (disabled) trace.
        if trace is None:
            trace = next(
                (
                    runner.engine.trace
                    for runner in router.runners
                    if runner.engine.trace.enabled
                ),
                NULL_RECORDER,
            )
        self.trace = trace
        # SLO health: every /healthz, /readyz and /metrics scrape feeds the
        # engine one sample and gets the rolling-window verdict back.  The
        # default policy carries no SLOs, so a bare gateway is "ok" on
        # liveness alone; bootstrap wires thresholds from GatewayConfig.
        self.health = (
            health if health is not None else HealthEngine(trace=self.trace)
        )
        # String prompts fold into the smallest replica vocabulary (they are
        # homogeneous in practice; min() is the safe choice if not).
        self.vocab_size = min(
            runner.engine.model.config.vocab_size for runner in router.runners
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._ready = False

    # Lifecycle ------------------------------------------------------------

    async def start_listening(
        self, host: str = "127.0.0.1", port: int = 8707
    ) -> tuple[str, int]:
        """Bind the listener without starting the replicas.

        Liveness (``/healthz``) answers immediately, but ``/readyz`` stays
        503 until :meth:`finish_startup` brings the runners up — the
        booting/calibrating window reports not-ready instead of ok, so a
        load balancer never routes traffic at an engine that cannot serve.
        """
        self._server = await asyncio.start_server(self._handle_client, host, port)
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def finish_startup(self) -> None:
        """Start every replica runner and flip ``/readyz`` to ready."""
        for runner in self.router.runners:
            if not runner.started:
                await runner.start()
        self._ready = True

    async def start(self, host: str = "127.0.0.1", port: int = 8707) -> tuple[str, int]:
        """Start the listener and all replica runners; returns (host, port)."""
        bound = await self.start_listening(host, port)
        await self.finish_startup()
        return bound

    @property
    def ready(self) -> bool:
        """Readiness: runners are up and at least one replica can serve."""
        return self._ready and any(
            runner.error is None for runner in self.router.runners
        )

    async def stop(self) -> None:
        self._ready = False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for runner in self.router.runners:
            await runner.stop()

    @property
    def port(self) -> int:
        assert self._server is not None, "server is not started"
        return self._server.sockets[0].getsockname()[1]

    # Connection handling ----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        path = "?"
        try:
            try:
                request = await _read_request(reader)
            except _HttpError as exc:
                await self._send(
                    writer, exc.status, _error_body(exc.status, str(exc))
                )
                self.metrics.observe_request(path, exc.status)
                return
            if request is None:
                return
            path = request.path
            await self._dispatch(request, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; streaming paths already cancelled
        except Exception:
            logger.exception("unhandled error serving %s", path)
            try:
                await self._send(
                    writer, 500, _error_body(500, "internal server error")
                )
                self.metrics.observe_request(path, 500)
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _dispatch(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if request.path == "/healthz":
            if request.method != "GET":
                await self._simple(writer, request.path, 405, "use GET")
                return
            await self._healthz(request, writer)
        elif request.path == "/readyz":
            if request.method != "GET":
                await self._simple(writer, request.path, 405, "use GET")
                return
            await self._readyz(request, writer)
        elif request.path == "/debug/prof":
            if request.method != "GET":
                await self._simple(writer, request.path, 405, "use GET")
                return
            await self._debug_prof(request, writer)
        elif request.path == "/metrics":
            if request.method != "GET":
                await self._simple(writer, request.path, 405, "use GET")
                return
            await self._metrics(request, writer)
        elif request.path == "/v1/completions":
            if request.method != "POST":
                await self._simple(writer, request.path, 405, "use POST")
                return
            await self._completions(request, reader, writer)
        elif request.path == "/debug/trace":
            if request.method != "GET":
                await self._simple(writer, request.path, 405, "use GET")
                return
            await self._debug_trace(request, writer)
        elif request.path.startswith("/v1/requests/") and request.path.endswith(
            "/trace"
        ):
            if request.method != "GET":
                await self._simple(writer, request.path, 405, "use GET")
                return
            request_id = request.path[len("/v1/requests/") : -len("/trace")]
            await self._request_trace(request, writer, request_id)
        else:
            await self._simple(writer, request.path, 404, f"no route for {request.path}")

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Sequence[tuple[str, str]] = (),
    ) -> None:
        writer.write(_response_bytes(status, body, content_type, extra_headers))
        await writer.drain()

    async def _simple(
        self, writer: asyncio.StreamWriter, path: str, status: int, message: str
    ) -> None:
        await self._send(writer, status, _error_body(status, message))
        self.metrics.observe_request(path, status)

    # Endpoints --------------------------------------------------------------

    def _health_sample(self) -> HealthSample:
        """One scrape's worth of cumulative state for the health engine."""
        replicas = []
        for runner in self.router.runners:
            engine = runner.engine
            pool = engine.pool
            replicas.append(
                {
                    "queued": engine.queued_count,
                    "running": engine.running_count,
                    "pool_pressure": (
                        float(pool.stats()["pressure"]) if pool is not None else 0.0
                    ),
                    "failed": runner.error is not None,
                    "error": str(runner.error) if runner.error is not None else "",
                }
            )
        # Probe endpoints are excluded: a /readyz 503 during boot is the
        # readiness contract working, not a serving error, and counting it
        # would let the probes themselves trip the error_rate rule.
        probes = {"/healthz", "/readyz"}
        http_total = sum(
            count
            for (path, _), count in self.metrics.http_requests.items()
            if path not in probes
        )
        http_errors = sum(
            count
            for (path, status), count in self.metrics.http_requests.items()
            if status.startswith("5") and path not in probes
        )
        return HealthSample(
            ts=TraceRecorder.now(),
            ttft={
                priority: hist.snapshot()
                for priority, hist in self.metrics.priority_ttft_seconds.items()
            },
            http_total=http_total,
            http_errors=http_errors,
            replicas=replicas,
        )

    def _evaluate_health(self) -> dict:
        """Feed one sample to the health engine and sync the router's view."""
        report = self.health.observe(self._health_sample())
        self.router.set_replica_health(
            [state_value(state) for state in self.health.replica_states]
        )
        return report

    async def _healthz(self, request: _Request, writer: asyncio.StreamWriter) -> None:
        report = self._evaluate_health()
        body = _json_body(
            {
                "status": report["status"],
                "ready": self.ready,
                "model": self.model_name,
                "replicas": len(self.router.runners),
                "in_flight": self.metrics.in_flight,
                "window_s": report["window_s"],
                "burn_rates": report["burn_rates"],
                "checks": report["checks"],
                "replica_health": report["replicas"],
            }
        )
        # Liveness: /healthz is 200 as long as the process serves — the
        # verdict rides in the body.  Readiness semantics live on /readyz.
        await self._send(writer, 200, body)
        self.metrics.observe_request(request.path, 200)

    async def _readyz(self, request: _Request, writer: asyncio.StreamWriter) -> None:
        report = self._evaluate_health()
        ready = self.ready and report["status"] != "unhealthy"
        status = 200 if ready else 503
        reason = (
            "ok"
            if ready
            else ("replicas are not started" if not self._ready else report["status"])
        )
        body = _json_body(
            {"ready": ready, "status": report["status"], "reason": reason}
        )
        await self._send(writer, status, body)
        self.metrics.observe_request(request.path, status)

    async def _debug_prof(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        snapshots = [
            runner.engine.prof.snapshot() for runner in self.router.runners
        ]
        merged = merge_phase_snapshots(snapshots)
        body = _json_body(
            {
                "enabled": any(
                    runner.engine.prof.enabled for runner in self.router.runners
                ),
                "phases": phase_table(merged),
                "collapsed": to_collapsed(merged),
                "speedscope": to_speedscope(merged),
                "per_replica": {
                    str(index): phase_table(snapshot)
                    for index, snapshot in enumerate(snapshots)
                },
            }
        )
        await self._send(writer, 200, body)
        self.metrics.observe_request(request.path, 200)

    async def _debug_trace(
        self, request: _Request, writer: asyncio.StreamWriter
    ) -> None:
        try:
            since = float(request.query.get("since", 0.0))
        except ValueError:
            await self._simple(
                writer, request.path, 400, "since must be a number (seconds)"
            )
            return
        if not math.isfinite(since):
            # float() happily parses "nan"/"inf", but a non-finite cutoff is
            # meaningless on the recorder's clock — reject, don't 500 later.
            await self._simple(
                writer, request.path, 400, "since must be a finite number (seconds)"
            )
            return
        body = _json_body(
            self.trace.to_chrome_trace(
                since=since, request_id=request.query.get("request_id")
            )
        )
        await self._send(writer, 200, body)
        self.metrics.observe_request(request.path, 200)

    async def _request_trace(
        self, request: _Request, writer: asyncio.StreamWriter, request_id: str
    ) -> None:
        if not request_id:
            await self._simple(writer, request.path, 404, "missing request id")
            return
        trace = self.trace.to_chrome_trace(request_id=request_id)
        if trace["otherData"]["events"] == 0:
            # Unknown id, or its events already fell off the ring buffer —
            # either way there is nothing to show, which a client must be
            # able to tell apart from an empty-but-real trace.
            await self._simple(
                writer,
                request.path,
                404,
                f"no trace events for request {request_id!r}",
            )
            return
        await self._send(writer, 200, _json_body(trace))
        # One normalized path label; per-request-id labels would explode
        # the http_requests family's cardinality.
        self.metrics.observe_request("/v1/requests/<id>/trace", 200)

    async def _metrics(self, request: _Request, writer: asyncio.StreamWriter) -> None:
        replica_stats = [await runner.stats() for runner in self.router.runners]
        self._evaluate_health()
        text = render_prometheus(
            self.metrics, replica_stats, self.router.stats(), health=self.health
        )
        await self._send(
            writer, 200, text.encode(), content_type="text/plain; version=0.0.4"
        )
        self.metrics.observe_request(request.path, 200)

    async def _completions(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        # TTFT is measured from HTTP accept, not engine submission — the
        # client's clock starts when its request arrives, and queue wait is
        # part of the latency it experiences.
        arrival = TraceRecorder.now()
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            await self._simple(writer, request.path, 400, "body is not valid JSON")
            return
        try:
            completion = CompletionRequest.from_json(
                payload, tokenizer=self.tokenizer, vocab_size=self.vocab_size
            )
        except ProtocolError as exc:
            await self._simple(writer, request.path, exc.status, str(exc))
            return

        try:
            decision = self.router.route(completion.prompt_ids)
            request_id, queue = await decision.runner.submit(
                completion.to_generation_request()
            )
        except QueueFullError as exc:
            # SloCapacityError carries a projected-wait-derived backoff hint;
            # the plain hard-cap refusal keeps the coarse 1s default.
            retry_after = getattr(exc, "retry_after_s", 1)
            await self._send(
                writer,
                429,
                _error_body(429, str(exc)),
                extra_headers=(("Retry-After", str(int(retry_after))),),
            )
            self.metrics.observe_request(request.path, 429)
            return
        except ValueError as exc:
            # Engine-side validation (e.g. prompt longer than max_seq_len).
            await self._simple(writer, request.path, 400, str(exc))
            return

        self.metrics.in_flight += 1
        log_token = bind_request_id(request_id)
        try:
            if completion.stream:
                await self._stream_completion(
                    request, reader, writer, decision.runner, request_id,
                    completion, queue, arrival,
                )
            else:
                await self._full_completion(
                    request, writer, request_id, completion, queue, arrival
                )
        finally:
            reset_request_id(log_token)
            self.metrics.in_flight -= 1
            decision.runner.release(request_id)
            if self.trace.enabled:
                self.trace.complete(
                    "request",
                    arrival,
                    TraceRecorder.now(),
                    track="gateway",
                    request_id=request_id,
                    args={
                        "tier": completion.tier or "default",
                        "priority": completion.priority,
                        "tenant": completion.tenant or "",
                        "stream": completion.stream,
                    },
                )

    def _observe_token_latency(
        self,
        request_id: str,
        tier: Optional[str],
        priority: str,
        arrival: float,
        last_token_at: Optional[float],
    ) -> float:
        """Record TTFT (first token) or ITL (later tokens); returns now."""
        now = TraceRecorder.now()
        if last_token_at is None:
            self.metrics.observe_ttft(now - arrival, tier, priority)
            if self.trace.enabled:
                self.trace.instant(
                    "first_token",
                    track="gateway",
                    request_id=request_id,
                    ts=now,
                    args={"ttft_s": now - arrival},
                )
        else:
            self.metrics.observe_itl(now - last_token_at, tier, priority)
        return now

    async def _full_completion(
        self,
        request: _Request,
        writer: asyncio.StreamWriter,
        request_id: str,
        completion: CompletionRequest,
        queue: "asyncio.Queue[StepOutput]",
        arrival: float,
    ) -> None:
        tokens: list[int] = []
        finish_reason = None
        last_token_at: Optional[float] = None
        while True:
            output = await queue.get()
            if output.token is not None:
                last_token_at = self._observe_token_latency(
                    request_id,
                    completion.tier,
                    completion.priority,
                    arrival,
                    last_token_at,
                )
                tokens.append(output.token)
            if output.finished:
                finish_reason = output.finish_reason
                break
        if finish_reason is FinishReason.ERROR:
            # The replica's stepper died mid-request (see AsyncEngineRunner);
            # an incomplete result must not look like a successful completion.
            await self._simple(writer, request.path, 500, "engine replica failed")
            return
        self.metrics.tokens_streamed += len(tokens)
        body = _json_body(
            completion_json(
                request_id, completion, tokens, finish_reason, tokenizer=self.tokenizer
            )
        )
        await self._send(writer, 200, body)
        self.metrics.observe_request(request.path, 200)

    async def _stream_completion(
        self,
        request: _Request,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        runner,
        request_id: str,
        completion: CompletionRequest,
        queue: "asyncio.Queue[StepOutput]",
        arrival: float,
    ) -> None:
        self.metrics.streams_started += 1
        last_token_at: Optional[float] = None
        header = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(header)
        disconnected = asyncio.Event()
        watcher = asyncio.create_task(_watch_disconnect(reader, disconnected))
        cancelled = False
        try:
            while True:
                get_output = asyncio.create_task(queue.get())
                disconnect_wait = asyncio.create_task(disconnected.wait())
                done, pending = await asyncio.wait(
                    {get_output, disconnect_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for task in pending:
                    task.cancel()
                if get_output not in done:
                    cancelled = True
                    break
                output: StepOutput = get_output.result()
                if output.finish_reason is FinishReason.CANCELLED:
                    cancelled = True
                    break
                try:
                    if output.token is not None:
                        last_token_at = self._observe_token_latency(
                            request_id,
                            completion.tier,
                            completion.priority,
                            arrival,
                            last_token_at,
                        )
                        self.metrics.tokens_streamed += 1
                        writer.write(
                            sse_event(
                                chunk_json(
                                    request_id,
                                    completion,
                                    output.token,
                                    output.finish_reason if output.finished else None,
                                    tokenizer=self.tokenizer,
                                )
                            )
                        )
                        await writer.drain()
                    if output.finished:
                        if output.token is None:
                            # Finish marker with no token (e.g. context full
                            # right at prefill) still needs a final chunk.
                            writer.write(
                                sse_event(
                                    chunk_json(
                                        request_id,
                                        completion,
                                        None,
                                        output.finish_reason,
                                        tokenizer=self.tokenizer,
                                    )
                                )
                            )
                        writer.write(SSE_DONE)
                        await writer.drain()
                        break
                except ConnectionError:
                    cancelled = True
                    break
        finally:
            watcher.cancel()
            try:
                await watcher
            except (asyncio.CancelledError, Exception):
                pass
            if cancelled:
                self.metrics.streams_cancelled += 1
                await runner.cancel(request_id)
            if self.trace.enabled:
                self.trace.instant(
                    "disconnect" if cancelled else "stream_end",
                    track="gateway",
                    request_id=request_id,
                )
        self.metrics.observe_request(request.path, 200)


async def _watch_disconnect(
    reader: asyncio.StreamReader, disconnected: asyncio.Event
) -> None:
    """Signal when the client half-closes or resets the connection."""
    try:
        while True:
            chunk = await reader.read(4096)
            if not chunk:
                break
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        disconnected.set()


__all__ = ["GatewayServer"]
