"""Run the serving gateway from the command line.

::

    PYTHONPATH=src python -m repro.gateway --port 8707 --replicas 2

then stream a completion with any HTTP client::

    curl -N http://127.0.0.1:8707/v1/completions \\
      -H 'Content-Type: application/json' \\
      -d '{"prompt": "the quick brown fox", "max_tokens": 16, "stream": true}'

``--port 0`` binds an ephemeral port; the chosen one is printed on the
``listening on`` line (machine-readable, used by the CI smoke script).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
from dataclasses import fields

from repro.gateway.bootstrap import GatewayConfig, build_gateway


def _parser() -> argparse.ArgumentParser:
    defaults = GatewayConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8707, help="0 = ephemeral")
    for field in fields(GatewayConfig):
        flag = "--" + field.name.replace("_", "-")
        if field.name == "model":
            parser.add_argument(flag, default=defaults.model, help="zoo model name")
        else:
            parser.add_argument(
                flag, type=int, default=getattr(defaults, field.name),
                help=f"(default {getattr(defaults, field.name)})",
            )
    return parser


def config_from_args(args: argparse.Namespace) -> GatewayConfig:
    return GatewayConfig(
        **{field.name: getattr(args, field.name) for field in fields(GatewayConfig)}
    )


async def serve(config: GatewayConfig, host: str, port: int) -> None:
    print(
        f"building gateway: model={config.model} replicas={config.replicas} "
        f"pool_blocks={config.pool_blocks} (calibrating MILLION codebooks ...)",
        flush=True,
    )
    server = build_gateway(config)
    bound_host, bound_port = await server.start(host, port)
    print(f"listening on http://{bound_host}:{bound_port}", flush=True)
    try:
        await asyncio.Event().wait()
    finally:
        await server.stop()


def main(argv=None) -> None:
    args = _parser().parse_args(argv)
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(serve(config_from_args(args), args.host, args.port))


if __name__ == "__main__":
    main()
