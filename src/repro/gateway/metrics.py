"""Prometheus text-format rendering of gateway, router and engine state.

``GET /metrics`` renders three layers into the standard
`text exposition format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_:

* gateway HTTP counters (requests by path/status, streamed tokens, client
  disconnects, in-flight requests) and TTFT/ITL latency histograms, sliced
  by quality tier and by priority class;
* router decision counters (prefix vs sticky vs least-loaded placements);
* per-replica engine statistics straight from ``engine.stats()`` — scheduler
  queue depths (total and per priority class), prefill reuse, preemptions,
  SLO rejections, and block-pool occupancy/pressure — labelled
  ``{replica="<index>"}``.

Rendering is pull-based and stateless: every scrape reflects the live
counters, nothing is sampled or aggregated in between.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Optional, Sequence

from repro.obs.health import HealthEngine, state_value
from repro.obs.hist import Histogram, LATENCY_BUCKETS_S
from repro.serving.request import PRIORITIES

_GATEWAY_PREFIX = "repro_gateway"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_value(value) -> str:
    """Prometheus-valid sample value: canonical +Inf/-Inf/NaN, never Python's.

    ``repr(float("inf"))`` is ``'inf'``, which Prometheus rejects — a single
    non-finite counter would invalidate the whole scrape.
    """
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if math.isnan(value):
            return "NaN"
        return repr(value)
    return str(int(value))


class GatewayMetrics:
    """Mutable counters + latency histograms the HTTP server updates as it serves.

    TTFT (time to first token) and ITL (inter-token latency) are recorded
    twice per observation: once per quality tier (``"default"`` for untiered
    requests) and once per priority class (``interactive`` /
    ``best_effort``), so an operator can slice latency by either dimension
    without a labels cross-product.  Families are pre-seeded so the very
    first ``/metrics`` scrape already exposes every gateway family with a 0
    sample — a collector that starts alongside the gateway must see the
    family exist, not a gap until the first request happens to arrive.
    Tenant tags are deliberately **not** a label: the tenant space is
    unbounded, and unbounded label cardinality is how scrapes die.
    """

    def __init__(self) -> None:
        self.http_requests: Counter = Counter()  # (path, status) -> count
        self.http_requests[("/v1/completions", "200")] = 0
        self.tokens_streamed = 0
        self.streams_started = 0
        self.streams_cancelled = 0
        self.in_flight = 0
        self.ttft_seconds: dict[str, Histogram] = {"default": Histogram()}
        self.itl_seconds: dict[str, Histogram] = {"default": Histogram()}
        self.priority_ttft_seconds: dict[str, Histogram] = {
            label: Histogram() for label in PRIORITIES
        }
        self.priority_itl_seconds: dict[str, Histogram] = {
            label: Histogram() for label in PRIORITIES
        }

    def observe_request(self, path: str, status: int) -> None:
        self.http_requests[(path, str(status))] += 1

    @staticmethod
    def _tier_hist(store: dict[str, Histogram], tier: Optional[str]) -> Histogram:
        hist = store.get(tier or "default")
        if hist is None:
            hist = store[tier or "default"] = Histogram(LATENCY_BUCKETS_S)
        return hist

    def observe_ttft(
        self,
        seconds: float,
        tier: Optional[str] = None,
        priority: str = "interactive",
    ) -> None:
        """Record one request's time from HTTP accept to its first token."""
        self._tier_hist(self.ttft_seconds, tier).observe(seconds)
        self.priority_ttft_seconds[priority].observe(seconds)

    def observe_itl(
        self,
        seconds: float,
        tier: Optional[str] = None,
        priority: str = "interactive",
    ) -> None:
        """Record one inter-token gap (first token excluded; see TTFT)."""
        self._tier_hist(self.itl_seconds, tier).observe(seconds)
        self.priority_itl_seconds[priority].observe(seconds)


class _Lines:
    """Accumulates exposition lines with one HELP/TYPE header per metric."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._declared: set[str] = set()

    def _declare(self, name: str, help_text: str, metric_type: str) -> None:
        if name not in self._declared:
            self._lines.append(f"# HELP {name} {help_text}")
            self._lines.append(f"# TYPE {name} {metric_type}")
            self._declared.add(name)

    def _sample(self, name: str, labels: Optional[dict], value) -> None:
        label_str = ""
        if labels:
            inner = ",".join(
                f'{key}="{_escape_label(str(val))}"' for key, val in labels.items()
            )
            label_str = "{" + inner + "}"
        self._lines.append(f"{name}{label_str} {_render_value(value)}")

    def add(
        self,
        name: str,
        value,
        help_text: str,
        metric_type: str = "gauge",
        labels: Optional[dict] = None,
    ) -> None:
        self._declare(name, help_text, metric_type)
        self._sample(name, labels, value)

    def add_histogram(
        self,
        name: str,
        snapshot: dict,
        help_text: str,
        labels: Optional[dict] = None,
    ) -> None:
        """Render a :meth:`repro.obs.hist.Histogram.snapshot` as a proper
        Prometheus histogram family: cumulative ``_bucket`` samples with an
        explicit ``+Inf``, then ``_sum`` and ``_count``."""
        self._declare(name, help_text, "histogram")
        labels = labels or {}
        cumulative = 0
        for bound, count in zip(snapshot["buckets"], snapshot["counts"]):
            cumulative += count
            self._sample(
                f"{name}_bucket", {**labels, "le": repr(float(bound))}, cumulative
            )
        self._sample(f"{name}_bucket", {**labels, "le": "+Inf"}, snapshot["count"])
        self._sample(f"{name}_sum", labels, float(snapshot["sum"]))
        self._sample(f"{name}_count", labels, snapshot["count"])

    @property
    def text(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_prometheus(
    metrics: GatewayMetrics,
    replica_stats: Sequence[dict],
    router_stats: Optional[dict] = None,
    health: Optional[HealthEngine] = None,
) -> str:
    """Render one scrape; ``replica_stats`` is one ``engine.stats()`` each.

    ``health`` renders the health engine's *last* evaluation (the server
    evaluates before rendering) — the scrape never re-samples.
    """
    out = _Lines()

    for (path, status), count in sorted(metrics.http_requests.items()):
        out.add(
            f"{_GATEWAY_PREFIX}_http_requests_total",
            count,
            "HTTP requests served, by path and status.",
            "counter",
            {"path": path, "status": status},
        )
    out.add(
        f"{_GATEWAY_PREFIX}_tokens_streamed_total",
        metrics.tokens_streamed,
        "Completion tokens sent to clients (streaming and non-streaming).",
        "counter",
    )
    out.add(
        f"{_GATEWAY_PREFIX}_streams_started_total",
        metrics.streams_started,
        "SSE streams opened.",
        "counter",
    )
    out.add(
        f"{_GATEWAY_PREFIX}_streams_cancelled_total",
        metrics.streams_cancelled,
        "Streams cancelled by client disconnect.",
        "counter",
    )
    out.add(
        f"{_GATEWAY_PREFIX}_requests_in_flight",
        metrics.in_flight,
        "Completion requests currently being served.",
        "gauge",
    )
    for tier in sorted(metrics.ttft_seconds):
        out.add_histogram(
            f"{_GATEWAY_PREFIX}_ttft_seconds",
            metrics.ttft_seconds[tier].snapshot(),
            "Time from HTTP accept to first completion token, by tier.",
            {"tier": tier},
        )
    for tier in sorted(metrics.itl_seconds):
        out.add_histogram(
            f"{_GATEWAY_PREFIX}_itl_seconds",
            metrics.itl_seconds[tier].snapshot(),
            "Gap between consecutive completion tokens, by tier.",
            {"tier": tier},
        )
    for priority in PRIORITIES:
        out.add_histogram(
            f"{_GATEWAY_PREFIX}_priority_ttft_seconds",
            metrics.priority_ttft_seconds[priority].snapshot(),
            "Time from HTTP accept to first completion token, by priority class.",
            {"priority": priority},
        )
    for priority in PRIORITIES:
        out.add_histogram(
            f"{_GATEWAY_PREFIX}_priority_itl_seconds",
            metrics.priority_itl_seconds[priority].snapshot(),
            "Gap between consecutive completion tokens, by priority class.",
            {"priority": priority},
        )

    if router_stats is not None:
        for reason in ("prefix", "sticky", "load"):
            out.add(
                "repro_router_decisions_total",
                router_stats[f"{reason}_routed"],
                "Routing decisions by strategy.",
                "counter",
                {"strategy": reason},
            )
        out.add(
            "repro_router_rejected_total",
            router_stats["rejected"],
            "Requests rejected because every replica queue was full.",
            "counter",
        )
        out.add(
            "repro_router_health_avoided_total",
            router_stats.get("health_avoided", 0),
            "Routing decisions that excluded at least one degraded or "
            "unhealthy replica.",
            "counter",
        )

    if health is not None:
        out.add(
            "repro_health_state",
            state_value(health.state),
            "Gateway health verdict (0 ok, 1 degraded, 2 unhealthy).",
            "gauge",
        )
        for index, replica_state in enumerate(health.replica_states):
            out.add(
                "repro_health_replica_state",
                state_value(replica_state),
                "Per-replica health verdict (0 ok, 1 degraded, 2 unhealthy).",
                "gauge",
                {"replica": str(index)},
            )
        for priority in sorted(health.burn_rates):
            out.add(
                "repro_slo_burn_rate",
                float(health.burn_rates[priority]),
                "TTFT SLO burn rate over the health window, by priority "
                "class (1.0 spends the error budget exactly as it accrues).",
                "gauge",
                {"priority": priority},
            )

    engine_gauges = (
        ("running", "repro_engine_running", "Sequences currently decoding."),
        ("queued", "repro_engine_queued", "Requests waiting for admission."),
        ("finished", "repro_engine_finished", "Finished requests not yet evicted."),
    )
    engine_counters = (
        ("preemptions", "repro_engine_preemptions_total",
         "Sequences evicted under memory pressure."),
        ("prefill_tokens_computed", "repro_engine_prefill_tokens_computed_total",
         "Prompt tokens prefillled from scratch."),
        ("prefill_tokens_reused", "repro_engine_prefill_tokens_reused_total",
         "Prompt tokens adopted from published pool blocks."),
        ("prefix_block_hits", "repro_engine_prefix_block_hits_total",
         "Prefill block lookups that adopted a published group."),
        ("prefix_block_misses", "repro_engine_prefix_block_misses_total",
         "Prefill block lookups that had to compute."),
    )
    for index, stats in enumerate(replica_stats):
        labels = {"replica": str(index)}
        for key, name, help_text in engine_gauges:
            out.add(name, stats[key], help_text, "gauge", labels)
        for key, name, help_text in engine_counters:
            out.add(name, stats[key], help_text, "counter", labels)
        out.add(
            "repro_engine_active_cache_memory_bytes",
            float(stats["active_cache_memory_bytes"]),
            "Modelled KV bytes across running sequences (shared blocks once).",
            "gauge",
            labels,
        )
        timing = stats.get("step_timing")
        if timing is not None:
            out.add(
                "repro_engine_fused_decode_steps_total",
                timing["fused_decode_steps"],
                "Engine steps decoded through the fused batched forward.",
                "counter",
                labels,
            )
            out.add(
                "repro_engine_last_fused_batch_size",
                timing["last_fused_batch_size"],
                "Sequences in the last fused decode batch (0 = sequential).",
                "gauge",
                labels,
            )
            out.add(
                "repro_engine_prefill_seconds_total",
                float(timing["prefill_seconds_total"]),
                "Wall seconds spent in admission + prefill across steps.",
                "counter",
                labels,
            )
            out.add(
                "repro_engine_decode_seconds_total",
                float(timing["decode_seconds_total"]),
                "Wall seconds spent decoding across steps.",
                "counter",
                labels,
            )
            out.add(
                "repro_engine_prefill_chunks_total",
                timing.get("prefill_chunks_total", 0),
                "Chunked-prefill sub-steps executed (chunks, tails and "
                "restore-replay slices).",
                "counter",
                labels,
            )
            out.add(
                "repro_engine_step_budget_utilization",
                float(timing.get("last_budget_utilization", 0.0)),
                "Prefill tokens computed in the last step over the per-step "
                "token budget (0 when the step had no prefill work; may "
                "exceed 1.0 when a minimum chunk overshoots the budget).",
                "gauge",
                labels,
            )
        phases = stats.get("phases")
        if phases:
            for phase in sorted(phases):
                out.add(
                    "repro_engine_phase_seconds",
                    float(phases[phase]["total_s"]),
                    "Wall seconds attributed to a named engine phase "
                    "(see /debug/prof for self times and flamegraphs).",
                    "counter",
                    {**labels, "phase": phase},
                )
        histograms = stats.get("histograms")
        if histograms is not None:
            out.add_histogram(
                "repro_engine_queue_wait_seconds",
                histograms["queue_wait_seconds"],
                "Queue wait from submission to first admission.",
                labels,
            )
            out.add_histogram(
                "repro_engine_step_seconds",
                histograms["prefill_step_seconds"],
                "Wall seconds of one engine step's phase, by kind.",
                {**labels, "kind": "prefill"},
            )
            out.add_histogram(
                "repro_engine_step_seconds",
                histograms["decode_step_seconds"],
                "Wall seconds of one engine step's phase, by kind.",
                {**labels, "kind": "decode"},
            )
            out.add_histogram(
                "repro_engine_fused_batch_size",
                histograms["fused_batch_size"],
                "Sequences per fused decode step.",
                labels,
            )
        tiers = stats.get("tiers")
        if tiers is not None:
            for tier_label, tier_stats in sorted(tiers.items()):
                tier_labels = {**labels, "tier": tier_label}
                out.add(
                    "repro_engine_tier_running",
                    tier_stats["running"],
                    "Sequences currently decoding, by quality tier.",
                    "gauge",
                    tier_labels,
                )
                out.add(
                    "repro_engine_tier_kv_bytes",
                    float(tier_stats["kv_bytes"]),
                    "Modelled KV bytes across running sequences, by quality tier.",
                    "gauge",
                    tier_labels,
                )
                out.add(
                    "repro_engine_tier_requests_total",
                    tier_stats["requests_total"],
                    "Requests submitted, by quality tier.",
                    "counter",
                    tier_labels,
                )
                if tier_stats["policy_bytes_per_token"] is not None:
                    out.add(
                        "repro_engine_tier_policy_bytes_per_token",
                        float(tier_stats["policy_bytes_per_token"]),
                        "Configured KV bytes per token of the tier's "
                        "quantization policy.",
                        "gauge",
                        tier_labels,
                    )
        priority = stats.get("priority")
        if priority is not None:
            for class_label, class_stats in sorted(priority.items()):
                class_labels = {**labels, "priority": class_label}
                out.add(
                    "repro_engine_priority_queued",
                    class_stats["queued"],
                    "Requests waiting for admission, by priority class.",
                    "gauge",
                    class_labels,
                )
                out.add(
                    "repro_engine_priority_running",
                    class_stats["running"],
                    "Sequences currently decoding, by priority class.",
                    "gauge",
                    class_labels,
                )
                out.add(
                    "repro_engine_priority_preemptions_total",
                    class_stats["preemptions"],
                    "Sequences evicted under memory pressure, by the "
                    "victim's priority class.",
                    "counter",
                    class_labels,
                )
                out.add(
                    "repro_engine_slo_rejections_total",
                    class_stats["slo_rejections"],
                    "Submissions refused by the SLO admission gate, by "
                    "priority class.",
                    "counter",
                    class_labels,
                )
        pool = stats.get("pool")
        if pool is None:
            continue
        out.add("repro_pool_pressure", float(pool.get("pressure", 0.0)),
                "Fraction of pool blocks an allocation burst could not "
                "obtain (pinned by running sequences).", "gauge", labels)
        out.add("repro_pool_utilization", float(pool["utilization"]),
                "Fraction of pool blocks holding content.", "gauge", labels)
        out.add("repro_pool_used_blocks", pool["used_blocks"],
                "Pool blocks holding content.", "gauge", labels)
        out.add("repro_pool_num_blocks", pool["num_blocks"],
                "Total pool blocks.", "gauge", labels)
        out.add("repro_pool_cached_groups", pool["cached_groups"],
                "Published block groups available for prefix reuse.", "gauge", labels)
        out.add("repro_pool_adoptions_total", pool["adoptions"],
                "Published groups adopted by later sequences.", "counter", labels)
        out.add("repro_pool_evictions_total", pool["evictions"],
                "Cached groups evicted to satisfy allocations.", "counter", labels)

    return out.text


__all__ = ["GatewayMetrics", "render_prometheus"]
