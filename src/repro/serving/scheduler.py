"""Continuous-batching scheduler: priority admission, running set, completion.

The scheduler is deliberately model-agnostic — it only tracks
:class:`~repro.serving.request.RequestState` objects through their lifecycle.
Admission is **priority-class FCFS** with a ``max_batch_size`` cap on the
running set: every queued ``interactive`` request is admitted before any
queued ``best_effort`` request, and requests within one class admit in
arrival order.  A slot freed by a finishing sequence is refilled on the next
:meth:`admit` call, so the batch stays full while the queues are non-empty
(continuous batching, as opposed to static batching which would wait for the
whole batch to drain).  ``priority_aware=False`` collapses the classes into
one FIFO queue — pure FCFS, the pre-priority behavior, kept as the baseline
the ``serving.slo_load`` benchmark compares against.

Memory awareness is injected from the outside: :meth:`admit_next` accepts an
*admission gate* — a predicate supplied by the engine that consults the KV
block pool — so the scheduler itself stays free of memory policy.  Under
chunked prefill the engine's gate only requires the request's *first chunk*
to fit (the rest of the prompt streams in under the per-step token budget),
which shortens how long a large prompt blocks the head of the line; the
admitted state then stays in the running set with ``prefilling=True`` until
its chunk schedule completes (see :attr:`~ContinuousBatchingScheduler.prefilling_count`).
Admission is strictly head-of-line *within the class order*: the head of the
highest-priority non-empty queue is the only admission candidate, and if the
gate refuses it nothing younger or lower-priority is admitted past it.  That
rule is what makes the starvation guarantees composable: large interactive
requests are not starved by small ones, and best-effort requests can never
claim pool blocks an interactive request is waiting for.

Backpressure is SLO-aware when a :class:`SloPolicy` is attached: instead of
refusing submissions the moment the wait queue hits ``max_queue_size``, the
scheduler estimates the queue wait a new request of that class would see
(queued-ahead × a recency-weighted admission interval) and refuses — with
:class:`SloCapacityError`, a :class:`QueueFullError` subclass carrying a
retry hint — only when that estimate exceeds the class's SLO.  The hard
``max_queue_size`` cap remains as the memory backstop.  Callers that front a
network (the gateway) translate both errors into HTTP 429.

Two further lifecycle transitions support the block pool:

* :meth:`preempt` — a running sequence evicted under memory pressure goes to
  the *front of its priority class's queue* with status ``PREEMPTED``, so it
  is restored before newly arrived requests of the same or lower class.
  :meth:`preemption_victims` orders the running set for eviction:
  lowest-priority first, youngest first within a class — best-effort work is
  sacrificed before interactive work, and the least-progressed sequence of a
  class (cheapest to replay) goes first.
* :meth:`cancel` — withdraw a queued, preempted or running request; it moves
  straight to the finished set.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.serving.request import PRIORITIES, RequestState, RequestStatus
from repro.utils.validation import require

AdmissionGate = Callable[[RequestState], bool]

#: Queue label used when ``priority_aware=False`` collapses every class.
_FIFO_CLASS = "fifo"

#: EWMA smoothing factor for the admission-interval estimate.  0.25 weights
#: the last ~8 admissions — reactive enough to track a burst, smooth enough
#: that one slow prefill does not reject a whole arrival wave.
_ADMIT_EWMA_ALPHA = 0.25


class QueueFullError(RuntimeError):
    """Raised when a submission is refused for capacity (backpressure).

    Raised either because the wait queue is at the ``max_queue_size`` hard
    cap, or — through the :class:`SloCapacityError` subclass — because an
    attached :class:`SloPolicy` projects the request would miss its class's
    queue-wait SLO.  Callers that front a network (the gateway) translate
    this into an HTTP 429 instead of buffering without bound; in-process
    callers can simply retry after draining some work.
    """


class SloCapacityError(QueueFullError):
    """A submission was refused because it would miss its class's SLO.

    ``projected_wait_s`` is the scheduler's queue-wait estimate for the
    refused request; ``retry_after_s`` is a coarse hint for how long the
    client should back off (the gateway forwards it as ``Retry-After``).
    """

    def __init__(
        self, message: str, projected_wait_s: float, slo_s: float
    ) -> None:
        super().__init__(message)
        self.projected_wait_s = projected_wait_s
        self.slo_s = slo_s
        self.retry_after_s = max(1, math.ceil(projected_wait_s - slo_s))


@dataclass(frozen=True)
class SloPolicy:
    """Per-class queue-wait SLOs driving admission control.

    A class whose bound is ``None`` has no SLO — its submissions are only
    refused by the ``max_queue_size`` hard cap.  Bounds are on *queue wait*
    (submission to first admission), the component of TTFT the scheduler
    controls; prefill time is workload-dependent and excluded.
    """

    interactive_slo_s: Optional[float] = None
    best_effort_slo_s: Optional[float] = None

    def __post_init__(self) -> None:
        for name in ("interactive_slo_s", "best_effort_slo_s"):
            bound = getattr(self, name)
            require(
                bound is None or bound > 0.0,
                f"{name} must be positive (or None for no SLO)",
            )

    def slo_for(self, priority: str) -> Optional[float]:
        if priority == "interactive":
            return self.interactive_slo_s
        return self.best_effort_slo_s


class ContinuousBatchingScheduler:
    """Priority-class FCFS admission into a bounded running set.

    ``max_queue_size`` bounds the *total wait* queue only (``None`` =
    unbounded): submission past the cap raises :class:`QueueFullError`.
    ``slo_policy`` layers SLO-aware admission control on top (see the module
    docstring).  Preempted sequences re-enter at their class's queue front
    regardless of either limit — eviction must never be refused, or memory
    pressure would deadlock against backpressure.
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_queue_size: Optional[int] = None,
        priority_aware: bool = True,
        slo_policy: Optional[SloPolicy] = None,
    ) -> None:
        require(max_batch_size >= 1, "max_batch_size must be >= 1")
        require(
            max_queue_size is None or max_queue_size >= 1,
            "max_queue_size must be >= 1 (or None for unbounded)",
        )
        self.max_batch_size = max_batch_size
        self.max_queue_size = max_queue_size
        self.priority_aware = priority_aware
        self.slo_policy = slo_policy
        self._classes = PRIORITIES if priority_aware else (_FIFO_CLASS,)
        self._queues: dict[str, deque[RequestState]] = {
            label: deque() for label in self._classes
        }
        # Insertion order == admission order; decode steps iterate this.
        self._running: OrderedDict[str, RequestState] = OrderedDict()
        self._finished: OrderedDict[str, RequestState] = OrderedDict()
        # Recency-weighted seconds between successful admissions — the queue
        # drain rate the SLO projection extrapolates from.
        self._ewma_admit_interval_s: Optional[float] = None
        self._last_admit_at: Optional[float] = None
        # Lifetime SLO rejections by priority class (reported by stats()).
        self.slo_rejections: dict[str, int] = {label: 0 for label in PRIORITIES}

    def _class_of(self, state: RequestState) -> str:
        return state.priority if self.priority_aware else _FIFO_CLASS

    def _queued_states(self) -> Iterator[RequestState]:
        for label in self._classes:
            yield from self._queues[label]

    # Lifecycle -----------------------------------------------------------

    @property
    def queue_full(self) -> bool:
        """True when the wait queue is at its ``max_queue_size`` hard cap.

        This is the memory backstop only; with an :class:`SloPolicy`
        attached a submission may be refused well before the cap (see
        :meth:`projected_queue_wait_s`).
        """
        return (
            self.max_queue_size is not None
            and self.queued_count >= self.max_queue_size
        )

    def projected_queue_wait_s(self, priority: str) -> float:
        """Estimated queue wait a new ``priority`` submission would see.

        The estimate is (requests admitted before it) × (recency-weighted
        interval between admissions).  "Before it" counts every queued
        request of a higher or equal class — lower classes cannot delay it.
        Returns 0.0 until at least two admissions have established a drain
        rate (a cold scheduler never rejects on SLO grounds).
        """
        if self._ewma_admit_interval_s is None:
            return 0.0
        if self.priority_aware:
            ahead = 0
            for label in self._classes:
                ahead += len(self._queues[label])
                if label == priority:
                    break
        else:
            ahead = self.queued_count
        return ahead * self._ewma_admit_interval_s

    def _check_slo_capacity(self, state: RequestState) -> None:
        if self.slo_policy is None:
            return
        slo = self.slo_policy.slo_for(state.priority)
        if slo is None:
            return
        projected = self.projected_queue_wait_s(state.priority)
        if projected > slo:
            self.slo_rejections[state.priority] += 1
            raise SloCapacityError(
                f"projected queue wait {projected:.3f}s exceeds the "
                f"{state.priority} SLO of {slo:.3f}s; retry later",
                projected_wait_s=projected,
                slo_s=slo,
            )

    def submit(self, state: RequestState) -> None:
        """Enqueue a new request (status must be QUEUED).

        Raises :class:`QueueFullError` when the wait queue is at
        ``max_queue_size``, or :class:`SloCapacityError` when an attached
        :class:`SloPolicy` projects the request would miss its class's
        queue-wait SLO.
        """
        require(
            state.status is RequestStatus.QUEUED,
            f"cannot submit a request in state {state.status}",
        )
        if self.queue_full:
            raise QueueFullError(
                f"wait queue is full ({self.max_queue_size} requests); "
                "retry after in-flight work drains"
            )
        self._check_slo_capacity(state)
        require(
            state.request_id not in self._running
            and state.request_id not in self._finished
            and all(s.request_id != state.request_id for s in self._queued_states()),
            f"duplicate request id {state.request_id!r}",
        )
        state.submitted_at = time.perf_counter()
        self._queues[self._class_of(state)].append(state)

    def _admission_head(self) -> Optional[RequestState]:
        """The single admission candidate: head of the best non-empty class."""
        for label in self._classes:
            if self._queues[label]:
                return self._queues[label][0]
        return None

    def admit_next(self, gate: Optional[AdmissionGate] = None) -> Optional[RequestState]:
        """Admit the head of the highest-priority non-empty queue.

        Returns ``None`` when no request is queued, the batch is full, or
        the ``gate`` (e.g. a block-pool capacity check) refuses the head
        request.  A refused head blocks everything behind it *and* every
        lower class — admitting around it would hand its memory to younger
        or lower-priority work (head-of-line, per class order).
        """
        if len(self._running) >= self.max_batch_size:
            return None
        state = self._admission_head()
        if state is None:
            return None
        if gate is not None and not gate(state):
            return None
        self._queues[self._class_of(state)].popleft()
        state.status = RequestStatus.RUNNING
        state.admissions += 1
        now = time.perf_counter()
        if self._last_admit_at is not None:
            interval = now - self._last_admit_at
            if self._ewma_admit_interval_s is None:
                self._ewma_admit_interval_s = interval
            else:
                self._ewma_admit_interval_s += _ADMIT_EWMA_ALPHA * (
                    interval - self._ewma_admit_interval_s
                )
        self._last_admit_at = now
        if state.admitted_at is None:
            state.admitted_at = now
            if state.submitted_at is not None:
                state.queue_wait_s = state.admitted_at - state.submitted_at
        self._running[state.request_id] = state
        return state

    def admit(self, gate: Optional[AdmissionGate] = None) -> list[RequestState]:
        """Move queued requests into free running slots; return the admitted."""
        admitted: list[RequestState] = []
        while True:
            state = self.admit_next(gate)
            if state is None:
                return admitted
            admitted.append(state)

    def preempt(self, state: RequestState) -> None:
        """Evict a running request to the front of its class's queue.

        Re-entry bypasses both the hard cap and the SLO gate — eviction must
        never be refused — and the front position means the request is
        restored before newly arrived work of its own class.
        """
        require(
            state.request_id in self._running,
            f"request {state.request_id!r} is not running",
        )
        del self._running[state.request_id]
        state.status = RequestStatus.PREEMPTED
        self._queues[self._class_of(state)].appendleft(state)

    def preemption_victims(self) -> Iterator[RequestState]:
        """Running sequences in eviction-preference order.

        Lowest priority class first; youngest (most recently admitted)
        first within a class.  With ``priority_aware=False`` this is simply
        youngest-first — the pre-priority policy.  The engine walks this
        order and preempts the first victim whose blocks would actually
        relieve the contended pool.  Mid-prefill sequences (chunked
        admission) are ordinary candidates: evicting one frees its chunk
        blocks and its schedule restarts from scratch on restore.
        """
        if not self.priority_aware:
            yield from reversed(self._running.values())
            return
        by_class: dict[str, list[RequestState]] = {p: [] for p in PRIORITIES}
        for state in self._running.values():
            by_class[state.priority].append(state)
        for label in reversed(PRIORITIES):
            yield from reversed(by_class[label])

    def release(self, state: RequestState) -> None:
        """Mark a running request finished and free its slot."""
        require(
            state.request_id in self._running,
            f"request {state.request_id!r} is not running",
        )
        del self._running[state.request_id]
        state.status = RequestStatus.FINISHED
        self._finished[state.request_id] = state

    def cancel(self, request_id: str) -> Optional[RequestState]:
        """Withdraw a queued, preempted or running request.

        The state moves to the finished set with status ``FINISHED``; the
        caller (engine) is responsible for setting the finish reason and
        releasing any resources.  Returns ``None`` if the id is not queued or
        running (unknown, or already finished).
        """
        for queue in self._queues.values():
            for state in queue:
                if state.request_id == request_id:
                    queue.remove(state)
                    state.status = RequestStatus.FINISHED
                    self._finished[request_id] = state
                    return state
        if request_id in self._running:
            state = self._running.pop(request_id)
            state.status = RequestStatus.FINISHED
            self._finished[request_id] = state
            return state
        return None

    # Introspection -------------------------------------------------------

    @property
    def running(self) -> list[RequestState]:
        """Running sequences in admission order."""
        return list(self._running.values())

    @property
    def youngest_running(self) -> Optional[RequestState]:
        """The most recently admitted running sequence (priority-blind).

        Kept for introspection; preemption goes through
        :meth:`preemption_victims`, which prefers lower priority classes
        before recency.
        """
        if not self._running:
            return None
        return next(reversed(self._running.values()))

    @property
    def queued_count(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def queued_count_by_class(self) -> dict[str, int]:
        """Queued requests per priority class (always keyed by PRIORITIES)."""
        if self.priority_aware:
            return {label: len(self._queues[label]) for label in PRIORITIES}
        counts = {label: 0 for label in PRIORITIES}
        for state in self._queues[_FIFO_CLASS]:
            counts[state.priority] += 1
        return counts

    def running_count_by_class(self) -> dict[str, int]:
        """Running sequences per priority class."""
        counts = {label: 0 for label in PRIORITIES}
        for state in self._running.values():
            counts[state.priority] += 1
        return counts

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def prefilling_count(self) -> int:
        """Running sequences whose chunked prefill has not completed yet.

        These hold a running slot (they were admitted once their first
        chunk fit) but are skipped by the decode half of every engine step
        until their chunk schedule finishes.  Always 0 when the engine runs
        one-shot prefill.
        """
        return sum(1 for state in self._running.values() if state.prefilling)

    @property
    def finished_count(self) -> int:
        return len(self._finished)

    @property
    def has_work(self) -> bool:
        """True while any request is queued or running."""
        return self.queued_count > 0 or bool(self._running)

    def finished_states(self) -> list[RequestState]:
        """Finished sequences in completion order."""
        return list(self._finished.values())

    def evict_finished(self) -> list[RequestState]:
        """Forget all finished sequences; returns the evicted states."""
        evicted = list(self._finished.values())
        self._finished.clear()
        return evicted


__all__ = [
    "AdmissionGate",
    "ContinuousBatchingScheduler",
    "QueueFullError",
    "SloCapacityError",
    "SloPolicy",
]
