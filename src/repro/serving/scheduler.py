"""Continuous-batching scheduler: admission, running set, completion.

The scheduler is deliberately model-agnostic — it only tracks
:class:`~repro.serving.request.RequestState` objects through their lifecycle.
Admission is FCFS with a ``max_batch_size`` cap on the running set; a slot
freed by a finishing sequence is refilled on the next :meth:`admit` call, so
the batch stays full while the queue is non-empty (continuous batching, as
opposed to static batching which would wait for the whole batch to drain).
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.serving.request import RequestState, RequestStatus
from repro.utils.validation import require


class ContinuousBatchingScheduler:
    """FCFS admission into a bounded running set."""

    def __init__(self, max_batch_size: int = 8) -> None:
        require(max_batch_size >= 1, "max_batch_size must be >= 1")
        self.max_batch_size = max_batch_size
        self._queued: deque[RequestState] = deque()
        # Insertion order == admission order; decode steps iterate this.
        self._running: OrderedDict[str, RequestState] = OrderedDict()
        self._finished: OrderedDict[str, RequestState] = OrderedDict()

    # Lifecycle -----------------------------------------------------------

    def submit(self, state: RequestState) -> None:
        """Enqueue a new request (status must be QUEUED)."""
        require(
            state.status is RequestStatus.QUEUED,
            f"cannot submit a request in state {state.status}",
        )
        require(
            state.request_id not in self._running
            and state.request_id not in self._finished
            and all(s.request_id != state.request_id for s in self._queued),
            f"duplicate request id {state.request_id!r}",
        )
        self._queued.append(state)

    def admit(self) -> list[RequestState]:
        """Move queued requests into free running slots; return the admitted."""
        admitted: list[RequestState] = []
        while self._queued and len(self._running) < self.max_batch_size:
            state = self._queued.popleft()
            state.status = RequestStatus.RUNNING
            self._running[state.request_id] = state
            admitted.append(state)
        return admitted

    def release(self, state: RequestState) -> None:
        """Mark a running request finished and free its slot."""
        require(
            state.request_id in self._running,
            f"request {state.request_id!r} is not running",
        )
        del self._running[state.request_id]
        state.status = RequestStatus.FINISHED
        self._finished[state.request_id] = state

    # Introspection -------------------------------------------------------

    @property
    def running(self) -> list[RequestState]:
        """Running sequences in admission order."""
        return list(self._running.values())

    @property
    def queued_count(self) -> int:
        return len(self._queued)

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def finished_count(self) -> int:
        return len(self._finished)

    @property
    def has_work(self) -> bool:
        """True while any request is queued or running."""
        return bool(self._queued) or bool(self._running)

    def finished_states(self) -> list[RequestState]:
        """Finished sequences in completion order."""
        return list(self._finished.values())

    def evict_finished(self) -> list[RequestState]:
        """Forget all finished sequences; returns the evicted states."""
        evicted = list(self._finished.values())
        self._finished.clear()
        return evicted
