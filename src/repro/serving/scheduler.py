"""Continuous-batching scheduler: admission, running set, completion.

The scheduler is deliberately model-agnostic — it only tracks
:class:`~repro.serving.request.RequestState` objects through their lifecycle.
Admission is FCFS with a ``max_batch_size`` cap on the running set; a slot
freed by a finishing sequence is refilled on the next :meth:`admit` call, so
the batch stays full while the queue is non-empty (continuous batching, as
opposed to static batching which would wait for the whole batch to drain).

Memory awareness is injected from the outside: :meth:`admit_next` accepts an
*admission gate* — a predicate supplied by the engine that consults the KV
block pool — so the scheduler itself stays free of memory policy.  Admission
is strictly head-of-line: if the oldest queued request does not fit, nothing
younger is admitted past it (no starvation of large requests).

Two further lifecycle transitions support the block pool:

* :meth:`preempt` — a running sequence evicted under memory pressure goes to
  the *front* of the queue with status ``PREEMPTED``, so it is restored
  before newly arrived requests are admitted.
* :meth:`cancel` — withdraw a queued, preempted or running request; it moves
  straight to the finished set.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from typing import Callable, Optional

from repro.serving.request import RequestState, RequestStatus
from repro.utils.validation import require

AdmissionGate = Callable[[RequestState], bool]


class QueueFullError(RuntimeError):
    """Raised when the wait queue is at ``max_queue_size`` (backpressure).

    Callers that front a network (the gateway) translate this into an HTTP
    429 instead of buffering without bound; in-process callers can simply
    retry after draining some work.
    """


class ContinuousBatchingScheduler:
    """FCFS admission into a bounded running set.

    ``max_queue_size`` bounds the *wait* queue only (``None`` = unbounded):
    submission past the cap raises :class:`QueueFullError`.  Preempted
    sequences re-enter at the queue front regardless of the cap — eviction
    must never be refused, or memory pressure would deadlock against
    backpressure.
    """

    def __init__(
        self, max_batch_size: int = 8, max_queue_size: Optional[int] = None
    ) -> None:
        require(max_batch_size >= 1, "max_batch_size must be >= 1")
        require(
            max_queue_size is None or max_queue_size >= 1,
            "max_queue_size must be >= 1 (or None for unbounded)",
        )
        self.max_batch_size = max_batch_size
        self.max_queue_size = max_queue_size
        self._queued: deque[RequestState] = deque()
        # Insertion order == admission order; decode steps iterate this.
        self._running: OrderedDict[str, RequestState] = OrderedDict()
        self._finished: OrderedDict[str, RequestState] = OrderedDict()

    # Lifecycle -----------------------------------------------------------

    @property
    def queue_full(self) -> bool:
        """True when a new submission would be refused with backpressure."""
        return (
            self.max_queue_size is not None
            and len(self._queued) >= self.max_queue_size
        )

    def submit(self, state: RequestState) -> None:
        """Enqueue a new request (status must be QUEUED).

        Raises :class:`QueueFullError` when the wait queue is at
        ``max_queue_size``.
        """
        require(
            state.status is RequestStatus.QUEUED,
            f"cannot submit a request in state {state.status}",
        )
        if self.queue_full:
            raise QueueFullError(
                f"wait queue is full ({self.max_queue_size} requests); "
                "retry after in-flight work drains"
            )
        require(
            state.request_id not in self._running
            and state.request_id not in self._finished
            and all(s.request_id != state.request_id for s in self._queued),
            f"duplicate request id {state.request_id!r}",
        )
        state.submitted_at = time.perf_counter()
        self._queued.append(state)

    def admit_next(self, gate: Optional[AdmissionGate] = None) -> Optional[RequestState]:
        """Admit the head of the queue into a free running slot.

        Returns ``None`` when the queue is empty, the batch is full, or the
        ``gate`` (e.g. a block-pool capacity check) refuses the head request.
        """
        if not self._queued or len(self._running) >= self.max_batch_size:
            return None
        state = self._queued[0]
        if gate is not None and not gate(state):
            return None
        self._queued.popleft()
        state.status = RequestStatus.RUNNING
        state.admissions += 1
        if state.admitted_at is None:
            state.admitted_at = time.perf_counter()
            if state.submitted_at is not None:
                state.queue_wait_s = state.admitted_at - state.submitted_at
        self._running[state.request_id] = state
        return state

    def admit(self, gate: Optional[AdmissionGate] = None) -> list[RequestState]:
        """Move queued requests into free running slots; return the admitted."""
        admitted: list[RequestState] = []
        while True:
            state = self.admit_next(gate)
            if state is None:
                return admitted
            admitted.append(state)

    def preempt(self, state: RequestState) -> None:
        """Evict a running request to the front of the queue (to be restored)."""
        require(
            state.request_id in self._running,
            f"request {state.request_id!r} is not running",
        )
        del self._running[state.request_id]
        state.status = RequestStatus.PREEMPTED
        self._queued.appendleft(state)

    def release(self, state: RequestState) -> None:
        """Mark a running request finished and free its slot."""
        require(
            state.request_id in self._running,
            f"request {state.request_id!r} is not running",
        )
        del self._running[state.request_id]
        state.status = RequestStatus.FINISHED
        self._finished[state.request_id] = state

    def cancel(self, request_id: str) -> Optional[RequestState]:
        """Withdraw a queued, preempted or running request.

        The state moves to the finished set with status ``FINISHED``; the
        caller (engine) is responsible for setting the finish reason and
        releasing any resources.  Returns ``None`` if the id is not queued or
        running (unknown, or already finished).
        """
        for state in self._queued:
            if state.request_id == request_id:
                self._queued.remove(state)
                state.status = RequestStatus.FINISHED
                self._finished[request_id] = state
                return state
        if request_id in self._running:
            state = self._running.pop(request_id)
            state.status = RequestStatus.FINISHED
            self._finished[request_id] = state
            return state
        return None

    # Introspection -------------------------------------------------------

    @property
    def running(self) -> list[RequestState]:
        """Running sequences in admission order."""
        return list(self._running.values())

    @property
    def youngest_running(self) -> Optional[RequestState]:
        """The most recently admitted running sequence (preemption victim)."""
        if not self._running:
            return None
        return next(reversed(self._running.values()))

    @property
    def queued_count(self) -> int:
        return len(self._queued)

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def finished_count(self) -> int:
        return len(self._finished)

    @property
    def has_work(self) -> bool:
        """True while any request is queued or running."""
        return bool(self._queued) or bool(self._running)

    def finished_states(self) -> list[RequestState]:
        """Finished sequences in completion order."""
        return list(self._finished.values())

    def evict_finished(self) -> list[RequestState]:
        """Forget all finished sequences; returns the evicted states."""
        evicted = list(self._finished.values())
        self._finished.clear()
        return evicted
