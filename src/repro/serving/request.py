"""Request and per-sequence state objects for the serving layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from repro.models.transformer import ModelContext
from repro.utils.validation import require


#: Priority classes in admission order (highest first).  ``interactive``
#: requests are admitted before any queued ``best_effort`` request and are
#: the last preemption victims; ``best_effort`` requests absorb queueing and
#: preemption when the pool is contended.  The default is ``interactive`` so
#: priority-unaware callers keep today's FCFS behavior.
PRIORITIES = ("interactive", "best_effort")


def priority_rank(priority: str) -> int:
    """Admission rank of a priority class (0 = highest)."""
    return PRIORITIES.index(priority)


class RequestStatus(Enum):
    """Lifecycle of a request inside the batched engine.

    ``PREEMPTED`` is a running sequence that was evicted under memory
    pressure: its KV blocks were returned to the pool and it sits at the
    front of its priority class's queue waiting to be restored by
    re-prefilling its full token history (prompt + tokens generated so far).
    """

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    FINISHED = "finished"


class FinishReason(Enum):
    """Why a request stopped generating.

    ``ERROR`` is never produced by the engine itself — it is the finish
    marker a serving shell (the gateway's :class:`AsyncEngineRunner`) emits
    to unblock subscribers when the engine raised and can no longer make
    progress.
    """

    LENGTH = "length"
    STOP_TOKEN = "stop_token"
    CONTEXT_FULL = "context_full"
    CANCELLED = "cancelled"
    ERROR = "error"


@dataclass
class GenerationRequest:
    """One user request: a prompt plus generation limits.

    ``sampler`` follows the :mod:`repro.models.sampling` protocol (callable
    ``(logits, rng) -> token``); ``None`` means greedy, which is what makes
    batched output token-identical to sequential generation.

    ``tier`` selects a quality tier — a named cache factory registered with
    the engine (e.g. ``"quality"`` / ``"balanced"`` / ``"compact"``, each
    backed by a different quantization policy).  ``None`` uses the engine's
    default factory; unknown tiers are rejected at submission.

    ``priority`` selects a serving class (see :data:`PRIORITIES`):
    ``"interactive"`` requests are admitted ahead of ``"best_effort"`` ones
    and are preempted last under pool pressure.  ``tenant`` is an opaque tag
    carried through scheduling and tracing for per-tenant accounting; it
    never affects scheduling decisions.
    """

    prompt_ids: np.ndarray
    max_new_tokens: int
    request_id: Optional[str] = None
    stop_token: Optional[int] = None
    sampler: Optional[object] = None
    seed: Optional[int] = None
    tier: Optional[str] = None
    priority: str = "interactive"
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        # Validate at construction, not deep inside prefill: a malformed
        # request must fail in the caller's stack frame with a clear message,
        # never strand the other in-flight sequences of a batch.
        self.prompt_ids = np.asarray(self.prompt_ids, dtype=np.int64).reshape(-1)
        require(
            self.prompt_ids.size > 0,
            "prompt_ids must contain at least one token (empty prompt)",
        )
        require(
            self.max_new_tokens >= 1,
            f"max_new_tokens must be >= 1, got {self.max_new_tokens}",
        )
        require(
            self.request_id is None or self.request_id != "",
            "request_id must be None (auto-assign) or a non-empty string",
        )
        require(
            self.tier is None or (isinstance(self.tier, str) and self.tier != ""),
            "tier must be None (default) or a non-empty string",
        )
        require(
            self.priority in PRIORITIES,
            f"priority must be one of {PRIORITIES}, got {self.priority!r}",
        )
        require(
            self.tenant is None
            or (isinstance(self.tenant, str) and 0 < len(self.tenant) <= 64),
            "tenant must be None or a non-empty string of at most 64 characters",
        )


@dataclass
class RequestState:
    """Mutable per-sequence serving state owned by the engine.

    ``context`` is the sequence's private :class:`ModelContext` (per-layer
    caches + position); the engine swaps it into the shared model for each
    prefill/decode step.
    """

    request: GenerationRequest
    status: RequestStatus = RequestStatus.QUEUED
    context: Optional[ModelContext] = None
    next_logits: Optional[np.ndarray] = None
    generated: list[int] = field(default_factory=list)
    rng: Optional[np.random.Generator] = None
    finish_reason: Optional[FinishReason] = None
    # Number of times this sequence was evicted under memory pressure.
    preemptions: int = 0
    # Content-hash chain of the sequence's sealed KV blocks (engine-managed;
    # entry i is the chain hash covering token_history[: (i+1) * block_tokens]).
    block_hashes: list[bytes] = field(default_factory=list)
    # Engine-memoized prefill/restore schedule.  One-shot prefill consumes
    # it at admission; chunked prefill keeps it (with a resume cursor) until
    # the chunk schedule completes.  Cleared on preemption and cancel.
    prefill_plan: Optional[object] = None
    # True while a chunk-admitted sequence still has prefill work: it holds
    # a running slot but the decode half of every step skips it (its
    # ``next_logits`` are absent or stale until the schedule finishes).
    prefilling: bool = False
    # Lifecycle timestamps on the process-wide monotonic clock
    # (time.perf_counter), stamped by the scheduler.  ``admitted_at`` and
    # ``queue_wait_s`` cover the *first* admission only; restores after
    # preemption bump ``admissions`` without rewriting them.
    submitted_at: Optional[float] = None
    admitted_at: Optional[float] = None
    queue_wait_s: Optional[float] = None
    admissions: int = 0

    @property
    def request_id(self) -> str:
        assert self.request.request_id is not None
        return self.request.request_id

    @property
    def priority(self) -> str:
        return self.request.priority

    @property
    def generated_ids(self) -> np.ndarray:
        return np.asarray(self.generated, dtype=np.int64)

    @property
    def token_history(self) -> np.ndarray:
        """Prompt plus every token generated so far (the full replay history)."""
        return np.concatenate(
            [self.request.prompt_ids, np.asarray(self.generated, dtype=np.int64)]
        )

    @property
    def is_finished(self) -> bool:
        return self.status is RequestStatus.FINISHED


@dataclass(frozen=True)
class StepOutput:
    """What one engine step produced for one running sequence."""

    request_id: str
    token: Optional[int]
    finished: bool
    finish_reason: Optional[FinishReason] = None
