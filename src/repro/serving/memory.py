"""Paged KV block pool: bounded memory, prefix sharing, preemption support.

This module is the serving layer's memory manager — the host-side analogue of
vLLM's paged KV allocator, specialised to MILLION's PQ-compressed cache:

* :class:`BlockPool` owns a bounded budget of fixed-size KV blocks.  A block
  holds ``block_tokens`` quantized code rows (keys + values) for **one**
  layer; one logical *group* of ``n_layers`` blocks stores a block-aligned
  span of a sequence across every layer.  Blocks are ref-counted; sealed
  groups are published under a content hash of the token prefix they encode,
  so identical prompt prefixes across requests resolve to the *same* blocks
  (copy-on-write sharing: sealed blocks are immutable, divergence after a
  shared prefix writes to freshly allocated private blocks).
* :class:`PooledMillionKVCacheLayer` is the MILLION cache whose quantized
  code rows live in pool blocks instead of private storage.  Flushes are
  forced onto ``block_tokens`` boundaries, so every sealed block is full and
  the MILLION flush block maps 1:1 onto a pool block.  The same forced
  alignment is what defines the engine's chunked-prefill boundaries: a
  chunk of ``k·block_tokens`` tokens ends in ``flush_all()``, sealing and
  publishing whole groups, so a prefill paused at any chunk boundary is in
  exactly the state a one-go prefill of that many chunks would be.
* :class:`PooledMillionCacheFactory` wires calibrated per-layer quantizers to
  one shared pool and plugs into
  :class:`~repro.serving.engine.BatchedMillionEngine`, which adds
  memory-aware admission and preemption on top (see its docstring for the
  block-aligned prefill protocol that makes shared and cold prefills
  bit-identical).

Exhaustion is a first-class outcome: allocation first recycles the free
list, then evicts least-recently-used *cached* groups (published, refcount
zero), and only then raises :class:`PoolExhaustedError` — which the engine
turns into preemption of the youngest running sequence.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import MillionConfig
from repro.core.million_cache import MillionCacheFactory, MillionKVCacheLayer
from repro.core.pq import ProductQuantizer
from repro.core.storage import BlockArena
from repro.models.config import ModelConfig
from repro.models.kv_cache import FP16_BYTES
from repro.obs.trace import NULL_RECORDER
from repro.utils.bitpack import code_dtype
from repro.utils.validation import require


class PoolExhaustedError(RuntimeError):
    """Raised when an allocation cannot be satisfied even after eviction."""


@dataclass(frozen=True)
class UnitLayout:
    """Code-row layout of one pool unit (a (layer, head-group) slot).

    Uniform pools have one implicit layout for every unit; policy pools list
    one per unit so heads quantized at different bit-widths can store their
    differently-shaped code rows in the same pool.
    """

    kv_heads: int
    key_subspaces: int
    value_subspaces: int
    key_dtype: np.dtype | type = np.uint8
    value_dtype: np.dtype | type = np.uint8

    @property
    def key_row_nbytes(self) -> int:
        return self.kv_heads * self.key_subspaces * np.dtype(self.key_dtype).itemsize

    @property
    def value_row_nbytes(self) -> int:
        return self.kv_heads * self.value_subspaces * np.dtype(self.value_dtype).itemsize

    @property
    def signature(self) -> tuple:
        """Comparable identity (dtypes normalized)."""
        return (
            self.kv_heads,
            self.key_subspaces,
            self.value_subspaces,
            np.dtype(self.key_dtype),
            np.dtype(self.value_dtype),
        )


#: Seed of every content-hash chain (the hash "before" the first block).
ROOT_HASH = b"\x00" * 16


def hash_token_block(prev_hash: bytes, tokens: np.ndarray) -> bytes:
    """Chain hash of one block: digest of the previous hash plus the tokens.

    Chaining makes the hash cover the *entire* prefix up to and including
    this block, so equal hashes imply equal token histories — the property
    that lets identical prompt prefixes share quantized blocks.  (The KV of a
    token depends on every earlier token, so hashing the block's tokens alone
    would be unsound.)
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(prev_hash)
    digest.update(np.ascontiguousarray(tokens, dtype=np.int64).tobytes())
    return digest.digest()


def chain_hashes(
    tokens: np.ndarray, block_tokens: int, prev_hash: bytes = ROOT_HASH
) -> list[bytes]:
    """Chain hashes of every full ``block_tokens`` chunk of ``tokens``."""
    require(block_tokens >= 1, "block_tokens must be >= 1")
    tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
    hashes: list[bytes] = []
    for start in range(0, (tokens.size // block_tokens) * block_tokens, block_tokens):
        prev_hash = hash_token_block(prev_hash, tokens[start : start + block_tokens])
        hashes.append(prev_hash)
    return hashes


class BlockPool:
    """Bounded, ref-counted pool of fixed-size quantized KV blocks.

    Block lifecycle::

        free ── allocate ──> private (refcount 1, owner writes once)
                                │ publish(chain_hash, group)
                                v
                             shared (immutable; adopt/incref per sharer)
                                │ refcount reaches 0
                                v
                             cached (contents kept, LRU-evictable)
                    evict ──┘            │ adopt (prefix hit)
        free <──────────────             └──> shared again

    A *group* is one block per layer sealed over the same ``block_tokens``
    token span; publication, lookup, adoption and eviction all operate on
    groups so the per-layer caches of one sequence can never disagree about
    which spans are shared.
    """

    def __init__(
        self,
        num_blocks: int,
        block_tokens: int,
        n_layers: int,
        kv_heads: int = 0,
        key_subspaces: int = 0,
        value_subspaces: int = 0,
        key_dtype: np.dtype | type = np.uint8,
        value_dtype: np.dtype | type = np.uint8,
        *,
        unit_layouts: Optional[Sequence[UnitLayout]] = None,
    ) -> None:
        require(num_blocks >= 1, "num_blocks must be >= 1")
        require(block_tokens >= 1, "block_tokens must be >= 1")
        require(n_layers >= 1, "n_layers must be >= 1")
        require(
            unit_layouts is not None
            or (kv_heads >= 1 and key_subspaces >= 1 and value_subspaces >= 1),
            "kv_heads/key_subspaces/value_subspaces are required when no "
            "unit_layouts are given",
        )
        self.block_tokens = int(block_tokens)
        # Units per group.  Historically one block per transformer layer; a
        # policy pool has one unit per (layer, head-group), and every group
        # still seals one block per unit over the same token span.
        self.n_layers = int(n_layers)
        if unit_layouts is not None:
            layouts = tuple(unit_layouts)
            require(
                len(layouts) == self.n_layers,
                f"expected {self.n_layers} unit layouts, got {len(layouts)}",
            )
            self._unit_layouts: Optional[tuple[UnitLayout, ...]] = layouts
            self._heterogeneous = len({l.signature for l in layouts}) > 1
        else:
            self._unit_layouts = None
            self._heterogeneous = False
        if self._heterogeneous:
            # Byte-backed arenas sized for the widest unit; each row is the
            # unit's packed code bytes, zero-padded to the arena width.  The
            # unit a block was written for is recorded at write time so reads
            # can reinterpret the bytes with the right dtype and head count.
            key_width = max(l.key_row_nbytes for l in layouts)
            value_width = max(l.value_row_nbytes for l in layouts)
            self._keys = BlockArena(num_blocks, block_tokens, (key_width,), np.uint8)
            self._values = BlockArena(
                num_blocks, block_tokens, (value_width,), np.uint8
            )
        else:
            if self._unit_layouts is not None:
                only = self._unit_layouts[0]
                kv_heads = only.kv_heads
                key_subspaces = only.key_subspaces
                value_subspaces = only.value_subspaces
                key_dtype = only.key_dtype
                value_dtype = only.value_dtype
            self._keys = BlockArena(
                num_blocks, block_tokens, (kv_heads, key_subspaces), key_dtype
            )
            self._values = BlockArena(
                num_blocks, block_tokens, (kv_heads, value_subspaces), value_dtype
            )
        self._unit_of: Dict[int, int] = {}
        self._free: deque[int] = deque(range(num_blocks))
        self._refcounts = [0] * num_blocks
        self._allocated = [False] * num_blocks
        # Published groups: chain hash -> one block id per layer.
        self._groups: Dict[bytes, Tuple[int, ...]] = {}
        self._group_of: Dict[int, bytes] = {}
        # Published groups whose blocks all have refcount 0, oldest first.
        self._evictable: "OrderedDict[bytes, None]" = OrderedDict()
        # Counters (monotonic; reported by stats()).
        self.allocations = 0
        self.evictions = 0
        self.adoptions = 0
        # Trace hook: the owning engine points these at its shared recorder
        # and replica track (see BatchedMillionEngine), so evictions and
        # adoptions show up on the replica's timeline.
        self.trace = NULL_RECORDER
        self.trace_track = "pool"

    @classmethod
    def for_model(
        cls,
        model_config: ModelConfig,
        million_config: MillionConfig,
        num_blocks: int,
        block_tokens: int,
    ) -> "BlockPool":
        """Size a pool for a model + MILLION configuration pair."""
        dtype = code_dtype(million_config.nbits)
        return cls(
            num_blocks=num_blocks,
            block_tokens=block_tokens,
            n_layers=model_config.n_layers,
            kv_heads=model_config.kv_heads,
            key_subspaces=million_config.m_subspaces,
            value_subspaces=million_config.m_subspaces,
            key_dtype=dtype,
            value_dtype=dtype,
        )

    @classmethod
    def for_policy(
        cls,
        model_config: ModelConfig,
        policy,
        num_blocks: int,
        block_tokens: int,
    ) -> "BlockPool":
        """Size a pool for a mixed-precision all-MILLION policy.

        One unit per (layer, head-group), in layer-major order with groups
        ordered as :meth:`QuantPolicy.head_groups` yields them — the same
        deterministic order :class:`PooledPolicyCacheFactory` assigns unit
        indices in.  A uniform policy yields layouts identical across units,
        which routes through the typed-arena path and makes the pool
        byte-identical to :meth:`for_model`.
        """
        from repro.quant.policy import million_variant

        policy.validate_for_model(model_config)
        layouts: list[UnitLayout] = []
        for layer in range(policy.n_layers):
            for assignment, heads in policy.head_groups(layer):
                require(
                    assignment.scheme == "million",
                    "pooled serving only supports all-MILLION policies "
                    f"(layer {layer} assigns {assignment.scheme!r}); other "
                    "schemes lack a block-sized shared-code representation",
                )
                variant = million_variant(model_config.head_dim, assignment.bits)
                dtype = code_dtype(variant.nbits)
                layouts.append(
                    UnitLayout(
                        kv_heads=len(heads),
                        key_subspaces=variant.m_subspaces,
                        value_subspaces=variant.m_subspaces,
                        key_dtype=dtype,
                        value_dtype=dtype,
                    )
                )
        return cls(
            num_blocks=num_blocks,
            block_tokens=block_tokens,
            n_layers=len(layouts),
            kv_heads=layouts[0].kv_heads,
            key_subspaces=layouts[0].key_subspaces,
            value_subspaces=layouts[0].value_subspaces,
            unit_layouts=layouts,
        )

    # Allocation ----------------------------------------------------------

    def allocate_block(self) -> int:
        """Take a free block (evicting cached groups if needed); refcount 1."""
        if not self._free:
            self._evict_one_group()
        block_id = self._free.popleft()
        self._refcounts[block_id] = 1
        self._allocated[block_id] = True
        self.allocations += 1
        return block_id

    def _evict_one_group(self) -> None:
        if not self._evictable:
            raise PoolExhaustedError(
                f"block pool exhausted: all {self.num_blocks} blocks are "
                "referenced and no cached group is evictable"
            )
        chain_hash, _ = self._evictable.popitem(last=False)
        for block_id in self._groups.pop(chain_hash):
            del self._group_of[block_id]
            self._reclaim(block_id)
        self.evictions += 1
        if self.trace.enabled:
            self.trace.instant(
                "pool_evict",
                track=self.trace_track,
                args={"evictions": self.evictions, "free": len(self._free)},
            )

    def _reclaim(self, block_id: int) -> None:
        assert self._refcounts[block_id] == 0
        self._allocated[block_id] = False
        self._unit_of.pop(block_id, None)
        self._free.append(block_id)

    def incref(self, block_id: int) -> None:
        self._check_live(block_id)
        self._refcounts[block_id] += 1

    def decref(self, block_id: int) -> None:
        """Drop one reference; frees (or caches) the block at refcount 0."""
        self._check_live(block_id)
        require(
            self._refcounts[block_id] > 0,
            f"double free: block {block_id} already has refcount 0",
        )
        self._refcounts[block_id] -= 1
        if self._refcounts[block_id] > 0:
            return
        chain_hash = self._group_of.get(block_id)
        if chain_hash is None:
            # Private block: return it to the free list immediately.
            self._reclaim(block_id)
        elif all(self._refcounts[b] == 0 for b in self._groups[chain_hash]):
            # Published group fully unreferenced: keep the contents around
            # for future prefix hits, evictable in LRU order.
            self._evictable[chain_hash] = None

    def _check_live(self, block_id: int) -> None:
        require(
            0 <= block_id < self.num_blocks and self._allocated[block_id],
            f"block {block_id} is not allocated",
        )

    # Content -------------------------------------------------------------

    def write_block(
        self,
        block_id: int,
        key_codes: np.ndarray,
        value_codes: np.ndarray,
        unit: Optional[int] = None,
    ) -> None:
        """Fill an allocated block with one full span of key/value code rows.

        ``unit`` is the writer's pool unit; heterogeneous pools need it to
        record which layout the block's bytes follow.  Uniform pools accept
        and ignore it.
        """
        self._check_live(block_id)
        require(
            block_id not in self._group_of,
            f"block {block_id} is published (shared blocks are immutable)",
        )
        if not self._heterogeneous:
            self._keys.write(block_id, key_codes)
            self._values.write(block_id, value_codes)
            return
        require(
            unit is not None and 0 <= unit < self.n_layers,
            "heterogeneous pools require the writer's unit index",
        )
        layout = self._unit_layouts[unit]
        self._keys.write(
            block_id,
            self._pack_rows(key_codes, layout.key_dtype,
                            (layout.kv_heads, layout.key_subspaces),
                            self._keys.row_shape[0]),
        )
        self._values.write(
            block_id,
            self._pack_rows(value_codes, layout.value_dtype,
                            (layout.kv_heads, layout.value_subspaces),
                            self._values.row_shape[0]),
        )
        self._unit_of[block_id] = int(unit)

    def _pack_rows(
        self,
        codes: np.ndarray,
        dtype: np.dtype | type,
        row_shape: tuple[int, int],
        width: int,
    ) -> np.ndarray:
        codes = np.ascontiguousarray(codes, dtype=dtype)
        require(
            codes.shape == (self.block_tokens, *row_shape),
            f"code rows must be ({self.block_tokens}, {row_shape[0]}, "
            f"{row_shape[1]}), got {codes.shape}",
        )
        raw = codes.view(np.uint8).reshape(self.block_tokens, -1)
        if raw.shape[1] == width:
            return raw
        padded = np.zeros((self.block_tokens, width), dtype=np.uint8)
        padded[:, : raw.shape[1]] = raw
        return padded

    def _unpack_rows(
        self,
        raw: np.ndarray,
        dtype: np.dtype | type,
        row_shape: tuple[int, int],
    ) -> np.ndarray:
        nbytes = row_shape[0] * row_shape[1] * np.dtype(dtype).itemsize
        return (
            np.ascontiguousarray(raw[:, :nbytes])
            .view(dtype)
            .reshape(self.block_tokens, *row_shape)
        )

    def block_unit(self, block_id: int) -> Optional[int]:
        """Unit a block was written for (``None`` on uniform pools)."""
        self._check_live(block_id)
        return self._unit_of.get(block_id)

    def key_codes(self, block_id: int) -> np.ndarray:
        """``(block_tokens, kv_heads, M)`` view of a block's key codes.

        Zero-copy on uniform pools; heterogeneous pools reinterpret the
        stored bytes under the writing unit's layout (one small copy — the
        caller installs the rows into its contiguous shadow anyway).
        """
        self._check_live(block_id)
        if not self._heterogeneous:
            return self._keys.read(block_id)
        layout = self._unit_layouts[self._unit_of[block_id]]
        return self._unpack_rows(
            self._keys.read(block_id),
            layout.key_dtype,
            (layout.kv_heads, layout.key_subspaces),
        )

    def value_codes(self, block_id: int) -> np.ndarray:
        self._check_live(block_id)
        if not self._heterogeneous:
            return self._values.read(block_id)
        layout = self._unit_layouts[self._unit_of[block_id]]
        return self._unpack_rows(
            self._values.read(block_id),
            layout.value_dtype,
            (layout.kv_heads, layout.value_subspaces),
        )

    # Prefix sharing ------------------------------------------------------

    def publish(self, chain_hash: bytes, block_ids: Sequence[int]) -> None:
        """Register a sealed group under its token-chain hash.

        If the hash is already present (a concurrent sequence republished a
        span whose earlier entry was partially evicted), the new group
        replaces the old one: the previous blocks lose their published status
        and are freed once unreferenced.  Contents are identical either way —
        equal chain hashes imply equal token prefixes, and for a fixed
        prefill schedule (one-shot, or chunked with the engine-fixed chunk
        size) quantized codes are a deterministic function of the prefix.
        That is why the engine derives its chunk size from configuration
        once and never from load: chunk boundaries are flush boundaries,
        and flush boundaries determine block content.
        """
        ids = tuple(int(b) for b in block_ids)
        require(
            len(ids) == self.n_layers,
            f"group must have one block per layer ({self.n_layers}), got {len(ids)}",
        )
        for block_id in ids:
            self._check_live(block_id)
            require(
                block_id not in self._group_of,
                f"block {block_id} is already published",
            )
        previous = self._groups.pop(chain_hash, None)
        if previous is not None:
            self._evictable.pop(chain_hash, None)
            for block_id in previous:
                del self._group_of[block_id]
                if self._refcounts[block_id] == 0:
                    self._reclaim(block_id)
        self._groups[chain_hash] = ids
        for block_id in ids:
            self._group_of[block_id] = chain_hash

    def lookup(self, chain_hash: bytes) -> Optional[Tuple[int, ...]]:
        """Published group for a chain hash, or ``None`` (no refcount change)."""
        return self._groups.get(chain_hash)

    def group_is_evictable(self, chain_hash: bytes) -> bool:
        """True if the group is cached (published, unreferenced).

        Adopting such a group *consumes* availability — it leaves the
        evictable set — so admission gates must not count it as both a
        prefix hit and reclaimable capacity.
        """
        return chain_hash in self._evictable

    def longest_prefix(self, hashes: Sequence[bytes]) -> int:
        """Number of leading chain hashes with a published group."""
        count = 0
        for chain_hash in hashes:
            if chain_hash not in self._groups:
                break
            count += 1
        return count

    def longest_token_prefix(self, tokens: np.ndarray) -> int:
        """Published leading blocks for a raw token prefix (no refcount change).

        Hashes the same aligned span the engine's prefill protocol would
        force-quantize (``B * floor((P - 1) / B)`` tokens — the final block
        of an exactly block-aligned prompt stays full-precision so the last
        forward produces logits) and counts published groups.  This is the
        read-only probe routers and admission heuristics use to estimate
        prefix reuse before committing a request to this pool.
        """
        tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
        if tokens.size == 0:
            return 0
        aligned = self.block_tokens * ((tokens.size - 1) // self.block_tokens)
        return self.longest_prefix(chain_hashes(tokens[:aligned], self.block_tokens))

    def adopt(self, chain_hash: bytes) -> Tuple[int, ...]:
        """Take one reference on every block of a published group.

        Returns the per-layer block ids.  Raises ``KeyError`` if the hash is
        not published (callers should gate on :meth:`longest_prefix`).
        """
        ids = self._groups[chain_hash]
        self._evictable.pop(chain_hash, None)
        for block_id in ids:
            self._refcounts[block_id] += 1
        self.adoptions += 1
        if self.trace.enabled:
            self.trace.instant(
                "pool_adopt",
                track=self.trace_track,
                args={"adoptions": self.adoptions, "blocks": len(ids)},
            )
        return ids

    # Accounting ----------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return self._keys.num_blocks

    @property
    def n_units(self) -> int:
        """Blocks per sealed group — alias of ``n_layers`` (see ``__init__``)."""
        return self.n_layers

    @property
    def heterogeneous(self) -> bool:
        """True when units carry different code-row layouts."""
        return self._heterogeneous

    @property
    def key_row_shape(self) -> tuple[int, ...]:
        """Per-token key-code row shape ``(kv_heads, M)``."""
        require(
            not self._heterogeneous,
            "heterogeneous pools have no single row shape; use unit_key_shape(unit)",
        )
        return self._keys.row_shape

    @property
    def value_row_shape(self) -> tuple[int, ...]:
        require(
            not self._heterogeneous,
            "heterogeneous pools have no single row shape; use unit_value_shape(unit)",
        )
        return self._values.row_shape

    def unit_key_shape(self, unit: int) -> tuple[int, int]:
        """Per-token key-code row shape ``(kv_heads, M)`` of one unit."""
        if self._unit_layouts is None:
            return self._keys.row_shape
        layout = self._unit_layouts[unit]
        return (layout.kv_heads, layout.key_subspaces)

    def unit_value_shape(self, unit: int) -> tuple[int, int]:
        if self._unit_layouts is None:
            return self._values.row_shape
        layout = self._unit_layouts[unit]
        return (layout.kv_heads, layout.value_subspaces)

    def unit_bytes_per_block(self, unit: int) -> float:
        """Logical bytes of one of ``unit``'s blocks (no pad).

        On uniform pools this equals :attr:`bytes_per_block`; heterogeneous
        pools pad narrow units up to the arena width physically, but memory
        reports stay honest by charging each unit its own code bytes.
        """
        if self._unit_layouts is None:
            return float(self.bytes_per_block)
        layout = self._unit_layouts[unit]
        return float(
            self.block_tokens * (layout.key_row_nbytes + layout.value_row_nbytes)
        )

    @property
    def free_block_count(self) -> int:
        return len(self._free)

    @property
    def used_block_count(self) -> int:
        """Blocks holding content (referenced or cached for reuse)."""
        return self.num_blocks - len(self._free)

    @property
    def evictable_block_count(self) -> int:
        return len(self._evictable) * self.n_layers

    @property
    def available_block_count(self) -> int:
        """Blocks an allocation burst could obtain (free + evictable)."""
        return self.free_block_count + self.evictable_block_count

    @property
    def cached_group_count(self) -> int:
        return len(self._groups)

    @property
    def bytes_per_block(self) -> int:
        """Physical bytes of one block (key codes + value codes)."""
        return self._keys.block_nbytes + self._values.block_nbytes

    def refcount(self, block_id: int) -> int:
        require(0 <= block_id < self.num_blocks, f"block {block_id} out of range")
        return self._refcounts[block_id]

    def can_allocate(self, n_blocks: int) -> bool:
        return self.available_block_count >= n_blocks

    def memory_bytes(self) -> float:
        """Bytes of all blocks currently holding content (shared counted once)."""
        return float(self.used_block_count * self.bytes_per_block)

    def utilization(self) -> float:
        return self.used_block_count / self.num_blocks

    def pressure(self) -> float:
        """Fraction of the pool an allocation burst could *not* obtain.

        ``1 - available/total`` in [0, 1]: 0.0 when every block is free or
        evictable, 1.0 when every block is pinned by a running sequence.
        Unlike :meth:`utilization`, blocks held only by the reuse cache do
        not count — they are reclaimable on demand, so they exert no
        admission pressure.  This is the signal the gateway exports as
        ``repro_pool_pressure`` and the SLO admission docs key their
        preemption-churn runbook on.
        """
        return 1.0 - self.available_block_count / self.num_blocks

    def stats(self) -> dict:
        """Snapshot of pool occupancy and lifetime counters."""
        return {
            "num_blocks": self.num_blocks,
            "block_tokens": self.block_tokens,
            "n_layers": self.n_layers,
            "free_blocks": self.free_block_count,
            "used_blocks": self.used_block_count,
            "evictable_blocks": self.evictable_block_count,
            "cached_groups": self.cached_group_count,
            "utilization": self.utilization(),
            "pressure": self.pressure(),
            "bytes_per_block": self.bytes_per_block,
            "memory_bytes": self.memory_bytes(),
            "allocations": self.allocations,
            "evictions": self.evictions,
            "adoptions": self.adoptions,
        }


class PooledMillionKVCacheLayer(MillionKVCacheLayer):
    """MILLION cache layer whose quantized code rows live in pool blocks.

    ``flush_block_multiple = block_tokens`` forces every flush onto block
    boundaries, so each flushed span fills whole blocks and sealed blocks are
    always full.  The layer keeps a contiguous *shadow* of its logical code
    sequence (the inherited :class:`~repro.core.storage.CodeStore` pair) so
    ADC attention still reads zero-copy views with amortized O(1) upkeep per
    decode step; the pool blocks are the authoritative, ref-counted storage
    that admission and preemption account against, and the shadow models the
    GPU-side gather buffer (it is excluded from the quantized footprint, like
    the working buffers of ``DequantizingKVCache``).

    The layer itself never touches the prefix-hash table: hashes are a
    function of *token ids*, which only the engine sees.  The engine adopts
    shared groups via :meth:`adopt_shared_blocks` and publishes the blocks
    drained from :meth:`drain_new_blocks`.
    """

    def __init__(
        self,
        config: ModelConfig,
        key_pq: ProductQuantizer,
        value_pq: ProductQuantizer,
        million_config: MillionConfig,
        pool: BlockPool,
        layer_index: int,
    ) -> None:
        require(
            million_config.outlier_fraction == 0.0,
            "pooled MILLION caches do not support sparse outlier corrections "
            "(they are per-sequence state that cannot be shared by prefix)",
        )
        require(0 <= layer_index < pool.n_layers, "layer_index out of pool range")
        require(
            pool.unit_key_shape(layer_index)
            == (config.kv_heads, key_pq.m_subspaces),
            f"pool unit {layer_index} key shape {pool.unit_key_shape(layer_index)} "
            f"does not match (kv_heads={config.kv_heads}, M={key_pq.m_subspaces})",
        )
        require(
            pool.unit_value_shape(layer_index)
            == (config.kv_heads, value_pq.m_subspaces),
            f"pool unit {layer_index} value shape {pool.unit_value_shape(layer_index)} "
            f"does not match (kv_heads={config.kv_heads}, M={value_pq.m_subspaces})",
        )
        super().__init__(
            config,
            key_pq,
            value_pq,
            million_config,
            flush_block_multiple=pool.block_tokens,
        )
        self.pool = pool
        self.layer_index = layer_index
        self._block_table: list[int] = []
        # Sealed-but-unpublished blocks, drained by the engine after each
        # forward so it can register them under their token-chain hashes.
        self._new_blocks: list[int] = []

    # Storage hooks ---------------------------------------------------------

    def _store_code_rows(self, key_codes: np.ndarray, value_codes: np.ndarray) -> None:
        super()._store_code_rows(key_codes, value_codes)  # contiguous shadow
        block = self.pool.block_tokens
        assert key_codes.shape[0] % block == 0, "flush must be block-aligned"
        for start in range(0, key_codes.shape[0], block):
            block_id = self.pool.allocate_block()
            self.pool.write_block(
                block_id,
                key_codes[start : start + block],
                value_codes[start : start + block],
                unit=self.layer_index,
            )
            self._block_table.append(block_id)
            self._new_blocks.append(block_id)

    def adopt_shared_blocks(self, block_ids: Sequence[int]) -> None:
        """Extend this cache with already-quantized shared blocks.

        The caller must have taken the references (via
        :meth:`BlockPool.adopt`); this installs the code rows in the shadow
        and accounts for the adopted tokens.  Only legal at a block boundary
        with no pending full-precision tokens (i.e. during prefill).
        """
        require(
            self.pending_tokens == 0
            and self.stored_tokens % self.pool.block_tokens == 0,
            "shared blocks can only be adopted at a clean block boundary",
        )
        for block_id in block_ids:
            self._key_codes.append(self.pool.key_codes(block_id))
            self._value_codes.append(self.pool.value_codes(block_id))
            self._block_table.append(int(block_id))
        self.code_version += 1
        self._absorb_stored_tokens(len(block_ids) * self.pool.block_tokens)

    def drain_new_blocks(self) -> list[int]:
        """Sealed blocks since the last drain (for the engine to publish)."""
        drained = self._new_blocks
        self._new_blocks = []
        return drained

    def flushable_blocks(self) -> int:
        """Pool blocks the next decode step's flush will allocate."""
        return self.flushable_rows() // self.pool.block_tokens

    @property
    def block_table(self) -> list[int]:
        """Pool block ids backing this cache's stored tokens, in order."""
        return list(self._block_table)

    def release_blocks(self) -> None:
        """Return every referenced block to the pool (idempotent)."""
        for block_id in self._block_table:
            self.pool.decref(block_id)
        self._block_table.clear()
        self._new_blocks.clear()

    def reset(self) -> None:
        self.release_blocks()
        super().reset()

    # Memory accounting -----------------------------------------------------

    def quantized_memory_bytes(self) -> float:
        """This sequence's *fair share* of its pool blocks.

        A block referenced by ``r`` sequences contributes ``1/r`` of its
        bytes, so summing over all running sequences yields exactly the
        unique bytes of the referenced blocks — shared prefixes are paid
        once in aggregate accounting.  Codebooks are deliberately excluded:
        they belong to the calibrated factory shared by every sequence, not
        to per-sequence cache state (the single-sequence
        ``MillionKVCacheLayer`` includes them because there the cache *is*
        the only consumer of its quantizers).
        """
        bytes_per_block = self.pool.unit_bytes_per_block(self.layer_index)
        total = 0.0
        for block_id in self._block_table:
            total += bytes_per_block / self.pool.refcount(block_id)
        return float(total)


class PooledMillionCacheFactory:
    """Creates pool-backed :class:`PooledMillionKVCacheLayer` instances.

    A drop-in replacement for :class:`~repro.core.million_cache.MillionCacheFactory`
    whose caches allocate quantized storage from one shared :class:`BlockPool`.
    :class:`~repro.serving.engine.BatchedMillionEngine` detects the ``pool``
    attribute and enables prefix caching, memory-aware admission and
    preemption.
    """

    def __init__(
        self,
        quantizers: dict[int, tuple[ProductQuantizer, ProductQuantizer]],
        million_config: MillionConfig,
        pool: BlockPool,
    ) -> None:
        require(len(quantizers) > 0, "quantizers mapping must not be empty")
        require(
            million_config.outlier_fraction == 0.0,
            "pooled serving requires outlier_fraction == 0.0",
        )
        self.quantizers = dict(quantizers)
        self.million_config = million_config
        self.pool = pool

    @classmethod
    def from_factory(cls, factory, pool: BlockPool) -> "PooledMillionCacheFactory":
        """Wrap an already-calibrated ``MillionCacheFactory`` around a pool."""
        return cls(factory.quantizers, factory.million_config, pool)

    def create(self, layer_index: int, config: ModelConfig) -> PooledMillionKVCacheLayer:
        if layer_index not in self.quantizers:
            raise KeyError(f"no trained MILLION quantizers for layer {layer_index}")
        key_pq, value_pq = self.quantizers[layer_index]
        return PooledMillionKVCacheLayer(
            config, key_pq, value_pq, self.million_config, self.pool, layer_index
        )

    def bits_per_value(self, head_dim: int) -> float:
        """Effective bits per cached scalar for reporting."""
        return self.million_config.bits_per_value(head_dim)

    def fp16_block_bytes(self) -> float:
        """What one block's tokens would cost uncompressed (for reporting)."""
        kv_heads = self.pool.key_row_shape[0]
        any_key_pq, _ = next(iter(self.quantizers.values()))
        return float(
            2 * self.pool.block_tokens * kv_heads * any_key_pq.dim * FP16_BYTES
        )


class PooledPolicyCacheFactory:
    """Pool-backed caches for a mixed-precision all-MILLION policy.

    The policy analogue of :class:`PooledMillionCacheFactory`: every head
    group of every layer becomes one pool *unit* (indexed layer-major, groups
    in :meth:`QuantPolicy.head_groups` order — the exact order
    :meth:`BlockPool.for_policy` laid the units out in).  Single-group layers
    get a plain :class:`PooledMillionKVCacheLayer` over the full layer config;
    multi-group layers compose per-group pooled caches under a
    :class:`~repro.quant.policy_cache.HeadGroupKVCache`, so heads at
    different bit-widths share one ref-counted pool and one prefix-hash
    table.  A uniform policy collapses to exactly today's pooled path.

    Only MILLION heads can be pooled: prefix sharing requires the quantized
    representation to be a deterministic, block-sized function of the token
    prefix, which fp16/KIVI/KVQuant heads (per-sequence scales or no
    block-aligned codes) do not offer.  Mixed schemes stay available through
    the unpooled :class:`~repro.quant.policy_cache.PolicyCacheFactory`.
    """

    def __init__(
        self,
        policy,
        model_config: ModelConfig,
        million_factories: dict,
        pool: BlockPool,
    ) -> None:
        from repro.quant.policy import million_variant

        policy.validate_for_model(model_config)
        require(
            policy.schemes_used() == {"million"},
            "pooled serving only supports all-MILLION policies; got "
            f"{sorted(policy.schemes_used())}",
        )
        self.policy = policy
        self.model_config = model_config
        self.million_factories = dict(million_factories)
        self.pool = pool
        windows = set()
        for assignment in policy.distinct_assignments():
            require(
                assignment.bits in self.million_factories,
                f"policy uses million-{assignment.bits} but no calibrated "
                "factory was provided for that bit budget",
            )
            factory = self.million_factories[assignment.bits]
            require(
                factory.million_config.outlier_fraction == 0.0,
                "pooled serving requires outlier_fraction == 0.0",
            )
            expected = million_variant(model_config.head_dim, assignment.bits)
            require(
                (factory.million_config.m_subspaces, factory.million_config.nbits)
                == (expected.m_subspaces, expected.nbits),
                f"factory for million-{assignment.bits} has (M={factory.million_config.m_subspaces}, "
                f"nbits={factory.million_config.nbits}) but the policy's byte model and the "
                f"pool layout assume (M={expected.m_subspaces}, nbits={expected.nbits})",
            )
            windows.add(factory.million_config.recent_window)
        require(
            len(windows) == 1,
            "all tier factories of one pooled policy must share one "
            f"recent_window; got {sorted(windows)}",
        )
        self._recent_window = windows.pop()
        # Unit index of each layer's first group, layer-major.
        self._unit_base = []
        base = 0
        for layer in range(policy.n_layers):
            self._unit_base.append(base)
            base += len(policy.head_groups(layer))
        require(
            base == pool.n_units,
            f"policy needs {base} pool units but the pool has {pool.n_units} "
            "(build the pool with BlockPool.for_policy over the same policy)",
        )

    @classmethod
    def from_factory(
        cls, factory: PooledMillionCacheFactory, policy, model_config: ModelConfig
    ) -> "PooledPolicyCacheFactory":
        """Wrap an existing uniform pooled factory (uniform policies only)."""
        require(
            policy.is_uniform and policy.assignment(0, 0).scheme == "million",
            "from_factory requires a uniform all-MILLION policy",
        )
        bits = policy.assignment(0, 0).bits
        unpooled = MillionCacheFactory(factory.quantizers, factory.million_config)
        return cls(policy, model_config, {bits: unpooled}, factory.pool)

    def _pooled_cache(
        self, layer_index: int, unit_index: int, bits: int, config: ModelConfig
    ) -> PooledMillionKVCacheLayer:
        factory = self.million_factories[bits]
        key_pq, value_pq = factory.quantizers[layer_index]
        return PooledMillionKVCacheLayer(
            config,
            key_pq,
            value_pq,
            factory.million_config,
            self.pool,
            unit_index,
        )

    def create(self, layer_index: int, config: ModelConfig):
        from repro.quant.policy_cache import HeadGroupKVCache, head_subset_config

        groups = self.policy.head_groups(layer_index)
        base = self._unit_base[layer_index]
        if len(groups) == 1:
            assignment, _ = groups[0]
            return self._pooled_cache(layer_index, base, assignment.bits, config)
        sub_caches = []
        for offset, (assignment, heads) in enumerate(groups):
            sub_config = head_subset_config(config, len(heads))
            sub_caches.append(
                (
                    heads,
                    self._pooled_cache(
                        layer_index, base + offset, assignment.bits, sub_config
                    ),
                )
            )
        return HeadGroupKVCache(config, sub_caches)

    @property
    def million_config(self) -> Optional[MillionConfig]:
        """The single MILLION config when the policy is uniform (else None)."""
        if not self.policy.is_uniform:
            return None
        bits = self.policy.assignment(0, 0).bits
        return self.million_factories[bits].million_config

    @property
    def recent_window(self) -> int:
        """Residual window shared by every tier of this policy."""
        return self._recent_window

    def bytes_per_token(self) -> float:
        """Modelled steady-state KV bytes per token under this policy."""
        return self.policy.bytes_per_token()


__all__ = [
    "ROOT_HASH",
    "BlockPool",
    "PoolExhaustedError",
    "PooledMillionCacheFactory",
    "PooledMillionKVCacheLayer",
    "PooledPolicyCacheFactory",
    "UnitLayout",
    "chain_hashes",
    "hash_token_block",
]
