"""Batched serving layer: many sequences through one calibrated model.

* :class:`~repro.serving.request.GenerationRequest` — one prompt + limits,
  plus a :data:`~repro.serving.request.PRIORITIES` class and tenant tag;
* :class:`~repro.serving.scheduler.ContinuousBatchingScheduler` —
  priority-class FCFS admission into a bounded running set with immediate
  slot reuse, optional SLO-aware backpressure
  (:class:`~repro.serving.scheduler.SloPolicy`);
* :class:`~repro.serving.engine.BatchedMillionEngine` — swaps per-request
  :class:`~repro.models.transformer.ModelContext` objects through a shared
  model, one decode step per running sequence per engine step;
* :mod:`~repro.serving.memory` — the paged KV memory manager:
  :class:`~repro.serving.memory.BlockPool` (bounded, ref-counted quantized
  blocks with content-hash prefix sharing) and
  :class:`~repro.serving.memory.PooledMillionCacheFactory`, which switches
  the engine into memory-aware admission + preemption mode.
"""

from repro.serving.engine import BatchedMillionEngine, chunk_schedule
from repro.serving.memory import (
    BlockPool,
    PoolExhaustedError,
    PooledMillionCacheFactory,
    PooledMillionKVCacheLayer,
    chain_hashes,
    hash_token_block,
)
from repro.serving.request import (
    PRIORITIES,
    FinishReason,
    GenerationRequest,
    RequestState,
    RequestStatus,
    StepOutput,
    priority_rank,
)
from repro.serving.scheduler import (
    ContinuousBatchingScheduler,
    QueueFullError,
    SloCapacityError,
    SloPolicy,
)

__all__ = [
    "BatchedMillionEngine",
    "BlockPool",
    "ContinuousBatchingScheduler",
    "FinishReason",
    "GenerationRequest",
    "PRIORITIES",
    "PoolExhaustedError",
    "QueueFullError",
    "PooledMillionCacheFactory",
    "PooledMillionKVCacheLayer",
    "RequestState",
    "RequestStatus",
    "SloCapacityError",
    "SloPolicy",
    "StepOutput",
    "chain_hashes",
    "chunk_schedule",
    "hash_token_block",
    "priority_rank",
]
