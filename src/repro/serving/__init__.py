"""Batched serving layer: many sequences through one calibrated model.

* :class:`~repro.serving.request.GenerationRequest` — one prompt + limits;
* :class:`~repro.serving.scheduler.ContinuousBatchingScheduler` — FCFS
  admission into a bounded running set with immediate slot reuse;
* :class:`~repro.serving.engine.BatchedMillionEngine` — swaps per-request
  :class:`~repro.models.transformer.ModelContext` objects through a shared
  model, one decode step per running sequence per engine step.
"""

from repro.serving.engine import BatchedMillionEngine
from repro.serving.request import (
    FinishReason,
    GenerationRequest,
    RequestState,
    RequestStatus,
    StepOutput,
)
from repro.serving.scheduler import ContinuousBatchingScheduler

__all__ = [
    "BatchedMillionEngine",
    "ContinuousBatchingScheduler",
    "FinishReason",
    "GenerationRequest",
    "RequestState",
    "RequestStatus",
    "StepOutput",
]
