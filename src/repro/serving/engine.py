"""Batched MILLION serving engine.

One calibrated model serves many concurrent sequences: every request owns a
private :class:`~repro.models.transformer.ModelContext` (its per-layer
quantized caches + position).  Prefills swap contexts in and out of the
shared :class:`~repro.models.transformer.TransformerLM`; decode advances the
whole running batch through **one** fused stacked forward per step
(:meth:`TransformerLM.fused_decode_step` plus
:class:`~repro.core.attention_fused.FusedMillionAttention` for MILLION
caches), with ``fused_decode=False`` keeping the per-sequence loop as the
bit-identical reference oracle.  Weights and trained PQ codebooks are
shared; per-sequence state is isolated, so with greedy sampling the batched
output is token-identical to looping
:class:`~repro.core.engine.MillionEngine` over the same prompts (a test
asserts this, and a fused-vs-sequential identity suite sweeps batch shapes,
preemption, cancellation and prefix sharing).

Scheduling is continuous batching (see
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler`): a sequence
that finishes frees its slot immediately and the next queued request is
admitted on the following step, so the running set stays full under load.

Block-pool mode
---------------
When the cache factory exposes a ``pool`` attribute (see
:class:`~repro.serving.memory.PooledMillionCacheFactory`), the engine adds a
memory manager on top of slot-count scheduling:

* **Block-aligned prefill protocol.**  A prompt of ``P`` tokens is split at
  ``A = B * floor((P - 1) / B)`` (``B`` = pool block tokens).  The engine
  runs the model over the aligned prefix, force-quantizes it into sealed pool
  blocks, publishes them under token-chain hashes, then runs the remainder
  (which attends to the quantized prefix).  A later prompt with the same
  prefix *adopts* the published blocks instead of recomputing them — and
  because the cold path quantized the same split, shared and cold prefills
  produce bit-identical downstream logits.
* **Memory-aware admission.**  The scheduler's admission gate refuses the
  queue head until the pool can cover its prefill blocks (minus prefix hits)
  plus one decode block per layer of headroom.
* **Preemption with recompute.**  Before each decode step the engine checks
  the pool can cover the step's flush; if not, a running sequence is
  preempted — lowest priority class first, youngest first within a class
  (so ``best_effort`` work is sacrificed before ``interactive`` work): its
  non-shared blocks are freed and it re-queues at the front of its class's
  queue.  Restoration replays its full token history through the same
  block-aligned protocol — forced flushing is deterministic in the total
  token count, so the restored cache state and the next sampled token are
  bit-identical to an uncontended run (a test asserts this).

Chunked prefill (``chunked_prefill=True``)
------------------------------------------
One-shot prefill freezes every in-flight decode stream for the whole
prompt: a 32k-token arrival stalls running streams for seconds.  Chunked
mode splits the aligned prefix into fixed chunks of ``k·B`` tokens (the
largest block multiple inside ``prefill_token_budget``), admits a request
once its *first* chunk fits in the pool, and interleaves chunk forwards
with the fused decode batch inside :meth:`step` under the per-step token
budget (Sarathi-style stall-free batching).  Each chunk ends in a forced
``flush_all`` — exactly the pool protocol's sealed-block state — so every
chunk boundary publishes adoptable blocks whose content is a pure function
of ``(token prefix, chunk size, block size)``.  The fused kernels are
untouched: chunks run as stacked prefill sub-steps before the decode half
of the same step, and a sequence decodes only after its schedule finishes.

Chunked output is **not** bit-identical to one-shot prefill — a token's
deeper-layer KV depends on the quantized/full-precision split it was
computed against, and each inter-chunk flush changes that split.  The
chunked path is therefore its own oracle: cold, prefix-adopted and
preempt/restore runs under ``chunked_prefill=True`` are asserted
token-identical to each other, while ``chunked_prefill=False`` (the
default) keeps the legacy one-shot path bit-exact as before.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.attention_fused import FusedMillionAttention
from repro.core.calibration import calibrate_million
from repro.core.config import MillionConfig
from repro.models.kv_cache import KVCacheFactory
from repro.models.sampling import GreedySampler
from repro.models.transformer import TransformerLM
from repro.obs.hist import BATCH_BUCKETS, Histogram, LATENCY_BUCKETS_S
from repro.obs.prof import NULL_PROFILER, PhaseProfiler
from repro.obs.trace import NULL_RECORDER, TraceRecorder
from repro.quant.policy_cache import HeadGroupKVCache
from repro.serving.memory import (
    BlockPool,
    PoolExhaustedError,
    PooledMillionKVCacheLayer,
    chain_hashes,
    hash_token_block,
    ROOT_HASH,
)
from repro.serving.request import (
    PRIORITIES,
    FinishReason,
    GenerationRequest,
    RequestState,
    RequestStatus,
    StepOutput,
)
from repro.serving.scheduler import ContinuousBatchingScheduler, SloPolicy
from repro.utils.logging import get_logger
from repro.utils.rng import get_rng
from repro.utils.validation import require

logger = get_logger("serving")


def chunk_schedule(
    prompt_tokens: int, block_tokens: int, chunk_tokens: int
) -> tuple[int, ...]:
    """Cumulative chunk boundaries for a chunked prompt prefill.

    Boundaries below the aligned prefix ``A = B*floor((P-1)/B)`` are
    multiples of ``chunk_tokens`` (itself a multiple of the pool block size
    ``B``), followed by ``A`` itself (the possibly-partial final aligned
    chunk) and ``P`` (the residual-window tail of 1..B tokens, which stays
    pending and produces the next-token logits).  Every boundary except the
    last is a forced-flush state ``(stored == boundary, pending == 0)`` —
    the invariant that makes chunk-published blocks adoptable.
    """
    require(prompt_tokens >= 1, "prompt_tokens must be >= 1")
    require(block_tokens >= 1, "block_tokens must be >= 1")
    require(
        chunk_tokens >= block_tokens and chunk_tokens % block_tokens == 0,
        "chunk_tokens must be a positive multiple of block_tokens",
    )
    aligned = block_tokens * ((prompt_tokens - 1) // block_tokens)
    bounds = list(range(chunk_tokens, aligned, chunk_tokens))
    if aligned > 0:
        bounds.append(aligned)
    bounds.append(prompt_tokens)
    return tuple(bounds)


@dataclass
class _PrefillPlan:
    """Block-aligned prefill/restore schedule for one request.

    ``aligned`` is the force-quantized prompt prefix ``A = B*floor((P-1)/B)``;
    ``hashes`` is the candidate block chain to look up in the pool (the
    aligned prompt prefix for a fresh request, or the sealed history of a
    preempted one); ``stored_final`` is how many tokens will sit in sealed
    blocks once the prefill/restore completes — which is what admission must
    budget for.  ``is_restore`` marks a preempted sequence whose generated
    tokens are replayed one decode step at a time.

    Under ``chunked_prefill`` the plan is *resumable*: ``bounds`` holds the
    cumulative :func:`chunk_schedule` boundaries of the prompt, and
    ``cursor`` is how many history tokens are already incorporated (adopted
    or computed).  The plan then persists on the state across steps until
    the schedule completes; a cursor past the prompt walks the restore
    replay one decode step at a time.  ``cursor == -1`` means the request
    has not been admitted yet.
    """

    aligned: int
    hashes: tuple
    stored_final: int
    is_restore: bool
    bounds: tuple = ()
    cursor: int = -1


class BatchedMillionEngine:
    """Serve many sequences through one model with continuous batching.

    The engine is single-threaded: :meth:`step` advances every running
    sequence by one token and performs due admissions/prefills.  Call
    :meth:`run` to drain the queue, or drive :meth:`step` yourself for
    streaming consumption.
    """

    def __init__(
        self,
        model: TransformerLM,
        factory: KVCacheFactory,
        max_batch_size: int = 8,
        max_unclaimed_results: int = 1024,
        max_queue_size: Optional[int] = None,
        fused_decode: bool = True,
        fused_min_batch: int = 2,
        tier_factories: Optional[dict[str, KVCacheFactory]] = None,
        trace: Optional[TraceRecorder] = None,
        trace_track: str = "engine",
        priority_aware: bool = True,
        slo_policy: Optional[SloPolicy] = None,
        prof: Optional[PhaseProfiler] = None,
        chunked_prefill: bool = False,
        prefill_token_budget: Optional[int] = None,
    ) -> None:
        require(max_unclaimed_results >= 1, "max_unclaimed_results must be >= 1")
        require(fused_min_batch >= 1, "fused_min_batch must be >= 1")
        require(
            prefill_token_budget is None or prefill_token_budget >= 1,
            "prefill_token_budget must be >= 1",
        )
        self.model = model
        self.factory = factory
        # Per-request quality tiers: a request carrying ``tier="quality"``
        # builds its caches from ``tier_factories["quality"]`` instead of the
        # default factory.  Each tier is typically a different quantization
        # policy (see repro.quant.policy) — same model weights, different
        # KV fidelity/footprint trade-off.
        self.tier_factories: dict[str, KVCacheFactory] = dict(tier_factories or {})
        for name in self.tier_factories:
            require(
                isinstance(name, str) and name != "",
                "tier names must be non-empty strings",
            )
        # Fused cross-request decode: one stacked forward per step instead of
        # one forward per running sequence.  Token streams are bit-identical
        # either way (the kernels are row-invariant by construction and tests
        # sweep both), so ``fused_decode=False`` keeps the slow per-sequence
        # loop purely as the reference oracle.  ``fused_min_batch`` is the
        # auto-selection cutoff: batches below it decode through the
        # per-sequence forwards (stacking gains nothing at B=1 — 0.96x in
        # BENCH_serving — and 3.1x at B=16), so each step picks the faster
        # path for its live batch size.
        self.fused_decode = fused_decode
        self.fused_min_batch = fused_min_batch
        self._fused_attention: Optional[FusedMillionAttention] = None
        config = getattr(factory, "million_config", None)
        foreign_tier_factories = any(
            tier_factory is not factory
            for tier_factory in self.tier_factories.values()
        )
        if config is not None and config.outlier_fraction == 0.0 and not foreign_tier_factories:
            # MILLION caches without sparse outlier corrections get the fused
            # segment-ADC attention; anything else (full-precision, KIVI-like,
            # outlier-corrected) uses the generic per-sequence attend inside
            # the stacked forward, which supports every cache scheme.  Tier
            # engines mix caches built from different quantizers in one fused
            # batch, which the segment-ADC path cannot serve (it requires one
            # shared codebook set per layer) — they use the generic attend.
            self._fused_attention = FusedMillionAttention()
        # Phase profiler (repro.obs.prof): attributes step wall time to named
        # kernels.  Defaults to the shared no-op so every hook costs one
        # ``enabled`` attribute check; the fused attention shares the same
        # instance so kernel phases nest under the engine's ``decode`` root.
        self.prof = prof if prof is not None else NULL_PROFILER
        if self._fused_attention is not None:
            self._fused_attention.prof = self.prof
        # ``priority_aware=False`` collapses the priority classes into one
        # FIFO queue and makes preemption youngest-first regardless of class
        # — the pre-priority behavior, kept as the baseline the
        # ``serving.slo_load`` benchmark compares against.
        self.scheduler = ContinuousBatchingScheduler(
            max_batch_size=max_batch_size,
            max_queue_size=max_queue_size,
            priority_aware=priority_aware,
            slo_policy=slo_policy,
        )
        self.max_unclaimed_results = max_unclaimed_results
        self._states: dict[str, RequestState] = {}
        # Incremental token subscription: every StepOutput is pushed through
        # these callbacks the moment it is produced (one per decoded token,
        # plus finish/cancel markers) — this is what lets the async gateway
        # stream tokens as they are decoded instead of waiting for run().
        self._output_listeners: list[Callable[[StepOutput], None]] = []
        self._unclaimed_results: dict[str, np.ndarray] = {}
        self._next_request_number = 0
        # Block-pool mode is enabled by pooled factories (PooledMillionCacheFactory).
        self.pool: Optional[BlockPool] = getattr(factory, "pool", None)
        self._has_pool = self.pool is not None or any(
            getattr(tier_factory, "pool", None) is not None
            for tier_factory in self.tier_factories.values()
        )
        # Chunked prefill (see the module docstring): split the aligned
        # prefix into fixed k·B-token chunks and interleave them with decode
        # under a per-step token budget.  The chunk size is derived from the
        # budget *once, here* — it must never depend on load, because every
        # chunk boundary is a published-block state and two runs of the same
        # prompt must pass through identical flush states for the published
        # content (and hence prefix adoption) to be deterministic.
        self.chunked_prefill = chunked_prefill
        if chunked_prefill:
            require(
                self._has_pool,
                "chunked_prefill requires a block-pooled cache factory "
                "(see repro.serving.memory.PooledMillionCacheFactory)",
            )
        if prefill_token_budget is None:
            pools = self._all_pools()
            # Default: eight pool blocks of prefill per step — enough to
            # amortize per-chunk overhead while keeping decode stall bounded.
            prefill_token_budget = 8 * (pools[0].block_tokens if pools else 16)
        self.prefill_token_budget = int(prefill_token_budget)
        # Per-tier lifetime counters ("default" = requests without a tier).
        self._tier_requests_total: dict[str, int] = {
            label: 0 for label in ("default", *self.tier_factories)
        }
        # Lifetime counters (reported by stats()).
        self.preemption_count = 0
        # Preemptions split by the victim's priority class: under pool
        # contention best_effort should absorb (nearly) all of these.
        self.priority_preemptions: dict[str, int] = {p: 0 for p in PRIORITIES}
        self.prefill_tokens_computed = 0
        self.prefill_tokens_reused = 0
        self.prefix_block_hits = 0
        self.prefix_block_misses = 0
        # Per-step timing split (reported by stats() and /metrics): wall time
        # spent admitting/prefilling vs decoding, and the size of the last
        # fused decode batch (0 when the step used the sequential loop).
        self.step_count = 0
        self.fused_decode_steps = 0
        self.prefill_seconds_total = 0.0
        self.decode_seconds_total = 0.0
        self.last_prefill_seconds = 0.0
        self.last_decode_seconds = 0.0
        self.last_fused_batch_size = 0
        # Chunked-prefill accounting: chunk sub-steps executed, and the
        # fraction of the per-step token budget the last step actually spent
        # on prefill work (0.0 when the step had no prefill work; may exceed
        # 1.0 — the final sub-step of a step is allowed to overshoot so a
        # budget smaller than one chunk still makes progress).
        self.prefill_chunks_total = 0
        self.last_budget_utilization = 0.0
        # Tracing + latency histograms (repro.obs).  ``trace`` defaults to
        # the shared no-op recorder so the disabled path costs one attribute
        # check per hook; the gateway hands every replica one shared recorder
        # with its own track name so all timelines land in one trace.
        self.trace = trace if trace is not None else NULL_RECORDER
        self.trace_track = trace_track
        self.queue_wait_hist = Histogram(LATENCY_BUCKETS_S)
        self.prefill_step_hist = Histogram(LATENCY_BUCKETS_S)
        self.decode_step_hist = Histogram(LATENCY_BUCKETS_S)
        self.fused_batch_hist = Histogram(BATCH_BUCKETS)
        # Pool events (evictions, adoptions) record onto this engine's track.
        for pool in self._all_pools():
            pool.trace = self.trace
            pool.trace_track = trace_track

    def _all_pools(self) -> list[BlockPool]:
        """Every distinct block pool this engine allocates from (default + tiers)."""
        pools: list[BlockPool] = []
        for factory in (self.factory, *self.tier_factories.values()):
            pool = getattr(factory, "pool", None)
            if pool is not None and all(pool is not seen for seen in pools):
                pools.append(pool)
        return pools

    # Construction -----------------------------------------------------------

    @classmethod
    def calibrate(
        cls,
        model: TransformerLM,
        calibration_tokens: np.ndarray | Iterable[np.ndarray],
        million_config: Optional[MillionConfig] = None,
        chunk_size: int = 256,
        max_batch_size: int = 8,
    ) -> "BatchedMillionEngine":
        """Run MILLION's offline phase once, then serve from the result."""
        million_config = million_config or MillionConfig.for_equivalent_bits(
            model.config.head_dim, bits=4
        )
        factory = calibrate_million(
            model, calibration_tokens, million_config, chunk_size=chunk_size
        )
        return cls(model, factory, max_batch_size=max_batch_size)

    # Submission ---------------------------------------------------------------

    def submit(self, request: GenerationRequest) -> str:
        """Queue a request; returns its (possibly auto-assigned) id."""
        if request.request_id is None:
            # Skip over ids the caller already used explicitly.
            candidate = f"req-{self._next_request_number:04d}"
            self._next_request_number += 1
            while candidate in self._states:
                candidate = f"req-{self._next_request_number:04d}"
                self._next_request_number += 1
            request.request_id = candidate
        require(
            request.request_id not in self._states,
            f"duplicate request id {request.request_id!r}",
        )
        # Reject prompts that cannot prefill: letting model.forward raise
        # mid-step would strand every other in-flight request.
        require(
            request.prompt_ids.size <= self.model.config.max_seq_len,
            f"prompt of {request.prompt_ids.size} tokens exceeds max_seq_len "
            f"{self.model.config.max_seq_len}",
        )
        # Unknown tiers fail here, in the caller's stack frame — the gateway
        # maps this ValueError to a 400 before the request ever queues.
        require(
            request.tier is None or request.tier in self.tier_factories,
            f"unknown tier {request.tier!r}; available tiers: "
            f"{sorted(self.tier_factories)}",
        )
        state = RequestState(request=request, rng=get_rng(request.seed))
        # Scheduler first: a QueueFullError (backpressure) must leave no
        # trace in the engine's state table.
        self.scheduler.submit(state)
        self._states[request.request_id] = state
        self._tier_requests_total[request.tier or "default"] += 1
        if self.trace.enabled:
            self.trace.instant(
                "queued",
                track=self.trace_track,
                ts=state.submitted_at,
                request_id=request.request_id,
                args={
                    "tier": request.tier or "default",
                    "priority": request.priority,
                    "tenant": request.tenant or "",
                    "prompt_tokens": int(request.prompt_ids.size),
                    "max_new_tokens": request.max_new_tokens,
                },
            )
        return request.request_id

    def add_request(
        self,
        prompt_ids: np.ndarray,
        max_new_tokens: int,
        request_id: Optional[str] = None,
        stop_token: Optional[int] = None,
        sampler=None,
        seed: Optional[int] = None,
        tier: Optional[str] = None,
        priority: str = "interactive",
        tenant: Optional[str] = None,
    ) -> str:
        """Convenience wrapper building and submitting a :class:`GenerationRequest`."""
        return self.submit(
            GenerationRequest(
                prompt_ids=prompt_ids,
                max_new_tokens=max_new_tokens,
                request_id=request_id,
                stop_token=stop_token,
                sampler=sampler,
                seed=seed,
                tier=tier,
                priority=priority,
                tenant=tenant,
            )
        )

    def cancel(self, request_id: str) -> bool:
        """Withdraw a queued, preempted or running request.

        Frees the request's pool blocks (if any), records the tokens
        generated so far as its result and marks it finished with reason
        ``CANCELLED``.  Returns ``False`` if the request already finished;
        raises for unknown ids.
        """
        state = self._states.get(request_id)
        require(state is not None, f"unknown request id {request_id!r}")
        if state.is_finished:
            return False
        cancelled = self.scheduler.cancel(request_id)
        assert cancelled is state
        state.finish_reason = FinishReason.CANCELLED
        state.prefill_plan = None
        state.prefilling = False
        self._release_context(state)
        state.next_logits = None
        self._record_result(state)
        if self.trace.enabled:
            self.trace.instant(
                "cancelled",
                track=self.trace_track,
                request_id=request_id,
                args={"generated": len(state.generated)},
            )
        # Subscribers (e.g. a gateway streaming this request) need a finish
        # marker even though cancel happens outside step().
        self._emit(
            StepOutput(state.request_id, None, True, FinishReason.CANCELLED)
        )
        return True

    # Token subscription -------------------------------------------------------

    def add_output_listener(self, listener: Callable[[StepOutput], None]) -> None:
        """Subscribe to every :class:`StepOutput` the moment it is produced.

        Listeners fire inside :meth:`step` (one call per decoded token and
        per finish, in decode order) and inside :meth:`cancel`; they must be
        fast and must not call back into the engine.
        """
        self._output_listeners.append(listener)

    def remove_output_listener(self, listener: Callable[[StepOutput], None]) -> None:
        self._output_listeners.remove(listener)

    def _emit(self, output: StepOutput) -> StepOutput:
        if self.trace.enabled:
            self.trace.instant(
                "finish" if output.finished else "token",
                track=self.trace_track,
                request_id=output.request_id,
                args=(
                    {"reason": output.finish_reason.value}
                    if output.finished and output.finish_reason is not None
                    else None
                ),
            )
        for listener in self._output_listeners:
            listener(output)
        return output

    # Serving loop -------------------------------------------------------------

    @contextmanager
    def _bound(self, state: RequestState) -> Iterator[TransformerLM]:
        """Swap ``state``'s context into the shared model for one operation."""
        saved = self.model.save_context()
        assert state.context is not None
        self.model.restore_context(state.context)
        try:
            yield self.model
        finally:
            state.context = self.model.save_context()
            self.model.restore_context(saved)

    def _factory_for(self, state: RequestState) -> KVCacheFactory:
        """The cache factory serving this request's quality tier."""
        if state.request.tier is None:
            return self.factory
        return self.tier_factories[state.request.tier]

    def _pool_for(self, state: RequestState) -> Optional[BlockPool]:
        """The block pool (if any) this request's caches allocate from."""
        return getattr(self._factory_for(state), "pool", None)

    def _residual_window_for(self, state: RequestState) -> int:
        """Full-precision residual window of this request's cache scheme."""
        factory = self._factory_for(state)
        million_config = getattr(factory, "million_config", None)
        if million_config is not None:
            return million_config.recent_window
        return getattr(factory, "recent_window", 0)

    def _chunk_tokens_for(self, pool: BlockPool) -> int:
        """Fixed chunk size against ``pool``: the largest multiple of its
        block size inside ``prefill_token_budget`` (at least one block)."""
        block = pool.block_tokens
        return block * max(1, self.prefill_token_budget // block)

    def _pooled_caches(self, state: RequestState) -> list[PooledMillionKVCacheLayer]:
        """Pool-backed caches in *unit order* (layer-major, head-groups ascending).

        Head-group composite layers contribute their pooled sub-caches in
        group order, matching the unit indexing of
        :meth:`BlockPool.for_policy` — so position ``u`` in this list always
        owns pool unit ``u``, which block adoption and publication rely on.
        """
        assert state.context is not None
        caches: list[PooledMillionKVCacheLayer] = []
        for cache in state.context.caches:
            if isinstance(cache, PooledMillionKVCacheLayer):
                caches.append(cache)
            elif isinstance(cache, HeadGroupKVCache):
                caches.extend(
                    sub
                    for sub in cache.sub_caches
                    if isinstance(sub, PooledMillionKVCacheLayer)
                )
        return caches

    def _release_context(self, state: RequestState) -> None:
        """Return the sequence's pool blocks (if pooled) and drop its caches."""
        if state.context is not None:
            for cache in self._pooled_caches(state):
                cache.release_blocks()
        state.context = None
        state.block_hashes = []

    def _record_result(self, state: RequestState) -> None:
        self._unclaimed_results[state.request_id] = state.generated_ids
        # Bound unclaimed-result growth the same way evict_finished() bounds
        # finished-state history: a fire-and-forget client that never calls
        # run() must not leak one result array per request forever.
        while len(self._unclaimed_results) > self.max_unclaimed_results:
            evicted_id = next(iter(self._unclaimed_results))
            del self._unclaimed_results[evicted_id]
            logger.warning(
                "dropping unclaimed result for %r (more than %d results were "
                "never collected via run(); raise max_unclaimed_results or "
                "consume results promptly)",
                evicted_id,
                self.max_unclaimed_results,
            )

    def _finish(self, state: RequestState, reason: FinishReason) -> None:
        state.finish_reason = reason
        state.prefilling = False
        self.scheduler.release(state)
        self._record_result(state)
        # Release the per-sequence KV caches immediately; keeping every
        # finished context alive would grow memory with total requests served.
        self._release_context(state)
        state.next_logits = None

    # Block-pool prefill protocol ---------------------------------------------

    def _history_slice(self, state: RequestState, lo: int, hi: int) -> np.ndarray:
        """``state.token_history[lo:hi]`` without materializing the history.

        Block publication needs one block's worth of tokens per seal;
        concatenating the full prompt + generated arrays each time would
        reintroduce the O(T²) per-generation copying the storage layer was
        built to avoid.
        """
        prompt = state.request.prompt_ids
        if hi <= prompt.size:
            return prompt[lo:hi]
        generated = np.asarray(
            state.generated[max(0, lo - prompt.size) : hi - prompt.size],
            dtype=np.int64,
        )
        if lo >= prompt.size:
            return generated
        return np.concatenate([prompt[lo:], generated])

    def _prefill_plan(self, state: RequestState) -> _PrefillPlan:
        """Block-aligned (re)prefill schedule; see the class docstring.

        A fresh prompt force-quantizes ``A = B*floor((P-1)/B)`` tokens —
        always leaving at least the last prompt token full-precision so the
        final forward produces next-token logits.  A preempted sequence ends
        its restore with ``max(A, B*floor((P+n-1-W)/B))`` tokens sealed
        (``W`` = residual window): what the uncontended decode path would
        have flushed by the time it computed the next token's logits.

        The plan (notably its hash chain) is memoized on the state while the
        request waits in the queue — the admission gate runs every step and
        must not rehash a long prefix each time.
        """
        pool = self._pool_for(state)
        assert pool is not None
        if state.prefill_plan is not None:
            return state.prefill_plan
        block = pool.block_tokens
        window = self._residual_window_for(state)
        prompt = state.request.prompt_ids
        aligned = block * ((prompt.size - 1) // block)
        bounds: tuple = ()
        if self.chunked_prefill:
            bounds = chunk_schedule(
                prompt.size, block, self._chunk_tokens_for(pool)
            )
        if state.generated:
            history = state.token_history
            # The last generated token's decode step is always replayed, so
            # only blocks strictly before it are adoption candidates.
            hashes = tuple(chain_hashes(history[: history.size - 1], block))
            decode_flushed = block * (max(0, history.size - 1 - window) // block)
            stored_final = max(aligned, decode_flushed)
            state.prefill_plan = _PrefillPlan(
                aligned, hashes, stored_final, True, bounds
            )
        else:
            hashes = tuple(chain_hashes(prompt[:aligned], block))
            state.prefill_plan = _PrefillPlan(
                aligned, hashes, aligned, False, bounds
            )
        return state.prefill_plan

    def _usable_hits(self, state: RequestState, plan: _PrefillPlan, hits: int) -> int:
        """How many leading chain hits the prefill protocol can actually adopt.

        Adopting a chain of ``k`` blocks means resuming from the state
        ``(stored == k*B, pending == 0)``, which must be a state the original
        (uncontended) computation passed through — otherwise the tokens
        computed next would see a different quantized/full-precision split
        and diverge.  That holds for ``k*B <= A`` (the prefill protocol's
        forced flush) and, when the residual window is 0, for any block
        boundary at or past the prompt end during replay (every decode step
        flushes to the boundary before appending).  In between — or with a
        residual window — the original run computed those tokens against a
        partially full-precision cache, so they must be recomputed.

        Under ``chunked_prefill`` the cold schedule only passes through
        aligned states at multiples of the chunk size (and at ``A`` itself),
        so a partial prefix hit is additionally rounded down to a chunk
        boundary — resuming anywhere else would compute the next chunk
        against a flush split the deterministic chunked run never sees.
        """
        pool = self._pool_for(state)
        block = pool.block_tokens
        prompt_tokens = state.request.prompt_ids.size
        if (
            plan.is_restore
            and self._residual_window_for(state) == 0
            and hits * block >= prompt_tokens
        ):
            return hits
        usable = min(hits, plan.aligned // block)
        if self.chunked_prefill and usable * block < plan.aligned:
            chunk = self._chunk_tokens_for(pool)
            usable = (usable * block // chunk) * (chunk // block)
        return usable

    def _admission_gate(self, state: RequestState) -> bool:
        """Can the pool cover this request's prefill (plus decode headroom)?

        Under ``chunked_prefill`` only the *first chunk* has to fit: later
        chunks run under the per-step budget and make their own room by
        preempting (or being preempted) through the same victim ordering as
        decode — that is what lets a whale prompt start while the pool is
        mostly busy, instead of blocking the queue head until the whole
        prompt fits.
        """
        pool = self._pool_for(state)
        if pool is None:
            # Tiers without a pool are bounded by slot count only.
            return True
        plan = self._prefill_plan(state)
        hits = pool.longest_prefix(plan.hashes)
        usable = self._usable_hits(state, plan, hits)
        block = pool.block_tokens
        needed_groups = plan.stored_final // block - usable
        if self.chunked_prefill:
            needed_groups = min(
                needed_groups, self._chunk_tokens_for(pool) // block
            )
        # Cached groups this prefill will adopt leave the evictable set the
        # moment they are adopted, so they must not double as reclaimable
        # capacity for the new allocations.
        adopted_from_cache = sum(
            1 for h in plan.hashes[:usable] if pool.group_is_evictable(h)
        )
        needed = (needed_groups + 1 + adopted_from_cache) * pool.n_layers
        return pool.can_allocate(needed)

    def _register_new_blocks(self, state: RequestState) -> None:
        """Publish blocks sealed by the last forward under their chain hashes."""
        pool = self._pool_for(state)
        assert pool is not None
        caches = self._pooled_caches(state)
        per_unit = [cache.drain_new_blocks() for cache in caches]
        n_new = len(per_unit[0])
        assert all(len(blocks) == n_new for blocks in per_unit), (
            "units sealed different block counts for one sequence"
        )
        if n_new == 0:
            return
        block = pool.block_tokens
        prev_hash = state.block_hashes[-1] if state.block_hashes else ROOT_HASH
        start = len(state.block_hashes)
        for j in range(n_new):
            lo = (start + j) * block
            prev_hash = hash_token_block(
                prev_hash, self._history_slice(state, lo, lo + block)
            )
            state.block_hashes.append(prev_hash)
            pool.publish(
                prev_hash, tuple(blocks[j] for blocks in per_unit)
            )

    def _pooled_prefill(self, state: RequestState) -> None:
        """Prefill (or restore) a sequence through the block-aligned protocol.

        Restoration is an exact *replay*: the prompt goes through the same
        aligned-flush protocol as its original prefill, then every generated
        token is re-decoded one step at a time.  Replaying reproduces the
        original flush schedule, so each token's KV is computed against the
        exact quantized/full-precision cache split it originally saw — which
        is what makes the restored next-token logits bit-identical (a
        token's deeper-layer KV depends on that split, so chunked
        re-prefill would *not* be exact).  Published chain blocks shortcut
        the replay wherever :meth:`_usable_hits` proves the jump state
        occurred in the original run.
        """
        pool = self._pool_for(state)
        assert pool is not None
        prof = self.prof
        timing = prof.enabled
        plan = self._prefill_plan(state)
        state.prefill_plan = None  # consumed; stale once decoding resumes
        block = pool.block_tokens
        history = state.token_history
        prompt_tokens = state.request.prompt_ids.size
        state.context = self.model.fresh_context(self._factory_for(state))
        state.block_hashes = []
        with self._bound(state) as model:
            caches = self._pooled_caches(state)
            if timing:
                t = prof.now()
            hits = pool.longest_prefix(plan.hashes)
            usable = self._usable_hits(state, plan, hits)
            self.prefix_block_hits += usable
            self.prefix_block_misses += len(plan.hashes) - usable
            if usable:
                groups = [pool.adopt(h) for h in plan.hashes[:usable]]
                for unit, cache in enumerate(caches):
                    cache.adopt_shared_blocks([g[unit] for g in groups])
                model.advance_position(usable * block)
                state.block_hashes.extend(plan.hashes[:usable])
                self.prefill_tokens_reused += usable * block
            if timing:
                t = prof.lap("prefill/adopt", t)
            if usable * block < prompt_tokens:
                if usable * block < plan.aligned:
                    prefix = history[usable * block : plan.aligned]
                    model.forward(prefix)
                    for cache in caches:
                        cache.flush_all()
                    self._register_new_blocks(state)
                    self.prefill_tokens_computed += prefix.size
                    if timing:
                        t = prof.lap("prefill/aligned", t)
                tail = history[plan.aligned : prompt_tokens]
                logits = model.forward(tail)
                state.next_logits = logits[-1]
                self.prefill_tokens_computed += tail.size
                if timing:
                    t = prof.lap("prefill/tail", t)
            # Replay the generated tokens (restore only; empty range for a
            # fresh prompt).  Each decode step re-seals and republishes the
            # blocks it originally flushed.
            replay_from = max(usable * block, prompt_tokens)
            for index in range(replay_from, history.size):
                state.next_logits = model.decode_step(int(history[index]))
                self._register_new_blocks(state)
                self.prefill_tokens_computed += 1
            if timing and history.size > replay_from:
                prof.lap("prefill/replay", t)

    def _prefill(self, state: RequestState) -> Optional[StepOutput]:
        """Prefill a newly admitted request; may finish it immediately."""
        is_restore = bool(state.generated)
        computed_before = self.prefill_tokens_computed
        reused_before = self.prefill_tokens_reused
        prefill_start = time.perf_counter()
        if self._pool_for(state) is not None:
            self._pooled_prefill(state)
        else:
            state.context = self.model.fresh_context(self._factory_for(state))
            with self._bound(state) as model:
                logits = model.forward(state.request.prompt_ids)
            state.next_logits = logits[-1]
            self.prefill_tokens_computed += int(state.request.prompt_ids.size)
        if self.prof.enabled:
            self.prof.record("prefill", time.perf_counter() - prefill_start)
        if self.trace.enabled:
            self.trace.complete(
                "restore" if is_restore else "prefill",
                prefill_start,
                time.perf_counter(),
                track=self.trace_track,
                request_id=state.request_id,
                args={
                    "tokens_computed": self.prefill_tokens_computed - computed_before,
                    "tokens_reused": self.prefill_tokens_reused - reused_before,
                    "is_restore": is_restore,
                },
            )
        if state.request.max_new_tokens <= len(state.generated):
            self._finish(state, FinishReason.LENGTH)
        elif state.context.next_position >= self.model.config.max_seq_len:
            self._finish(state, FinishReason.CONTEXT_FULL)
        if state.is_finished:
            return self._emit(
                StepOutput(state.request_id, None, True, state.finish_reason)
            )
        return None

    # Chunked prefill ----------------------------------------------------------

    def _begin_chunked_prefill(self, state: RequestState) -> None:
        """Admit a request into the running set with only block adoption done.

        The compute — chunk forwards, the residual tail, the restore replay —
        happens later, in budgeted sub-steps inside :meth:`step`.  Adoption
        runs here because the admission gate already accounted for the
        adopted groups leaving the evictable set; deferring it would let a
        decode flush in the same step evict the blocks the gate promised.
        Until the schedule completes the state is ``prefilling`` and the
        decode half of every step skips it.
        """
        pool = self._pool_for(state)
        assert pool is not None
        prof = self.prof
        timing = prof.enabled
        begin_start = time.perf_counter()
        plan = self._prefill_plan(state)
        block = pool.block_tokens
        state.context = self.model.fresh_context(self._factory_for(state))
        state.block_hashes = []
        with self._bound(state) as model:
            caches = self._pooled_caches(state)
            if timing:
                t = prof.now()
            hits = pool.longest_prefix(plan.hashes)
            usable = self._usable_hits(state, plan, hits)
            self.prefix_block_hits += usable
            self.prefix_block_misses += len(plan.hashes) - usable
            if usable:
                groups = [pool.adopt(h) for h in plan.hashes[:usable]]
                for unit, cache in enumerate(caches):
                    cache.adopt_shared_blocks([g[unit] for g in groups])
                model.advance_position(usable * block)
                state.block_hashes.extend(plan.hashes[:usable])
                self.prefill_tokens_reused += usable * block
            if timing:
                prof.lap("prefill/adopt", t)
        plan.cursor = usable * block
        state.prefilling = True
        if timing:
            prof.record("prefill", time.perf_counter() - begin_start)

    def _finish_chunked_prefill(self, state: RequestState) -> Optional[StepOutput]:
        """Chunk schedule complete: same finish checks as one-shot prefill."""
        state.prefilling = False
        state.prefill_plan = None
        if state.request.max_new_tokens <= len(state.generated):
            self._finish(state, FinishReason.LENGTH)
        elif state.context.next_position >= self.model.config.max_seq_len:
            self._finish(state, FinishReason.CONTEXT_FULL)
        if state.is_finished:
            return self._emit(
                StepOutput(state.request_id, None, True, state.finish_reason)
            )
        return None

    def _prefill_chunk_substep(
        self, state: RequestState
    ) -> tuple[int, Optional[StepOutput]]:
        """Advance one prefilling sequence by one chunk of its schedule.

        Exactly one of three moves, by cursor position: an **aligned chunk**
        (forward + forced flush + publication — the pool protocol's sealed
        state), the **residual tail** (pending-only forward that produces
        the next-token logits; no allocation), or a slice of the **restore
        replay** (one decode step per generated token, resumable mid-slice).
        Returns the tokens computed and, when the schedule completed, the
        finish output (if the request finished immediately).  A return of
        ``(0, None)`` means the state was preempted making room for its own
        chunk and left the running set.
        """
        pool = self._pool_for(state)
        plan = state.prefill_plan
        assert pool is not None and plan is not None and plan.cursor >= 0
        block = pool.block_tokens
        prompt_tokens = state.request.prompt_ids.size
        history_size = prompt_tokens + len(state.generated)
        cursor = plan.cursor
        sub_start = time.perf_counter()
        prof = self.prof
        timing = prof.enabled
        computed = 0
        if cursor < plan.aligned:
            hi = next(bound for bound in plan.bounds if bound > cursor)
            demand = ((hi - cursor) // block) * pool.n_layers
            if not self._ensure_decode_capacity(state, demand=demand):
                return 0, None  # preempted; restarts from scratch on restore
            if timing:
                t = prof.now()
            with self._bound(state) as model:
                caches = self._pooled_caches(state)
                model.forward(self._history_slice(state, cursor, hi))
                for cache in caches:
                    cache.flush_all()
                self._register_new_blocks(state)
            computed = hi - cursor
            plan.cursor = hi
            if timing:
                prof.lap("prefill/chunk", t)
        elif cursor < prompt_tokens:
            # Residual tail [A, P): stays pending (the existing
            # residual-window path), produces the next-token logits.
            if timing:
                t = prof.now()
            with self._bound(state) as model:
                logits = model.forward(
                    self._history_slice(state, cursor, prompt_tokens)
                )
            state.next_logits = logits[-1]
            computed = prompt_tokens - cursor
            plan.cursor = prompt_tokens
            if timing:
                prof.lap("prefill/chunk", t)
        else:
            # Restore replay: re-decode generated tokens one step at a time
            # (the flush schedule each step saw originally is reproduced
            # exactly), up to one chunk's worth per sub-step.
            chunk = self._chunk_tokens_for(pool)
            target = min(cursor + chunk, history_size)
            history = state.token_history
            if timing:
                t = prof.now()
            while plan.cursor < target:
                if not self._ensure_decode_capacity(state):
                    # Preempted mid-replay; the partial work still counts
                    # against this step's budget.
                    self.prefill_tokens_computed += computed
                    return computed, None
                with self._bound(state) as model:
                    state.next_logits = model.decode_step(
                        int(history[plan.cursor])
                    )
                self._register_new_blocks(state)
                plan.cursor += 1
                computed += 1
            if timing:
                prof.lap("prefill/chunk", t)
        self.prefill_tokens_computed += computed
        self.prefill_chunks_total += 1
        if timing:
            prof.record("prefill", time.perf_counter() - sub_start)
        if self.trace.enabled:
            self.trace.complete(
                "restore" if plan.is_restore else "prefill",
                sub_start,
                time.perf_counter(),
                track=self.trace_track,
                request_id=state.request_id,
                args={
                    "chunk_end": plan.cursor,
                    "tokens_computed": computed,
                    "is_restore": plan.is_restore,
                },
            )
        if plan.cursor >= history_size:
            return computed, self._finish_chunked_prefill(state)
        return computed, None

    def _prefill_chunk_work(self) -> tuple[list[StepOutput], int]:
        """Run chunk sub-steps round-robin until the token budget is spent.

        Prefilling sequences advance in admission order, one sub-step each
        per pass, so two concurrent long prompts share the budget instead of
        the older one monopolizing it.  The budget check runs *before* each
        sub-step and only once something was spent — a budget smaller than
        one chunk still guarantees one sub-step of forward progress per
        engine step (stall-free, never stalled-out).
        """
        outputs: list[StepOutput] = []
        budget = self.prefill_token_budget
        spent = 0
        while True:
            pending = [
                s
                for s in self.scheduler.running
                if s.status is RequestStatus.RUNNING and s.prefilling
            ]
            if not pending or (spent > 0 and spent >= budget):
                break
            progressed = 0
            for state in pending:
                if spent > 0 and spent >= budget:
                    break
                if state.status is not RequestStatus.RUNNING or not state.prefilling:
                    continue  # preempted by an earlier sub-step of this pass
                tokens, output = self._prefill_chunk_substep(state)
                spent += tokens
                progressed += tokens
                if output is not None:
                    outputs.append(output)
            if progressed == 0:
                break  # every candidate was preempted; retry next step
        return outputs, spent

    # Preemption ---------------------------------------------------------------

    def _preempt(self, state: RequestState) -> None:
        """Evict a running sequence: free its blocks, re-queue it at the front."""
        self.preemption_count += 1
        self.priority_preemptions[state.priority] += 1
        state.preemptions += 1
        self._release_context(state)
        state.next_logits = None
        state.prefill_plan = None  # the restore plan depends on generated tokens
        state.prefilling = False  # a mid-chunk victim restarts its schedule
        self.scheduler.preempt(state)
        if self.trace.enabled:
            self.trace.instant(
                "preempted",
                track=self.trace_track,
                request_id=state.request_id,
                args={
                    "generated": len(state.generated),
                    "preemptions": state.preemptions,
                },
            )

    def _decode_block_demand(self, state: RequestState) -> int:
        """Pool blocks ``state``'s next decode step will allocate on flush."""
        pool = self._pool_for(state)
        caches = self._pooled_caches(state)
        return caches[0].flushable_blocks() * pool.n_layers

    def _ensure_decode_capacity(
        self,
        state: RequestState,
        reserved: int = 0,
        exclude: Sequence[RequestState] = (),
        demand: Optional[int] = None,
    ) -> bool:
        """Make room for ``state``'s next decode step, preempting if needed.

        ``demand`` overrides the computed decode-flush demand — chunked
        prefill passes the block cost of the next aligned chunk so a
        mid-prefill sequence claims room through the same victim ordering
        as decode.

        ``reserved`` is block demand already promised to sequences decoding
        in the same fused step *against the same pool* — their flush
        allocations have not happened yet, so the pool must cover the sum,
        not just this sequence's share.  The victim is the first candidate in
        :meth:`ContinuousBatchingScheduler.preemption_victims` order (lowest
        priority class first, youngest first within a class) that decodes
        against the contended pool — preempting a sequence on another pool
        would free nothing here.  ``exclude`` holds sequences that must not
        be victims: the fused path passes the states already collected into
        this step's batch, whose sampled-but-not-yet-decoded token would be
        lost if their context were freed mid-batch.  Returns ``False`` if
        ``state`` itself was preempted (every eligible same-pool candidate
        outranks it and the pool still cannot cover its flush).
        """
        pool = self._pool_for(state)
        assert pool is not None and state.context is not None
        excluded = {id(s) for s in exclude}
        if demand is None:
            demand = self._decode_block_demand(state)
        while demand and not pool.can_allocate(reserved + demand):
            victim = next(
                (
                    candidate
                    for candidate in self.scheduler.preemption_victims()
                    if candidate.status is RequestStatus.RUNNING
                    and id(candidate) not in excluded
                    and self._pool_for(candidate) is pool
                ),
                state,
            )
            if victim is state:
                same_pool_running = sum(
                    1
                    for candidate in self.scheduler.running
                    if candidate.status is RequestStatus.RUNNING
                    and self._pool_for(candidate) is pool
                )
                if same_pool_running <= 1:
                    raise PoolExhaustedError(
                        f"block pool ({pool.num_blocks} blocks) cannot "
                        f"hold a single sequence of "
                        f"{state.context.next_position} tokens; enlarge the "
                        "pool or shorten the request"
                    )
                self._preempt(state)
                return False
            self._preempt(victim)
        return True

    # Decode -------------------------------------------------------------------

    def _decode_one(self, state: RequestState) -> StepOutput:
        """Advance one running sequence by one token.

        Mirrors :meth:`TransformerLM.generate` exactly (sample, stop check,
        context check, decode) so greedy outputs — and the final cache state —
        match sequential generation bit for bit.
        """
        request = state.request
        assert state.context is not None and state.next_logits is not None
        if state.context.next_position >= self.model.config.max_seq_len:
            self._finish(state, FinishReason.CONTEXT_FULL)
            return self._emit(
                StepOutput(state.request_id, None, True, state.finish_reason)
            )
        sampler = request.sampler or GreedySampler()
        token = sampler(state.next_logits, state.rng)
        state.generated.append(token)
        if request.stop_token is not None and token == request.stop_token:
            self._finish(state, FinishReason.STOP_TOKEN)
        elif state.context.next_position >= self.model.config.max_seq_len:
            self._finish(state, FinishReason.CONTEXT_FULL)
        else:
            with self._bound(state) as model:
                state.next_logits = model.decode_step(token)
            if self._pool_for(state) is not None:
                # Publish before any finish below: blocks sealed by a
                # sequence's *final* decode step must survive as cached
                # groups too, not be freed unpublished.
                self._register_new_blocks(state)
            if len(state.generated) >= request.max_new_tokens:
                self._finish(state, FinishReason.LENGTH)
        return self._emit(
            StepOutput(state.request_id, token, state.is_finished, state.finish_reason)
        )

    def _decode_fused(self) -> list[StepOutput]:
        """Advance every running sequence with one stacked forward.

        Mirrors the sequential loop state-for-state: the same capacity gate,
        sampling, and finish checks run per sequence in admission order
        (compare :meth:`_decode_one`), but the surviving sequences' forwards
        are batched into one :meth:`TransformerLM.fused_decode_step`.
        Outputs are emitted in the order the sequential loop emits them.
        """
        processed: list[RequestState] = []
        results: dict[str, StepOutput] = {}
        live: list[RequestState] = []
        tokens: list[int] = []
        timing = self.prof.enabled
        sample_seconds = 0.0
        sampled = 0
        # Reserved block demand is tracked per pool: tier engines may decode
        # sequences against different pools in one fused step, and a pool
        # only has to cover the flushes of its own sequences.
        reserved: dict[int, int] = {}
        max_seq_len = self.model.config.max_seq_len
        for state in self.scheduler.running:
            if state.status is not RequestStatus.RUNNING:
                continue  # preempted or cancelled earlier in this very step
            if state.prefilling:
                continue  # chunk schedule not finished; no logits to sample
            pool = self._pool_for(state)
            # ``exclude=live`` protects sequences already collected into this
            # fused batch: each holds a sampled token whose forward has not
            # run yet, so preempting one here would null its context out from
            # under the stacked decode (and orphan the sampled token).
            if pool is not None and not self._ensure_decode_capacity(
                state, reserved.get(id(pool), 0), exclude=live
            ):
                continue
            processed.append(state)
            request = state.request
            assert state.context is not None and state.next_logits is not None
            if state.context.next_position >= max_seq_len:
                self._finish(state, FinishReason.CONTEXT_FULL)
                results[state.request_id] = StepOutput(
                    state.request_id, None, True, state.finish_reason
                )
                continue
            sampler = request.sampler or GreedySampler()
            if timing:
                sample_start = time.perf_counter()
                token = sampler(state.next_logits, state.rng)
                sample_seconds += time.perf_counter() - sample_start
                sampled += 1
            else:
                token = sampler(state.next_logits, state.rng)
            state.generated.append(token)
            if request.stop_token is not None and token == request.stop_token:
                self._finish(state, FinishReason.STOP_TOKEN)
                results[state.request_id] = StepOutput(
                    state.request_id, token, True, state.finish_reason
                )
                continue
            if pool is not None:
                reserved[id(pool)] = reserved.get(id(pool), 0) + (
                    self._decode_block_demand(state)
                )
            live.append(state)
            tokens.append(token)
        fused_batch = 0
        if live:
            if len(live) < self.fused_min_batch:
                # Small batches gain nothing from stacking (0.96x at B=1 in
                # BENCH_serving); the sequential forwards are bit-identical
                # (single-token forwards use the same row-invariant kernels)
                # and skip the fused overhead.  These do not count as fused
                # steps in the metrics.
                rows = []
                for state, token in zip(live, tokens):
                    with self._bound(state) as model:
                        rows.append(model.decode_step(token))
                logits = np.stack(rows, axis=0)
            else:
                self.fused_decode_steps += 1
                fused_batch = len(live)
                contexts = [state.context for state in live]
                logits = self.model.fused_decode_step(
                    np.asarray(tokens, dtype=np.int64),
                    contexts,
                    batch_attend=self._fused_attention,
                )
            for row, (state, token) in enumerate(zip(live, tokens)):
                state.next_logits = logits[row]
                if self._pool_for(state) is not None:
                    self._register_new_blocks(state)
                if len(state.generated) >= state.request.max_new_tokens:
                    self._finish(state, FinishReason.LENGTH)
                results[state.request_id] = StepOutput(
                    state.request_id, token, state.is_finished, state.finish_reason
                )
        self.last_fused_batch_size = fused_batch
        if timing and sampled:
            self.prof.record("decode/sample", sample_seconds, count=sampled)
        return [
            self._emit(results[state.request_id])
            for state in processed
            if state.request_id in results
        ]

    def step(self) -> list[StepOutput]:
        """One engine iteration: admit + prefill, then one decode per sequence.

        With ``fused_decode`` enabled (the default) the decode half runs one
        stacked forward for the whole running batch; the per-sequence loop is
        kept as the bit-identical reference oracle.

        With ``chunked_prefill`` enabled, the prefill half additionally
        advances every mid-prefill sequence by block-aligned chunks under
        ``prefill_token_budget``, so one step mixes bounded prefill work
        with a full decode of the non-prefilling batch — a long prompt
        makes forward progress without freezing in-flight streams.
        """
        step_start = time.perf_counter()
        self.step_count += 1
        outputs: list[StepOutput] = []
        admitted_count = 0
        gate = self._admission_gate if self._has_pool else None
        while True:
            state = self.scheduler.admit_next(gate)
            if (
                state is None
                and self._has_pool
                and self.scheduler.running_count == 0
                and self.scheduler.queued_count > 0
            ):
                # Nothing is running, so waiting cannot free pool blocks.
                # Force the head request in: eviction of cached groups either
                # makes room, or the prefill raises PoolExhaustedError — a
                # request larger than the whole pool is a hard error, not a
                # silent stall.
                state = self.scheduler.admit_next(gate=None)
            if state is None:
                break
            admitted_count += 1
            if state.admissions == 1 and state.queue_wait_s is not None:
                # First admission only: restores after preemption would
                # otherwise double-count one request's queue wait.
                self.queue_wait_hist.observe(state.queue_wait_s)
                if self.trace.enabled:
                    self.trace.complete(
                        "queue_wait",
                        state.submitted_at,
                        state.admitted_at,
                        track=self.trace_track,
                        request_id=state.request_id,
                        args={"tier": state.request.tier or "default"},
                    )
            if self.chunked_prefill and self._pool_for(state) is not None:
                self._begin_chunked_prefill(state)
            else:
                prefill_output = self._prefill(state)
                if prefill_output is not None:
                    outputs.append(prefill_output)
        chunk_spent = 0
        if self.chunked_prefill:
            chunk_outputs, chunk_spent = self._prefill_chunk_work()
            outputs.extend(chunk_outputs)
            self.last_budget_utilization = (
                chunk_spent / self.prefill_token_budget if chunk_spent else 0.0
            )
        decode_start = time.perf_counter()
        if self.fused_decode and not self.model.kv_observers:
            outputs.extend(self._decode_fused())
        else:
            self.last_fused_batch_size = 0
            for state in self.scheduler.running:
                if state.status is not RequestStatus.RUNNING:
                    continue  # preempted or cancelled earlier in this very step
                if state.prefilling:
                    continue  # chunk schedule not finished; no logits to sample
                if self._pool_for(state) is not None and not (
                    self._ensure_decode_capacity(state)
                ):
                    continue
                outputs.append(self._decode_one(state))
        decode_end = time.perf_counter()
        self.last_prefill_seconds = decode_start - step_start
        self.last_decode_seconds = decode_end - decode_start
        self.prefill_seconds_total += self.last_prefill_seconds
        self.decode_seconds_total += self.last_decode_seconds
        if self.prof.enabled:
            # The ``decode`` root phase is the same wall split exported as
            # ``decode_seconds_total``, so the kernel phases' self times sum
            # exactly to the measured decode wall (the remainder — norms,
            # MLPs, logit projection, Python glue — is ``decode`` self time).
            self.prof.record("decode", self.last_decode_seconds)
        decoded = [o for o in outputs if o.token is not None]
        if admitted_count or chunk_spent:
            self.prefill_step_hist.observe(self.last_prefill_seconds)
        if decoded:
            self.decode_step_hist.observe(self.last_decode_seconds)
            if self.last_fused_batch_size:
                self.fused_batch_hist.observe(self.last_fused_batch_size)
            if self.trace.enabled:
                self.trace.complete(
                    "decode_step",
                    decode_start,
                    decode_end,
                    track=self.trace_track,
                    args={
                        "batch": len(decoded),
                        "fused_batch": self.last_fused_batch_size,
                        "requests": sorted(o.request_id for o in decoded),
                    },
                )
        return outputs

    def run(self) -> dict[str, np.ndarray]:
        """Drain queue and running set; return generated ids per request id.

        Only results not yet returned by a previous :meth:`run` call are
        included, so alternating submissions and ``run`` calls yields each
        request exactly once.
        """
        while self.scheduler.has_work:
            self.step()
        results = self._unclaimed_results
        self._unclaimed_results = {}
        return results

    def generate_batch(
        self,
        prompts: Sequence[np.ndarray],
        max_new_tokens: int,
        stop_token: Optional[int] = None,
        sampler=None,
        seed: Optional[int] = None,
    ) -> list[np.ndarray]:
        """Serve ``prompts`` concurrently; results in submission order."""
        ids = [
            self.add_request(
                prompt,
                max_new_tokens,
                stop_token=stop_token,
                sampler=sampler,
                seed=seed,
            )
            for prompt in prompts
        ]
        results = self.run()
        batch = [results.pop(request_id) for request_id in ids]
        # Results of requests submitted outside this batch stay claimable
        # by a later run() call.
        self._unclaimed_results.update(results)
        return batch

    # Introspection ------------------------------------------------------------

    def state_of(self, request_id: str) -> RequestState:
        """Look up a request's state (queued, running, preempted or finished)."""
        require(request_id in self._states, f"unknown request id {request_id!r}")
        return self._states[request_id]

    def evict_finished(self) -> int:
        """Drop bookkeeping for finished requests; returns how many were evicted.

        A long-lived engine otherwise accumulates one :class:`RequestState`
        (request ids, generated token lists) per request ever served.  Results
        not yet claimed through :meth:`run` are dropped too, so call this only
        after consuming what you need.
        """
        evicted = self.scheduler.evict_finished()
        for state in evicted:
            del self._states[state.request_id]
            self._unclaimed_results.pop(state.request_id, None)
        return len(evicted)

    def prefix_hit_blocks(self, prompt_ids: np.ndarray) -> int:
        """Leading pool blocks a prompt would adopt if prefillled right now.

        The chain hashes cover the block-aligned prompt prefix the prefill
        protocol would force-quantize (``A = B*floor((P-1)/B)``); the count
        is how many of those groups are already published in this engine's
        pool.  Returns 0 without a pool.  This is the signal the gateway's
        :class:`~repro.gateway.router.ReplicaRouter` uses for
        prefix-affinity routing — replicas that already hold a prompt's
        prefix blocks should serve it.
        """
        if self.pool is None:
            return 0
        return self.pool.longest_token_prefix(prompt_ids)

    @property
    def queue_full(self) -> bool:
        """True when a new submission would be refused with backpressure."""
        return self.scheduler.queue_full

    @property
    def running_count(self) -> int:
        return self.scheduler.running_count

    @property
    def queued_count(self) -> int:
        return self.scheduler.queued_count

    @property
    def finished_count(self) -> int:
        return self.scheduler.finished_count

    def active_cache_memory_bytes(self) -> float:
        """Total modelled KV footprint across all running sequences.

        With a block pool, each cache reports its fair share of shared
        blocks (bytes divided by refcount), so this aggregate counts a
        shared prefix once no matter how many sequences reference it.
        """
        total = 0.0
        for state in self.scheduler.running:
            if state.context is not None:
                total += sum(cache.memory_bytes() for cache in state.context.caches)
        return total

    def tier_stats(self) -> dict:
        """Per-tier serving statistics (``"default"`` = untiered requests).

        ``kv_bytes`` is the live KV footprint of the tier's running
        sequences (pool-backed caches report fair shares of shared blocks);
        ``policy_bytes_per_token`` is the tier factory's modelled steady-state
        cost when it exposes one (policy factories do), else ``None``.
        """
        tiers: dict[str, dict] = {}
        for label, factory in (("default", self.factory), *self.tier_factories.items()):
            bytes_per_token = getattr(factory, "bytes_per_token", None)
            tiers[label] = {
                "running": 0,
                "kv_bytes": 0.0,
                "requests_total": self._tier_requests_total.get(label, 0),
                "policy_bytes_per_token": (
                    float(bytes_per_token()) if callable(bytes_per_token) else None
                ),
            }
        for state in self.scheduler.running:
            label = state.request.tier or "default"
            tiers[label]["running"] += 1
            if state.context is not None:
                tiers[label]["kv_bytes"] += float(
                    sum(cache.memory_bytes() for cache in state.context.caches)
                )
        return tiers

    def priority_stats(self) -> dict:
        """Per-priority-class serving statistics.

        Always keyed by every class in :data:`PRIORITIES`, even when the
        scheduler runs priority-unaware (classes then share one FIFO queue
        but requests still carry their class tag).  ``slo_rejections`` counts
        submissions refused by the scheduler's SLO admission gate.
        """
        queued = self.scheduler.queued_count_by_class()
        running = self.scheduler.running_count_by_class()
        return {
            label: {
                "queued": queued[label],
                "running": running[label],
                "preemptions": self.priority_preemptions[label],
                "slo_rejections": self.scheduler.slo_rejections[label],
            }
            for label in PRIORITIES
        }

    def stats(self) -> dict:
        """Aggregate serving statistics: queues, memory, pool utilization."""
        return {
            "running": self.scheduler.running_count,
            "prefilling": self.scheduler.prefilling_count,
            "queued": self.scheduler.queued_count,
            "finished": self.scheduler.finished_count,
            "unclaimed_results": len(self._unclaimed_results),
            "active_cache_memory_bytes": self.active_cache_memory_bytes(),
            "preemptions": self.preemption_count,
            "prefill_tokens_computed": self.prefill_tokens_computed,
            "prefill_tokens_reused": self.prefill_tokens_reused,
            "prefix_block_hits": self.prefix_block_hits,
            "prefix_block_misses": self.prefix_block_misses,
            "step_timing": {
                "steps": self.step_count,
                "fused_decode_enabled": self.fused_decode,
                "fused_decode_steps": self.fused_decode_steps,
                "last_fused_batch_size": self.last_fused_batch_size,
                "last_prefill_seconds": self.last_prefill_seconds,
                "last_decode_seconds": self.last_decode_seconds,
                "prefill_seconds_total": self.prefill_seconds_total,
                "decode_seconds_total": self.decode_seconds_total,
                "chunked_prefill_enabled": self.chunked_prefill,
                "prefill_token_budget": self.prefill_token_budget,
                "prefill_chunks_total": self.prefill_chunks_total,
                "last_budget_utilization": self.last_budget_utilization,
            },
            "pool": self.pool.stats() if self.pool is not None else None,
            "phases": self.prof.snapshot(),
            "tiers": self.tier_stats(),
            "priority": self.priority_stats(),
            "histograms": {
                "queue_wait_seconds": self.queue_wait_hist.snapshot(),
                "prefill_step_seconds": self.prefill_step_hist.snapshot(),
                "decode_step_seconds": self.decode_step_hist.snapshot(),
                "fused_batch_size": self.fused_batch_hist.snapshot(),
            },
        }


__all__ = [
    "BatchedMillionEngine",
    "chunk_schedule",
    "FinishReason",
    "GenerationRequest",
    "RequestState",
    "RequestStatus",
    "StepOutput",
]
