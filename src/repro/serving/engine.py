"""Batched MILLION serving engine.

One calibrated model serves many concurrent sequences: every request owns a
private :class:`~repro.models.transformer.ModelContext` (its per-layer
quantized caches + position) and the engine swaps contexts in and out of the
shared :class:`~repro.models.transformer.TransformerLM` for each prefill or
decode step.  Weights and trained PQ codebooks are shared; per-sequence state
is isolated, so with greedy sampling the batched output is token-identical to
looping :class:`~repro.core.engine.MillionEngine` over the same prompts (a
test asserts this).

Scheduling is continuous batching (see
:class:`~repro.serving.scheduler.ContinuousBatchingScheduler`): a sequence
that finishes frees its slot immediately and the next queued request is
admitted on the following step, so the running set stays full under load.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.calibration import calibrate_million
from repro.core.config import MillionConfig
from repro.models.kv_cache import KVCacheFactory
from repro.models.sampling import GreedySampler
from repro.models.transformer import TransformerLM
from repro.serving.request import (
    FinishReason,
    GenerationRequest,
    RequestState,
    RequestStatus,
    StepOutput,
)
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.utils.rng import get_rng
from repro.utils.validation import require


class BatchedMillionEngine:
    """Serve many sequences through one model with continuous batching.

    The engine is single-threaded: :meth:`step` advances every running
    sequence by one token and performs due admissions/prefills.  Call
    :meth:`run` to drain the queue, or drive :meth:`step` yourself for
    streaming consumption.
    """

    def __init__(
        self,
        model: TransformerLM,
        factory: KVCacheFactory,
        max_batch_size: int = 8,
    ) -> None:
        self.model = model
        self.factory = factory
        self.scheduler = ContinuousBatchingScheduler(max_batch_size=max_batch_size)
        self._states: dict[str, RequestState] = {}
        self._unclaimed_results: dict[str, np.ndarray] = {}
        self._next_request_number = 0

    # Construction -----------------------------------------------------------

    @classmethod
    def calibrate(
        cls,
        model: TransformerLM,
        calibration_tokens: np.ndarray | Iterable[np.ndarray],
        million_config: Optional[MillionConfig] = None,
        chunk_size: int = 256,
        max_batch_size: int = 8,
    ) -> "BatchedMillionEngine":
        """Run MILLION's offline phase once, then serve from the result."""
        million_config = million_config or MillionConfig.for_equivalent_bits(
            model.config.head_dim, bits=4
        )
        factory = calibrate_million(
            model, calibration_tokens, million_config, chunk_size=chunk_size
        )
        return cls(model, factory, max_batch_size=max_batch_size)

    # Submission ---------------------------------------------------------------

    def submit(self, request: GenerationRequest) -> str:
        """Queue a request; returns its (possibly auto-assigned) id."""
        if request.request_id is None:
            # Skip over ids the caller already used explicitly.
            candidate = f"req-{self._next_request_number:04d}"
            self._next_request_number += 1
            while candidate in self._states:
                candidate = f"req-{self._next_request_number:04d}"
                self._next_request_number += 1
            request.request_id = candidate
        require(
            request.request_id not in self._states,
            f"duplicate request id {request.request_id!r}",
        )
        # Reject prompts that cannot prefill: letting model.forward raise
        # mid-step would strand every other in-flight request.
        require(
            request.prompt_ids.size <= self.model.config.max_seq_len,
            f"prompt of {request.prompt_ids.size} tokens exceeds max_seq_len "
            f"{self.model.config.max_seq_len}",
        )
        state = RequestState(request=request, rng=get_rng(request.seed))
        self._states[request.request_id] = state
        self.scheduler.submit(state)
        return request.request_id

    def add_request(
        self,
        prompt_ids: np.ndarray,
        max_new_tokens: int,
        request_id: Optional[str] = None,
        stop_token: Optional[int] = None,
        sampler=None,
        seed: Optional[int] = None,
    ) -> str:
        """Convenience wrapper building and submitting a :class:`GenerationRequest`."""
        return self.submit(
            GenerationRequest(
                prompt_ids=prompt_ids,
                max_new_tokens=max_new_tokens,
                request_id=request_id,
                stop_token=stop_token,
                sampler=sampler,
                seed=seed,
            )
        )

    # Serving loop -------------------------------------------------------------

    @contextmanager
    def _bound(self, state: RequestState) -> Iterator[TransformerLM]:
        """Swap ``state``'s context into the shared model for one operation."""
        saved = self.model.save_context()
        assert state.context is not None
        self.model.restore_context(state.context)
        try:
            yield self.model
        finally:
            state.context = self.model.save_context()
            self.model.restore_context(saved)

    def _finish(self, state: RequestState, reason: FinishReason) -> None:
        state.finish_reason = reason
        self.scheduler.release(state)
        self._unclaimed_results[state.request_id] = state.generated_ids
        # Release the per-sequence KV caches immediately; keeping every
        # finished context alive would grow memory with total requests served.
        state.context = None
        state.next_logits = None

    def _prefill(self, state: RequestState) -> Optional[StepOutput]:
        """Prefill a newly admitted request; may finish it immediately."""
        state.context = self.model.fresh_context(self.factory)
        with self._bound(state) as model:
            logits = model.forward(state.request.prompt_ids)
        state.next_logits = logits[-1]
        if state.request.max_new_tokens == 0:
            self._finish(state, FinishReason.LENGTH)
        elif state.context.next_position >= self.model.config.max_seq_len:
            self._finish(state, FinishReason.CONTEXT_FULL)
        if state.is_finished:
            return StepOutput(state.request_id, None, True, state.finish_reason)
        return None

    def _decode_one(self, state: RequestState) -> StepOutput:
        """Advance one running sequence by one token.

        Mirrors :meth:`TransformerLM.generate` exactly (sample, stop check,
        context check, decode) so greedy outputs — and the final cache state —
        match sequential generation bit for bit.
        """
        request = state.request
        assert state.context is not None and state.next_logits is not None
        if state.context.next_position >= self.model.config.max_seq_len:
            self._finish(state, FinishReason.CONTEXT_FULL)
            return StepOutput(state.request_id, None, True, state.finish_reason)
        sampler = request.sampler or GreedySampler()
        token = sampler(state.next_logits, state.rng)
        state.generated.append(token)
        if request.stop_token is not None and token == request.stop_token:
            self._finish(state, FinishReason.STOP_TOKEN)
        elif state.context.next_position >= self.model.config.max_seq_len:
            self._finish(state, FinishReason.CONTEXT_FULL)
        else:
            with self._bound(state) as model:
                state.next_logits = model.decode_step(token)
            if len(state.generated) >= request.max_new_tokens:
                self._finish(state, FinishReason.LENGTH)
        return StepOutput(
            state.request_id, token, state.is_finished, state.finish_reason
        )

    def step(self) -> list[StepOutput]:
        """One engine iteration: admit + prefill, then one decode per sequence."""
        outputs: list[StepOutput] = []
        for state in self.scheduler.admit():
            prefill_output = self._prefill(state)
            if prefill_output is not None:
                outputs.append(prefill_output)
        for state in self.scheduler.running:
            outputs.append(self._decode_one(state))
        return outputs

    def run(self) -> dict[str, np.ndarray]:
        """Drain queue and running set; return generated ids per request id.

        Only results not yet returned by a previous :meth:`run` call are
        included, so alternating submissions and ``run`` calls yields each
        request exactly once.
        """
        while self.scheduler.has_work:
            self.step()
        results = self._unclaimed_results
        self._unclaimed_results = {}
        return results

    def generate_batch(
        self,
        prompts: Sequence[np.ndarray],
        max_new_tokens: int,
        stop_token: Optional[int] = None,
        sampler=None,
        seed: Optional[int] = None,
    ) -> list[np.ndarray]:
        """Serve ``prompts`` concurrently; results in submission order."""
        ids = [
            self.add_request(
                prompt,
                max_new_tokens,
                stop_token=stop_token,
                sampler=sampler,
                seed=seed,
            )
            for prompt in prompts
        ]
        results = self.run()
        batch = [results.pop(request_id) for request_id in ids]
        # Results of requests submitted outside this batch stay claimable
        # by a later run() call.
        self._unclaimed_results.update(results)
        return batch

    # Introspection ------------------------------------------------------------

    def state_of(self, request_id: str) -> RequestState:
        """Look up a request's state (queued, running or finished)."""
        require(request_id in self._states, f"unknown request id {request_id!r}")
        return self._states[request_id]

    def evict_finished(self) -> int:
        """Drop bookkeeping for finished requests; returns how many were evicted.

        A long-lived engine otherwise accumulates one :class:`RequestState`
        (request ids, generated token lists) per request ever served.  Results
        not yet claimed through :meth:`run` are dropped too, so call this only
        after consuming what you need.
        """
        evicted = self.scheduler.evict_finished()
        for state in evicted:
            del self._states[state.request_id]
            self._unclaimed_results.pop(state.request_id, None)
        return len(evicted)

    @property
    def running_count(self) -> int:
        return self.scheduler.running_count

    @property
    def queued_count(self) -> int:
        return self.scheduler.queued_count

    @property
    def finished_count(self) -> int:
        return self.scheduler.finished_count

    def active_cache_memory_bytes(self) -> float:
        """Total modelled KV footprint across all running sequences."""
        total = 0.0
        for state in self.scheduler.running:
            if state.context is not None:
                total += sum(cache.memory_bytes() for cache in state.context.caches)
        return total


__all__ = [
    "BatchedMillionEngine",
    "FinishReason",
    "GenerationRequest",
    "RequestState",
    "RequestStatus",
    "StepOutput",
]
