"""The MILLION KV cache: PQ-encoded past plus a full-precision recent window.

Attention over the quantized past is computed entirely from codes and lookup
tables (:mod:`repro.core.attention_pq`); the recent window and the current
token stay full precision and are merged through a single softmax, matching
the decomposition of Eq. (7).  An optional sparse outlier correction is
available purely for the Table III sensitivity study — MILLION's point is
that it is not needed.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.attention_pq import pq_attention_scores, pq_weighted_values
from repro.core.config import MillionConfig
from repro.core.pq import ProductQuantizer
from repro.core.storage import CodeStore
from repro.utils.bitpack import code_dtype
from repro.utils.scratch import ScratchArena
from repro.models.config import ModelConfig
from repro.models.kv_cache import KVCacheLayer
from repro.quant.cache_adapters import StreamingQuantizedKVCache
from repro.quant.outliers import split_outliers
from repro.utils.validation import require


class _SparseCorrections:
    """COO storage of ``original - clamped`` deltas for outlier entries.

    Entries live in contiguous growable arrays (one scalar row per non-zero),
    so :meth:`materialize` is a set of zero-copy views — appending a block is
    amortized O(block) and reading during attention is O(1), matching the
    cost model of the code storage.
    """

    def __init__(self) -> None:
        self.token_indices = CodeStore((), np.int64)
        self.head_indices = CodeStore((), np.int64)
        self.channel_indices = CodeStore((), np.int64)
        self.deltas = CodeStore((), np.float32)

    def add_block(
        self, token_offset: int, block_deltas: np.ndarray
    ) -> None:
        """Record the non-zero entries of ``block_deltas`` (t, kv_heads, d)."""
        tokens, heads, channels = np.nonzero(block_deltas)
        if tokens.size == 0:
            return
        self.token_indices.append(tokens + token_offset)
        self.head_indices.append(heads.astype(np.int64, copy=False))
        self.channel_indices.append(channels.astype(np.int64, copy=False))
        self.deltas.append(block_deltas[tokens, heads, channels].astype(np.float32))

    def materialize(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return (
            self.token_indices.view(),
            self.head_indices.view(),
            self.channel_indices.view(),
            self.deltas.view(),
        )

    @property
    def count(self) -> int:
        return len(self.deltas)

    def memory_bytes(self, value_bytes: float = 2.0, index_bytes: float = 4.0) -> float:
        return float(self.count * (value_bytes + index_bytes))

    def clear(self) -> None:
        self.token_indices.clear()
        self.head_indices.clear()
        self.channel_indices.clear()
        self.deltas.clear()


class MillionKVCacheLayer(StreamingQuantizedKVCache):
    """Per-layer MILLION cache (paper Fig. 4b/4c and Fig. 5).

    The flush state is *chunk-resumable*: :meth:`flush_all` between chunk
    forwards leaves the cache in exactly the ``(stored == n, pending == 0)``
    split a later computation can resume from (see
    :meth:`~repro.core.engine.MillionEngine.prefill_chunked` and the serving
    engine's chunked prefill, both of which rely on this to interleave or
    resume prefill work without changing what a full rerun would compute).
    """

    #: Process-wide id source for :attr:`cache_serial` (never reused, unlike
    #: ``id()``, so content-change tracking across cache churn stays sound).
    _serial_counter = itertools.count()

    def __init__(
        self,
        config: ModelConfig,
        key_pq: ProductQuantizer,
        value_pq: ProductQuantizer,
        million_config: MillionConfig,
        flush_block_multiple: int = 1,
    ) -> None:
        million_config.validate_for_model(config)
        require(
            key_pq.dim == config.head_dim,
            f"key quantizer dim {key_pq.dim} != head_dim {config.head_dim}",
        )
        require(
            value_pq.dim == config.head_dim,
            f"value quantizer dim {value_pq.dim} != head_dim {config.head_dim}",
        )
        super().__init__(
            config,
            residual_window=million_config.recent_window,
            flush_block_multiple=flush_block_multiple,
        )
        self.key_pq = key_pq
        self.value_pq = value_pq
        self.million_config = million_config
        # Per-layer scratch buffers for the flat ADC kernels, reused across
        # decode steps so attention performs no per-step allocations.
        self.arena = ScratchArena()
        # Content-change tracking for packed-gather consumers (the fused
        # decoder): (cache_serial, code_version) changes iff the stored code
        # sequence may have changed, so steps without a flush can reuse the
        # previous step's packed copy of this cache's codes.
        self.cache_serial = next(self._serial_counter)
        self.code_version = 0
        # Contiguous, amortized-doubling code storage: appends copy one block,
        # attention reads a zero-copy view — no per-step re-concatenation.
        self._key_codes = CodeStore(
            (config.kv_heads, key_pq.m_subspaces), code_dtype(key_pq.nbits)
        )
        self._value_codes = CodeStore(
            (config.kv_heads, value_pq.m_subspaces), code_dtype(value_pq.nbits)
        )
        self._key_corrections = _SparseCorrections()
        self._value_corrections = _SparseCorrections()

    # Storage hooks -----------------------------------------------------------

    def _quantize_and_store(self, keys: np.ndarray, values: np.ndarray) -> None:
        token_offset = self._stored_tokens
        keys_dense, values_dense = keys, values
        if self.million_config.outlier_fraction > 0.0:
            keys_dense, _ = split_outliers(keys, self.million_config.outlier_fraction)
            values_dense, _ = split_outliers(values, self.million_config.outlier_fraction)
            self._key_corrections.add_block(token_offset, keys - keys_dense)
            self._value_corrections.add_block(token_offset, values - values_dense)
        self._store_code_rows(*self._encode_dense(keys_dense, values_dense))

    def _encode_dense(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        t, kv_heads, head_dim = keys.shape
        key_codes = self.key_pq.encode(keys.reshape(t * kv_heads, head_dim))
        value_codes = self.value_pq.encode(values.reshape(t * kv_heads, head_dim))
        return (
            key_codes.reshape(t, kv_heads, -1),
            value_codes.reshape(t, kv_heads, -1),
        )

    def encode_rows(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Encode ``(t, kv_heads, d)`` rows to ``(t, kv_heads, M)`` codes.

        The pure compression half of the flush, exposed so the fused decode
        path can encode the popped rows of many sequences in one call
        (:meth:`ProductQuantizer.encode` is row-invariant, so the batched
        codes are bit-identical to per-sequence encoding).  Sparse outlier
        corrections are per-sequence COO state that cannot be split out of a
        batched encode, so this path requires ``outlier_fraction == 0``.
        """
        require(
            self.million_config.outlier_fraction == 0.0,
            "encode_rows does not support sparse outlier corrections",
        )
        return self._encode_dense(keys, values)

    def store_code_block(
        self, key_codes: np.ndarray, value_codes: np.ndarray
    ) -> None:
        """Install pre-encoded code rows popped via :meth:`pop_flushable`."""
        require(
            key_codes.shape[0] == value_codes.shape[0],
            "key and value code blocks must cover the same tokens",
        )
        self._store_code_rows(key_codes, value_codes)
        self.account_flushed(key_codes.shape[0])

    def _store_code_rows(self, key_codes: np.ndarray, value_codes: np.ndarray) -> None:
        """Record a flushed block's ``(t, kv_heads, M)`` code rows.

        Split out as a hook so pooled variants (see
        :class:`repro.serving.memory.PooledMillionKVCacheLayer`) can route the
        same code rows into ref-counted pool blocks without duplicating the
        outlier-splitting and encoding logic above.
        """
        self._key_codes.append(key_codes)
        self._value_codes.append(value_codes)
        self.code_version += 1

    def _stored_key_codes(self) -> np.ndarray:
        return self._key_codes.view()

    def _stored_value_codes(self) -> np.ndarray:
        return self._value_codes.view()

    def stored_code_views(self) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(key_codes, value_codes)`` views, ``(stored, kv_heads, M)``.

        The fused decode path reads these directly (and packs them into its
        step-wide gather buffers) instead of materializing per-request
        copies.
        """
        return self._key_codes.view(), self._value_codes.view()

    # Attention hooks -----------------------------------------------------------

    def _quantized_scores(self, queries: np.ndarray, scale: float) -> np.ndarray:
        scores = pq_attention_scores(
            queries, self._stored_key_codes(), self.key_pq, scale=scale, arena=self.arena
        )
        if self._key_corrections.count:
            scores = scores + self._key_score_corrections(queries) * np.float32(scale)
        return scores

    def _quantized_weighted_values(self, probs: np.ndarray) -> np.ndarray:
        context = pq_weighted_values(
            probs, self._stored_value_codes(), self.value_pq, arena=self.arena
        )
        if self._value_corrections.count:
            context = context + self._value_context_corrections(probs)
        return context

    def _key_score_corrections(self, queries: np.ndarray) -> np.ndarray:
        """Sparse outlier contribution ``q · Δk`` added to the ADC scores."""
        tokens, heads, channels, deltas = self._key_corrections.materialize()
        n_queries, n_heads, _ = queries.shape
        corrections = np.zeros((n_heads, n_queries, self._stored_tokens), dtype=np.float32)
        group = n_heads // self.config.kv_heads
        for offset in range(group):
            query_heads = heads * group + offset
            # contribution[h, :, token] += q[:, h, channel] * delta
            contributions = queries[:, query_heads, channels] * deltas[None, :]
            np.add.at(
                corrections,
                (query_heads[None, :], np.arange(n_queries)[:, None], tokens[None, :]),
                contributions,
            )
        return corrections

    def _value_context_corrections(self, probs: np.ndarray) -> np.ndarray:
        """Sparse outlier contribution ``p · Δv`` added to the context."""
        tokens, heads, channels, deltas = self._value_corrections.materialize()
        n_heads, n_queries, _ = probs.shape
        context = np.zeros((n_queries, n_heads, self.config.head_dim), dtype=np.float32)
        group = n_heads // self.config.kv_heads
        for offset in range(group):
            query_heads = heads * group + offset
            # context[:, h, channel] += probs[h, :, token] * delta
            contributions = probs[query_heads, :, tokens].T * deltas[None, :]
            np.add.at(
                context,
                (np.arange(n_queries)[:, None], query_heads[None, :], channels[None, :]),
                contributions,
            )
        return context

    # Memory accounting -----------------------------------------------------------

    def quantized_memory_bytes(self) -> float:
        n_vectors = self._stored_tokens * self.config.kv_heads
        total = self.key_pq.code_memory_bytes(n_vectors)
        total += self.value_pq.code_memory_bytes(n_vectors)
        total += self.key_pq.codebook_memory_bytes()
        total += self.value_pq.codebook_memory_bytes()
        total += self._key_corrections.memory_bytes()
        total += self._value_corrections.memory_bytes()
        return float(total)

    def dequantized_kv(self) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct the stored keys/values (diagnostics and tests only)."""
        if self._stored_tokens == 0:
            empty = np.zeros((0, self.config.kv_heads, self.config.head_dim), np.float32)
            return empty, empty.copy()
        key_codes = self._stored_key_codes()
        value_codes = self._stored_value_codes()
        t, kv_heads, _ = key_codes.shape
        keys = self.key_pq.decode(key_codes.reshape(t * kv_heads, -1)).reshape(
            t, kv_heads, self.config.head_dim
        )
        values = self.value_pq.decode(value_codes.reshape(t * kv_heads, -1)).reshape(
            t, kv_heads, self.config.head_dim
        )
        return keys, values

    def reset(self) -> None:
        super().reset()
        self._key_codes.clear()
        self._value_codes.clear()
        self._key_corrections.clear()
        self._value_corrections.clear()
        self.code_version += 1


class MillionCacheFactory:
    """Creates :class:`MillionKVCacheLayer` instances from per-layer quantizers."""

    def __init__(
        self,
        quantizers: dict[int, tuple[ProductQuantizer, ProductQuantizer]],
        million_config: MillionConfig,
    ) -> None:
        require(len(quantizers) > 0, "quantizers mapping must not be empty")
        self.quantizers = dict(quantizers)
        self.million_config = million_config

    def create(self, layer_index: int, config: ModelConfig) -> KVCacheLayer:
        if layer_index not in self.quantizers:
            raise KeyError(f"no trained MILLION quantizers for layer {layer_index}")
        key_pq, value_pq = self.quantizers[layer_index]
        return MillionKVCacheLayer(config, key_pq, value_pq, self.million_config)

    def bits_per_value(self, head_dim: int) -> float:
        """Effective bits per cached scalar for reporting."""
        return self.million_config.bits_per_value(head_dim)
