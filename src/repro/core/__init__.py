"""MILLION core: product-quantized KV cache, calibration and engine."""

from repro.core.attention_pq import (
    pq_attention_scores,
    pq_sparse_attention,
    pq_weighted_values,
)
from repro.core.calibration import (
    KVSampleCollector,
    calibrate_kvquant,
    calibrate_million,
    collect_kv_samples,
    train_kvquant_quantizers,
    train_million_quantizers,
)
from repro.core.codebook import SubspaceCodebooks, train_codebooks
from repro.core.config import MillionConfig
from repro.core.engine import CacheStats, MillionEngine
from repro.core.million_cache import MillionCacheFactory, MillionKVCacheLayer
from repro.core.pipeline import (
    AsyncQuantizationStream,
    DecodePipelineRecorder,
    DecodeStepRecord,
    PipelineTrace,
    QuantizationJob,
)
from repro.core.pq import ProductQuantizer

__all__ = [
    "pq_attention_scores",
    "pq_sparse_attention",
    "pq_weighted_values",
    "KVSampleCollector",
    "calibrate_kvquant",
    "calibrate_million",
    "collect_kv_samples",
    "train_kvquant_quantizers",
    "train_million_quantizers",
    "SubspaceCodebooks",
    "train_codebooks",
    "MillionConfig",
    "CacheStats",
    "MillionEngine",
    "MillionCacheFactory",
    "MillionKVCacheLayer",
    "AsyncQuantizationStream",
    "DecodePipelineRecorder",
    "DecodeStepRecord",
    "PipelineTrace",
    "QuantizationJob",
    "ProductQuantizer",
]
