"""Offline calibration: sample KV caches and train quantizers (Fig. 4a).

The workflow mirrors the paper: run the model at full precision on a short
calibration stream, sample the key/value vectors each layer produces, and fit
the per-layer quantizers (PQ codebooks for MILLION, non-uniform codebooks for
the KVQuant-like baseline) on those samples.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.config import MillionConfig
from repro.core.million_cache import MillionCacheFactory
from repro.core.pq import ProductQuantizer
from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.models.transformer import TransformerLM
from repro.quant.cache_adapters import KVQuantCacheFactory
from repro.quant.kvquant import KVQuantQuantizer
from repro.utils.rng import SeedLike, derive_seed, get_rng
from repro.utils.validation import require


class KVSampleCollector:
    """Observer that accumulates per-layer key/value samples during inference."""

    def __init__(self, n_layers: int, max_samples_per_layer: int = 8192, seed: SeedLike = 0) -> None:
        require(n_layers >= 1, "n_layers must be >= 1")
        require(max_samples_per_layer >= 1, "max_samples_per_layer must be >= 1")
        self.n_layers = n_layers
        self.max_samples_per_layer = max_samples_per_layer
        self._rng = get_rng(seed)
        self._keys: list[list[np.ndarray]] = [[] for _ in range(n_layers)]
        self._values: list[list[np.ndarray]] = [[] for _ in range(n_layers)]
        self._counts = np.zeros(n_layers, dtype=np.int64)

    def __call__(self, layer_index: int, keys: np.ndarray, values: np.ndarray) -> None:
        """Record one layer's new KV block of shape ``(t, kv_heads, head_dim)``."""
        if not 0 <= layer_index < self.n_layers:
            raise IndexError(f"layer_index {layer_index} out of range")
        self._keys[layer_index].append(np.asarray(keys, dtype=np.float32))
        self._values[layer_index].append(np.asarray(values, dtype=np.float32))
        self._counts[layer_index] += keys.shape[0] * keys.shape[1]

    def sample_count(self, layer_index: int) -> int:
        """Number of per-head vectors collected so far for ``layer_index``."""
        return int(self._counts[layer_index])

    def _stacked(self, blocks: Sequence[np.ndarray]) -> np.ndarray:
        require(len(blocks) > 0, "no samples collected for this layer")
        return np.concatenate(blocks, axis=0)

    def _subsample(self, vectors: np.ndarray) -> np.ndarray:
        if vectors.shape[0] <= self.max_samples_per_layer:
            return vectors
        idx = self._rng.choice(
            vectors.shape[0], size=self.max_samples_per_layer, replace=False
        )
        return vectors[idx]

    # Layouts ------------------------------------------------------------------

    def key_vectors(self, layer_index: int) -> np.ndarray:
        """Per-head key vectors ``(n, head_dim)`` pooled across heads (PQ layout)."""
        stacked = self._stacked(self._keys[layer_index])
        return self._subsample(stacked.reshape(-1, stacked.shape[-1]))

    def value_vectors(self, layer_index: int) -> np.ndarray:
        """Per-head value vectors ``(n, head_dim)`` pooled across heads (PQ layout)."""
        stacked = self._stacked(self._values[layer_index])
        return self._subsample(stacked.reshape(-1, stacked.shape[-1]))

    def key_channels(self, layer_index: int) -> np.ndarray:
        """Per-token key rows ``(tokens, kv_heads * head_dim)`` (channel layout)."""
        stacked = self._stacked(self._keys[layer_index])
        return self._subsample(stacked.reshape(stacked.shape[0], -1))

    def value_channels(self, layer_index: int) -> np.ndarray:
        """Per-token value rows ``(tokens, kv_heads * head_dim)`` (channel layout)."""
        stacked = self._stacked(self._values[layer_index])
        return self._subsample(stacked.reshape(stacked.shape[0], -1))

    def key_matrix(self, layer_index: int, max_tokens: int | None = None) -> np.ndarray:
        """Keys ``(tokens, kv_heads, head_dim)`` with head structure intact.

        Deterministic (first ``max_tokens`` tokens, no rng draw) so per-head
        consumers — sensitivity scoring, per-group quantizer fits — see the
        same samples no matter how often or in what order they are called.
        """
        stacked = self._stacked(self._keys[layer_index])
        return stacked if max_tokens is None else stacked[:max_tokens]

    def value_matrix(self, layer_index: int, max_tokens: int | None = None) -> np.ndarray:
        """Values ``(tokens, kv_heads, head_dim)`` with head structure intact."""
        stacked = self._stacked(self._values[layer_index])
        return stacked if max_tokens is None else stacked[:max_tokens]


def collect_kv_samples(
    model: TransformerLM,
    calibration_tokens: np.ndarray | Iterable[np.ndarray],
    chunk_size: int = 256,
    max_samples_per_layer: int = 8192,
    seed: SeedLike = 0,
) -> KVSampleCollector:
    """Run full-precision inference over calibration text and collect KV samples.

    ``calibration_tokens`` is either a single token stream or an iterable of
    streams; each stream is processed with a fresh full-precision cache.
    """
    require(chunk_size >= 1, "chunk_size must be >= 1")
    if isinstance(calibration_tokens, np.ndarray):
        streams: list[np.ndarray] = [calibration_tokens]
    else:
        streams = [np.asarray(s) for s in calibration_tokens]
    require(len(streams) > 0, "calibration_tokens must contain at least one stream")
    collector = KVSampleCollector(
        model.config.n_layers, max_samples_per_layer=max_samples_per_layer, seed=seed
    )
    previous_factory = model.cache_factory
    model.kv_observers.append(collector)
    try:
        for stream in streams:
            stream = np.asarray(stream, dtype=np.int64).reshape(-1)
            limit = min(stream.size, model.config.max_seq_len - 1)
            stream = stream[:limit]
            model.reset_cache(FullPrecisionCacheFactory())
            for start in range(0, stream.size, chunk_size):
                model.forward(stream[start : start + chunk_size])
    finally:
        model.kv_observers.remove(collector)
        model.reset_cache(previous_factory)
    return collector


def train_million_quantizers(
    collector: KVSampleCollector,
    million_config: MillionConfig,
) -> dict[int, tuple[ProductQuantizer, ProductQuantizer]]:
    """Fit per-layer (key, value) product quantizers from collected samples."""
    quantizers: dict[int, tuple[ProductQuantizer, ProductQuantizer]] = {}
    for layer in range(collector.n_layers):
        key_seed = derive_seed(million_config.seed, "million-key", layer)
        value_seed = derive_seed(million_config.seed, "million-value", layer)
        key_pq = ProductQuantizer.fit(
            collector.key_vectors(layer),
            million_config.m_subspaces,
            million_config.nbits,
            kmeans_iters=million_config.kmeans_iters,
            seed=key_seed,
            max_samples=million_config.calibration_samples,
        )
        value_pq = ProductQuantizer.fit(
            collector.value_vectors(layer),
            million_config.m_subspaces,
            million_config.nbits,
            kmeans_iters=million_config.kmeans_iters,
            seed=value_seed,
            max_samples=million_config.calibration_samples,
        )
        quantizers[layer] = (key_pq, value_pq)
    return quantizers


def calibrate_million(
    model: TransformerLM,
    calibration_tokens: np.ndarray | Iterable[np.ndarray],
    million_config: MillionConfig,
    chunk_size: int = 256,
) -> MillionCacheFactory:
    """End-to-end offline phase: sample KV, train codebooks, return the factory."""
    million_config.validate_for_model(model.config)
    collector = collect_kv_samples(
        model,
        calibration_tokens,
        chunk_size=chunk_size,
        max_samples_per_layer=million_config.calibration_samples,
        seed=million_config.seed,
    )
    quantizers = train_million_quantizers(collector, million_config)
    return MillionCacheFactory(quantizers, million_config)


def train_kvquant_quantizers(
    collector: KVSampleCollector,
    nbits: int,
    outlier_fraction: float = 0.0,
    seed: SeedLike = 0,
) -> dict[int, KVQuantQuantizer]:
    """Fit per-layer KVQuant-like quantizers from collected samples."""
    quantizers: dict[int, KVQuantQuantizer] = {}
    for layer in range(collector.n_layers):
        quantizer = KVQuantQuantizer(
            nbits=nbits,
            outlier_fraction=outlier_fraction,
            seed=derive_seed(seed, "kvquant", layer),
        )
        quantizer.fit(collector.key_channels(layer), collector.value_channels(layer))
        quantizers[layer] = quantizer
    return quantizers


def calibrate_kvquant(
    model: TransformerLM,
    calibration_tokens: np.ndarray | Iterable[np.ndarray],
    nbits: int,
    outlier_fraction: float = 0.0,
    residual_window: int = 0,
    chunk_size: int = 256,
    max_samples_per_layer: int = 4096,
    seed: SeedLike = 0,
) -> KVQuantCacheFactory:
    """Offline calibration for the KVQuant-like baseline."""
    collector = collect_kv_samples(
        model,
        calibration_tokens,
        chunk_size=chunk_size,
        max_samples_per_layer=max_samples_per_layer,
        seed=seed,
    )
    quantizers = train_kvquant_quantizers(
        collector, nbits, outlier_fraction=outlier_fraction, seed=seed
    )
    return KVQuantCacheFactory(quantizers, residual_window=residual_window)


# Mixed-precision policies ----------------------------------------------------
#
# The policy modules are imported lazily inside these functions: this module
# is part of ``repro.core.__init__``, and ``repro.quant.policy_cache``
# imports the core cache stack — a top-level import here would complete the
# cycle during package init.


def measure_sensitivity(
    collector: KVSampleCollector,
    max_tokens: int = 2048,
    **kwargs,
):
    """Score per-(layer, head) quantization sensitivity from collected samples.

    Thin bridge between :class:`KVSampleCollector` and
    :func:`repro.quant.policy.measure_head_sensitivity`; ``kwargs`` pass
    through (``probe_bits``, ``outlier_fraction``, ``kmeans_iters``, ...).
    """
    from repro.quant.policy import measure_head_sensitivity

    keys = [collector.key_matrix(layer, max_tokens) for layer in range(collector.n_layers)]
    values = [
        collector.value_matrix(layer, max_tokens) for layer in range(collector.n_layers)
    ]
    return measure_head_sensitivity(keys, values, **kwargs)


def build_policy_factory(
    collector: KVSampleCollector,
    policy,
    model_config,
    recent_window: int = 0,
    max_tokens: int = 2048,
    seed: SeedLike = 0,
    **million_kwargs,
):
    """Train every quantizer a policy needs and return its cache factory.

    One :class:`MillionCacheFactory` is calibrated per distinct MILLION bit
    budget the policy uses (full per-layer codebooks, trained on the same
    pooled vectors as the uniform path); KVQuant groups get per-(layer,
    head-group) fits on their own channel slices.  ``million_kwargs`` pass
    through to :func:`~repro.quant.policy.million_variant` (``kmeans_iters``,
    ``calibration_samples``, ...).
    """
    from repro.quant.policy import million_variant
    from repro.quant.policy_cache import PolicyCacheFactory

    policy.validate_for_model(model_config)
    million_factories = {}
    kvquant_quantizers = {}
    kvquant_bits: dict[tuple[int, tuple[int, ...]], int] = {}
    for assignment in policy.distinct_assignments():
        if assignment.scheme == "million" and assignment.bits not in million_factories:
            variant = million_variant(
                model_config.head_dim,
                assignment.bits,
                recent_window=recent_window,
                seed=derive_seed(seed, "policy-million", assignment.bits),
                **million_kwargs,
            )
            quantizers = train_million_quantizers(collector, variant)
            million_factories[assignment.bits] = MillionCacheFactory(quantizers, variant)
    for layer in range(policy.n_layers):
        for assignment, heads in policy.head_groups(layer):
            if assignment.scheme == "kvquant":
                kvquant_bits[(layer, heads)] = assignment.bits
    for (layer, heads), bits in kvquant_bits.items():
        quantizer = KVQuantQuantizer(
            nbits=bits,
            outlier_fraction=0.0,
            seed=derive_seed(seed, "policy-kvquant", layer, *heads),
        )
        head_idx = list(heads)
        keys = collector.key_matrix(layer, max_tokens)[:, head_idx, :]
        values = collector.value_matrix(layer, max_tokens)[:, head_idx, :]
        quantizer.fit(
            keys.reshape(keys.shape[0], -1), values.reshape(values.shape[0], -1)
        )
        kvquant_quantizers[(layer, heads)] = quantizer
    return PolicyCacheFactory(
        policy,
        model_config,
        million_factories=million_factories,
        kvquant_quantizers=kvquant_quantizers,
        kvquant_residual_window=recent_window,
    )


def calibrate_policy(
    model: TransformerLM,
    calibration_tokens: np.ndarray | Iterable[np.ndarray],
    budget_bytes_per_token: float,
    ladder=None,
    schemes=None,
    recent_window: int = 0,
    chunk_size: int = 256,
    max_samples_per_layer: int = 8192,
    seed: SeedLike = 0,
    **million_kwargs,
):
    """End-to-end mixed-precision calibration (Fig. 4a, per-head edition).

    Samples KV at full precision, scores per-head sensitivity, derives the
    budgeted :class:`~repro.quant.policy.QuantPolicy`, and trains every
    quantizer it needs.  Returns ``(policy, factory)`` — the policy is the
    committable artifact, the factory plugs into ``model.reset_cache``.
    """
    from repro.quant.policy import DEFAULT_LADDER, derive_policy

    collector = collect_kv_samples(
        model,
        calibration_tokens,
        chunk_size=chunk_size,
        max_samples_per_layer=max_samples_per_layer,
        seed=seed,
    )
    sensitivity = measure_sensitivity(
        collector, seed=derive_seed(seed, "policy-probe")
    )
    policy = derive_policy(
        model.config,
        sensitivity,
        budget_bytes_per_token,
        ladder=DEFAULT_LADDER if ladder is None else ladder,
        schemes=schemes,
    )
    factory = build_policy_factory(
        collector,
        policy,
        model.config,
        recent_window=recent_window,
        seed=seed,
        **million_kwargs,
    )
    return policy, factory
