"""Product quantizer: encode/decode, score lookup tables and ADC.

The two operations that make MILLION fast are implemented here exactly as the
paper's CUDA kernel computes them, just vectorised in NumPy:

* :meth:`ProductQuantizer.build_score_luts` — ``q_n × Cᵀ`` (Eq. 7, step 1),
  the per-token lookup table that the kernel keeps in L1/shared memory;
* :meth:`ProductQuantizer.adc_scores` — gathering LUT entries with the stored
  codes, so attention logits against quantized keys never de-quantize them;
* :meth:`ProductQuantizer.weighted_decode` — the value-side trick: attention
  probabilities are *aggregated per centroid* first and only then multiplied
  by the centroid table, so the weighted sum over values is ``O(n + K·d)``
  instead of ``O(n·d)`` de-quantization work.
"""

from __future__ import annotations

import numpy as np

from repro.core.codebook import SubspaceCodebooks, train_codebooks
from repro.quant.kmeans import assign_to_centroids
from repro.utils.bitpack import code_dtype, packed_nbytes
from repro.utils.rng import SeedLike
from repro.utils.validation import require


class ProductQuantizer:
    """Encode/decode vectors against a fixed set of subspace codebooks."""

    def __init__(self, codebooks: SubspaceCodebooks) -> None:
        self.codebooks = codebooks

    # Construction ----------------------------------------------------------

    @classmethod
    def fit(
        cls,
        vectors: np.ndarray,
        m_subspaces: int,
        nbits: int,
        kmeans_iters: int = 15,
        seed: SeedLike = 0,
        max_samples: int | None = None,
    ) -> "ProductQuantizer":
        """Train codebooks on calibration ``vectors`` and return a quantizer."""
        codebooks = train_codebooks(
            vectors,
            m_subspaces,
            nbits,
            kmeans_iters=kmeans_iters,
            seed=seed,
            max_samples=max_samples,
        )
        return cls(codebooks)

    # Properties --------------------------------------------------------------

    @property
    def m_subspaces(self) -> int:
        return self.codebooks.m_subspaces

    @property
    def n_centroids(self) -> int:
        return self.codebooks.n_centroids

    @property
    def subspace_dim(self) -> int:
        return self.codebooks.subspace_dim

    @property
    def dim(self) -> int:
        return self.codebooks.dim

    @property
    def nbits(self) -> int:
        return self.codebooks.nbits

    def bits_per_value(self) -> float:
        """Effective bits per stored scalar."""
        return self.m_subspaces * self.nbits / self.dim

    # Encode / decode ---------------------------------------------------------

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize ``(n, dim)`` vectors to ``(n, M)`` centroid indices (Eq. 4)."""
        subvectors = self.codebooks.split_vectors(vectors)
        n = subvectors.shape[0]
        codes = np.empty((n, self.m_subspaces), dtype=code_dtype(self.nbits))
        for m in range(self.m_subspaces):
            codes[:, m] = assign_to_centroids(
                subvectors[:, m, :], self.codebooks.centroids[m]
            )
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct ``(n, dim)`` vectors from centroid indices (Eq. 5)."""
        codes = np.asarray(codes)
        require(
            codes.ndim == 2 and codes.shape[1] == self.m_subspaces,
            f"codes must have shape (n, {self.m_subspaces}), got {codes.shape}",
        )
        n = codes.shape[0]
        out = np.empty((n, self.dim), dtype=np.float32)
        dsub = self.subspace_dim
        for m in range(self.m_subspaces):
            out[:, m * dsub : (m + 1) * dsub] = self.codebooks.centroids[m][codes[:, m]]
        return out

    def quantize(self, vectors: np.ndarray) -> np.ndarray:
        """Round-trip convenience: ``decode(encode(vectors))``."""
        return self.decode(self.encode(vectors))

    def reconstruction_mse(self, vectors: np.ndarray) -> float:
        """Mean squared reconstruction error on ``vectors``."""
        vectors = np.asarray(vectors, dtype=np.float32)
        return float(np.mean((vectors - self.quantize(vectors)) ** 2))

    # Asymmetric distance computation -----------------------------------------

    def build_score_luts(self, queries: np.ndarray) -> np.ndarray:
        """Dot-product lookup tables ``(n_queries, M, K)`` for ``(n_queries, dim)`` queries."""
        queries = np.asarray(queries, dtype=np.float32)
        single = queries.ndim == 1
        if single:
            queries = queries[None, :]
        subqueries = self.codebooks.split_vectors(queries)  # (nq, M, dsub)
        # (nq, M, dsub) x (M, K, dsub) -> (nq, M, K)
        luts = np.einsum("qmd,mkd->qmk", subqueries, self.codebooks.centroids)
        luts = luts.astype(np.float32)
        return luts[0] if single else luts

    def adc_scores(self, luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Sum LUT entries selected by ``codes``: exact ``q · decode(codes)ᵀ``.

        ``luts`` has shape ``(n_queries, M, K)`` (or ``(M, K)`` for a single
        query) and ``codes`` has shape ``(n_keys, M)``; the result has shape
        ``(n_queries, n_keys)`` (or ``(n_keys,)``).
        """
        luts = np.asarray(luts, dtype=np.float32)
        codes = np.asarray(codes)
        single = luts.ndim == 2
        if single:
            luts = luts[None, ...]
        require(
            luts.shape[1] == self.m_subspaces,
            f"luts second dim must be {self.m_subspaces}, got {luts.shape[1]}",
        )
        require(
            codes.ndim == 2 and codes.shape[1] == self.m_subspaces,
            f"codes must have shape (n, {self.m_subspaces}), got {codes.shape}",
        )
        n_queries = luts.shape[0]
        n_keys = codes.shape[0]
        # Gather formulation: one flat np.take per subspace into a
        # preallocated buffer.  Making the per-subspace LUT rows contiguous
        # up front turns each gather into a stride-free table lookup and
        # avoids the two fancy-indexing temporaries per subspace of the
        # naive ``luts[:, m, :][:, codes[:, m]]`` form (1.5-3x faster, and
        # bit-identical because the accumulation order is unchanged).
        luts_by_subspace = np.ascontiguousarray(luts.transpose(1, 0, 2))
        scores = np.zeros((n_queries, n_keys), dtype=np.float32)
        gathered = np.empty((n_queries, n_keys), dtype=np.float32)
        for m in range(self.m_subspaces):
            np.take(luts_by_subspace[m], codes[:, m], axis=1, out=gathered)
            scores += gathered
        return scores[0] if single else scores

    def weighted_decode(self, probs: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Probability-weighted sum of decoded vectors without full de-quantization.

        ``probs`` has shape ``(n_queries, n_keys)`` and ``codes`` shape
        ``(n_keys, M)``; returns ``(n_queries, dim)`` equal to
        ``probs @ decode(codes)`` but computed by first aggregating the
        probability mass landing on each centroid of each subspace.
        """
        probs = np.asarray(probs, dtype=np.float32)
        codes = np.asarray(codes)
        single = probs.ndim == 1
        if single:
            probs = probs[None, :]
        require(
            codes.ndim == 2 and codes.shape[1] == self.m_subspaces,
            f"codes must have shape (n, {self.m_subspaces}), got {codes.shape}",
        )
        require(
            probs.shape[1] == codes.shape[0],
            f"probs keys dim {probs.shape[1]} != codes rows {codes.shape[0]}",
        )
        n_queries = probs.shape[0]
        dsub = self.subspace_dim
        out = np.empty((n_queries, self.dim), dtype=np.float32)
        query_index = np.arange(n_queries)[:, None]
        for m in range(self.m_subspaces):
            aggregated = np.zeros((n_queries, self.n_centroids), dtype=np.float32)
            np.add.at(aggregated, (query_index, codes[None, :, m]), probs)
            out[:, m * dsub : (m + 1) * dsub] = aggregated @ self.codebooks.centroids[m]
        return out[0] if single else out

    # Memory accounting ---------------------------------------------------------

    def code_memory_bytes(self, n_vectors: int) -> float:
        """Bit-packed footprint of ``n_vectors`` encoded vectors."""
        return float(packed_nbytes(n_vectors * self.m_subspaces, self.nbits))

    def codebook_memory_bytes(self, bytes_per_value: float = 2.0) -> float:
        return self.codebooks.memory_bytes(bytes_per_value)
