"""Product quantizer: encode/decode, score lookup tables and ADC.

The two operations that make MILLION fast are implemented here exactly as the
paper's CUDA kernel computes them, just vectorised in NumPy:

* :meth:`ProductQuantizer.build_score_luts` — ``q_n × Cᵀ`` (Eq. 7, step 1),
  the per-token lookup table that the kernel keeps in L1/shared memory;
* :meth:`ProductQuantizer.adc_scores` — gathering LUT entries with the stored
  codes, so attention logits against quantized keys never de-quantize them;
* :meth:`ProductQuantizer.weighted_decode` — the value-side trick: attention
  probabilities are *aggregated per centroid* first and only then multiplied
  by the centroid table, so the weighted sum over values is ``O(n + K·d)``
  instead of ``O(n·d)`` de-quantization work.
"""

from __future__ import annotations

import numpy as np

from repro.core.codebook import SubspaceCodebooks, train_codebooks
from repro.utils.bitpack import code_dtype, packed_nbytes
from repro.utils.rng import SeedLike
from repro.utils.validation import require


class ProductQuantizer:
    """Encode/decode vectors against a fixed set of subspace codebooks."""

    #: Largest subspace dimension for which the batched-GEMM contraction is
    #: used.  With a contraction this short there is a single k-block and a
    #: fixed two-or-three-term accumulation chain, so GEMM row results are
    #: invariant to the row count (for >= 2 rows; a unit test pins this);
    #: longer contractions fall back to the explicitly row-invariant d-loop.
    _SMALL_SUBSPACE_DIM = 8

    def __init__(self, codebooks: SubspaceCodebooks) -> None:
        self.codebooks = codebooks
        # Cached ||c||^2 and transposed centroid tables for the encode / LUT
        # kernels (keyed by dtype for the transposed tables).
        self._centroid_sq_norms: np.ndarray | None = None
        self._half_sq_norms_f32: np.ndarray | None = None
        self._centroids_t: dict[str, np.ndarray] = {}

    def centroid_sq_norms(self) -> np.ndarray:
        """``(M, K)`` squared centroid norms in float64 (cached)."""
        if self._centroid_sq_norms is None:
            centroids = self.codebooks.centroids.astype(np.float64)
            self._centroid_sq_norms = np.einsum("mkd,mkd->mk", centroids, centroids)
        return self._centroid_sq_norms

    def centroids_transposed(self, dtype=np.float32) -> np.ndarray:
        """``(M, subspace_dim, K)`` contiguous centroid tables (cached).

        The subspace-batched GEMMs (encode distances, LUT build) and the
        contiguous-stride decode einsum all contract against this layout.
        """
        key = np.dtype(dtype).str
        cached = self._centroids_t.get(key)
        if cached is None:
            cached = np.ascontiguousarray(
                self.codebooks.centroids.transpose(0, 2, 1).astype(dtype)
            )
            self._centroids_t[key] = cached
        return cached

    def _subspace_cross(self, sub_t: np.ndarray, dtype) -> np.ndarray:
        """Row-invariant ``(M, n, K)`` product of per-subspace rows with centroids.

        ``sub_t`` is ``(M, n, subspace_dim)``.  Small subspace dims use one
        batched GEMM per subspace (row-invariant for >= 2 rows at these
        contraction lengths; single rows are duplicated and sliced like
        :func:`~repro.models.tensor_ops.paired_rows_matmul`); larger dims use
        an explicit loop over the subspace dimension whose accumulation
        order is fixed by construction.
        """
        centroids_t = self.centroids_transposed(dtype)
        m_subspaces, n, dsub = sub_t.shape
        if dsub <= self._SMALL_SUBSPACE_DIM:
            if n == 1:
                doubled = np.concatenate([sub_t, sub_t], axis=1)
                return np.matmul(doubled, centroids_t)[:, :1, :]
            return np.matmul(sub_t, centroids_t)
        cross = np.zeros((m_subspaces, n, self.n_centroids), dtype=dtype)
        for d in range(dsub):
            cross += sub_t[:, :, d, None] * centroids_t[:, None, d, :]
        return cross

    # Construction ----------------------------------------------------------

    @classmethod
    def fit(
        cls,
        vectors: np.ndarray,
        m_subspaces: int,
        nbits: int,
        kmeans_iters: int = 15,
        seed: SeedLike = 0,
        max_samples: int | None = None,
    ) -> "ProductQuantizer":
        """Train codebooks on calibration ``vectors`` and return a quantizer."""
        codebooks = train_codebooks(
            vectors,
            m_subspaces,
            nbits,
            kmeans_iters=kmeans_iters,
            seed=seed,
            max_samples=max_samples,
        )
        return cls(codebooks)

    # Properties --------------------------------------------------------------

    @property
    def m_subspaces(self) -> int:
        return self.codebooks.m_subspaces

    @property
    def n_centroids(self) -> int:
        return self.codebooks.n_centroids

    @property
    def subspace_dim(self) -> int:
        return self.codebooks.subspace_dim

    @property
    def dim(self) -> int:
        return self.codebooks.dim

    @property
    def nbits(self) -> int:
        return self.codebooks.nbits

    def bits_per_value(self) -> float:
        """Effective bits per stored scalar."""
        return self.m_subspaces * self.nbits / self.dim

    # Encode / decode ---------------------------------------------------------

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize ``(n, dim)`` vectors to ``(n, M)`` centroid indices (Eq. 4).

        All subspaces are assigned in one einsum-based distance computation.
        Every operation (einsum contraction, broadcasting, per-row argmin) is
        element-independent, so a row's codes do not depend on how many rows
        share the call — the fused decode path relies on this to batch the
        flush-time encodes of many sequences into one call while staying
        bit-identical to the sequential path's per-sequence encodes.
        """
        subvectors = self.codebooks.split_vectors(vectors)
        sub_t = np.ascontiguousarray(subvectors.transpose(1, 0, 2), dtype=np.float32)
        # argmin_k ||x - c_k||^2 == argmax_k (x.c_k - ||c_k||^2 / 2): the
        # ||x||^2 term is constant per row and dropped, halving the passes
        # over the (M, n, K) score tensor.
        scores = self._subspace_cross(sub_t, np.float32)
        if self._half_sq_norms_f32 is None:
            self._half_sq_norms_f32 = (
                0.5 * self.centroid_sq_norms()
            ).astype(np.float32)[:, None, :]
        scores -= self._half_sq_norms_f32
        codes = np.argmax(scores, axis=2).astype(code_dtype(self.nbits))
        return np.ascontiguousarray(codes.T)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct ``(n, dim)`` vectors from centroid indices (Eq. 5)."""
        codes = np.asarray(codes)
        require(
            codes.ndim == 2 and codes.shape[1] == self.m_subspaces,
            f"codes must have shape (n, {self.m_subspaces}), got {codes.shape}",
        )
        n = codes.shape[0]
        out = np.empty((n, self.dim), dtype=np.float32)
        dsub = self.subspace_dim
        for m in range(self.m_subspaces):
            out[:, m * dsub : (m + 1) * dsub] = self.codebooks.centroids[m][codes[:, m]]
        return out

    def quantize(self, vectors: np.ndarray) -> np.ndarray:
        """Round-trip convenience: ``decode(encode(vectors))``."""
        return self.decode(self.encode(vectors))

    def reconstruction_mse(self, vectors: np.ndarray) -> float:
        """Mean squared reconstruction error on ``vectors``."""
        vectors = np.asarray(vectors, dtype=np.float32)
        return float(np.mean((vectors - self.quantize(vectors)) ** 2))

    # Asymmetric distance computation -----------------------------------------

    def build_score_luts(
        self, queries: np.ndarray, subspace_major: bool = False
    ) -> np.ndarray:
        """Dot-product lookup tables for ``(n_queries, dim)`` queries.

        Returns ``(n_queries, M, K)`` by default, or ``(M, n_queries, K)``
        with ``subspace_major=True`` — the layout the flat ADC gather kernel
        wants (each subspace's tables contiguous).  The contraction kernel is
        row-invariant (see :meth:`_subspace_cross`), so entries are
        bit-identical across layouts and across how many queries share the
        call.
        """
        queries = np.asarray(queries, dtype=np.float32)
        single = queries.ndim == 1
        if single:
            queries = queries[None, :]
        subqueries = self.codebooks.split_vectors(queries)  # (nq, M, dsub)
        sub_t = np.ascontiguousarray(subqueries.transpose(1, 0, 2))  # (M, nq, dsub)
        luts = self._subspace_cross(sub_t, np.float32)  # (M, nq, K)
        if not subspace_major:
            luts = np.ascontiguousarray(luts.transpose(1, 0, 2))
        if single:
            return luts[:, 0, :] if subspace_major else luts[0]
        return luts

    def adc_scores(self, luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Sum LUT entries selected by ``codes``: exact ``q · decode(codes)ᵀ``.

        ``luts`` has shape ``(n_queries, M, K)`` (or ``(M, K)`` for a single
        query) and ``codes`` has shape ``(n_keys, M)``; the result has shape
        ``(n_queries, n_keys)`` (or ``(n_keys,)``).
        """
        luts = np.asarray(luts, dtype=np.float32)
        codes = np.asarray(codes)
        single = luts.ndim == 2
        if single:
            luts = luts[None, ...]
        require(
            luts.shape[1] == self.m_subspaces,
            f"luts second dim must be {self.m_subspaces}, got {luts.shape[1]}",
        )
        require(
            codes.ndim == 2 and codes.shape[1] == self.m_subspaces,
            f"codes must have shape (n, {self.m_subspaces}), got {codes.shape}",
        )
        n_queries = luts.shape[0]
        n_keys = codes.shape[0]
        # Gather formulation: one flat np.take per subspace into a
        # preallocated buffer.  Making the per-subspace LUT rows contiguous
        # up front turns each gather into a stride-free table lookup and
        # avoids the two fancy-indexing temporaries per subspace of the
        # naive ``luts[:, m, :][:, codes[:, m]]`` form (1.5-3x faster, and
        # bit-identical because the accumulation order is unchanged).
        luts_by_subspace = np.ascontiguousarray(luts.transpose(1, 0, 2))
        scores = np.zeros((n_queries, n_keys), dtype=np.float32)
        gathered = np.empty((n_queries, n_keys), dtype=np.float32)
        for m in range(self.m_subspaces):
            np.take(luts_by_subspace[m], codes[:, m], axis=1, out=gathered)
            scores += gathered
        return scores[0] if single else scores

    def weighted_decode(self, probs: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Probability-weighted sum of decoded vectors without full de-quantization.

        ``probs`` has shape ``(n_queries, n_keys)`` and ``codes`` shape
        ``(n_keys, M)``; returns ``(n_queries, dim)`` equal to
        ``probs @ decode(codes)`` but computed by first aggregating the
        probability mass landing on each centroid of each subspace.
        """
        probs = np.asarray(probs, dtype=np.float32)
        codes = np.asarray(codes)
        single = probs.ndim == 1
        if single:
            probs = probs[None, :]
        require(
            codes.ndim == 2 and codes.shape[1] == self.m_subspaces,
            f"codes must have shape (n, {self.m_subspaces}), got {codes.shape}",
        )
        require(
            probs.shape[1] == codes.shape[0],
            f"probs keys dim {probs.shape[1]} != codes rows {codes.shape[0]}",
        )
        n_queries = probs.shape[0]
        dsub = self.subspace_dim
        out = np.empty((n_queries, self.dim), dtype=np.float32)
        query_index = np.arange(n_queries)[:, None]
        for m in range(self.m_subspaces):
            aggregated = np.zeros((n_queries, self.n_centroids), dtype=np.float32)
            np.add.at(aggregated, (query_index, codes[None, :, m]), probs)
            out[:, m * dsub : (m + 1) * dsub] = aggregated @ self.codebooks.centroids[m]
        return out[0] if single else out

    # Memory accounting ---------------------------------------------------------

    def code_memory_bytes(self, n_vectors: int) -> float:
        """Bit-packed footprint of ``n_vectors`` encoded vectors."""
        return float(packed_nbytes(n_vectors * self.m_subspaces, self.nbits))

    def codebook_memory_bytes(self, bytes_per_value: float = 2.0) -> float:
        return self.codebooks.memory_bytes(bytes_per_value)
