"""PQ codebook containers and offline training (paper Fig. 4a).

A codebook set holds one ``(2**nbits, subspace_dim)`` centroid table per
subspace.  Training partitions calibration vectors into ``M`` subvectors and
clusters each subspace independently with k-means — channels that are harder
to quantize (outlier channels) naturally claim more centroid resolution,
which is the "outlier-immunized" property the title refers to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.kmeans import kmeans
from repro.utils.rng import SeedLike, get_rng, spawn_rngs
from repro.utils.validation import require, require_divisible


@dataclass
class SubspaceCodebooks:
    """Centroid tables for every PQ subspace.

    ``centroids`` has shape ``(m_subspaces, n_centroids, subspace_dim)``.
    """

    centroids: np.ndarray

    def __post_init__(self) -> None:
        self.centroids = np.asarray(self.centroids, dtype=np.float32)
        require(
            self.centroids.ndim == 3,
            f"centroids must be 3-D (M, K, dsub), got shape {self.centroids.shape}",
        )

    @property
    def m_subspaces(self) -> int:
        return self.centroids.shape[0]

    @property
    def n_centroids(self) -> int:
        return self.centroids.shape[1]

    @property
    def subspace_dim(self) -> int:
        return self.centroids.shape[2]

    @property
    def dim(self) -> int:
        """Dimension of the full vectors this codebook quantizes."""
        return self.m_subspaces * self.subspace_dim

    @property
    def nbits(self) -> int:
        """Bits per code implied by the codebook size."""
        return int(np.ceil(np.log2(self.n_centroids)))

    def memory_bytes(self, bytes_per_value: float = 2.0) -> float:
        """GPU-resident codebook footprint (fp16 accounting)."""
        return float(self.centroids.size * bytes_per_value)

    def split_vectors(self, vectors: np.ndarray) -> np.ndarray:
        """Reshape ``(n, dim)`` vectors into ``(n, M, subspace_dim)`` subvectors."""
        vectors = np.asarray(vectors, dtype=np.float32)
        require(
            vectors.ndim == 2 and vectors.shape[1] == self.dim,
            f"vectors must have shape (n, {self.dim}), got {vectors.shape}",
        )
        return vectors.reshape(vectors.shape[0], self.m_subspaces, self.subspace_dim)

    def to_npz_dict(self) -> dict[str, np.ndarray]:
        """Arrays for ``numpy.savez`` persistence."""
        return {"centroids": self.centroids}

    @classmethod
    def from_npz_dict(cls, data: dict[str, np.ndarray]) -> "SubspaceCodebooks":
        return cls(centroids=np.asarray(data["centroids"]))


def train_codebooks(
    vectors: np.ndarray,
    m_subspaces: int,
    nbits: int,
    kmeans_iters: int = 15,
    seed: SeedLike = 0,
    max_samples: int | None = None,
) -> SubspaceCodebooks:
    """Train PQ codebooks on calibration ``vectors`` of shape ``(n, dim)``.

    Each of the ``m_subspaces`` slices of length ``dim / m_subspaces`` is
    clustered into ``2**nbits`` centroids.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    require(vectors.ndim == 2, f"vectors must be 2-D, got shape {vectors.shape}")
    require(vectors.shape[0] >= 1, "need at least one calibration vector")
    require(m_subspaces >= 1, "m_subspaces must be >= 1")
    require(1 <= nbits <= 16, f"nbits must be in [1, 16], got {nbits}")
    dim = vectors.shape[1]
    require_divisible(dim, m_subspaces, "vector dim must be divisible by m_subspaces")
    rng = get_rng(seed)
    if max_samples is not None and vectors.shape[0] > max_samples:
        idx = rng.choice(vectors.shape[0], size=max_samples, replace=False)
        vectors = vectors[idx]
    subspace_dim = dim // m_subspaces
    n_centroids = 2**nbits
    subvectors = vectors.reshape(vectors.shape[0], m_subspaces, subspace_dim)
    centroids = np.empty((m_subspaces, n_centroids, subspace_dim), dtype=np.float32)
    subspace_rngs = spawn_rngs(rng, m_subspaces)
    for m in range(m_subspaces):
        result = kmeans(
            subvectors[:, m, :],
            n_centroids,
            n_iters=kmeans_iters,
            seed=subspace_rngs[m],
        )
        centroids[m] = result.centroids
    return SubspaceCodebooks(centroids=centroids)
