"""Fused cross-sequence MILLION attention for batched decode.

One engine step over ``B`` running sequences used to cost ``B`` full Python
model traversals; the serving engine now runs **one** stacked forward
(:meth:`repro.models.transformer.TransformerLM.fused_decode_step`) and
delegates attention to :class:`FusedMillionAttention`, which per layer:

1. pops the flush-due rows of every sequence and quantizes them in one
   row-invariant :meth:`~repro.core.million_cache.MillionKVCacheLayer.encode_rows`
   call (the per-sequence flush schedule is untouched — only who calls the
   encoder changes);
2. builds the score lookup tables of all ``B * n_heads`` query heads in one
   :meth:`~repro.core.pq.ProductQuantizer.build_score_luts` call;
3. runs one flat segment-ADC gather over a packed per-step code buffer, each
   sequence scored only against its own key codes (ragged segments indexed
   through precomputed per-step element maps, heads sharing a KV head
   sharing the same code gather);
4. merges with the full-precision recent window and softmaxes per sequence
   (sequence-local row lengths differ, and the merge is exactly the
   sequential cache's ``attend``);
5. aggregates all sequences' value probabilities per centroid in one flat
   scatter-add and decodes against the centroid tables.

Every kernel accumulates in an order independent of how many sequences share
the call, so each sequence's context — and therefore its next-token logits —
is bit-identical to the sequential reference path (tests sweep both).
Scratch buffers (element maps, packed codes/probabilities, gather and
aggregation temporaries) live in a :class:`~repro.utils.scratch.ScratchArena`
reused across steps, so steady-state decoding performs no per-step
allocation growth.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.attention_pq import adc_scores_flat, weighted_decode_flat
from repro.core.million_cache import MillionKVCacheLayer
from repro.models.attention import AttentionBlock
from repro.models.attention_math import attention_scores, repeat_kv_heads
from repro.models.positional import alibi_bias
from repro.models.tensor_ops import softmax
from repro.obs.prof import NULL_PROFILER, PhaseProfiler
from repro.utils.bitpack import code_dtype
from repro.utils.scratch import ScratchArena
from repro.utils.validation import require


class FusedMillionAttention:
    """Batched-decode attention strategy over per-sequence MILLION caches.

    One instance is owned by a serving engine and passed to
    ``fused_decode_step`` as its ``batch_attend``; it is stateful only
    through its scratch arena and the memoized per-step element maps.
    Sequences may have arbitrary, different context lengths; sparse outlier
    corrections are not supported (the engine falls back to the sequential
    path when they are configured).
    """

    def __init__(self) -> None:
        self.arena = ScratchArena()
        # Phase attribution (repro.obs.prof): the owning engine replaces this
        # with its profiler; the default no-op keeps the disabled cost to one
        # ``enabled`` attribute check per step.
        self.prof: PhaseProfiler = NULL_PROFILER
        # Element maps depend only on (H, kv_heads, segment lengths); they
        # are identical for every layer of a step (all layers see the same
        # token stream), so they are rebuilt once per step and reused.
        self._map_key: tuple | None = None
        self._element_count = 0
        self._probs_offsets: list[int] = []
        # Per-layer signature of the last packed code buffers: a tuple of
        # (cache_serial, code_version) pairs.  Serials are never reused and
        # versions bump on every stored-code mutation (flush, adoption,
        # reset), so an equal signature proves the packed bytes are current
        # and the per-step repack can be skipped — on pooled or windowed
        # configs most decode steps flush nothing.
        self._pack_signatures: dict[int, tuple] = {}

    # Per-step element maps ------------------------------------------------

    def _build_maps(
        self,
        n_heads: int,
        kv_heads: int,
        segments: Sequence[int],
        m_subspaces: int,
        n_centroids: int,
    ) -> None:
        key = (n_heads, kv_heads, m_subspaces, n_centroids, tuple(segments))
        if key == self._map_key:
            return
        group = n_heads // kv_heads
        total_elements = n_heads * sum(segments)
        token_kv = self.arena.get("map.token_kv", (total_elements,), np.int64)
        row_index = self.arena.get("map.row", (total_elements,), np.int64)
        kv_of_head = np.arange(n_heads, dtype=np.int64) // group
        offsets = [0]
        elem = 0
        seg_start = 0
        for b, seg_len in enumerate(segments):
            if seg_len:
                block = token_kv[elem : elem + n_heads * seg_len].reshape(
                    n_heads, seg_len
                )
                np.add(
                    (np.arange(seg_len, dtype=np.int64) + seg_start)[None, :]
                    * kv_heads,
                    kv_of_head[:, None],
                    out=block,
                )
                rows = row_index[elem : elem + n_heads * seg_len].reshape(
                    n_heads, seg_len
                )
                rows[:] = (
                    b * n_heads + np.arange(n_heads, dtype=np.int64)
                )[:, None]
                elem += n_heads * seg_len
            seg_start += seg_len
            offsets.append(elem)
        # Scatter-bin bases for the value kernel, (row * M + m) * K: fixed
        # while the segment layout is, so layers within a step reuse them.
        bins_base = self.arena.get(
            "map.bins_base", (total_elements, m_subspaces), np.int64
        )
        np.multiply(
            row_index[:, None], m_subspaces * n_centroids, out=bins_base
        )
        bins_base += np.arange(m_subspaces, dtype=np.int64) * n_centroids
        self._map_key = key
        self._element_count = total_elements
        self._probs_offsets = offsets

    # Flush + append -------------------------------------------------------

    def _flush_and_append(
        self,
        caches: Sequence[MillionKVCacheLayer],
        k: np.ndarray,
        v: np.ndarray,
    ) -> None:
        """Quantize every sequence's flush-due rows in one encode, then stage
        the new tokens — per sequence, this is exactly ``cache.append``."""
        flush_counts = [cache.flushable_rows() for cache in caches]
        if any(flush_counts):
            flushing = [b for b, count in enumerate(flush_counts) if count]
            popped = [caches[b].pop_flushable() for b in flushing]
            encoder = caches[flushing[0]]
            keys_block = np.concatenate([keys for keys, _ in popped], axis=0)
            values_block = np.concatenate([values for _, values in popped], axis=0)
            key_codes, value_codes = encoder.encode_rows(keys_block, values_block)
            start = 0
            for b, (keys, _) in zip(flushing, popped):
                count = keys.shape[0]
                caches[b].store_code_block(
                    key_codes[start : start + count],
                    value_codes[start : start + count],
                )
                start += count
        for b, cache in enumerate(caches):
            cache.append_pending(k[b : b + 1], v[b : b + 1])

    # Attention ------------------------------------------------------------

    def __call__(
        self,
        block: AttentionBlock,
        caches: Sequence[MillionKVCacheLayer],
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        positions: np.ndarray,
        layer_index: int = 0,
    ) -> np.ndarray:
        n_seqs, n_heads, head_dim = q.shape
        kv_heads = k.shape[1]
        scale = block.scale
        slopes = block.alibi_head_slopes
        first = caches[0]
        key_pq, value_pq = first.key_pq, first.value_pq
        for cache in caches:
            require(
                cache.key_pq is key_pq and cache.value_pq is value_pq,
                "fused attention requires caches sharing one quantizer pair",
            )

        prof = self.prof
        timing = prof.enabled
        if timing:
            t = prof.now()
        self._flush_and_append(caches, k, v)
        if timing:
            t = prof.lap("decode/flush_encode", t)
        segments = [cache.stored_tokens for cache in caches]
        self._build_maps(
            n_heads, kv_heads, segments, value_pq.m_subspaces, value_pq.n_centroids
        )
        n_elements = self._element_count
        offsets = self._probs_offsets
        token_kv = self.arena.get("map.token_kv", (n_elements,), np.int64)
        row_index = self.arena.get("map.row", (n_elements,), np.int64)

        scores_flat = None
        key_rows = value_rows = None
        if n_elements:
            if timing:
                t = prof.now()
            total_stored = sum(segments)
            m_key = key_pq.m_subspaces
            m_value = value_pq.m_subspaces
            key_rows = self.arena.get(
                f"pack.keys.{layer_index}",
                (total_stored * kv_heads, m_key),
                code_dtype(key_pq.nbits),
            )
            value_rows = self.arena.get(
                f"pack.values.{layer_index}",
                (total_stored * kv_heads, m_value),
                code_dtype(value_pq.nbits),
            )
            signature = tuple(
                (cache.cache_serial, cache.code_version) for cache in caches
            )
            if self._pack_signatures.get(layer_index) != signature:
                seg_start = 0
                for cache, seg_len in zip(caches, segments):
                    if seg_len == 0:
                        continue
                    key_view, value_view = cache.stored_code_views()
                    lo, hi = seg_start * kv_heads, (seg_start + seg_len) * kv_heads
                    np.copyto(
                        key_rows[lo:hi], key_view.reshape(seg_len * kv_heads, m_key)
                    )
                    np.copyto(
                        value_rows[lo:hi],
                        value_view.reshape(seg_len * kv_heads, m_value),
                    )
                    seg_start += seg_len
                self._pack_signatures[layer_index] = signature
            if timing:
                t = prof.lap("decode/pack_codes", t)
            flat_q = q.reshape(n_seqs * n_heads, head_dim)
            luts = key_pq.build_score_luts(flat_q, subspace_major=True)
            if timing:
                t = prof.lap("decode/lut_build", t)
            scores_flat = adc_scores_flat(
                luts, key_rows, token_kv, row_index, self.arena, "fused.adc"
            )
            np.multiply(scores_flat, np.float32(scale), out=scores_flat)
            if timing:
                t = prof.lap("decode/adc_gather", t)

        # Sequence-local merge with the full-precision recent window: exactly
        # the sequential cache's attend(), with the stored scores precomputed.
        if timing:
            t = prof.now()
        context = np.empty((n_seqs, n_heads, head_dim), dtype=np.float32)
        probs_packed = self.arena.get("pack.probs", (n_elements,), np.float32)
        pending_contexts: list[np.ndarray] = []
        for b, cache in enumerate(caches):
            seg_len = segments[b]
            score_blocks = []
            if seg_len:
                stored_scores = scores_flat[
                    offsets[b] : offsets[b + 1]
                ].reshape(n_heads, 1, seg_len)
                if slopes is not None:
                    stored_scores = stored_scores + alibi_bias(
                        slopes, positions[b : b + 1], np.arange(seg_len)
                    )
                score_blocks.append(stored_scores)
            pending_keys, pending_values = cache.pending_views()
            pending_positions = np.arange(seg_len, seg_len + pending_keys.shape[0])
            if pending_keys.shape[0] > 0:
                score_blocks.append(
                    attention_scores(
                        q[b : b + 1],
                        pending_keys,
                        positions[b : b + 1],
                        pending_positions,
                        scale,
                        alibi_head_slopes=slopes,
                        causal=True,
                    )
                )
            scores = np.concatenate(score_blocks, axis=-1)
            probs = softmax(scores, axis=-1)
            if seg_len:
                np.copyto(
                    probs_packed[offsets[b] : offsets[b + 1]],
                    probs[..., :seg_len].reshape(-1),
                )
            if pending_keys.shape[0] > 0:
                expanded_values = repeat_kv_heads(pending_values, n_heads)
                pending_contexts.append(
                    np.einsum(
                        "hqk,khd->qhd", probs[..., seg_len:], expanded_values
                    ).astype(np.float32)
                )
            else:
                pending_contexts.append(None)
        if timing:
            t = prof.lap("decode/softmax_merge", t)

        if n_elements:
            stored_context = weighted_decode_flat(
                probs_packed,
                value_rows,
                token_kv,
                row_index,
                n_seqs * n_heads,
                value_pq,
                self.arena,
                "fused.wv",
                bins_base=self.arena.get(
                    "map.bins_base", (n_elements, value_pq.m_subspaces), np.int64
                ),
            ).reshape(n_seqs, n_heads, head_dim)
        context[:] = 0.0
        for b in range(n_seqs):
            if segments[b]:
                context[b] += stored_context[b]
            if pending_contexts[b] is not None:
                context[b] += pending_contexts[b][0]
        if timing:
            prof.lap("decode/scatter_add", t)
        return context


__all__ = ["FusedMillionAttention"]
