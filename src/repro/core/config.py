"""Configuration of the MILLION product-quantized KV cache."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.models.config import ModelConfig
from repro.utils.validation import require, require_divisible


@dataclass(frozen=True)
class MillionConfig:
    """Hyper-parameters of MILLION quantization.

    Attributes
    ----------
    m_subspaces:
        Number of PQ subspaces ``M``; must divide the head dimension.
    nbits:
        Bits per subspace code; the per-subspace codebook has ``2**nbits``
        centroids.
    recent_window:
        Number of most-recent tokens kept in full precision (the paper's
        "residual block"; 0 reproduces the stress setting of Fig. 6).
    calibration_samples:
        Maximum number of key/value vectors sampled per layer for codebook
        training.
    kmeans_iters:
        Lloyd iterations used during codebook training.
    per_head_codebooks:
        When true, each KV head trains its own codebooks; by default the
        vectors of all heads in a layer are pooled.
    outlier_fraction:
        Fraction of entries stored as sparse full-precision corrections on
        top of PQ (only used by the Table III sensitivity study; MILLION's
        claim is that 0.0 is enough).
    async_quantization:
        Whether the performance model may overlap quantization with the
        main stream (Fig. 5); has no effect on accuracy.
    seed:
        Seed for codebook training.
    """

    m_subspaces: int = 32
    nbits: int = 8
    recent_window: int = 0
    calibration_samples: int = 8192
    kmeans_iters: int = 15
    per_head_codebooks: bool = False
    outlier_fraction: float = 0.0
    async_quantization: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.m_subspaces >= 1, "m_subspaces must be >= 1")
        require(1 <= self.nbits <= 16, f"nbits must be in [1, 16], got {self.nbits}")
        require(self.recent_window >= 0, "recent_window must be >= 0")
        require(self.calibration_samples >= 1, "calibration_samples must be >= 1")
        require(self.kmeans_iters >= 1, "kmeans_iters must be >= 1")
        require(0.0 <= self.outlier_fraction < 1.0, "outlier_fraction must be in [0, 1)")

    @property
    def n_centroids(self) -> int:
        """Codebook size per subspace."""
        return 2**self.nbits

    def bits_per_value(self, head_dim: int) -> float:
        """Effective bits per cached scalar (the paper's "3b"/"4b" labels)."""
        require(head_dim >= self.m_subspaces, "head_dim must be >= m_subspaces")
        return self.m_subspaces * self.nbits / head_dim

    def subspace_dim(self, head_dim: int) -> int:
        """Dimension of each PQ subvector."""
        require_divisible(head_dim, self.m_subspaces, "head_dim must be divisible by M")
        return head_dim // self.m_subspaces

    def validate_for_model(self, model_config: ModelConfig) -> None:
        """Raise if this configuration cannot quantize the given model."""
        self.subspace_dim(model_config.head_dim)

    def with_updates(self, **kwargs) -> "MillionConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def for_equivalent_bits(
        cls,
        head_dim: int,
        bits: int,
        recent_window: int = 0,
        prefer_small_codebooks: bool = False,
        **kwargs,
    ) -> "MillionConfig":
        """Pick ``(M, nbits)`` matching the paper's bit-budget configurations.

        The paper scanned ``(M, nbits)`` combinations and reports (64, 8) for
        4-bit and (32, 12) for 3-bit at ``head_dim = 128``; the same ratios
        are used here for any head dimension (``M = head_dim / 2`` with 8-bit
        codes for 4-bit, ``M = head_dim / 4`` with 12-bit codes for 3-bit).

        ``prefer_small_codebooks`` swaps the 3-bit preset for
        ``(head_dim / 2, 6)`` — the same bit budget with 64-entry codebooks —
        which trains orders of magnitude faster on the tiny evaluation models
        (the (M, nbits) ablation benchmark explores the full trade-off).
        """
        require(head_dim >= 8, "head_dim must be >= 8")
        mapping = {
            8: (head_dim, 8),
            6: (3 * head_dim // 4, 8),
            4: (head_dim // 2, 8),
            3: (head_dim // 4, 12),
            2: (head_dim // 4, 8),
            1: (head_dim // 8, 8),
        }
        if prefer_small_codebooks:
            mapping[3] = (head_dim // 2, 6)
            mapping[2] = (head_dim // 2, 4)
        require(bits in mapping, f"no (M, nbits) preset for {bits}-bit budget")
        m_subspaces, nbits = mapping[bits]
        require_divisible(head_dim, m_subspaces, "head_dim must be divisible by M")
        config = cls(
            m_subspaces=m_subspaces, nbits=nbits, recent_window=recent_window, **kwargs
        )
        return config
