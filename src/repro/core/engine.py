"""High-level user-facing API tying the pieces together.

:class:`MillionEngine` owns a model and a calibrated MILLION cache factory and
exposes the three phases of the paper's framework (offline training, prefill
with quantization, decode with quantization) as ordinary methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.core.calibration import calibrate_million
from repro.core.config import MillionConfig
from repro.core.million_cache import MillionCacheFactory, MillionKVCacheLayer
from repro.models.kv_cache import FullPrecisionCacheFactory
from repro.models.transformer import TransformerLM
from repro.utils.rng import SeedLike
from repro.utils.validation import require


@dataclass
class CacheStats:
    """Snapshot of the KV-cache footprint for reporting."""

    context_length: int
    quantized_tokens: int
    recent_tokens: int
    memory_bytes: float
    fp16_memory_bytes: float

    @property
    def compression_ratio(self) -> float:
        if self.memory_bytes <= 0:
            return 1.0
        return self.fp16_memory_bytes / self.memory_bytes


class MillionEngine:
    """MILLION inference engine: calibrate once, then prefill/decode/generate."""

    def __init__(self, model: TransformerLM, factory: MillionCacheFactory) -> None:
        self.model = model
        self.factory = factory
        self.model.reset_cache(factory)

    # Construction -----------------------------------------------------------

    @classmethod
    def calibrate(
        cls,
        model: TransformerLM,
        calibration_tokens: np.ndarray | Iterable[np.ndarray],
        million_config: Optional[MillionConfig] = None,
        chunk_size: int = 256,
    ) -> "MillionEngine":
        """Run the offline phase (Fig. 4a) and return a ready-to-use engine."""
        million_config = million_config or MillionConfig.for_equivalent_bits(
            model.config.head_dim, bits=4
        )
        factory = calibrate_million(
            model, calibration_tokens, million_config, chunk_size=chunk_size
        )
        return cls(model, factory)

    @property
    def million_config(self) -> MillionConfig:
        return self.factory.million_config

    # Inference ---------------------------------------------------------------

    def reset(self) -> None:
        """Clear the context (keeps the trained codebooks)."""
        self.model.reset_cache(self.factory)

    def prefill(self, prompt_ids: np.ndarray) -> np.ndarray:
        """Prefill the prompt with on-the-fly KV quantization (Fig. 4b)."""
        return self.model.prefill(np.asarray(prompt_ids, dtype=np.int64))

    def prefill_chunked(
        self, prompt_ids: np.ndarray, chunk_tokens: int
    ) -> np.ndarray:
        """Prefill in fixed chunks, force-flushing the cache between chunks.

        The single-engine analogue of the serving engine's budgeted chunk
        schedule: every inter-chunk boundary ends in ``flush_all()``, so the
        cache passes through the exact ``(stored == k*chunk_tokens,
        pending == 0)`` states a resumed or co-scheduled prefill would — the
        flush state is *chunk-resumable*.  The final chunk is not flushed
        (its tail stays in the full-precision residual window, as in
        one-shot prefill), and its logits are returned.

        Chunked output is **not** bit-identical to :meth:`prefill`: each
        forced flush changes the quantized/full-precision split that deeper
        layers attend to.  It *is* deterministic in ``(prompt_ids,
        chunk_tokens)`` — the same chunking always yields the same logits —
        which is the oracle the serving layer's chunked tests assert.
        """
        prompt = np.asarray(prompt_ids, dtype=np.int64).reshape(-1)
        require(prompt.size >= 1, "prompt_ids must contain at least one token")
        require(chunk_tokens >= 1, "chunk_tokens must be >= 1")
        logits: Optional[np.ndarray] = None
        for lo in range(0, prompt.size, chunk_tokens):
            logits = self.model.forward(prompt[lo : lo + chunk_tokens])
            if lo + chunk_tokens < prompt.size:
                for cache in self.model.caches:
                    if isinstance(cache, MillionKVCacheLayer):
                        cache.flush_all()
        assert logits is not None
        return logits

    def decode_step(self, token_id: int) -> np.ndarray:
        """One auto-regressive step over the quantized cache (Fig. 4c)."""
        return self.model.decode_step(token_id)

    def generate(
        self,
        prompt_ids: np.ndarray,
        max_new_tokens: int,
        sampler=None,
        seed: SeedLike = None,
        stop_token: Optional[int] = None,
    ) -> np.ndarray:
        """Generate tokens; the context is reset before prefill."""
        self.reset()
        return self.model.generate(
            prompt_ids,
            max_new_tokens,
            sampler=sampler,
            seed=seed,
            stop_token=stop_token,
            reset=False,
        )

    # Reporting -----------------------------------------------------------------

    def cache_stats(self) -> CacheStats:
        """Current cache footprint versus the fp16 baseline.

        Token counts are per layer (every layer holds the same split between
        quantized and recent tokens); memory figures cover all layers.
        """
        quantized = 0
        recent = 0
        million_layers = 0
        for cache in self.model.caches:
            if isinstance(cache, MillionKVCacheLayer):
                quantized += cache.stored_tokens
                recent += cache.pending_tokens
                million_layers += 1
        if million_layers:
            quantized //= million_layers
            recent //= million_layers
        fp16_bytes = (
            self.model.context_length
            * self.model.config.kv_cache_bytes_per_token(bytes_per_value=2.0)
        )
        return CacheStats(
            context_length=self.model.context_length,
            quantized_tokens=quantized,
            recent_tokens=recent,
            memory_bytes=self.model.cache_memory_bytes(),
            fp16_memory_bytes=float(fp16_bytes),
        )

    def baseline_logits(self, token_ids: np.ndarray) -> np.ndarray:
        """Full-precision logits for the same tokens (for fidelity metrics).

        The engine's quantized context is left untouched; a temporary
        full-precision cache is used and then discarded.
        """
        require(token_ids is not None, "token_ids must not be None")
        with self.model.temporary_context(FullPrecisionCacheFactory()):
            logits = self.model.forward(np.asarray(token_ids, dtype=np.int64))
        return logits
