"""Asynchronous-quantization pipeline semantics (paper Fig. 5).

MILLION runs quantization on a low-priority CUDA stream so that compressing
the tokens that just left the recent window never blocks the main decode
stream.  Functionally the streaming cache already defers quantization (a
token's codes are only needed one step later); this module makes the deferral
explicit so that

* correctness can be asserted (codes are always ready before they are read),
* the performance model (:mod:`repro.perf.streams`) can replay the recorded
  schedule and compute how much quantization time the async stream hides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.utils.validation import require


@dataclass
class QuantizationJob:
    """One deferred block-quantization task."""

    submitted_step: int
    n_tokens: int
    deadline_step: int
    completed_step: Optional[int] = None

    @property
    def is_complete(self) -> bool:
        return self.completed_step is not None


@dataclass
class DecodeStepRecord:
    """What happened during one decode step (per layer aggregated)."""

    step: int
    context_length: int
    tokens_quantized: int
    pending_tokens: int


@dataclass
class PipelineTrace:
    """Timeline of deferred quantization across a decode run."""

    jobs: list[QuantizationJob] = field(default_factory=list)
    steps: list[DecodeStepRecord] = field(default_factory=list)

    def total_tokens_quantized(self) -> int:
        return sum(job.n_tokens for job in self.jobs)

    def max_pending_tokens(self) -> int:
        return max((record.pending_tokens for record in self.steps), default=0)


class AsyncQuantizationStream:
    """Bookkeeping model of the low-priority quantization stream.

    The main stream *submits* a job when a block of tokens leaves the recent
    window; the job's deadline is the next decode step (when its codes are
    first read by the sparse-attention kernel).  ``advance`` marks all
    submitted jobs complete at the current step and raises if any deadline
    would be violated — which, by construction of the streaming cache, never
    happens when quantization of step ``i`` finishes before step ``i + 1``.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.trace = PipelineTrace()
        self._open_jobs: list[QuantizationJob] = []

    def submit(self, step: int, n_tokens: int) -> QuantizationJob:
        """Submit a block of ``n_tokens`` for background quantization."""
        require(n_tokens >= 0, "n_tokens must be >= 0")
        job = QuantizationJob(
            submitted_step=step, n_tokens=n_tokens, deadline_step=step + 1
        )
        if n_tokens > 0:
            self._open_jobs.append(job)
            self.trace.jobs.append(job)
        return job

    def advance(self, step: int) -> list[QuantizationJob]:
        """Complete outstanding jobs before ``step`` begins.

        With the async stream enabled, jobs complete during the *previous*
        step's spare bandwidth (``completed_step = submitted_step``); with it
        disabled they complete synchronously at submission as well, but the
        performance model charges their latency to the main stream instead.
        """
        completed = []
        for job in self._open_jobs:
            if job.deadline_step < step:
                raise RuntimeError(
                    f"quantization job submitted at step {job.submitted_step} missed "
                    f"its deadline {job.deadline_step} (now at step {step})"
                )
            job.completed_step = job.submitted_step if self.enabled else job.submitted_step
            completed.append(job)
        self._open_jobs = [job for job in self._open_jobs if not job.is_complete]
        return completed

    def record_step(self, step: int, context_length: int, tokens_quantized: int, pending_tokens: int) -> None:
        """Append a per-step record used by the performance replay."""
        self.trace.steps.append(
            DecodeStepRecord(
                step=step,
                context_length=context_length,
                tokens_quantized=tokens_quantized,
                pending_tokens=pending_tokens,
            )
        )


class DecodePipelineRecorder:
    """Records the deferral schedule of a model whose caches are streaming caches.

    Attach it around a decode loop::

        recorder = DecodePipelineRecorder(model)
        for step in range(n_tokens):
            recorder.before_step(step)
            logits = model.decode_step(token)
            recorder.after_step(step)
        trace = recorder.stream.trace
    """

    def __init__(self, model, async_enabled: bool = True) -> None:
        self.model = model
        self.stream = AsyncQuantizationStream(enabled=async_enabled)
        self._stored_before = 0

    def _stored_tokens(self) -> int:
        total = 0
        for cache in self.model.caches:
            stored = getattr(cache, "stored_tokens", None)
            if stored is not None:
                total += stored
        return total

    def _pending_tokens(self) -> int:
        total = 0
        for cache in self.model.caches:
            pending = getattr(cache, "pending_tokens", None)
            if pending is not None:
                total += pending
        return total

    def before_step(self, step: int) -> None:
        self.stream.advance(step)
        self._stored_before = self._stored_tokens()

    def after_step(self, step: int) -> None:
        quantized = self._stored_tokens() - self._stored_before
        self.stream.submit(step, quantized)
        self.stream.record_step(
            step=step,
            context_length=self.model.context_length,
            tokens_quantized=quantized,
            pending_tokens=self._pending_tokens(),
        )
