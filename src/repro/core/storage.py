"""Contiguous, amortized-growth storage for streaming KV caches.

The seed implementation kept every flushed code block (and every pending
full-precision block) in a Python list and re-ran ``np.concatenate`` on each
decode step, so generating ``T`` tokens copied ``O(T²)`` bytes — the exact
overhead MILLION's paged GPU cache is designed to avoid.  The two classes
here restore the paper's cost model on the host side:

* :class:`CodeStore` — a growable contiguous row store with amortized-doubling
  appends.  Reading the stored rows is a zero-copy view, so the per-decode
  cost of fetching codes is O(1) regardless of context length (the analogue
  of the paper's preallocated paged code buffer).
* :class:`PendingBuffer` — the full-precision staging area for the residual
  window plus the not-yet-flushed block.  Appends and front-pops move at most
  ``O(window + block)`` bytes, never ``O(T)``.

Both classes deliberately expose *views* of their interiors; callers must not
hold the view across a subsequent ``append`` (the buffer may be reallocated).
Within one attention call this is safe because appends and attends never
interleave.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require


def _grow_capacity(current: int, needed: int, minimum: int) -> int:
    """Next capacity under amortized doubling, at least ``needed``."""
    capacity = max(current, minimum)
    while capacity < needed:
        capacity *= 2
    return capacity


class CodeStore:
    """Growable contiguous array of fixed-shape rows (amortized O(1) append).

    Rows are anything with a fixed trailing shape: PQ code tuples
    ``(kv_heads, M)``, de-quantized KV rows ``(kv_heads, head_dim)``, etc.
    ``view()`` returns the valid prefix without copying.
    """

    def __init__(
        self,
        row_shape: tuple[int, ...],
        dtype: np.dtype | type,
        initial_capacity: int = 256,
    ) -> None:
        require(initial_capacity >= 1, "initial_capacity must be >= 1")
        self._row_shape = tuple(int(s) for s in row_shape)
        self._dtype = np.dtype(dtype)
        self._initial_capacity = int(initial_capacity)
        self._buffer = np.empty((0, *self._row_shape), dtype=self._dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def size(self) -> int:
        """Number of valid rows."""
        return self._size

    @property
    def capacity(self) -> int:
        """Number of rows the current allocation can hold."""
        return self._buffer.shape[0]

    @property
    def row_shape(self) -> tuple[int, ...]:
        return self._row_shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    def reserve(self, n_rows: int) -> None:
        """Ensure capacity for at least ``n_rows`` total rows."""
        if n_rows <= self.capacity:
            return
        new_capacity = _grow_capacity(self.capacity, n_rows, self._initial_capacity)
        grown = np.empty((new_capacity, *self._row_shape), dtype=self._dtype)
        grown[: self._size] = self._buffer[: self._size]
        self._buffer = grown

    def append(self, rows: np.ndarray) -> None:
        """Append a ``(t, *row_shape)`` block by copying it into the store."""
        rows = np.asarray(rows)
        require(
            rows.ndim == len(self._row_shape) + 1
            and rows.shape[1:] == self._row_shape,
            f"rows must have shape (t, {', '.join(map(str, self._row_shape))}), "
            f"got {rows.shape}",
        )
        t = rows.shape[0]
        if t == 0:
            return
        self.reserve(self._size + t)
        self._buffer[self._size : self._size + t] = rows
        self._size += t

    def pop_front(self, n_rows: int) -> np.ndarray:
        """Remove and return the oldest ``n_rows`` rows as an owned copy.

        The remaining rows are shifted to the front, so the cost is
        ``O(size)`` — constant when the store is used as a bounded staging
        buffer, as :class:`PendingBuffer` does.
        """
        require(
            0 <= n_rows <= self._size,
            f"cannot pop {n_rows} rows from a store of {self._size}",
        )
        popped = self._buffer[:n_rows].copy()
        remaining = self._size - n_rows
        if n_rows and remaining:
            # NumPy detects the overlap and buffers the move as needed.
            self._buffer[:remaining] = self._buffer[n_rows : self._size]
        self._size = remaining
        return popped

    def view(self) -> np.ndarray:
        """Zero-copy view of the valid rows, shape ``(size, *row_shape)``."""
        return self._buffer[: self._size]

    def clear(self) -> None:
        """Drop all rows (the allocation is kept for reuse)."""
        self._size = 0


class BlockArena:
    """Preallocated slab of fixed-size row blocks (physical paged storage).

    The arena is the physical side of a paged KV pool: ``num_blocks`` blocks
    of exactly ``block_rows`` rows each, allocated once up front so the
    per-block cost of writing or reading never depends on how many blocks are
    live.  The arena only stores bytes — block-id allocation, ref-counting
    and reuse policy live in the pool that hands out ids (see
    :class:`repro.serving.memory.BlockPool`).

    Blocks are written whole (``block_rows`` rows at a time); reads are
    zero-copy views into the slab.
    """

    def __init__(
        self,
        num_blocks: int,
        block_rows: int,
        row_shape: tuple[int, ...],
        dtype: np.dtype | type,
    ) -> None:
        require(num_blocks >= 1, "num_blocks must be >= 1")
        require(block_rows >= 1, "block_rows must be >= 1")
        self._row_shape = tuple(int(s) for s in row_shape)
        self._dtype = np.dtype(dtype)
        self._data = np.zeros(
            (int(num_blocks), int(block_rows), *self._row_shape), dtype=self._dtype
        )

    @property
    def num_blocks(self) -> int:
        return self._data.shape[0]

    @property
    def block_rows(self) -> int:
        return self._data.shape[1]

    @property
    def row_shape(self) -> tuple[int, ...]:
        return self._row_shape

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def block_nbytes(self) -> int:
        """Bytes occupied by one block."""
        return int(self._data[0].nbytes)

    def _check_id(self, block_id: int) -> None:
        require(
            0 <= block_id < self.num_blocks,
            f"block id {block_id} out of range [0, {self.num_blocks})",
        )

    def write(self, block_id: int, rows: np.ndarray) -> None:
        """Fill ``block_id`` with a full ``(block_rows, *row_shape)`` block."""
        self._check_id(block_id)
        rows = np.asarray(rows)
        require(
            rows.shape == (self.block_rows, *self._row_shape),
            f"block rows must have shape ({self.block_rows}, "
            f"{', '.join(map(str, self._row_shape))}), got {rows.shape}",
        )
        self._data[block_id] = rows

    def read(self, block_id: int) -> np.ndarray:
        """Zero-copy view of ``block_id``, shape ``(block_rows, *row_shape)``."""
        self._check_id(block_id)
        return self._data[block_id]


class PendingBuffer:
    """Paired full-precision key/value staging buffer with O(window) flushes.

    Holds the tokens that have not been quantized yet: the residual window
    plus whatever the flush-block granularity leaves over.  ``append`` adds to
    the back, ``pop_front`` removes the oldest rows for quantization.  Both
    operations move only the rows involved — the pending population is bounded
    by ``residual_window + flush_block`` so neither scales with context
    length.
    """

    def __init__(
        self,
        kv_heads: int,
        head_dim: int,
        dtype: np.dtype | type = np.float32,
        initial_capacity: int = 64,
    ) -> None:
        require(kv_heads >= 1, "kv_heads must be >= 1")
        require(head_dim >= 1, "head_dim must be >= 1")
        row_shape = (int(kv_heads), int(head_dim))
        self._keys = CodeStore(row_shape, dtype, initial_capacity=initial_capacity)
        self._values = CodeStore(row_shape, dtype, initial_capacity=initial_capacity)

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def size(self) -> int:
        """Number of pending tokens."""
        return len(self._keys)

    @property
    def capacity(self) -> int:
        return self._keys.capacity

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Append matching ``(t, kv_heads, head_dim)`` key/value blocks."""
        keys = np.asarray(keys, dtype=self._keys.dtype)
        values = np.asarray(values, dtype=self._values.dtype)
        require(
            values.shape == keys.shape,
            f"values shape {values.shape} must match keys shape {keys.shape}",
        )
        self._keys.append(keys)
        self._values.append(values)

    def pop_front(self, n_rows: int) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return the oldest ``n_rows`` tokens as owned copies."""
        return self._keys.pop_front(n_rows), self._values.pop_front(n_rows)

    def keys_view(self) -> np.ndarray:
        """Zero-copy view of the pending keys, shape ``(size, kv_heads, d)``."""
        return self._keys.view()

    def values_view(self) -> np.ndarray:
        """Zero-copy view of the pending values, shape ``(size, kv_heads, d)``."""
        return self._values.view()

    def clear(self) -> None:
        """Drop all pending tokens (the allocation is kept for reuse)."""
        self._keys.clear()
        self._values.clear()
