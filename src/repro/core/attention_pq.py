"""Head-aware PQ attention primitives (the "sparse attention" of Fig. 5).

These functions bridge the per-vector :class:`ProductQuantizer` API and the
multi-head layout used by the KV cache: queries arrive as
``(n_queries, n_heads, head_dim)`` and codes as ``(n_keys, kv_heads, M)``
(grouped-query attention maps several query heads onto one KV head).

The kernels are *flat and grouped*: instead of looping query heads in Python,
every (head, query, key) element is addressed through precomputed gather
indices, so one ``np.take`` per subspace serves the whole head group and one
flat ``np.add.at`` aggregates all probability mass per centroid.  Every
operation accumulates in a fixed element order that is independent of how
many rows share the call — the property the fused batched decode path relies
on to process many sequences per step while staying bit-identical to the
sequential reference (see :mod:`repro.core.attention_fused`).
"""

from __future__ import annotations

import numpy as np

from repro.core.pq import ProductQuantizer
from repro.utils.scratch import ScratchArena
from repro.utils.validation import require


def gqa_token_kv_index(
    n_heads: int,
    n_queries: int,
    n_keys: int,
    kv_heads: int,
    arena: ScratchArena,
    name: str = "token_kv",
) -> np.ndarray:
    """Row index into flattened ``(n_keys * kv_heads, M)`` codes per element.

    Element space is ``(head, query, key)`` in C order — matching the
    ``(n_heads, n_queries, n_keys)`` score layout — and heads sharing a KV
    head map to the same code rows, which is what collapses the per-head
    Python loop into one gather per subspace.
    """
    rows = n_heads * n_queries
    out = arena.get(name, (rows, n_keys), np.int64)
    memo_key = (n_heads, n_queries, n_keys, kv_heads)
    if arena.memo.get(name) == memo_key:
        return out  # map unchanged since last build (e.g. score then value
        # kernels of one attend, or successive steps between flushes)
    group = n_heads // kv_heads
    kv_of_row = np.repeat(np.arange(n_heads, dtype=np.int64) // group, n_queries)
    np.add(
        np.arange(n_keys, dtype=np.int64)[None, :] * kv_heads,
        kv_of_row[:, None],
        out=out,
    )
    arena.memo[name] = memo_key
    return out


def adc_scores_flat(
    luts_subspace_major: np.ndarray,
    codes_rows: np.ndarray,
    token_kv_index: np.ndarray,
    row_index: np.ndarray,
    arena: ScratchArena,
    name_prefix: str = "adc",
) -> np.ndarray:
    """ADC logits for arbitrary (LUT row, code row) element pairs.

    ``luts_subspace_major`` is ``(M, n_rows, K)``; ``codes_rows`` is
    ``(n_code_rows, M)``; ``token_kv_index`` and ``row_index`` give, for every
    output element, the code row and the LUT row (``row_index`` may broadcast
    against ``token_kv_index``).  Returns float32 scores of the elements'
    shape: ``sum_m luts[m, row, codes[token_kv, m]]`` accumulated subspace by
    subspace in order, exactly like :meth:`ProductQuantizer.adc_scores`.
    """
    m_subspaces, n_rows, n_centroids = luts_subspace_major.shape
    shape = token_kv_index.shape
    scores = arena.zeros(f"{name_prefix}.scores", shape, np.float32)
    if token_kv_index.size == 0:
        return scores
    gathered = arena.get(f"{name_prefix}.gathered", shape, np.float32)
    code_tmp = arena.get(f"{name_prefix}.code", shape, codes_rows.dtype)
    index_tmp = arena.get(f"{name_prefix}.index", shape, np.int64)
    row_base = arena.get(f"{name_prefix}.row_base", shape, np.int64)
    np.multiply(row_index, n_centroids, out=row_base)
    for m in range(m_subspaces):
        np.take(codes_rows[:, m], token_kv_index, out=code_tmp)
        np.add(row_base, code_tmp, out=index_tmp)
        np.take(luts_subspace_major[m].reshape(-1), index_tmp, out=gathered)
        scores += gathered
    return scores


def weighted_decode_flat(
    probs: np.ndarray,
    codes_rows: np.ndarray,
    token_kv_index: np.ndarray,
    row_index: np.ndarray,
    n_rows: int,
    quantizer: ProductQuantizer,
    arena: ScratchArena,
    name_prefix: str = "wv",
    bins_base: np.ndarray | None = None,
) -> np.ndarray:
    """Per-centroid probability aggregation and decode for flat elements.

    ``probs`` matches the element shape of ``token_kv_index``; the result is
    ``(n_rows, dim)`` float32 context rows.  Probability mass is scattered to
    ``(row, subspace, centroid)`` bins in element order (keys in sequence
    order, subspaces innermost), then multiplied by the centroid tables —
    MILLION's ``O(n + K * d)`` value trick, with the per-head Python loop
    replaced by one flat scatter-add.
    """
    m_subspaces = quantizer.m_subspaces
    n_centroids = quantizer.n_centroids
    if token_kv_index.size == 0:
        return np.zeros((n_rows, quantizer.dim), dtype=np.float32)
    elem_shape = token_kv_index.shape
    codes_elem = arena.get(
        f"{name_prefix}.codes", elem_shape + (m_subspaces,), codes_rows.dtype
    )
    np.take(codes_rows, token_kv_index, axis=0, out=codes_elem)
    bins = arena.get(f"{name_prefix}.bins", elem_shape + (m_subspaces,), np.int64)
    if bins_base is None:
        # (row * M + m) * K, built from scratch; steady-state callers (the
        # fused decoder) pass it in precomputed since it only changes when
        # the segment layout changes.
        row_base = arena.get(f"{name_prefix}.row_base", elem_shape, np.int64)
        np.multiply(row_index, m_subspaces * n_centroids, out=row_base)
        np.add(
            row_base[..., None],
            np.arange(m_subspaces, dtype=np.int64) * n_centroids,
            out=bins,
        )
        bins += codes_elem
    else:
        np.add(bins_base, codes_elem, out=bins)
    aggregated = arena.zeros(
        f"{name_prefix}.agg", (n_rows * m_subspaces * n_centroids,), np.float32
    )
    # One flat scatter-add for every (row, subspace, centroid) bin.  The
    # element order (keys in sequence order, subspaces innermost) fixes the
    # accumulation order per bin regardless of how many rows share the call.
    # Weights are materialized so the ufunc takes its fast unbuffered path.
    weights = arena.get(f"{name_prefix}.weights", elem_shape + (m_subspaces,), np.float32)
    np.copyto(weights, probs[..., None])
    np.add.at(aggregated, bins.reshape(-1), weights.reshape(-1))
    aggregated = aggregated.reshape(n_rows, m_subspaces, n_centroids)
    # Contract against the (M, dsub, K) centroid layout so the reduction axis
    # is contiguous in both operands; the contraction is per-element
    # independent, hence row-invariant.
    context = np.einsum(
        "rmk,mdk->rmd", aggregated, quantizer.centroids_transposed(np.float32)
    )
    return context.reshape(n_rows, quantizer.dim).astype(np.float32, copy=False)


def pq_attention_scores(
    queries: np.ndarray,
    key_codes: np.ndarray,
    key_pq: ProductQuantizer,
    scale: float = 1.0,
    arena: ScratchArena | None = None,
) -> np.ndarray:
    """Attention logits of queries against PQ-encoded keys.

    Parameters
    ----------
    queries:
        ``(n_queries, n_heads, head_dim)``.
    key_codes:
        ``(n_keys, kv_heads, M)`` centroid indices.
    Returns
    -------
    ``(n_heads, n_queries, n_keys)`` float32 logits (already scaled).
    """
    queries = np.asarray(queries, dtype=np.float32)
    key_codes = np.asarray(key_codes)
    require(queries.ndim == 3, f"queries must be 3-D, got shape {queries.shape}")
    require(key_codes.ndim == 3, f"key_codes must be 3-D, got shape {key_codes.shape}")
    n_queries, n_heads, head_dim = queries.shape
    n_keys, kv_heads, m_subspaces = key_codes.shape
    require(head_dim == key_pq.dim, "query head_dim must match the key quantizer dim")
    require(m_subspaces == key_pq.m_subspaces, "codes M must match the key quantizer")
    require(n_heads % kv_heads == 0, "n_heads must be a multiple of kv_heads")
    arena = arena or ScratchArena()

    # One LUT per (query token, query head); flattening keeps the head axis
    # fastest so the reshape below is contiguous.
    flat_queries = queries.transpose(1, 0, 2).reshape(n_heads * n_queries, head_dim)
    luts = key_pq.build_score_luts(flat_queries, subspace_major=True)
    rows = n_heads * n_queries
    token_kv = gqa_token_kv_index(n_heads, n_queries, n_keys, kv_heads, arena)
    row_index = np.arange(rows, dtype=np.int64)[:, None]
    scores = adc_scores_flat(
        luts,
        key_codes.reshape(n_keys * kv_heads, m_subspaces),
        token_kv,
        row_index,
        arena,
    )
    scores = scores.reshape(n_heads, n_queries, n_keys)
    return scores * np.float32(scale)


def pq_weighted_values(
    probs: np.ndarray,
    value_codes: np.ndarray,
    value_pq: ProductQuantizer,
    arena: ScratchArena | None = None,
) -> np.ndarray:
    """Probability-weighted sum over PQ-encoded values.

    Parameters
    ----------
    probs:
        ``(n_heads, n_queries, n_keys)`` attention probabilities.
    value_codes:
        ``(n_keys, kv_heads, M)`` centroid indices.
    Returns
    -------
    ``(n_queries, n_heads, head_dim)`` context vectors.
    """
    probs = np.asarray(probs, dtype=np.float32)
    value_codes = np.asarray(value_codes)
    require(probs.ndim == 3, f"probs must be 3-D, got shape {probs.shape}")
    require(value_codes.ndim == 3, f"value_codes must be 3-D, got shape {value_codes.shape}")
    n_heads, n_queries, n_keys = probs.shape
    keys_in_codes, kv_heads, m_subspaces = value_codes.shape
    require(n_keys == keys_in_codes, "probs and value_codes disagree on n_keys")
    require(m_subspaces == value_pq.m_subspaces, "codes M must match the value quantizer")
    require(n_heads % kv_heads == 0, "n_heads must be a multiple of kv_heads")
    arena = arena or ScratchArena()

    rows = n_heads * n_queries
    token_kv = gqa_token_kv_index(n_heads, n_queries, n_keys, kv_heads, arena)
    row_index = np.arange(rows, dtype=np.int64)[:, None]
    context = weighted_decode_flat(
        probs.reshape(rows, n_keys),
        value_codes.reshape(n_keys * kv_heads, m_subspaces),
        token_kv,
        row_index,
        rows,
        value_pq,
        arena,
    )
    return np.ascontiguousarray(
        context.reshape(n_heads, n_queries, value_pq.dim).transpose(1, 0, 2)
    )


def pq_sparse_attention(
    queries: np.ndarray,
    key_codes: np.ndarray,
    value_codes: np.ndarray,
    key_pq: ProductQuantizer,
    value_pq: ProductQuantizer,
    scale: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper returning ``(scores, context)`` for quantized tokens.

    ``scores`` are pre-softmax logits; callers combine them with the
    full-precision recent-window scores before a single softmax (equivalent
    to the paper's online-softmax merge).
    """
    scores = pq_attention_scores(queries, key_codes, key_pq, scale=scale)
    from repro.models.tensor_ops import softmax  # local import avoids a cycle

    probs = softmax(scores, axis=-1)
    context = pq_weighted_values(probs, value_codes, value_pq)
    return scores, context
