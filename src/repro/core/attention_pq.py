"""Head-aware PQ attention primitives (the "sparse attention" of Fig. 5).

These functions bridge the per-vector :class:`ProductQuantizer` API and the
multi-head layout used by the KV cache: queries arrive as
``(n_queries, n_heads, head_dim)`` and codes as ``(n_keys, kv_heads, M)``
(grouped-query attention maps several query heads onto one KV head).
"""

from __future__ import annotations

import numpy as np

from repro.core.pq import ProductQuantizer
from repro.utils.validation import require


def _gqa_kv_head(query_head: int, n_query_heads: int, n_kv_heads: int) -> int:
    group = n_query_heads // n_kv_heads
    return query_head // group


def pq_attention_scores(
    queries: np.ndarray,
    key_codes: np.ndarray,
    key_pq: ProductQuantizer,
    scale: float = 1.0,
) -> np.ndarray:
    """Attention logits of queries against PQ-encoded keys.

    Parameters
    ----------
    queries:
        ``(n_queries, n_heads, head_dim)``.
    key_codes:
        ``(n_keys, kv_heads, M)`` centroid indices.
    Returns
    -------
    ``(n_heads, n_queries, n_keys)`` float32 logits (already scaled).
    """
    queries = np.asarray(queries, dtype=np.float32)
    key_codes = np.asarray(key_codes)
    require(queries.ndim == 3, f"queries must be 3-D, got shape {queries.shape}")
    require(key_codes.ndim == 3, f"key_codes must be 3-D, got shape {key_codes.shape}")
    n_queries, n_heads, head_dim = queries.shape
    n_keys, kv_heads, m_subspaces = key_codes.shape
    require(head_dim == key_pq.dim, "query head_dim must match the key quantizer dim")
    require(m_subspaces == key_pq.m_subspaces, "codes M must match the key quantizer")
    require(n_heads % kv_heads == 0, "n_heads must be a multiple of kv_heads")

    # One LUT per (query token, query head); flattening keeps the head axis
    # fastest so the reshape below is contiguous.
    flat_queries = queries.transpose(1, 0, 2).reshape(n_heads * n_queries, head_dim)
    luts = key_pq.build_score_luts(flat_queries)
    luts = luts.reshape(n_heads, n_queries, key_pq.m_subspaces, key_pq.n_centroids)
    scores = np.empty((n_heads, n_queries, n_keys), dtype=np.float32)
    for head in range(n_heads):
        kv_head = _gqa_kv_head(head, n_heads, kv_heads)
        scores[head] = key_pq.adc_scores(luts[head], key_codes[:, kv_head, :])
    return scores * np.float32(scale)


def pq_weighted_values(
    probs: np.ndarray,
    value_codes: np.ndarray,
    value_pq: ProductQuantizer,
) -> np.ndarray:
    """Probability-weighted sum over PQ-encoded values.

    Parameters
    ----------
    probs:
        ``(n_heads, n_queries, n_keys)`` attention probabilities.
    value_codes:
        ``(n_keys, kv_heads, M)`` centroid indices.
    Returns
    -------
    ``(n_queries, n_heads, head_dim)`` context vectors.
    """
    probs = np.asarray(probs, dtype=np.float32)
    value_codes = np.asarray(value_codes)
    require(probs.ndim == 3, f"probs must be 3-D, got shape {probs.shape}")
    require(value_codes.ndim == 3, f"value_codes must be 3-D, got shape {value_codes.shape}")
    n_heads, n_queries, n_keys = probs.shape
    keys_in_codes, kv_heads, m_subspaces = value_codes.shape
    require(n_keys == keys_in_codes, "probs and value_codes disagree on n_keys")
    require(m_subspaces == value_pq.m_subspaces, "codes M must match the value quantizer")
    require(n_heads % kv_heads == 0, "n_heads must be a multiple of kv_heads")

    context = np.empty((n_queries, n_heads, value_pq.dim), dtype=np.float32)
    for head in range(n_heads):
        kv_head = _gqa_kv_head(head, n_heads, kv_heads)
        context[:, head, :] = value_pq.weighted_decode(
            probs[head], value_codes[:, kv_head, :]
        )
    return context


def pq_sparse_attention(
    queries: np.ndarray,
    key_codes: np.ndarray,
    value_codes: np.ndarray,
    key_pq: ProductQuantizer,
    value_pq: ProductQuantizer,
    scale: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience wrapper returning ``(scores, context)`` for quantized tokens.

    ``scores`` are pre-softmax logits; callers combine them with the
    full-precision recent-window scores before a single softmax (equivalent
    to the paper's online-softmax merge).
    """
    scores = pq_attention_scores(queries, key_codes, key_pq, scale=scale)
    from repro.models.tensor_ops import softmax  # local import avoids a cycle

    probs = softmax(scores, axis=-1)
    context = pq_weighted_values(probs, value_codes, value_pq)
    return scores, context
