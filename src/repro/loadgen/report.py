"""Aggregate replay outcomes into per-class / per-tenant SLO reports.

Percentiles come from :class:`repro.obs.hist.Histogram` — the same bucketed
estimator behind the gateway's ``/metrics`` histograms and PromQL's
``histogram_quantile`` — so a number in a load report is directly comparable
to the same quantile scraped off the server.  The report is plain data
(:meth:`LoadReport.summary` is JSON-ready) because the ``serving.slo_load``
benchmark records straight from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.obs.hist import Histogram, snapshot_fraction_over
from repro.loadgen.client import RequestOutcome
from repro.serving.request import PRIORITIES


@dataclass
class ClassReport:
    """Latency + disposition of one priority class's requests."""

    sent: int = 0
    completed: int = 0
    rejected: int = 0  # HTTP 429 (queue cap or SLO admission)
    errors: int = 0
    tokens: int = 0
    ttft: Histogram = field(default_factory=Histogram)
    itl: Histogram = field(default_factory=Histogram)

    def observe(self, outcome: RequestOutcome) -> None:
        self.sent += 1
        if outcome.status == 429:
            self.rejected += 1
            return
        if not outcome.completed:
            self.errors += 1
            return
        self.completed += 1
        self.tokens += outcome.tokens
        if outcome.ttft_s is not None:
            self.ttft.observe(outcome.ttft_s)
        for gap in outcome.itl_s:
            self.itl.observe(gap)

    @property
    def completed_fraction(self) -> float:
        return self.completed / self.sent if self.sent else 0.0

    def slo_burn(
        self, slo_s: Optional[float], objective: float = 0.95
    ) -> Optional[float]:
        """TTFT SLO burn rate over this report's requests.

        The same construct the gateway's health engine computes live
        (:mod:`repro.obs.health`): the fraction of requests with TTFT over
        ``slo_s``, divided by the error budget ``1 - objective``.  ``None``
        when no SLO is configured or nothing was observed, so the table can
        print ``-`` instead of a misleading 0.
        """
        if slo_s is None or slo_s <= 0.0:
            return None
        fraction = snapshot_fraction_over(self.ttft.snapshot(), slo_s)
        if fraction is None:
            return None
        return fraction / (1.0 - objective)

    def summary(self) -> dict:
        return {
            "sent": self.sent,
            "completed": self.completed,
            "rejected": self.rejected,
            "errors": self.errors,
            "tokens": self.tokens,
            "completed_fraction": self.completed_fraction,
            "ttft_p50_s": self.ttft.quantile(0.5),
            "ttft_p99_s": self.ttft.quantile(0.99),
            "itl_p50_s": self.itl.quantile(0.5),
            "itl_p99_s": self.itl.quantile(0.99),
        }


@dataclass
class LoadReport:
    """Everything one replay measured, sliced by class and tenant."""

    classes: dict[str, ClassReport]
    tenants: dict[str, ClassReport]
    duration_s: float
    #: Per-priority-class TTFT SLOs (seconds) to grade against; classes
    #: absent from the map show ``-`` in the burn column.
    ttft_slo_s: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_outcomes(
        cls,
        outcomes: Sequence[RequestOutcome],
        duration_s: float,
        ttft_slo_s: Optional[dict[str, float]] = None,
    ) -> "LoadReport":
        classes = {label: ClassReport() for label in PRIORITIES}
        tenants: dict[str, ClassReport] = {}
        for outcome in outcomes:
            classes[outcome.priority].observe(outcome)
            tenants.setdefault(outcome.tenant, ClassReport()).observe(outcome)
        return cls(
            classes=classes,
            tenants=tenants,
            duration_s=duration_s,
            ttft_slo_s=dict(ttft_slo_s or {}),
        )

    def summary(self) -> dict:
        sent = sum(r.sent for r in self.classes.values())
        completed = sum(r.completed for r in self.classes.values())
        return {
            "duration_s": self.duration_s,
            "sent": sent,
            "completed": completed,
            "classes": {
                label: {
                    **report.summary(),
                    "ttft_slo_s": self.ttft_slo_s.get(label),
                    "slo_burn": report.slo_burn(self.ttft_slo_s.get(label)),
                }
                for label, report in self.classes.items()
            },
            "tenants": {
                tenant: report.summary()
                for tenant, report in sorted(self.tenants.items())
            },
        }

    def render(self) -> str:
        """Human-readable results table (what ``python -m repro.loadgen`` prints)."""

        def fmt(value: Optional[float]) -> str:
            return f"{value * 1000:8.1f}" if value is not None else "       -"

        def fmt_burn(value: Optional[float]) -> str:
            return f"{value:6.2f}x" if value is not None else "      -"

        lines = [
            f"{'class/tenant':<16} {'sent':>5} {'done':>5} {'429':>5} "
            f"{'err':>4} {'ttft p50':>9} {'ttft p99':>9} "
            f"{'itl p50':>9} {'itl p99':>9} {'burn':>7}  (ms)",
        ]
        rows = [(label, self.classes[label]) for label in PRIORITIES]
        rows += sorted(self.tenants.items())
        for label, report in rows:
            # Tenants mix priority classes, so the burn column (an SLO per
            # priority class) only applies to class rows.
            burn = report.slo_burn(self.ttft_slo_s.get(label))
            lines.append(
                f"{label:<16} {report.sent:>5} {report.completed:>5} "
                f"{report.rejected:>5} {report.errors:>4} "
                f"{fmt(report.ttft.quantile(0.5)):>9} "
                f"{fmt(report.ttft.quantile(0.99)):>9} "
                f"{fmt(report.itl.quantile(0.5)):>9} "
                f"{fmt(report.itl.quantile(0.99)):>9} "
                f"{fmt_burn(burn):>7}"
            )
        lines.append(
            f"replay: {sum(r.sent for r in self.classes.values())} requests "
            f"in {self.duration_s:.2f}s"
        )
        return "\n".join(lines)


__all__ = ["ClassReport", "LoadReport"]
