"""Open-loop replay of a workload schedule against a live gateway.

The client is a deliberately minimal asyncio HTTP/1.1 + SSE implementation
(the gateway speaks ``Connection: close``, one exchange per socket) so the
harness has zero dependencies beyond the standard library.  Replay is
**open-loop**: each request fires at its scheduled offset regardless of how
many earlier requests are still in flight — the arrival process models
independent clients, so server slowness must build queues, not thin the
offered load (closed-loop replay silently flatters an overloaded server).

Latency is measured at the SSE frame level: TTFT is scheduled-start to the
first ``data:`` frame carrying a token (queue wait + routing + prefill, the
user-visible "time to first character"), ITL is the gap between consecutive
token frames.  429 refusals are outcomes, not errors — under SLO admission
they are the mechanism, and the report counts them per class.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.loadgen.workload import ScheduledRequest

#: Guard against a wedged server pinning the harness forever.
REQUEST_TIMEOUT_S = 300.0


@dataclass
class RequestOutcome:
    """What one scheduled request actually experienced."""

    index: int
    priority: str
    tenant: str
    prefix_group: int
    status: int
    ttft_s: Optional[float] = None
    itl_s: list[float] = field(default_factory=list)
    tokens: int = 0
    finish_reason: Optional[str] = None
    retry_after_s: Optional[float] = None
    error: Optional[str] = None

    @property
    def completed(self) -> bool:
        return self.status == 200 and self.error is None


def _http_head(path: str, body: bytes, host: str) -> bytes:
    return (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode()


async def _read_headers(reader: asyncio.StreamReader) -> tuple[int, dict]:
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection before responding")
    status = int(status_line.split()[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def run_one(
    host: str,
    port: int,
    scheduled: ScheduledRequest,
    started_at: float,
) -> RequestOutcome:
    """Fire one scheduled request and stream its SSE response.

    ``started_at`` is the replay epoch on ``time.perf_counter()``; TTFT is
    measured from the request's *scheduled* arrival, so time lost to event
    loop lag counts against the server the same way client-side queueing
    would in a real deployment.
    """
    outcome = RequestOutcome(
        index=scheduled.index,
        priority=scheduled.priority,
        tenant=scheduled.tenant,
        prefix_group=scheduled.prefix_group,
        status=0,
    )
    payload = {
        "prompt": [int(t) for t in scheduled.prompt_ids],
        "max_tokens": scheduled.max_tokens,
        "stream": True,
        "priority": scheduled.priority,
        "tenant": scheduled.tenant,
    }
    body = json.dumps(payload, separators=(",", ":")).encode()
    scheduled_start = started_at + scheduled.at_s
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except OSError as exc:
        outcome.error = f"connect failed: {exc}"
        return outcome
    try:
        writer.write(_http_head("/v1/completions", body, host) + body)
        await writer.drain()
        status, headers = await asyncio.wait_for(
            _read_headers(reader), REQUEST_TIMEOUT_S
        )
        outcome.status = status
        if status != 200:
            if "retry-after" in headers:
                outcome.retry_after_s = float(headers["retry-after"])
            await asyncio.wait_for(reader.read(), REQUEST_TIMEOUT_S)
            return outcome
        last_token_at: Optional[float] = None
        while True:
            line = await asyncio.wait_for(reader.readline(), REQUEST_TIMEOUT_S)
            if not line:
                break
            text = line.decode("utf-8", "replace").strip()
            if not text.startswith("data: "):
                continue
            if text == "data: [DONE]":
                break
            now = time.perf_counter()
            event = json.loads(text[len("data: "):])
            choice = event["choices"][0]
            if choice.get("token_id") is not None:
                outcome.tokens += 1
                if last_token_at is None:
                    outcome.ttft_s = now - scheduled_start
                else:
                    outcome.itl_s.append(now - last_token_at)
                last_token_at = now
            if choice.get("finish_reason") is not None:
                outcome.finish_reason = choice["finish_reason"]
    except (asyncio.TimeoutError, ConnectionError, OSError, ValueError) as exc:
        outcome.error = f"{type(exc).__name__}: {exc}"
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return outcome


async def replay(
    host: str, port: int, schedule: Sequence[ScheduledRequest]
) -> list[RequestOutcome]:
    """Replay a schedule open-loop; outcomes in schedule order.

    Requests are launched at their arrival offsets (the schedule must be
    sorted by ``at_s``, which :func:`repro.loadgen.workload.synthesize`
    guarantees) and awaited together at the end.
    """
    started_at = time.perf_counter()
    tasks: list[asyncio.Task] = []
    for scheduled in schedule:
        delay = scheduled.at_s - (time.perf_counter() - started_at)
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(
            asyncio.create_task(run_one(host, port, scheduled, started_at))
        )
    return list(await asyncio.gather(*tasks))


def replay_sync(
    host: str, port: int, schedule: Sequence[ScheduledRequest]
) -> list[RequestOutcome]:
    """Blocking wrapper around :func:`replay` (one fresh event loop)."""
    return asyncio.run(replay(host, port, schedule))


__all__ = ["RequestOutcome", "REQUEST_TIMEOUT_S", "replay", "replay_sync", "run_one"]
