"""Trace synthesis: bursty arrivals, Zipf prefixes, mixed tenants.

A workload here is a fully materialized *schedule* — every request's arrival
offset, token ids, output budget, tenant and priority class — computed up
front from a seed.  The replay layer (:mod:`repro.loadgen.client`) then
fires the schedule open-loop against a gateway: arrival times never depend
on completion times, so an overloaded server sees the queue build exactly
the way it would under real independent clients.

The shape knobs mirror what production LLM traffic studies report:

* **Bursty arrivals** — a Poisson process whose rate switches between a base
  rate and a burst rate on a fixed episode cycle (a step-function
  non-homogeneous Poisson process).  Bursts are what expose admission-policy
  differences; a constant rate mostly measures steady-state throughput.
* **Zipf-shared prefixes** — each request prepends one of ``prefix_groups``
  shared prefixes, with group popularity Zipf-distributed.  Hot prefixes
  exercise the block pool's prefix sharing and the router's prefix-affinity
  placement the way shared system prompts do.
* **Mixed lengths** — per-class prompt/output budgets: ``interactive``
  requests are short-prompt/short-output (chat turns), ``best_effort``
  requests are long-prompt/long-output (batch summarization), so the two
  classes genuinely compete for pool blocks rather than sliding past each
  other.
* **Tenants** — each request carries an opaque tenant tag; tenants are
  pinned to one priority class so per-tenant reports decompose cleanly.

Everything is derived from ``seed`` through :func:`repro.utils.rng.get_rng`
— the same spec always synthesizes the same schedule, which is what lets the
``serving.slo_load`` benchmark replay one trace against two admission
policies and attribute the delta to the policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.serving.request import PRIORITIES
from repro.utils.rng import get_rng
from repro.utils.validation import require


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one synthetic serving workload (see module docstring).

    ``burst_every_s``/``burst_duration_s`` define the episode cycle: the
    arrival rate is ``burst_rate_rps`` for the first ``burst_duration_s``
    seconds of every ``burst_every_s``-second window and ``base_rate_rps``
    for the rest.  ``best_effort_fraction`` is the expected fraction of
    requests in the ``best_effort`` class; tenants are split between the
    classes in the same proportion.
    """

    requests: int = 64
    base_rate_rps: float = 8.0
    burst_rate_rps: float = 32.0
    burst_every_s: float = 4.0
    burst_duration_s: float = 1.0
    prefix_groups: int = 8
    zipf_alpha: float = 1.1
    prefix_tokens: int = 48
    interactive_prompt_tokens: tuple[int, int] = (8, 32)
    best_effort_prompt_tokens: tuple[int, int] = (32, 96)
    interactive_output_tokens: tuple[int, int] = (4, 12)
    best_effort_output_tokens: tuple[int, int] = (16, 48)
    best_effort_fraction: float = 0.5
    tenants: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        require(self.requests >= 1, "requests must be >= 1")
        require(self.base_rate_rps > 0, "base_rate_rps must be positive")
        require(
            self.burst_rate_rps >= self.base_rate_rps,
            "burst_rate_rps must be >= base_rate_rps",
        )
        require(self.burst_every_s > 0, "burst_every_s must be positive")
        require(
            0 <= self.burst_duration_s <= self.burst_every_s,
            "burst_duration_s must be within [0, burst_every_s]",
        )
        require(self.prefix_groups >= 1, "prefix_groups must be >= 1")
        require(self.zipf_alpha > 0, "zipf_alpha must be positive")
        require(self.prefix_tokens >= 0, "prefix_tokens must be >= 0")
        require(0.0 <= self.best_effort_fraction <= 1.0,
                "best_effort_fraction must be in [0, 1]")
        require(self.tenants >= 1, "tenants must be >= 1")
        for name in (
            "interactive_prompt_tokens",
            "best_effort_prompt_tokens",
            "interactive_output_tokens",
            "best_effort_output_tokens",
        ):
            lo, hi = getattr(self, name)
            require(1 <= lo <= hi, f"{name} must satisfy 1 <= lo <= hi")


@dataclass(frozen=True)
class ScheduledRequest:
    """One request of a materialized schedule.

    ``at_s`` is the arrival offset from replay start; ``prompt_ids`` already
    includes the shared prefix of ``prefix_group``.
    """

    index: int
    at_s: float
    prompt_ids: np.ndarray
    max_tokens: int
    priority: str
    tenant: str
    prefix_group: int


def _arrival_times(spec: WorkloadSpec, rng: np.random.Generator) -> np.ndarray:
    """Step-function non-homogeneous Poisson arrival offsets (seconds).

    Sampled incrementally: each gap is exponential at the rate in force at
    the previous arrival.  A gap can overshoot an episode boundary — exact
    thinning is not worth the complexity for a load harness; the episode
    structure survives because bursts last many expected inter-arrivals.
    """
    times = np.empty(spec.requests, dtype=np.float64)
    t = 0.0
    for i in range(spec.requests):
        in_burst = (t % spec.burst_every_s) < spec.burst_duration_s
        rate = spec.burst_rate_rps if in_burst else spec.base_rate_rps
        t += rng.exponential(1.0 / rate)
        times[i] = t
    return times


def _zipf_groups(spec: WorkloadSpec, rng: np.random.Generator) -> np.ndarray:
    """Per-request prefix-group indices with Zipf(alpha) popularity."""
    ranks = np.arange(1, spec.prefix_groups + 1, dtype=np.float64)
    weights = ranks ** -spec.zipf_alpha
    return rng.choice(
        spec.prefix_groups, size=spec.requests, p=weights / weights.sum()
    )


def _tenant_pools(spec: WorkloadSpec) -> dict[str, list[str]]:
    """Tenants pinned to priority classes, split like the request mix."""
    n_best_effort = int(round(spec.tenants * spec.best_effort_fraction))
    n_best_effort = min(max(n_best_effort, 0), spec.tenants)
    if 0.0 < spec.best_effort_fraction and n_best_effort == 0:
        n_best_effort = 1
    if spec.best_effort_fraction < 1.0 and n_best_effort == spec.tenants:
        n_best_effort = spec.tenants - 1
    names = [f"tenant-{i}" for i in range(spec.tenants)]
    return {
        "interactive": names[: spec.tenants - n_best_effort] or names,
        "best_effort": names[spec.tenants - n_best_effort:] or names,
    }


def synthesize(
    spec: WorkloadSpec,
    vocab_size: int,
    max_seq_len: Optional[int] = None,
) -> list[ScheduledRequest]:
    """Materialize a schedule: same spec + vocab → same requests, always.

    ``max_seq_len`` (when given) clips each request's prompt + output budget
    to the model's window so the gateway never rejects a synthetic request
    for length.
    """
    require(vocab_size >= 2, "vocab_size must be >= 2")
    rng = get_rng(spec.seed)
    times = _arrival_times(spec, rng)
    groups = _zipf_groups(spec, rng)
    prefixes = [
        rng.integers(0, vocab_size, size=spec.prefix_tokens, dtype=np.int64)
        for _ in range(spec.prefix_groups)
    ]
    tenant_pools = _tenant_pools(spec)
    prompt_bounds = {
        "interactive": spec.interactive_prompt_tokens,
        "best_effort": spec.best_effort_prompt_tokens,
    }
    output_bounds = {
        "interactive": spec.interactive_output_tokens,
        "best_effort": spec.best_effort_output_tokens,
    }
    schedule: list[ScheduledRequest] = []
    for index in range(spec.requests):
        priority = (
            "best_effort"
            if rng.random() < spec.best_effort_fraction
            else "interactive"
        )
        assert priority in PRIORITIES
        tenants = tenant_pools[priority]
        tenant = tenants[int(rng.integers(0, len(tenants)))]
        p_lo, p_hi = prompt_bounds[priority]
        o_lo, o_hi = output_bounds[priority]
        suffix_len = int(rng.integers(p_lo, p_hi + 1))
        max_tokens = int(rng.integers(o_lo, o_hi + 1))
        suffix = rng.integers(0, vocab_size, size=suffix_len, dtype=np.int64)
        prompt = np.concatenate([prefixes[groups[index]], suffix])
        if max_seq_len is not None:
            budget = max_seq_len - max_tokens
            require(
                budget >= 1,
                f"max_seq_len {max_seq_len} cannot fit any prompt plus "
                f"{max_tokens} output tokens",
            )
            prompt = prompt[:budget]
        schedule.append(
            ScheduledRequest(
                index=index,
                at_s=float(times[index]),
                prompt_ids=prompt,
                max_tokens=max_tokens,
                priority=priority,
                tenant=tenant,
                prefix_group=int(groups[index]),
            )
        )
    return schedule


__all__ = ["ScheduledRequest", "WorkloadSpec", "synthesize"]
