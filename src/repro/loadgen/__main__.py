"""Drive a gateway with a synthetic bursty multi-tenant workload.

Against a gateway you already started (see ``python -m repro.gateway``)::

    PYTHONPATH=src python -m repro.loadgen --target 127.0.0.1:8707 \\
        --requests 128 --base-rate 8 --burst-rate 32

or fully self-contained (boots a tiny demo gateway in-process, loads it,
prints the per-class/per-tenant latency table)::

    PYTHONPATH=src python -m repro.loadgen --self-host

``--smoke`` is the CI mode: a small self-hosted run that exits non-zero
unless every priority class completed requests and the report is coherent.
``--json PATH`` writes the machine-readable summary next to the table.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Optional

from repro.loadgen.client import replay
from repro.loadgen.report import LoadReport
from repro.loadgen.workload import WorkloadSpec, synthesize

#: Self-hosted demo gateway shape: small enough to calibrate in seconds,
#: pool small enough that a burst actually contends for blocks.  Chunked
#: prefill is on so the CI smoke exercises budgeted chunk scheduling under
#: a real bursty load, not just the one-shot path.
_SELF_HOST_KWARGS = dict(
    max_seq_len=512,
    calibration_tokens=512,
    pool_blocks=192,
    max_batch_size=4,
    replicas=1,
    chunked_prefill=1,
)

_SMOKE_SPEC = WorkloadSpec(
    requests=12,
    base_rate_rps=6.0,
    burst_rate_rps=24.0,
    burst_every_s=1.0,
    burst_duration_s=0.4,
    prefix_groups=3,
    prefix_tokens=32,
    tenants=4,
    seed=7,
)


def _parser() -> argparse.ArgumentParser:
    spec = WorkloadSpec()
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    target = parser.add_mutually_exclusive_group()
    target.add_argument(
        "--target", metavar="HOST:PORT",
        help="drive an already-running gateway",
    )
    target.add_argument(
        "--self-host", action="store_true",
        help="boot a tiny demo gateway in-process and drive that",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: small self-hosted run with pass/fail checks",
    )
    parser.add_argument("--requests", type=int, default=spec.requests)
    parser.add_argument("--base-rate", type=float, default=spec.base_rate_rps,
                        help="baseline arrival rate (req/s)")
    parser.add_argument("--burst-rate", type=float, default=spec.burst_rate_rps,
                        help="arrival rate inside burst episodes (req/s)")
    parser.add_argument("--burst-every", type=float, default=spec.burst_every_s,
                        help="seconds between burst episode starts")
    parser.add_argument("--burst-duration", type=float,
                        default=spec.burst_duration_s,
                        help="seconds each burst episode lasts")
    parser.add_argument("--prefix-groups", type=int, default=spec.prefix_groups)
    parser.add_argument("--prefix-tokens", type=int, default=spec.prefix_tokens)
    parser.add_argument("--zipf-alpha", type=float, default=spec.zipf_alpha)
    parser.add_argument("--best-effort-fraction", type=float,
                        default=spec.best_effort_fraction)
    parser.add_argument("--tenants", type=int, default=spec.tenants)
    parser.add_argument("--seed", type=int, default=spec.seed)
    parser.add_argument(
        "--vocab-size", type=int, default=512,
        help="token-id space for synthesized prompts (zoo models use 512)",
    )
    parser.add_argument(
        "--max-seq-len", type=int, default=512,
        help="clip prompt+output to this window (match the serving model)",
    )
    parser.add_argument(
        "--interactive-slo-ms", type=float, default=0.0,
        help="grade interactive TTFT against this SLO (adds a burn column; "
             "0 = no SLO)",
    )
    parser.add_argument(
        "--best-effort-slo-ms", type=float, default=0.0,
        help="grade best_effort TTFT against this SLO (0 = no SLO)",
    )
    parser.add_argument("--json", metavar="PATH",
                        help="also write the summary as JSON")
    return parser


def _slos_from_args(args: argparse.Namespace) -> dict[str, float]:
    slos: dict[str, float] = {}
    if args.interactive_slo_ms > 0:
        slos["interactive"] = args.interactive_slo_ms / 1000.0
    if args.best_effort_slo_ms > 0:
        slos["best_effort"] = args.best_effort_slo_ms / 1000.0
    return slos


def _spec_from_args(args: argparse.Namespace) -> WorkloadSpec:
    return WorkloadSpec(
        requests=args.requests,
        base_rate_rps=args.base_rate,
        burst_rate_rps=args.burst_rate,
        burst_every_s=args.burst_every,
        burst_duration_s=args.burst_duration,
        prefix_groups=args.prefix_groups,
        prefix_tokens=args.prefix_tokens,
        zipf_alpha=args.zipf_alpha,
        best_effort_fraction=args.best_effort_fraction,
        tenants=args.tenants,
        seed=args.seed,
    )


async def _run_self_hosted(
    spec: WorkloadSpec, slos: Optional[dict] = None
) -> LoadReport:
    # Imported lazily: the target path must not pay gateway build imports.
    from repro.gateway.bootstrap import GatewayConfig, build_gateway

    config = GatewayConfig(**_SELF_HOST_KWARGS)
    print(
        "self-hosting demo gateway (calibrating MILLION codebooks ...)",
        flush=True,
    )
    server = build_gateway(config)
    host, port = await server.start(port=0)
    try:
        engine = server.router.runners[0].engine
        schedule = synthesize(
            spec,
            vocab_size=engine.model.config.vocab_size,
            max_seq_len=config.max_seq_len,
        )
        print(f"replaying {len(schedule)} requests against {host}:{port}")
        started = time.perf_counter()
        outcomes = await replay(host, port, schedule)
        return LoadReport.from_outcomes(
            outcomes,
            duration_s=time.perf_counter() - started,
            ttft_slo_s=slos,
        )
    finally:
        await server.stop()


async def _run_target(args: argparse.Namespace, spec: WorkloadSpec) -> LoadReport:
    host, _, port = args.target.rpartition(":")
    schedule = synthesize(
        spec, vocab_size=args.vocab_size, max_seq_len=args.max_seq_len
    )
    print(f"replaying {len(schedule)} requests against {args.target}")
    started = time.perf_counter()
    outcomes = await replay(host or "127.0.0.1", int(port), schedule)
    return LoadReport.from_outcomes(
        outcomes,
        duration_s=time.perf_counter() - started,
        ttft_slo_s=_slos_from_args(args),
    )


def _smoke_check(report: LoadReport) -> Optional[str]:
    """Pass/fail verdict for ``--smoke``; None means pass."""
    summary = report.summary()
    if summary["completed"] == 0:
        return "no request completed"
    for label, stats in summary["classes"].items():
        if stats["sent"] == 0:
            return f"workload synthesized no {label} requests"
        if stats["completed"] == 0 and stats["rejected"] == 0:
            return f"every {label} request errored"
        if stats["completed"] and stats["ttft_p50_s"] is None:
            return f"{label} completed requests but recorded no TTFT"
    return None


def main(argv: Optional[list[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.smoke:
        spec = _SMOKE_SPEC
        report = asyncio.run(_run_self_hosted(spec, _slos_from_args(args)))
    elif args.target:
        spec = _spec_from_args(args)
        report = asyncio.run(_run_target(args, spec))
    elif args.self_host:
        spec = _spec_from_args(args)
        report = asyncio.run(_run_self_hosted(spec, _slos_from_args(args)))
    else:
        _parser().error("one of --target, --self-host or --smoke is required")
        return 2  # unreachable; parser.error raises SystemExit
    print(report.render())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.summary(), handle, indent=2)
        print(f"summary written to {args.json}")
    if args.smoke:
        verdict = _smoke_check(report)
        if verdict is not None:
            print(f"loadgen smoke FAIL: {verdict}", file=sys.stderr)
            return 1
        print("loadgen smoke PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
