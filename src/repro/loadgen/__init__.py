"""Trace-driven load harness for the serving gateway.

Synthesizes bursty, prefix-sharing, mixed-tenant workloads and replays them
open-loop over real HTTP against a :class:`~repro.gateway.server.GatewayServer`,
measuring TTFT/ITL per priority class with the same bucketed histograms the
gateway itself exports:

* :mod:`~repro.loadgen.workload` — seeded schedule synthesis
  (:class:`WorkloadSpec` → :func:`synthesize`): Poisson arrivals with burst
  episodes, Zipf-shared prefixes, per-class length mixes, tenant tags;
* :mod:`~repro.loadgen.client` — minimal asyncio HTTP/SSE client and the
  open-loop :func:`replay` driver;
* :mod:`~repro.loadgen.report` — :class:`LoadReport`: p50/p99 TTFT/ITL and
  completion/429 accounting per class and per tenant;
* ``python -m repro.loadgen`` — the CLI (``--target`` an existing gateway,
  ``--self-host`` a demo one, ``--smoke`` for CI).

The ``serving.slo_load`` benchmark replays one schedule against FIFO and
SLO-aware gateways and gates on the interactive p99 TTFT ratio.
"""

from repro.loadgen.client import RequestOutcome, replay, replay_sync, run_one
from repro.loadgen.report import ClassReport, LoadReport
from repro.loadgen.workload import ScheduledRequest, WorkloadSpec, synthesize

__all__ = [
    "ClassReport",
    "LoadReport",
    "RequestOutcome",
    "ScheduledRequest",
    "WorkloadSpec",
    "replay",
    "replay_sync",
    "run_one",
    "synthesize",
]
