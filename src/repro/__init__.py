"""MILLION reproduction: outlier-immunized KV-cache product quantization.

The package is organised by subsystem:

* :mod:`repro.models` — NumPy transformer substrate with pluggable KV caches;
* :mod:`repro.data` — synthetic corpora and long-context document builders;
* :mod:`repro.quant` — uniform/non-uniform quantization and the KIVI/KVQuant
  baseline caches;
* :mod:`repro.baselines` — sparse-attention alternatives (sliding window with
  attention sinks, heavy-hitter eviction);
* :mod:`repro.core` — the MILLION product-quantized cache, calibration and
  the high-level :class:`~repro.core.engine.MillionEngine`;
* :mod:`repro.serving` — continuous-batching multi-sequence serving on top
  of one calibrated model (:class:`~repro.serving.engine.BatchedMillionEngine`);
* :mod:`repro.gateway` — asyncio HTTP front door: OpenAI-style streaming
  completions, prefix-affinity multi-replica routing, Prometheus metrics;
* :mod:`repro.perf` — analytic GPU performance model (TPOT, breakdowns, OOM);
* :mod:`repro.eval` — perplexity, KV-distribution analysis, LongBench
  substitute;
* :mod:`repro.training` — tiny NumPy autograd/trainer so accuracy
  experiments can use genuinely trained models.

Quickstart::

    from repro.models import load_model
    from repro.data import load_corpus
    from repro.core import MillionConfig, MillionEngine

    model = load_model("llama-2-7b-tiny")
    calibration = load_corpus("wikitext2-syn", "train", n_tokens=1024)
    engine = MillionEngine.calibrate(
        model, calibration, MillionConfig.for_equivalent_bits(model.config.head_dim, bits=4)
    )
    tokens = engine.generate(load_corpus("wikitext2-syn", "test", 128), max_new_tokens=32)
"""

from repro.core import MillionConfig, MillionEngine, ProductQuantizer
from repro.gateway import GatewayServer
from repro.models import ModelConfig, TransformerLM, load_model
from repro.serving import BatchedMillionEngine
from repro.version import __version__

__all__ = [
    "MillionConfig",
    "MillionEngine",
    "BatchedMillionEngine",
    "GatewayServer",
    "ProductQuantizer",
    "ModelConfig",
    "TransformerLM",
    "load_model",
    "__version__",
]
