"""Uniform integer quantization (Eq. 2/3 of the paper).

Supports per-tensor, per-axis and group-wise granularity in both symmetric
and asymmetric forms.  This is the workhorse behind the KIVI-like baseline
and the "uniform quantization struggles with outliers" motivation study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.utils.validation import require


@dataclass
class UniformQuantParams:
    """Scale/zero-point metadata for a uniformly quantized tensor."""

    scale: np.ndarray
    zero_point: np.ndarray
    nbits: int
    symmetric: bool
    shape: tuple[int, ...]

    def metadata_bytes(self, bytes_per_value: float = 2.0) -> float:
        """Footprint of the scales and zero points (fp16 accounting)."""
        count = self.scale.size + (0 if self.symmetric else self.zero_point.size)
        return float(count * bytes_per_value)


@dataclass
class UniformQuantized:
    """Quantized codes plus the parameters needed to de-quantize them."""

    codes: np.ndarray
    params: UniformQuantParams

    def dequantize(self) -> np.ndarray:
        return dequantize_uniform(self.codes, self.params)

    def memory_bytes(self, metadata_bytes_per_value: float = 2.0) -> float:
        code_bits = self.codes.size * self.params.nbits
        return code_bits / 8.0 + self.params.metadata_bytes(metadata_bytes_per_value)


def _reduction_axes(ndim: int, keep_axes: Optional[Sequence[int]]) -> tuple[int, ...]:
    if keep_axes is None:
        return tuple(range(ndim))
    keep = {a % ndim for a in keep_axes}
    return tuple(a for a in range(ndim) if a not in keep)


def quantize_uniform(
    x: np.ndarray,
    nbits: int,
    symmetric: bool = False,
    keep_axes: Optional[Sequence[int]] = None,
) -> UniformQuantized:
    """Quantize ``x`` to ``nbits`` with one (scale, zero) per kept-axis slice.

    ``keep_axes=None`` gives per-tensor parameters; ``keep_axes=(1,)`` on a
    ``(tokens, channels)`` tensor gives per-channel parameters, and
    ``keep_axes=(0,)`` gives per-token parameters.
    """
    require(1 <= nbits <= 16, f"nbits must be in [1, 16], got {nbits}")
    x = np.asarray(x, dtype=np.float32)
    reduce_axes = _reduction_axes(x.ndim, keep_axes)
    if symmetric:
        qmax = float(2 ** (nbits - 1) - 1)
        max_abs = np.max(np.abs(x), axis=reduce_axes, keepdims=True) if reduce_axes else np.abs(x)
        scale = np.maximum(max_abs, 1e-12) / max(qmax, 1.0)
        zero = np.zeros_like(scale)
        codes = np.clip(np.rint(x / scale), -qmax - 1, qmax).astype(np.int32)
    else:
        levels = float(2**nbits - 1)
        x_min = np.min(x, axis=reduce_axes, keepdims=True) if reduce_axes else x
        x_max = np.max(x, axis=reduce_axes, keepdims=True) if reduce_axes else x
        scale = np.maximum(x_max - x_min, 1e-12) / levels
        zero = np.rint(-x_min / scale)
        codes = np.clip(np.rint(x / scale + zero), 0, levels).astype(np.int32)
    params = UniformQuantParams(
        scale=scale.astype(np.float32),
        zero_point=zero.astype(np.float32),
        nbits=nbits,
        symmetric=symmetric,
        shape=x.shape,
    )
    return UniformQuantized(codes=codes, params=params)


def dequantize_uniform(codes: np.ndarray, params: UniformQuantParams) -> np.ndarray:
    """Inverse of :func:`quantize_uniform` (Eq. 3)."""
    codes = np.asarray(codes, dtype=np.float32)
    if params.symmetric:
        return (codes * params.scale).astype(np.float32)
    return ((codes - params.zero_point) * params.scale).astype(np.float32)


def quantize_groupwise(
    x: np.ndarray,
    nbits: int,
    group_size: int,
    axis: int = -1,
    symmetric: bool = False,
) -> tuple[UniformQuantized, np.ndarray]:
    """Group-wise quantization along ``axis``.

    The axis is padded to a multiple of ``group_size`` (padding is removed by
    the returned reconstruction).  Returns ``(quantized, reconstruction)``
    where the quantized object covers the padded/reshaped tensor.
    """
    require(group_size >= 1, f"group_size must be >= 1, got {group_size}")
    x = np.asarray(x, dtype=np.float32)
    axis = axis % x.ndim
    length = x.shape[axis]
    padded_length = int(np.ceil(length / group_size) * group_size)
    if padded_length != length:
        pad_width = [(0, 0)] * x.ndim
        pad_width[axis] = (0, padded_length - length)
        x_padded = np.pad(x, pad_width, mode="edge")
    else:
        x_padded = x
    moved = np.moveaxis(x_padded, axis, -1)
    grouped_shape = moved.shape[:-1] + (padded_length // group_size, group_size)
    grouped = moved.reshape(grouped_shape)
    quantized = quantize_uniform(
        grouped, nbits, symmetric=symmetric, keep_axes=tuple(range(grouped.ndim - 1))
    )
    reconstructed = quantized.dequantize().reshape(moved.shape)
    reconstructed = np.moveaxis(reconstructed, -1, axis)
    slicer = [slice(None)] * x.ndim
    slicer[axis] = slice(0, length)
    return quantized, reconstructed[tuple(slicer)].astype(np.float32)


def quantization_mse(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Mean squared reconstruction error."""
    x = np.asarray(x, dtype=np.float64)
    x_hat = np.asarray(x_hat, dtype=np.float64)
    if x.shape != x_hat.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {x_hat.shape}")
    return float(np.mean((x - x_hat) ** 2))


def quantization_snr_db(x: np.ndarray, x_hat: np.ndarray) -> float:
    """Signal-to-quantization-noise ratio in dB (higher is better)."""
    x = np.asarray(x, dtype=np.float64)
    noise = np.mean((x - np.asarray(x_hat, dtype=np.float64)) ** 2)
    signal = np.mean(x**2)
    if noise <= 0:
        return float("inf")
    return float(10.0 * np.log10(max(signal, 1e-30) / noise))
