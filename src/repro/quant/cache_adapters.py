"""Streaming quantized KV caches.

Every quantized cache follows the paper's dataflow (Fig. 5): keys/values of
the most recent append stay in a full-precision *pending* block, an optional
*residual window* of recent tokens also stays full precision, and everything
older is quantized in blocks.  Attention concatenates the quantized-past
scores with the full-precision recent scores before a single softmax — which
is mathematically identical to the online-softmax merge of Eq. (7) (a test
asserts this) but simpler to express in NumPy.

:class:`StreamingQuantizedKVCache` implements the streaming/bookkeeping part
and leaves three hooks to subclasses:

* ``_quantize_and_store``: compress a flushed block,
* ``_quantized_scores``: attention logits of the queries against the stored
  (compressed) keys,
* ``_quantized_weighted_values``: probability-weighted sum over the stored
  (compressed) values.

:class:`DequantizingKVCache` is the convenience base for schemes that
materialise ``(K̂, V̂)`` (KIVI-like and KVQuant-like); MILLION's cache extends
the streaming base directly and never de-quantizes keys.
"""

from __future__ import annotations

from abc import abstractmethod
from typing import Optional

import numpy as np

from repro.models.attention_math import attention_scores, repeat_kv_heads
from repro.models.config import ModelConfig
from repro.models.kv_cache import KVCacheLayer, fp16_kv_bytes
from repro.models.positional import alibi_bias
from repro.models.tensor_ops import softmax
from repro.quant.kivi import KiviConfig, KiviQuantizer
from repro.quant.kvquant import KVQuantEncodedBlock, KVQuantQuantizer
from repro.utils.validation import require


class StreamingQuantizedKVCache(KVCacheLayer):
    """Base class handling pending blocks, the residual window and attention."""

    def __init__(
        self,
        config: ModelConfig,
        residual_window: int = 0,
        flush_block_multiple: int = 1,
    ) -> None:
        super().__init__(config)
        require(residual_window >= 0, "residual_window must be >= 0")
        require(flush_block_multiple >= 1, "flush_block_multiple must be >= 1")
        # Local import: repro.core.__init__ pulls in calibration, which
        # imports this module — a top-level import would create a cycle.
        from repro.core.storage import PendingBuffer

        self.residual_window = residual_window
        self.flush_block_multiple = flush_block_multiple
        self._pending = PendingBuffer(config.kv_heads, config.head_dim)
        self._stored_tokens = 0

    # Streaming bookkeeping ------------------------------------------------

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        self._validate_append(keys, values)
        # Quantize whatever the residual window no longer protects *before*
        # adding the new block, mirroring the asynchronous quantization stream
        # that compresses older tokens while the new token is being processed.
        self._flush(keep=self.residual_window)
        self.append_pending(keys, values)

    def append_pending(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Stage new full-precision tokens *without* the pre-append flush.

        This is one half of :meth:`append`; the other half is the flush
        (:meth:`pop_flushable` + subclass storage + :meth:`account_flushed`).
        The fused batched decode path drives the halves separately so it can
        quantize the flushed rows of many sequences in one encoder call —
        the split changes who calls the encoder, not what is computed.
        """
        keys = np.asarray(keys, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        self._validate_append(keys, values)
        self._pending.append(keys, values)
        self._seq_len += keys.shape[0]

    def pop_flushable(self) -> tuple[np.ndarray, np.ndarray]:
        """Remove and return the rows the next append-triggered flush would store.

        Callers that take rows out through this method own the rest of the
        flush protocol: compress and store the rows, then call
        :meth:`account_flushed` with the row count.
        """
        flushable = self._flushable(self.residual_window)
        if flushable == 0:
            empty = np.zeros(
                (0, self.config.kv_heads, self.config.head_dim), dtype=np.float32
            )
            return empty, empty.copy()
        return self._pending.pop_front(flushable)

    def account_flushed(self, n_tokens: int) -> None:
        """Record that ``n_tokens`` popped rows are now in compressed storage."""
        require(n_tokens >= 0, "n_tokens must be >= 0")
        self._stored_tokens += n_tokens

    def pending_views(self) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy ``(keys, values)`` views of the pending full-precision rows."""
        return self._pending.keys_view(), self._pending.values_view()

    def flush_all(self) -> None:
        """Force-quantize every pending token (used by tests and calibration)."""
        self._flush(keep=0)

    @property
    def flush_state(self) -> tuple[int, int]:
        """``(stored_tokens, pending_tokens)`` — the cache's flush split.

        Two computations over the same tokens produce identical downstream
        KV only if they pass through the same sequence of flush states (a
        token's deeper-layer KV depends on which earlier tokens it attended
        to in quantized vs full-precision form).  Chunk-resumable protocols
        — the serving engine's chunked prefill, block-pool prefix adoption —
        therefore only resume at states the reference computation passed
        through; this property is how tests pin those states down.
        """
        return (self._stored_tokens, len(self._pending))

    def _pending_token_count(self) -> int:
        return len(self._pending)

    def _flushable(self, keep: int) -> int:
        """Rows a flush keeping ``keep`` pending tokens would quantize."""
        flushable = len(self._pending) - keep
        if self.flush_block_multiple > 1:
            flushable = (flushable // self.flush_block_multiple) * self.flush_block_multiple
        return max(flushable, 0)

    def flushable_rows(self) -> int:
        """Rows the next append-triggered flush would quantize.

        Lets a caller that allocates storage on flush boundaries (e.g. the
        serving block pool) predict the demand of the upcoming decode step
        *before* running it, so exhaustion can be handled by preempting a
        sequence instead of failing mid-forward.
        """
        return self._flushable(self.residual_window)

    def _absorb_stored_tokens(self, n_tokens: int) -> None:
        """Account for tokens whose compressed storage was installed externally.

        Used when already-quantized rows are adopted into the cache without
        going through :meth:`append` — e.g. shared prefix blocks from a block
        pool, where the quantized codes of an identical prompt prefix are
        reused instead of recomputed.  The caller is responsible for having
        installed the corresponding storage first.
        """
        require(n_tokens >= 0, "n_tokens must be >= 0")
        self._stored_tokens += n_tokens
        self._seq_len += n_tokens

    def _flush(self, keep: int) -> None:
        flushable = self._flushable(keep)
        if flushable == 0:
            return
        to_store_k, to_store_v = self._pending.pop_front(flushable)
        self._quantize_and_store(to_store_k, to_store_v)
        self._stored_tokens += flushable

    def reset(self) -> None:
        super().reset()
        self._pending.clear()
        self._stored_tokens = 0

    @property
    def stored_tokens(self) -> int:
        """Number of tokens currently held in compressed form."""
        return self._stored_tokens

    @property
    def pending_tokens(self) -> int:
        """Number of tokens currently held in full precision."""
        return self._pending_token_count()

    # Attention -------------------------------------------------------------

    def attend(
        self,
        queries: np.ndarray,
        query_positions: np.ndarray,
        scale: float,
        alibi_head_slopes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float32)
        n_queries, n_heads, head_dim = queries.shape
        score_blocks: list[np.ndarray] = []
        stored = self._stored_tokens
        if stored > 0:
            stored_positions = np.arange(stored)
            stored_scores = self._quantized_scores(queries, scale)
            if alibi_head_slopes is not None:
                stored_scores = stored_scores + alibi_bias(
                    alibi_head_slopes, query_positions, stored_positions
                )
            score_blocks.append(stored_scores)
        # Zero-copy views into the contiguous pending buffer: a decode step
        # touches O(window) bytes here, not O(context).
        pending_keys = self._pending.keys_view()
        pending_values = self._pending.values_view()
        pending_positions = np.arange(stored, stored + pending_keys.shape[0])
        if pending_keys.shape[0] > 0:
            pending_scores = attention_scores(
                queries,
                pending_keys,
                query_positions,
                pending_positions,
                scale,
                alibi_head_slopes=alibi_head_slopes,
                causal=True,
            )
            score_blocks.append(pending_scores)
        if not score_blocks:
            raise RuntimeError("attend called on an empty cache")
        scores = np.concatenate(score_blocks, axis=-1)
        probs = softmax(scores, axis=-1)
        context = np.zeros((n_queries, n_heads, head_dim), dtype=np.float32)
        if stored > 0:
            context += self._quantized_weighted_values(probs[..., :stored])
        if pending_keys.shape[0] > 0:
            pending_probs = probs[..., stored:]
            expanded_values = repeat_kv_heads(pending_values, n_heads)
            context += np.einsum("hqk,khd->qhd", pending_probs, expanded_values).astype(
                np.float32
            )
        return context

    # Memory accounting -------------------------------------------------------

    def memory_bytes(self) -> float:
        pending_fp = fp16_kv_bytes(
            self._pending_token_count(), self.config.kv_heads, self.config.head_dim
        )
        return pending_fp + self.quantized_memory_bytes()

    # Hooks -------------------------------------------------------------------

    @abstractmethod
    def _quantize_and_store(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Compress and store a flushed ``(t, kv_heads, head_dim)`` block."""

    @abstractmethod
    def _quantized_scores(self, queries: np.ndarray, scale: float) -> np.ndarray:
        """Attention logits against stored tokens, shape ``(heads, nq, stored)``."""

    @abstractmethod
    def _quantized_weighted_values(self, probs: np.ndarray) -> np.ndarray:
        """Probability-weighted sum over stored values, shape ``(nq, heads, d)``."""

    @abstractmethod
    def quantized_memory_bytes(self) -> float:
        """Footprint of the compressed storage (codes + metadata + codebooks)."""


class DequantizingKVCache(StreamingQuantizedKVCache):
    """Base for schemes that materialise de-quantized keys/values for attention.

    Each flushed block's reconstruction is recorded once at quantization time
    via :meth:`_store_dequantized`; attention then reads contiguous zero-copy
    views instead of re-decoding and re-concatenating every stored block on
    every step.  Decoding a block is deterministic, so materialising eagerly
    is bit-identical to the former decode-at-attend behaviour.  The stores
    model the GPU-side working buffer and are excluded from the compressed
    footprint reported by ``quantized_memory_bytes``.
    """

    def __init__(
        self,
        config: ModelConfig,
        residual_window: int = 0,
        flush_block_multiple: int = 1,
    ) -> None:
        super().__init__(
            config,
            residual_window=residual_window,
            flush_block_multiple=flush_block_multiple,
        )
        from repro.core.storage import CodeStore  # local import avoids a cycle

        row_shape = (config.kv_heads, config.head_dim)
        self._dequant_keys = CodeStore(row_shape, np.float32)
        self._dequant_values = CodeStore(row_shape, np.float32)

    def _store_dequantized(self, keys_hat: np.ndarray, values_hat: np.ndarray) -> None:
        """Record a flushed block's ``(t, kv_heads, d)`` reconstruction."""
        self._dequant_keys.append(keys_hat)
        self._dequant_values.append(values_hat)

    def _quantized_scores(self, queries: np.ndarray, scale: float) -> np.ndarray:
        keys, _ = self._materialize_quantized()
        expanded = repeat_kv_heads(keys, queries.shape[1])
        return (np.einsum("qhd,khd->hqk", queries, expanded) * scale).astype(np.float32)

    def _quantized_weighted_values(self, probs: np.ndarray) -> np.ndarray:
        _, values = self._materialize_quantized()
        expanded = repeat_kv_heads(values, probs.shape[0])
        return np.einsum("hqk,khd->qhd", probs, expanded).astype(np.float32)

    def _materialize_quantized(self) -> tuple[np.ndarray, np.ndarray]:
        """De-quantized ``(keys, values)`` views of shape ``(stored, kv_heads, d)``."""
        # Fail fast if a subclass' _quantize_and_store forgot to record its
        # reconstruction — attending with fewer rows than _stored_tokens
        # would silently misattribute probabilities.
        require(
            len(self._dequant_keys) == self._stored_tokens,
            f"dequantized store holds {len(self._dequant_keys)} tokens but "
            f"{self._stored_tokens} are flushed; _quantize_and_store must call "
            "_store_dequantized for every block",
        )
        return self._dequant_keys.view(), self._dequant_values.view()

    def reset(self) -> None:
        super().reset()
        self._dequant_keys.clear()
        self._dequant_values.clear()

    def dequantization_error(self) -> dict[str, float]:
        """Diagnostics hook: subclasses may override to report reconstruction MSE."""
        return {}


class KiviKVCache(DequantizingKVCache):
    """KIVI-like cache: per-channel keys, per-token values, grouped flushing."""

    def __init__(self, config: ModelConfig, kivi_config: KiviConfig | None = None) -> None:
        kivi_config = kivi_config or KiviConfig()
        super().__init__(
            config,
            residual_window=kivi_config.residual_length,
            flush_block_multiple=kivi_config.group_size,
        )
        self.quantizer = KiviQuantizer(kivi_config)
        self._key_blocks: list = []
        self._value_blocks: list = []

    def _flatten(self, block: np.ndarray) -> np.ndarray:
        return block.reshape(block.shape[0], -1)

    def _unflatten(self, block: np.ndarray) -> np.ndarray:
        return block.reshape(block.shape[0], self.config.kv_heads, self.config.head_dim)

    def _quantize_and_store(self, keys: np.ndarray, values: np.ndarray) -> None:
        key_block = self.quantizer.quantize_keys(self._flatten(keys))
        value_block = self.quantizer.quantize_values(self._flatten(values))
        self._key_blocks.append(key_block)
        self._value_blocks.append(value_block)
        self._store_dequantized(
            self._unflatten(key_block.dequantize()),
            self._unflatten(value_block.dequantize()),
        )

    def quantized_memory_bytes(self) -> float:
        return float(
            sum(b.memory_bytes() for b in self._key_blocks)
            + sum(b.memory_bytes() for b in self._value_blocks)
        )

    def reset(self) -> None:
        super().reset()
        self._key_blocks.clear()
        self._value_blocks.clear()


class KVQuantKVCache(DequantizingKVCache):
    """KVQuant-like cache: calibrated non-uniform quantization, optional outliers."""

    def __init__(
        self,
        config: ModelConfig,
        quantizer: KVQuantQuantizer,
        residual_window: int = 0,
    ) -> None:
        super().__init__(config, residual_window=residual_window)
        require(quantizer.is_fitted, "KVQuantKVCache requires a fitted quantizer")
        self.quantizer = quantizer
        self._key_blocks: list[KVQuantEncodedBlock] = []
        self._value_blocks: list[KVQuantEncodedBlock] = []

    def _quantize_and_store(self, keys: np.ndarray, values: np.ndarray) -> None:
        key_block = self.quantizer.encode_keys(keys.reshape(keys.shape[0], -1))
        value_block = self.quantizer.encode_values(values.reshape(values.shape[0], -1))
        self._key_blocks.append(key_block)
        self._value_blocks.append(value_block)
        shape = (-1, self.config.kv_heads, self.config.head_dim)
        self._store_dequantized(
            self.quantizer.decode_keys(key_block).reshape(shape),
            self.quantizer.decode_values(value_block).reshape(shape),
        )

    def quantized_memory_bytes(self) -> float:
        blocks = sum(b.memory_bytes() for b in self._key_blocks) + sum(
            b.memory_bytes() for b in self._value_blocks
        )
        return float(blocks + self.quantizer.codebook_bytes())

    def reset(self) -> None:
        super().reset()
        self._key_blocks.clear()
        self._value_blocks.clear()


class KiviCacheFactory:
    """Creates one :class:`KiviKVCache` per layer."""

    def __init__(self, kivi_config: KiviConfig | None = None) -> None:
        self.kivi_config = kivi_config or KiviConfig()

    def create(self, layer_index: int, config: ModelConfig) -> KVCacheLayer:
        return KiviKVCache(config, self.kivi_config)


class KVQuantCacheFactory:
    """Creates :class:`KVQuantKVCache` layers from per-layer fitted quantizers."""

    def __init__(
        self,
        quantizers: dict[int, KVQuantQuantizer],
        residual_window: int = 0,
    ) -> None:
        require(len(quantizers) > 0, "quantizers mapping must not be empty")
        self.quantizers = dict(quantizers)
        self.residual_window = residual_window

    def create(self, layer_index: int, config: ModelConfig) -> KVCacheLayer:
        if layer_index not in self.quantizers:
            raise KeyError(f"no fitted KVQuant quantizer for layer {layer_index}")
        return KVQuantKVCache(
            config, self.quantizers[layer_index], residual_window=self.residual_window
        )
