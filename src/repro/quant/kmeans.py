"""Lloyd's k-means with k-means++ seeding.

Shared by the product quantizer (per-subspace codebooks) and the KVQuant-like
baseline (1-D non-uniform quantization).  Pure NumPy, deterministic for a
given seed, and robust to degenerate inputs (fewer samples than clusters,
empty clusters).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, get_rng
from repro.utils.validation import require


@dataclass
class KMeansResult:
    """Outcome of a k-means run."""

    centroids: np.ndarray  # (n_clusters, dim)
    assignments: np.ndarray  # (n_samples,)
    inertia: float
    n_iter: int

    @property
    def n_clusters(self) -> int:
        return self.centroids.shape[0]


def _pairwise_sq_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape ``(n_points, n_centroids)``."""
    p_sq = np.einsum("nd,nd->n", points, points)[:, None]
    c_sq = np.einsum("kd,kd->k", centroids, centroids)[None, :]
    cross = points @ centroids.T
    distances = p_sq + c_sq - 2.0 * cross
    return np.maximum(distances, 0.0)


def _kmeans_plus_plus(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ initial centroids."""
    n = data.shape[0]
    centroids = np.empty((n_clusters, data.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    closest = _pairwise_sq_distances(data, centroids[:1]).reshape(-1)
    for i in range(1, n_clusters):
        total = closest.sum()
        if total <= 0.0:
            # All points coincide with chosen centroids; pick uniformly.
            idx = int(rng.integers(n))
        else:
            probs = closest / total
            idx = int(rng.choice(n, p=probs))
        centroids[i] = data[idx]
        new_dist = _pairwise_sq_distances(data, centroids[i : i + 1]).reshape(-1)
        closest = np.minimum(closest, new_dist)
    return centroids


def kmeans(
    data: np.ndarray,
    n_clusters: int,
    n_iters: int = 25,
    seed: SeedLike = None,
    init: str = "kmeans++",
    tol: float = 1e-6,
) -> KMeansResult:
    """Cluster ``data`` of shape ``(n_samples, dim)`` into ``n_clusters`` groups.

    When ``n_samples < n_clusters`` the surplus centroids are jittered copies
    of existing samples so the returned codebook always has the requested
    size (product quantization relies on a fixed codebook shape).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim == 1:
        data = data[:, None]
    require(data.ndim == 2, f"data must be 2-D, got shape {data.shape}")
    require(data.shape[0] >= 1, "data must contain at least one sample")
    require(n_clusters >= 1, f"n_clusters must be >= 1, got {n_clusters}")
    require(n_iters >= 1, f"n_iters must be >= 1, got {n_iters}")
    require(init in ("kmeans++", "random"), f"unknown init {init!r}")
    rng = get_rng(seed)
    n_samples, dim = data.shape

    if n_samples <= n_clusters:
        # Degenerate: every sample is its own centroid, pad with jitter.
        scale = float(np.std(data)) if n_samples > 1 else 1.0
        scale = scale if scale > 0 else 1.0
        pad = data[rng.integers(0, n_samples, size=n_clusters - n_samples)]
        pad = pad + rng.normal(0.0, 1e-3 * scale, size=pad.shape)
        centroids = np.concatenate([data, pad], axis=0)
        assignments = np.arange(n_samples)
        return KMeansResult(
            centroids=centroids.astype(np.float32),
            assignments=assignments.astype(np.int64),
            inertia=0.0,
            n_iter=0,
        )

    if init == "kmeans++":
        centroids = _kmeans_plus_plus(data, n_clusters, rng)
    else:
        centroids = data[rng.choice(n_samples, size=n_clusters, replace=False)].copy()

    assignments = np.zeros(n_samples, dtype=np.int64)
    prev_inertia = np.inf
    n_iter = 0
    for n_iter in range(1, n_iters + 1):
        distances = _pairwise_sq_distances(data, centroids)
        assignments = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(n_samples), assignments].sum())
        # Update step.
        counts = np.bincount(assignments, minlength=n_clusters).astype(np.float64)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, data)
        non_empty = counts > 0
        centroids[non_empty] = sums[non_empty] / counts[non_empty, None]
        # Re-seed empty clusters at the points farthest from their centroid.
        empty = np.flatnonzero(~non_empty)
        if empty.size:
            farthest = np.argsort(-distances[np.arange(n_samples), assignments])
            centroids[empty] = data[farthest[: empty.size]]
        if prev_inertia - inertia <= tol * max(prev_inertia, 1.0):
            prev_inertia = inertia
            break
        prev_inertia = inertia

    distances = _pairwise_sq_distances(data, centroids)
    assignments = np.argmin(distances, axis=1)
    inertia = float(distances[np.arange(n_samples), assignments].sum())
    return KMeansResult(
        centroids=centroids.astype(np.float32),
        assignments=assignments.astype(np.int64),
        inertia=inertia,
        n_iter=n_iter,
    )


def assign_to_centroids(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment for ``data`` (used at encode time)."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim == 1:
        data = data[:, None]
    centroids = np.asarray(centroids, dtype=np.float64)
    distances = _pairwise_sq_distances(data, centroids)
    return np.argmin(distances, axis=1).astype(np.int64)
