"""KVQuant-like non-uniform KV quantization with optional outlier isolation.

The scheme follows Hooper et al. (2024) at the algorithmic level:

* **keys** are quantized per-channel with a non-uniform (k-means) codebook
  fitted offline on calibration samples,
* **values** are quantized per-token: each token vector is scaled by its
  maximum magnitude and the normalised entries are snapped to a shared
  non-uniform level table,
* optionally the top ``outlier_fraction`` of entries (by magnitude) are kept
  in a sparse full-precision side structure and restored after
  de-quantization — the "-1%" configurations of Tables II and III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.quant.kmeans import kmeans
from repro.quant.nuq import NonUniformQuantizer1D
from repro.quant.outliers import SparseOutliers, split_outliers
from repro.utils.rng import SeedLike, get_rng
from repro.utils.validation import require


@dataclass
class KVQuantEncodedBlock:
    """One encoded block of keys or values."""

    codes: np.ndarray
    scales: Optional[np.ndarray]
    outliers: Optional[SparseOutliers]
    nbits: int

    def memory_bytes(self, metadata_bytes_per_value: float = 2.0) -> float:
        total = self.codes.size * self.nbits / 8.0
        if self.scales is not None:
            total += self.scales.size * metadata_bytes_per_value
        if self.outliers is not None:
            total += self.outliers.memory_bytes()
        return float(total)


class KVQuantQuantizer:
    """Calibrated non-uniform quantizer for one layer's KV cache.

    Call :meth:`fit` with calibration keys/values of shape
    ``(samples, kv_heads * head_dim)`` before encoding.
    """

    def __init__(
        self,
        nbits: int = 4,
        outlier_fraction: float = 0.0,
        seed: SeedLike = 0,
    ) -> None:
        require(1 <= nbits <= 8, f"nbits must be in [1, 8], got {nbits}")
        require(0.0 <= outlier_fraction < 1.0, "outlier_fraction must be in [0, 1)")
        self.nbits = nbits
        self.n_levels = 2**nbits
        self.outlier_fraction = outlier_fraction
        self.seed = seed
        self._key_quantizer = NonUniformQuantizer1D(nbits)
        self._value_levels: np.ndarray | None = None  # (n_levels,) in [-1, 1]

    @property
    def is_fitted(self) -> bool:
        return self._key_quantizer.is_fitted and self._value_levels is not None

    def fit(self, key_samples: np.ndarray, value_samples: np.ndarray) -> "KVQuantQuantizer":
        """Fit key channel codebooks and the shared normalised value levels."""
        key_samples = np.asarray(key_samples, dtype=np.float32)
        value_samples = np.asarray(value_samples, dtype=np.float32)
        require(key_samples.ndim == 2, "key_samples must be 2-D (samples, channels)")
        require(value_samples.ndim == 2, "value_samples must be 2-D (samples, channels)")
        rng = get_rng(self.seed)
        calibration_keys = key_samples
        if self.outlier_fraction > 0.0:
            calibration_keys, _ = split_outliers(key_samples, self.outlier_fraction)
        self._key_quantizer.fit(calibration_keys, seed=rng)
        normalized = self._normalize_values(value_samples)[0].reshape(-1, 1)
        max_fit_samples = 16384
        if normalized.shape[0] > max_fit_samples:
            idx = rng.choice(normalized.shape[0], size=max_fit_samples, replace=False)
            normalized = normalized[idx]
        result = kmeans(normalized, self.n_levels, n_iters=20, seed=rng)
        self._value_levels = np.sort(result.centroids.reshape(-1)).astype(np.float32)
        return self

    # Keys ----------------------------------------------------------------

    def encode_keys(self, keys: np.ndarray) -> KVQuantEncodedBlock:
        """Encode a ``(tokens, channels)`` key block."""
        self._require_fitted()
        keys = np.asarray(keys, dtype=np.float32)
        outliers = None
        dense = keys
        if self.outlier_fraction > 0.0:
            dense, outliers = split_outliers(keys, self.outlier_fraction)
        codes = self._key_quantizer.encode(dense)
        return KVQuantEncodedBlock(codes=codes, scales=None, outliers=outliers, nbits=self.nbits)

    def decode_keys(self, block: KVQuantEncodedBlock) -> np.ndarray:
        """Reconstruct keys from an encoded block (restoring sparse outliers)."""
        self._require_fitted()
        decoded = self._key_quantizer.decode(block.codes)
        if block.outliers is not None:
            decoded = block.outliers.restore(decoded)
        return decoded

    # Values --------------------------------------------------------------

    def encode_values(self, values: np.ndarray) -> KVQuantEncodedBlock:
        """Encode a ``(tokens, channels)`` value block per token."""
        self._require_fitted()
        values = np.asarray(values, dtype=np.float32)
        outliers = None
        dense = values
        if self.outlier_fraction > 0.0:
            dense, outliers = split_outliers(values, self.outlier_fraction)
        normalized, scales = self._normalize_values(dense)
        boundaries = 0.5 * (self._value_levels[1:] + self._value_levels[:-1])
        codes = np.searchsorted(boundaries, normalized).astype(
            np.uint8 if self.nbits <= 8 else np.uint16
        )
        return KVQuantEncodedBlock(codes=codes, scales=scales, outliers=outliers, nbits=self.nbits)

    def decode_values(self, block: KVQuantEncodedBlock) -> np.ndarray:
        """Reconstruct values from an encoded block (restoring sparse outliers)."""
        self._require_fitted()
        require(block.scales is not None, "value block is missing per-token scales")
        decoded = self._value_levels[block.codes] * block.scales
        if block.outliers is not None:
            decoded = block.outliers.restore(decoded.astype(np.float32))
        return decoded.astype(np.float32)

    # Internals -------------------------------------------------------------

    @staticmethod
    def _normalize_values(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        scales = np.maximum(np.max(np.abs(values), axis=1, keepdims=True), 1e-12)
        return (values / scales).astype(np.float32), scales.astype(np.float32)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("KVQuantQuantizer must be fitted before use")

    def codebook_bytes(self, bytes_per_value: float = 2.0) -> float:
        """Footprint of the key channel codebooks and value level table."""
        total = self._key_quantizer.codebook_bytes(bytes_per_value)
        if self._value_levels is not None:
            total += self._value_levels.size * bytes_per_value
        return float(total)
