"""Outlier detection and sparse full-precision storage.

KVQuant's headline trick (and Table III's ablation) keeps the top ~1 % of
KV entries in a sparse full-precision side table and quantizes the clamped
remainder.  MILLION's claim is that product quantization makes this machinery
unnecessary; the benchmark for Table III uses this module for both schemes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require


@dataclass
class SparseOutliers:
    """Coordinates and original values of isolated outliers."""

    indices: np.ndarray  # (nnz, ndim) integer coordinates
    values: np.ndarray  # (nnz,) original full-precision values
    shape: tuple[int, ...]

    @property
    def count(self) -> int:
        return int(self.values.size)

    def restore(self, dense: np.ndarray) -> np.ndarray:
        """Write the full-precision outlier values back into ``dense`` (copy)."""
        if dense.shape != self.shape:
            raise ValueError(
                f"dense shape {dense.shape} does not match outlier shape {self.shape}"
            )
        restored = np.array(dense, dtype=np.float32, copy=True)
        if self.count:
            restored[tuple(self.indices.T)] = self.values
        return restored

    def memory_bytes(self, value_bytes: float = 2.0, index_bytes: float = 4.0) -> float:
        """Sparse storage footprint (fp16 values + int32 flat index per entry)."""
        return float(self.count * (value_bytes + index_bytes))


def outlier_threshold(x: np.ndarray, fraction: float) -> float:
    """Magnitude threshold above which the top ``fraction`` of entries fall."""
    require(0.0 <= fraction <= 1.0, f"fraction must be in [0, 1], got {fraction}")
    x = np.asarray(x)
    if fraction == 0.0 or x.size == 0:
        return float("inf")
    magnitude = np.abs(x).reshape(-1)
    k = max(1, int(round(fraction * magnitude.size)))
    return float(np.partition(magnitude, -k)[-k])


def split_outliers(x: np.ndarray, fraction: float) -> tuple[np.ndarray, SparseOutliers]:
    """Split ``x`` into (clamped dense part, sparse outliers).

    The densified part has outlier positions clamped to the threshold (keeping
    their sign) so the remaining distribution is narrow enough for low-bit
    quantization; the sparse part stores the original values for restoration.
    """
    x = np.asarray(x, dtype=np.float32)
    threshold = outlier_threshold(x, fraction)
    if not np.isfinite(threshold):
        empty = SparseOutliers(
            indices=np.zeros((0, x.ndim), dtype=np.int64),
            values=np.zeros(0, dtype=np.float32),
            shape=x.shape,
        )
        return x.copy(), empty
    mask = np.abs(x) >= threshold
    indices = np.argwhere(mask)
    values = x[mask].astype(np.float32)
    clamped = np.clip(x, -threshold, threshold).astype(np.float32)
    return clamped, SparseOutliers(indices=indices, values=values, shape=x.shape)


def outlier_channel_indices(x: np.ndarray, fraction: float, axis: int = -1) -> np.ndarray:
    """Channels (along ``axis``) with the largest mean absolute magnitude.

    Used by the distribution analysis to report which key channels carry the
    outliers (paper Fig. 2 discussion).
    """
    require(0.0 <= fraction <= 1.0, f"fraction must be in [0, 1], got {fraction}")
    x = np.asarray(x)
    axis = axis % x.ndim
    reduce_axes = tuple(a for a in range(x.ndim) if a != axis)
    magnitude = np.abs(x).mean(axis=reduce_axes)
    n = max(1, int(round(fraction * magnitude.size))) if fraction > 0 else 0
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    return np.argsort(-magnitude)[:n].astype(np.int64)
