"""Per-channel 1-D non-uniform quantization (KVQuant-style "nuq" datatype).

Each channel gets its own codebook of ``2**nbits`` scalar levels fitted with
1-D k-means on calibration data.  Encoding maps a value to its nearest level,
so high-density regions receive more levels than a uniform grid would give
them — this is the "non-uniform quantization" the paper compares against.
"""

from __future__ import annotations

import numpy as np

from repro.quant.kmeans import kmeans
from repro.utils.rng import SeedLike, get_rng
from repro.utils.validation import require


class NonUniformQuantizer1D:
    """Per-channel scalar non-uniform quantizer.

    Parameters
    ----------
    nbits:
        Bits per value; the codebook has ``2**nbits`` levels per channel.
    """

    def __init__(self, nbits: int) -> None:
        require(1 <= nbits <= 8, f"nbits must be in [1, 8], got {nbits}")
        self.nbits = nbits
        self.n_levels = 2**nbits
        self.levels: np.ndarray | None = None  # (channels, n_levels), sorted

    @property
    def is_fitted(self) -> bool:
        return self.levels is not None

    @property
    def n_channels(self) -> int:
        if self.levels is None:
            raise RuntimeError("quantizer is not fitted")
        return self.levels.shape[0]

    def fit(
        self,
        data: np.ndarray,
        seed: SeedLike = None,
        max_samples_per_channel: int = 4096,
        n_iters: int = 20,
    ) -> "NonUniformQuantizer1D":
        """Fit per-channel codebooks on ``data`` of shape ``(samples, channels)``."""
        data = np.asarray(data, dtype=np.float32)
        require(data.ndim == 2, f"data must be 2-D, got shape {data.shape}")
        require(data.shape[0] >= 1, "data must contain at least one sample")
        rng = get_rng(seed)
        n_samples, n_channels = data.shape
        levels = np.empty((n_channels, self.n_levels), dtype=np.float32)
        for channel in range(n_channels):
            column = data[:, channel]
            if n_samples > max_samples_per_channel:
                idx = rng.choice(n_samples, size=max_samples_per_channel, replace=False)
                column = column[idx]
            result = kmeans(
                column[:, None], self.n_levels, n_iters=n_iters, seed=rng, init="kmeans++"
            )
            levels[channel] = np.sort(result.centroids.reshape(-1))
        self.levels = levels
        return self

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Map ``x`` of shape ``(tokens, channels)`` to level indices."""
        if self.levels is None:
            raise RuntimeError("quantizer must be fitted before encoding")
        x = np.asarray(x, dtype=np.float32)
        require(
            x.ndim == 2 and x.shape[1] == self.levels.shape[0],
            f"x must have shape (tokens, {self.levels.shape[0]}), got {x.shape}",
        )
        codes = np.empty(x.shape, dtype=np.uint8 if self.nbits <= 8 else np.uint16)
        for channel in range(x.shape[1]):
            boundaries = 0.5 * (self.levels[channel, 1:] + self.levels[channel, :-1])
            codes[:, channel] = np.searchsorted(boundaries, x[:, channel])
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct values from level indices."""
        if self.levels is None:
            raise RuntimeError("quantizer must be fitted before decoding")
        codes = np.asarray(codes)
        require(
            codes.ndim == 2 and codes.shape[1] == self.levels.shape[0],
            f"codes must have shape (tokens, {self.levels.shape[0]}), got {codes.shape}",
        )
        out = np.empty(codes.shape, dtype=np.float32)
        for channel in range(codes.shape[1]):
            out[:, channel] = self.levels[channel][codes[:, channel]]
        return out

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip convenience: ``decode(encode(x))``."""
        return self.decode(self.encode(x))

    def codebook_bytes(self, bytes_per_value: float = 2.0) -> float:
        """Footprint of the per-channel level tables."""
        if self.levels is None:
            return 0.0
        return float(self.levels.size * bytes_per_value)
