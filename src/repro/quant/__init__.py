"""Quantization substrates and baseline KV-cache schemes (KIVI/KVQuant-like)."""

from repro.quant.cache_adapters import (
    DequantizingKVCache,
    KiviCacheFactory,
    KiviKVCache,
    KVQuantCacheFactory,
    KVQuantKVCache,
    StreamingQuantizedKVCache,
)
from repro.quant.integer import (
    UniformQuantized,
    UniformQuantParams,
    dequantize_uniform,
    quantization_mse,
    quantization_snr_db,
    quantize_groupwise,
    quantize_uniform,
)
from repro.quant.kivi import KiviConfig, KiviQuantizer
from repro.quant.kmeans import KMeansResult, assign_to_centroids, kmeans
from repro.quant.kvquant import KVQuantEncodedBlock, KVQuantQuantizer
from repro.quant.nuq import NonUniformQuantizer1D
from repro.quant.outliers import (
    SparseOutliers,
    outlier_channel_indices,
    outlier_threshold,
    split_outliers,
)

__all__ = [
    "DequantizingKVCache",
    "KiviCacheFactory",
    "KiviKVCache",
    "KVQuantCacheFactory",
    "KVQuantKVCache",
    "StreamingQuantizedKVCache",
    "UniformQuantized",
    "UniformQuantParams",
    "dequantize_uniform",
    "quantization_mse",
    "quantization_snr_db",
    "quantize_groupwise",
    "quantize_uniform",
    "KiviConfig",
    "KiviQuantizer",
    "KMeansResult",
    "assign_to_centroids",
    "kmeans",
    "KVQuantEncodedBlock",
    "KVQuantQuantizer",
    "NonUniformQuantizer1D",
    "SparseOutliers",
    "outlier_channel_indices",
    "outlier_threshold",
    "split_outliers",
]
