"""Quantization substrates and baseline KV-cache schemes (KIVI/KVQuant-like)."""

from repro.quant.cache_adapters import (
    DequantizingKVCache,
    KiviCacheFactory,
    KiviKVCache,
    KVQuantCacheFactory,
    KVQuantKVCache,
    StreamingQuantizedKVCache,
)
from repro.quant.integer import (
    UniformQuantized,
    UniformQuantParams,
    dequantize_uniform,
    quantization_mse,
    quantization_snr_db,
    quantize_groupwise,
    quantize_uniform,
)
from repro.quant.kivi import KiviConfig, KiviQuantizer
from repro.quant.kmeans import KMeansResult, assign_to_centroids, kmeans
from repro.quant.kvquant import KVQuantEncodedBlock, KVQuantQuantizer
from repro.quant.nuq import NonUniformQuantizer1D
from repro.quant.outliers import (
    SparseOutliers,
    outlier_channel_indices,
    outlier_threshold,
    split_outliers,
)
# Policy-layer exports resolve lazily (PEP 562): repro.quant is imported by
# repro.core.codebook during repro.core's own initialization, and the policy
# modules import from repro.core — an eager import here would be circular.
_POLICY_EXPORTS = {
    "DEFAULT_LADDER": "repro.quant.policy",
    "HeadAssignment": "repro.quant.policy",
    "HeadSensitivity": "repro.quant.policy",
    "QuantPolicy": "repro.quant.policy",
    "derive_policy": "repro.quant.policy",
    "measure_head_sensitivity": "repro.quant.policy",
    "million_variant": "repro.quant.policy",
    "HeadGroupKVCache": "repro.quant.policy_cache",
    "PolicyCacheFactory": "repro.quant.policy_cache",
    "head_subset_config": "repro.quant.policy_cache",
}


def __getattr__(name):
    module_name = _POLICY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value

__all__ = [
    "DequantizingKVCache",
    "KiviCacheFactory",
    "KiviKVCache",
    "KVQuantCacheFactory",
    "KVQuantKVCache",
    "StreamingQuantizedKVCache",
    "UniformQuantized",
    "UniformQuantParams",
    "dequantize_uniform",
    "quantization_mse",
    "quantization_snr_db",
    "quantize_groupwise",
    "quantize_uniform",
    "KiviConfig",
    "KiviQuantizer",
    "KMeansResult",
    "assign_to_centroids",
    "kmeans",
    "KVQuantEncodedBlock",
    "KVQuantQuantizer",
    "NonUniformQuantizer1D",
    "SparseOutliers",
    "outlier_channel_indices",
    "outlier_threshold",
    "split_outliers",
    "DEFAULT_LADDER",
    "HeadAssignment",
    "HeadSensitivity",
    "QuantPolicy",
    "derive_policy",
    "measure_head_sensitivity",
    "million_variant",
    "HeadGroupKVCache",
    "PolicyCacheFactory",
    "head_subset_config",
]
