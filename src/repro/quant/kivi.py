"""KIVI-like asymmetric integer quantization of the KV cache.

KIVI (Liu et al., 2024) quantizes the **key** cache per-channel (statistics
shared across the tokens of a group, separate per channel — which absorbs the
key channel outliers) and the **value** cache per-token, keeping a small
residual of recent tokens in full precision until a group fills up.  This
module provides the per-block quantizer; the streaming cache adapter in
:mod:`repro.quant.cache_adapters` handles grouping and the residual window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.integer import UniformQuantized, quantize_uniform
from repro.utils.validation import require, require_in

_GRANULARITIES = ("per-channel", "per-token", "per-tensor")


@dataclass(frozen=True)
class KiviConfig:
    """Configuration of the KIVI-like quantizer."""

    nbits: int = 4
    key_granularity: str = "per-channel"
    value_granularity: str = "per-token"
    symmetric: bool = False
    group_size: int = 32
    residual_length: int = 32

    def __post_init__(self) -> None:
        require(1 <= self.nbits <= 8, f"nbits must be in [1, 8], got {self.nbits}")
        require_in(self.key_granularity, _GRANULARITIES, "key_granularity")
        require_in(self.value_granularity, _GRANULARITIES, "value_granularity")
        require(self.group_size >= 1, "group_size must be >= 1")
        require(self.residual_length >= 0, "residual_length must be >= 0")


def _keep_axes(granularity: str) -> tuple[int, ...] | None:
    if granularity == "per-channel":
        return (1,)
    if granularity == "per-token":
        return (0,)
    return None


class KiviQuantizer:
    """Quantizes one block of flattened keys or values at a time.

    Blocks are 2-D ``(tokens, kv_heads * head_dim)`` tensors — the layout the
    streaming cache hands over when a token group is complete.
    """

    def __init__(self, config: KiviConfig | None = None) -> None:
        self.config = config or KiviConfig()

    def quantize_keys(self, keys: np.ndarray) -> UniformQuantized:
        """Per-channel (default) quantization of a key block."""
        keys = np.asarray(keys, dtype=np.float32)
        require(keys.ndim == 2, f"keys block must be 2-D, got shape {keys.shape}")
        return quantize_uniform(
            keys,
            self.config.nbits,
            symmetric=self.config.symmetric,
            keep_axes=_keep_axes(self.config.key_granularity),
        )

    def quantize_values(self, values: np.ndarray) -> UniformQuantized:
        """Per-token (default) quantization of a value block."""
        values = np.asarray(values, dtype=np.float32)
        require(values.ndim == 2, f"values block must be 2-D, got shape {values.shape}")
        return quantize_uniform(
            values,
            self.config.nbits,
            symmetric=self.config.symmetric,
            keep_axes=_keep_axes(self.config.value_granularity),
        )

    def bits_per_value(self) -> float:
        """Nominal code bits per cached scalar (excluding scale metadata)."""
        return float(self.config.nbits)
