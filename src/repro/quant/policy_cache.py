"""Policy-driven cache construction: head-group splitting per layer.

:class:`HeadGroupKVCache` is what lets heads with different schemes or
bit-widths coexist in one layer: attention is independent per head, so a
layer's cache can be composed of sub-caches over disjoint KV-head groups —
each group slices its own keys/values on append and its own (GQA-mapped)
query heads on attend, and the per-head contexts are reassembled exactly.
The composition is mathematically exact, not an approximation.

:class:`PolicyCacheFactory` builds per-layer caches from a
:class:`~repro.quant.policy.QuantPolicy`.  The crucial property is the
**single-group fast path**: a layer whose heads all share one assignment gets
the plain existing cache class (``MillionKVCacheLayer``, ``KiviKVCache``,
``KVQuantKVCache`` or ``FullPrecisionKVCacheLayer``) with the full layer
config — so a uniform-equivalent policy runs byte-for-byte the same code as
today's uniform factories, and token identity with the uniform path is
structural, not incidental (a test asserts it anyway).

The pooled-serving variant (all-MILLION policies whose code rows live in
shared ref-counted blocks) is :class:`repro.serving.memory.PooledPolicyCacheFactory`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

import numpy as np

from repro.core.config import MillionConfig
from repro.core.million_cache import MillionCacheFactory
from repro.models.config import ModelConfig
from repro.models.kv_cache import (
    FullPrecisionCacheFactory,
    KVCacheFactory,
    KVCacheLayer,
)
from repro.quant.cache_adapters import KiviCacheFactory, KVQuantCacheFactory
from repro.quant.kivi import KiviConfig
from repro.quant.kvquant import KVQuantQuantizer
from repro.quant.policy import HeadAssignment, QuantPolicy
from repro.utils.validation import require


def head_subset_config(config: ModelConfig, n_group_heads: int) -> ModelConfig:
    """Model config describing a KV-head subset of one layer.

    Sub-caches see a model whose KV width is just their group: ``head_dim``
    is preserved, the query-head count scales by the GQA group size.  Only
    shape-bearing fields change; everything a cache reads (``kv_heads``,
    ``head_dim``, ``max_seq_len``) stays consistent.
    """
    require(
        1 <= n_group_heads <= config.kv_heads,
        f"group must have 1..{config.kv_heads} heads, got {n_group_heads}",
    )
    group = config.gqa_group_size
    n_heads = n_group_heads * group
    return replace(
        config,
        n_heads=n_heads,
        n_kv_heads=n_group_heads,
        d_model=n_heads * config.head_dim,
    )


class HeadGroupKVCache(KVCacheLayer):
    """One layer's cache composed of per-head-group sub-caches.

    ``groups`` maps disjoint KV-head index tuples (together covering every
    head) to the sub-cache storing them.  Appends route each group's key and
    value heads to its sub-cache; attention routes each group's *query*
    heads (the GQA expansion of its KV heads) and reassembles the context
    rows in place.  Because softmax and the weighted value sum never mix
    heads, the result is bit-comparable to a single cache running the same
    scheme per head.
    """

    def __init__(
        self,
        config: ModelConfig,
        groups: Sequence[tuple[Sequence[int], KVCacheLayer]],
    ) -> None:
        super().__init__(config)
        require(len(groups) >= 1, "head groups must not be empty")
        seen: set[int] = set()
        gqa = config.gqa_group_size
        self._groups: list[tuple[np.ndarray, np.ndarray, KVCacheLayer]] = []
        for heads, cache in groups:
            head_idx = np.asarray(sorted(int(h) for h in heads), dtype=np.int64)
            require(head_idx.size >= 1, "every head group needs at least one head")
            require(
                not (set(head_idx.tolist()) & seen),
                "head groups must be disjoint",
            )
            require(
                cache.config.kv_heads == head_idx.size
                and cache.config.head_dim == config.head_dim,
                f"sub-cache config (kv_heads={cache.config.kv_heads}, "
                f"head_dim={cache.config.head_dim}) does not match group of "
                f"{head_idx.size} heads at head_dim={config.head_dim}",
            )
            seen.update(head_idx.tolist())
            query_idx = (head_idx[:, None] * gqa + np.arange(gqa)[None, :]).reshape(-1)
            self._groups.append((head_idx, query_idx, cache))
        require(
            seen == set(range(config.kv_heads)),
            f"head groups must cover every KV head 0..{config.kv_heads - 1}",
        )

    @property
    def sub_caches(self) -> list[KVCacheLayer]:
        """The per-group sub-caches, in group order."""
        return [cache for _, _, cache in self._groups]

    @property
    def groups(self) -> list[tuple[tuple[int, ...], KVCacheLayer]]:
        return [(tuple(heads.tolist()), cache) for heads, _, cache in self._groups]

    @property
    def seq_len(self) -> int:
        # Delegated: adoption of shared pool blocks installs tokens directly
        # into sub-caches, so the composite must not track its own counter.
        return self._groups[0][2].seq_len

    def append(self, keys: np.ndarray, values: np.ndarray) -> None:
        keys = np.asarray(keys, dtype=np.float32)
        values = np.asarray(values, dtype=np.float32)
        self._validate_append(keys, values)
        for heads, _, cache in self._groups:
            cache.append(keys[:, heads, :], values[:, heads, :])

    def attend(
        self,
        queries: np.ndarray,
        query_positions: np.ndarray,
        scale: float,
        alibi_head_slopes: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        queries = np.asarray(queries, dtype=np.float32)
        n_queries, n_heads, head_dim = queries.shape
        context = np.empty((n_queries, n_heads, head_dim), dtype=np.float32)
        for _, query_idx, cache in self._groups:
            slopes = (
                alibi_head_slopes[query_idx]
                if alibi_head_slopes is not None
                else None
            )
            context[:, query_idx, :] = cache.attend(
                queries[:, query_idx, :],
                query_positions,
                scale,
                alibi_head_slopes=slopes,
            )
        return context

    def flush_all(self) -> None:
        """Force-quantize pending tokens in every streaming sub-cache."""
        for _, _, cache in self._groups:
            flush = getattr(cache, "flush_all", None)
            if flush is not None:
                flush()

    def memory_bytes(self) -> float:
        return float(sum(cache.memory_bytes() for _, _, cache in self._groups))

    def reset(self) -> None:
        super().reset()
        for _, _, cache in self._groups:
            cache.reset()


class PolicyCacheFactory:
    """Builds per-layer caches from a :class:`QuantPolicy`.

    Providers are plain existing factories, one per scheme family:

    * ``million_factories[bits]`` — a calibrated
      :class:`~repro.core.million_cache.MillionCacheFactory` at that bit
      budget (its per-layer quantizers are trained on the layer's pooled
      head vectors, so they serve any head subset);
    * ``kivi_factories[bits]`` — data-free KIVI factories;
    * ``kvquant_quantizers[(layer, heads)]`` — per-group fitted KVQuant
      quantizers (KVQuant codebooks are per *channel*, so a head subset
      needs its own fit);
    * fp16 heads use a shared :class:`FullPrecisionCacheFactory`.

    A layer with a single head group returns the provider's cache directly
    (uniform fast path, see module docstring); multi-group layers compose a
    :class:`HeadGroupKVCache`.
    """

    def __init__(
        self,
        policy: QuantPolicy,
        model_config: ModelConfig,
        million_factories: Optional[dict[int, MillionCacheFactory]] = None,
        kivi_factories: Optional[dict[int, KiviCacheFactory]] = None,
        kvquant_quantizers: Optional[
            dict[tuple[int, tuple[int, ...]], KVQuantQuantizer]
        ] = None,
        kvquant_residual_window: int = 0,
    ) -> None:
        policy.validate_for_model(model_config)
        self.policy = policy
        self.model_config = model_config
        self.million_factories = dict(million_factories or {})
        self.kivi_factories = dict(kivi_factories or {})
        self.kvquant_quantizers = dict(kvquant_quantizers or {})
        self.kvquant_residual_window = kvquant_residual_window
        self._fp16_factory = FullPrecisionCacheFactory()
        for assignment in policy.distinct_assignments():
            if assignment.scheme == "million":
                require(
                    assignment.bits in self.million_factories,
                    f"policy uses million-{assignment.bits} but no calibrated "
                    "MillionCacheFactory was provided for that bit budget",
                )
            elif assignment.scheme == "kivi":
                self.kivi_factories.setdefault(
                    assignment.bits,
                    KiviCacheFactory(KiviConfig(nbits=assignment.bits)),
                )

    @classmethod
    def from_million_factory(
        cls, factory: MillionCacheFactory, policy: QuantPolicy, model_config: ModelConfig
    ) -> "PolicyCacheFactory":
        """Wrap an already-calibrated uniform MILLION factory.

        Only uniform-MILLION policies qualify; the resulting factory shares
        the given factory's trained quantizer objects, which is what makes a
        uniform-equivalent policy *token-identical* to the uniform path.
        """
        require(
            policy.is_uniform and policy.assignment(0, 0).scheme == "million",
            "from_million_factory requires a uniform all-MILLION policy",
        )
        bits = policy.assignment(0, 0).bits
        return cls(policy, model_config, million_factories={bits: factory})

    # Sub-cache construction ------------------------------------------------

    def _sub_factory(
        self, assignment: HeadAssignment, layer_index: int, heads: tuple[int, ...]
    ) -> KVCacheFactory:
        if assignment.scheme == "million":
            return self.million_factories[assignment.bits]
        if assignment.scheme == "kivi":
            return self.kivi_factories[assignment.bits]
        if assignment.scheme == "kvquant":
            key = (layer_index, heads)
            require(
                key in self.kvquant_quantizers,
                f"policy assigns kvquant to layer {layer_index} heads {heads} "
                "but no fitted quantizer was provided for that group",
            )
            return KVQuantCacheFactory(
                {layer_index: self.kvquant_quantizers[key]},
                residual_window=self.kvquant_residual_window,
            )
        return self._fp16_factory

    def create(self, layer_index: int, config: ModelConfig) -> KVCacheLayer:
        groups = self.policy.head_groups(layer_index)
        if len(groups) == 1:
            # Uniform fast path: the plain existing cache class over the full
            # layer config — identical code path to the uniform factories.
            assignment, heads = groups[0]
            return self._sub_factory(assignment, layer_index, heads).create(
                layer_index, config
            )
        sub_caches = []
        for assignment, heads in groups:
            sub_config = head_subset_config(config, len(heads))
            factory = self._sub_factory(assignment, layer_index, heads)
            sub_caches.append((heads, factory.create(layer_index, sub_config)))
        return HeadGroupKVCache(config, sub_caches)

    # Reporting / engine integration ----------------------------------------

    @property
    def million_config(self) -> Optional[MillionConfig]:
        """The single MILLION config when the policy is uniform MILLION.

        The serving engine keys its fused segment-ADC attention off this
        attribute; mixed policies return ``None`` and decode through the
        generic per-sequence attend inside the stacked forward.
        """
        if not self.policy.is_uniform:
            return None
        assignment = self.policy.assignment(0, 0)
        if assignment.scheme != "million":
            return None
        return self.million_factories[assignment.bits].million_config

    def bytes_per_token(self) -> float:
        """Modelled steady-state KV bytes per token under this policy."""
        return self.policy.bytes_per_token()


__all__ = [
    "HeadGroupKVCache",
    "PolicyCacheFactory",
    "head_subset_config",
]
