"""Mixed-precision KV quantization policies: per-(layer, head) assignments.

The paper applies one PQ configuration to every layer and head, but the
calibration pass already measures how differently heads behave — channel
variance, outlier mass and ADC reconstruction error all vary by an order of
magnitude across heads of the same tiny model.  A :class:`QuantPolicy` turns
those measurements into an explicit, committable artifact: every (layer,
KV head) gets a :class:`HeadAssignment` — a scheme (``million`` / ``kivi`` /
``kvquant`` / ``fp16``) plus a bit budget — derived under a global KV-bytes
budget by :func:`derive_policy`.

The policy layer is deliberately model-agnostic NumPy + JSON: sensitivity
scoring (:func:`measure_head_sensitivity`) consumes raw per-layer sample
tensors, so it has no dependency on the calibration collector (which lives
in :mod:`repro.core.calibration` and imports the cache stack).  Cache
construction from a policy lives in :mod:`repro.quant.policy_cache`.

Serialization is a small versioned JSON document carrying the model-shape
fingerprint, so a calibrated policy can be committed next to benchmark
baselines and refused loudly when applied to a different model.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.core.config import MillionConfig
from repro.core.pq import ProductQuantizer
from repro.models.config import ModelConfig
from repro.models.kv_cache import FP16_BYTES
from repro.quant.outliers import outlier_threshold
from repro.utils.validation import require

#: Cache schemes a head may be assigned.  ``fp16`` is the passthrough
#: (no quantization); the other three map onto the existing adapters.
SCHEMES = ("million", "kivi", "kvquant", "fp16")

#: Serialization format marker + version.
POLICY_FORMAT = "repro-quant-policy"
POLICY_VERSION = 1


@dataclass(frozen=True)
class HeadAssignment:
    """Scheme + bit budget for one KV head.

    ``bits`` is the *effective* bits per cached scalar (the paper's
    "4b"-style labels).  For ``million`` it selects an ``(M, nbits)`` preset
    via :meth:`MillionConfig.for_equivalent_bits`; for ``kivi``/``kvquant``
    it is the integer code width; for ``fp16`` it is fixed at 16.
    """

    scheme: str
    bits: int

    def __post_init__(self) -> None:
        require(self.scheme in SCHEMES, f"unknown scheme {self.scheme!r}")
        if self.scheme == "fp16":
            require(self.bits == 16, "fp16 passthrough must declare bits=16")
        else:
            require(1 <= self.bits <= 8, f"bits must be in [1, 8], got {self.bits}")

    def bytes_per_token(self, head_dim: int) -> float:
        """Modelled key+value code bytes per token for one head.

        Logical bits (``bits / 8`` bytes per scalar), excluding codebooks,
        scale metadata and the full-precision residual window — the same
        steady-state model every scheme is compared under, which is what
        makes a budget comparable across schemes.
        """
        if self.scheme == "fp16":
            return 2.0 * head_dim * FP16_BYTES
        if self.scheme == "million":
            variant = million_variant(head_dim, self.bits)
            return 2.0 * variant.m_subspaces * variant.nbits / 8.0
        return 2.0 * head_dim * self.bits / 8.0

    def to_json(self) -> dict:
        return {"scheme": self.scheme, "bits": self.bits}

    @classmethod
    def from_json(cls, data: dict) -> "HeadAssignment":
        require(isinstance(data, dict), "head assignment must be an object")
        return cls(scheme=str(data["scheme"]), bits=int(data["bits"]))


def million_variant(
    head_dim: int, bits: int, recent_window: int = 0, **kwargs
) -> MillionConfig:
    """The MILLION configuration a policy's ``million``/``bits`` rung uses.

    One function so the byte model, the cache factories and the block-pool
    layouts all agree on which ``(M, nbits)`` preset a bit budget means.
    """
    return MillionConfig.for_equivalent_bits(
        head_dim, bits, recent_window=recent_window, **kwargs
    )


#: Default upgrade ladder for :func:`derive_policy`, cheapest first.
DEFAULT_LADDER = (
    HeadAssignment("million", 2),
    HeadAssignment("million", 4),
    HeadAssignment("million", 8),
    HeadAssignment("fp16", 16),
)


class QuantPolicy:
    """Immutable per-(layer, head) scheme assignment for one model shape."""

    def __init__(
        self,
        n_layers: int,
        kv_heads: int,
        head_dim: int,
        assignments: Sequence[Sequence[HeadAssignment]],
        model_name: str = "",
    ) -> None:
        require(n_layers >= 1, "n_layers must be >= 1")
        require(kv_heads >= 1, "kv_heads must be >= 1")
        require(head_dim >= 1, "head_dim must be >= 1")
        require(
            len(assignments) == n_layers,
            f"expected {n_layers} layer rows, got {len(assignments)}",
        )
        rows = []
        for layer, row in enumerate(assignments):
            require(
                len(row) == kv_heads,
                f"layer {layer}: expected {kv_heads} head assignments, got {len(row)}",
            )
            for assignment in row:
                require(
                    isinstance(assignment, HeadAssignment),
                    "assignments must be HeadAssignment instances",
                )
                if assignment.scheme == "million":
                    # Fail at construction, not deep inside the cache factory.
                    million_variant(head_dim, assignment.bits)
            rows.append(tuple(row))
        self.n_layers = int(n_layers)
        self.kv_heads = int(kv_heads)
        self.head_dim = int(head_dim)
        self.model_name = str(model_name)
        self.assignments: tuple[tuple[HeadAssignment, ...], ...] = tuple(rows)

    # Construction --------------------------------------------------------

    @classmethod
    def uniform(
        cls,
        model_config: ModelConfig,
        scheme: str,
        bits: int,
    ) -> "QuantPolicy":
        """Every head of every layer gets the same assignment."""
        assignment = HeadAssignment(scheme, bits)
        row = tuple(assignment for _ in range(model_config.kv_heads))
        return cls(
            n_layers=model_config.n_layers,
            kv_heads=model_config.kv_heads,
            head_dim=model_config.head_dim,
            assignments=tuple(row for _ in range(model_config.n_layers)),
            model_name=model_config.name,
        )

    # Queries -------------------------------------------------------------

    def assignment(self, layer: int, head: int) -> HeadAssignment:
        return self.assignments[layer][head]

    def head_groups(self, layer: int) -> list[tuple[HeadAssignment, tuple[int, ...]]]:
        """Contiguity-free grouping of a layer's heads by identical assignment.

        Groups are ordered by their first member head, so the mapping from
        (layer, group position) to storage units is deterministic across
        processes — which the pooled serving path relies on.
        """
        groups: dict[HeadAssignment, list[int]] = {}
        order: list[HeadAssignment] = []
        for head, assignment in enumerate(self.assignments[layer]):
            if assignment not in groups:
                groups[assignment] = []
                order.append(assignment)
            groups[assignment].append(head)
        return [(assignment, tuple(groups[assignment])) for assignment in order]

    @property
    def is_uniform(self) -> bool:
        """True when every head of every layer shares one assignment."""
        first = self.assignments[0][0]
        return all(
            assignment == first for row in self.assignments for assignment in row
        )

    def distinct_assignments(self) -> list[HeadAssignment]:
        """Every assignment used anywhere, in first-appearance order."""
        seen: list[HeadAssignment] = []
        for row in self.assignments:
            for assignment in row:
                if assignment not in seen:
                    seen.append(assignment)
        return seen

    def schemes_used(self) -> set[str]:
        return {a.scheme for a in self.distinct_assignments()}

    def bytes_per_token(self) -> float:
        """Modelled steady-state KV bytes per token across all layers/heads."""
        return float(
            sum(
                assignment.bytes_per_token(self.head_dim)
                for row in self.assignments
                for assignment in row
            )
        )

    def validate_for_model(self, model_config: ModelConfig) -> None:
        """Raise unless this policy matches the model's KV shape."""
        require(
            (self.n_layers, self.kv_heads, self.head_dim)
            == (model_config.n_layers, model_config.kv_heads, model_config.head_dim),
            f"policy is for (layers={self.n_layers}, kv_heads={self.kv_heads}, "
            f"head_dim={self.head_dim}) but model {model_config.name!r} has "
            f"(layers={model_config.n_layers}, kv_heads={model_config.kv_heads}, "
            f"head_dim={model_config.head_dim})",
        )

    # Equality / repr ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantPolicy):
            return NotImplemented
        return (
            self.n_layers == other.n_layers
            and self.kv_heads == other.kv_heads
            and self.head_dim == other.head_dim
            and self.assignments == other.assignments
        )

    def __repr__(self) -> str:
        label = "uniform" if self.is_uniform else "mixed"
        return (
            f"QuantPolicy({label}, layers={self.n_layers}, "
            f"kv_heads={self.kv_heads}, head_dim={self.head_dim}, "
            f"bytes/token={self.bytes_per_token():.1f})"
        )

    # Serialization --------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "format": POLICY_FORMAT,
            "version": POLICY_VERSION,
            "model": {
                "name": self.model_name,
                "n_layers": self.n_layers,
                "kv_heads": self.kv_heads,
                "head_dim": self.head_dim,
            },
            "assignments": [
                [assignment.to_json() for assignment in row]
                for row in self.assignments
            ],
        }

    @classmethod
    def from_json(cls, data: dict) -> "QuantPolicy":
        require(isinstance(data, dict), "policy document must be a JSON object")
        require(
            data.get("format") == POLICY_FORMAT,
            f"not a quant policy document (format={data.get('format')!r})",
        )
        require(
            data.get("version") == POLICY_VERSION,
            f"unsupported policy version {data.get('version')!r} "
            f"(expected {POLICY_VERSION})",
        )
        model = data["model"]
        assignments = [
            [HeadAssignment.from_json(entry) for entry in row]
            for row in data["assignments"]
        ]
        return cls(
            n_layers=int(model["n_layers"]),
            kv_heads=int(model["kv_heads"]),
            head_dim=int(model["head_dim"]),
            assignments=assignments,
            model_name=str(model.get("name", "")),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "QuantPolicy":
        return cls.from_json(json.loads(Path(path).read_text()))


# Sensitivity ----------------------------------------------------------------


@dataclass(frozen=True)
class HeadSensitivity:
    """Per-(layer, head) sensitivity scores plus their raw components.

    ``scores`` is ``(n_layers, kv_heads)`` in [0, 1]; higher means the head
    degrades more under aggressive quantization and should be upgraded
    first.  ``components`` keeps the unnormalized per-signal arrays for
    reporting.
    """

    scores: np.ndarray
    components: dict[str, np.ndarray]


def _minmax(x: np.ndarray) -> np.ndarray:
    lo, hi = float(x.min()), float(x.max())
    if hi - lo <= 0.0:
        return np.zeros_like(x)
    return (x - lo) / (hi - lo)


def measure_head_sensitivity(
    keys_per_layer: Sequence[np.ndarray],
    values_per_layer: Sequence[np.ndarray],
    probe_bits: int = 4,
    outlier_fraction: float = 0.01,
    kmeans_iters: int = 4,
    max_probe_samples: int = 2048,
    seed: int = 0,
) -> HeadSensitivity:
    """Score every (layer, head) by how much quantization would hurt it.

    ``keys_per_layer[i]`` / ``values_per_layer[i]`` are calibration sample
    tensors of shape ``(tokens, kv_heads, head_dim)``.  Three signals are
    combined (each min-max normalized over all (layer, head) cells, then
    averaged):

    * **channel variance** — mean per-channel variance of the head's keys and
      values (heads carrying more signal energy lose more to coarse codes);
    * **outlier mass** — fraction of the head's entries above the layer-wide
      magnitude threshold at ``outlier_fraction`` (PQ codebooks are trained
      on the bulk, so outlier-heavy heads reconstruct poorly);
    * **ADC reconstruction error** — relative MSE of a probe product
      quantizer (``probe_bits`` budget, trained on the layer's pooled
      vectors) evaluated per head — the direct analogue of the error MILLION
      attention actually incurs.
    """
    require(
        len(keys_per_layer) == len(values_per_layer) and len(keys_per_layer) > 0,
        "keys_per_layer and values_per_layer must be equal-length and non-empty",
    )
    n_layers = len(keys_per_layer)
    kv_heads = keys_per_layer[0].shape[1]
    head_dim = keys_per_layer[0].shape[2]
    variance = np.zeros((n_layers, kv_heads))
    outlier_mass = np.zeros((n_layers, kv_heads))
    adc_error = np.zeros((n_layers, kv_heads))
    probe_config = million_variant(head_dim, probe_bits)
    for layer in range(n_layers):
        keys = np.asarray(keys_per_layer[layer], dtype=np.float32)
        values = np.asarray(values_per_layer[layer], dtype=np.float32)
        require(
            keys.shape[1:] == (kv_heads, head_dim)
            and values.shape == keys.shape,
            f"layer {layer}: sample tensors must be (tokens, {kv_heads}, {head_dim})",
        )
        key_threshold = outlier_threshold(keys, outlier_fraction)
        value_threshold = outlier_threshold(values, outlier_fraction)
        pooled = np.concatenate(
            [keys.reshape(-1, head_dim), values.reshape(-1, head_dim)], axis=0
        )
        probe = ProductQuantizer.fit(
            pooled,
            probe_config.m_subspaces,
            probe_config.nbits,
            kmeans_iters=kmeans_iters,
            seed=seed,
            max_samples=max_probe_samples,
        )
        for head in range(kv_heads):
            head_keys = keys[:, head, :]
            head_values = values[:, head, :]
            variance[layer, head] = float(
                head_keys.var(axis=0).mean() + head_values.var(axis=0).mean()
            )
            outlier_mass[layer, head] = float(
                (np.abs(head_keys) > key_threshold).mean()
                + (np.abs(head_values) > value_threshold).mean()
            )
            stacked = np.concatenate([head_keys, head_values], axis=0)
            if stacked.shape[0] > max_probe_samples:
                stacked = stacked[:max_probe_samples]
            energy = float(np.mean(stacked**2))
            adc_error[layer, head] = (
                probe.reconstruction_mse(stacked) / energy if energy > 0 else 0.0
            )
    combined = (
        _minmax(variance) + _minmax(outlier_mass) + _minmax(adc_error)
    ) / 3.0
    return HeadSensitivity(
        scores=combined,
        components={
            "channel_variance": variance,
            "outlier_mass": outlier_mass,
            "adc_relative_mse": adc_error,
        },
    )


# Budgeted derivation --------------------------------------------------------


def derive_policy(
    model_config: ModelConfig,
    sensitivity: HeadSensitivity | np.ndarray,
    budget_bytes_per_token: float,
    ladder: Sequence[HeadAssignment] = DEFAULT_LADDER,
    schemes: Optional[Sequence[str]] = None,
) -> QuantPolicy:
    """Assign each head the richest ladder rung the byte budget affords.

    Water-filling greedy: every head starts at the cheapest rung; passes over
    the heads in descending sensitivity (ties broken by (layer, head) for
    determinism) upgrade each by one rung while the upgrade fits the global
    ``budget_bytes_per_token``.  One rung per head per pass spreads the
    budget across the most sensitive heads instead of maxing out a single
    head — matching the mixed-precision sweeps of KVTuner-style tuners.

    ``schemes`` optionally restricts the ladder (e.g. ``("million",)`` for a
    pooled-serving policy, where only MILLION heads can live in shared
    blocks).
    """
    scores = (
        sensitivity.scores
        if isinstance(sensitivity, HeadSensitivity)
        else np.asarray(sensitivity, dtype=np.float64)
    )
    require(
        scores.shape == (model_config.n_layers, model_config.kv_heads),
        f"sensitivity must be (n_layers={model_config.n_layers}, "
        f"kv_heads={model_config.kv_heads}), got {scores.shape}",
    )
    if schemes is not None:
        ladder = [rung for rung in ladder if rung.scheme in set(schemes)]
    require(len(ladder) >= 1, "ladder must contain at least one assignment")
    head_dim = model_config.head_dim
    costs = [rung.bytes_per_token(head_dim) for rung in ladder]
    require(
        all(b > a for a, b in zip(costs, costs[1:])),
        "ladder costs must be strictly increasing (cheapest rung first)",
    )
    n_heads_total = model_config.n_layers * model_config.kv_heads
    base_cost = n_heads_total * costs[0]
    require(
        budget_bytes_per_token >= base_cost,
        f"budget {budget_bytes_per_token:.1f} B/token cannot cover the "
        f"cheapest ladder rung ({base_cost:.1f} B/token)",
    )
    rung = np.zeros((model_config.n_layers, model_config.kv_heads), dtype=np.int64)
    spent = base_cost
    order = sorted(
        (
            (layer, head)
            for layer in range(model_config.n_layers)
            for head in range(model_config.kv_heads)
        ),
        key=lambda lh: (-scores[lh], lh),
    )
    progressed = True
    while progressed:
        progressed = False
        for layer, head in order:
            current = rung[layer, head]
            if current + 1 >= len(ladder):
                continue
            delta = costs[current + 1] - costs[current]
            if spent + delta <= budget_bytes_per_token:
                rung[layer, head] = current + 1
                spent += delta
                progressed = True
    assignments = [
        [ladder[rung[layer, head]] for head in range(model_config.kv_heads)]
        for layer in range(model_config.n_layers)
    ]
    return QuantPolicy(
        n_layers=model_config.n_layers,
        kv_heads=model_config.kv_heads,
        head_dim=model_config.head_dim,
        assignments=assignments,
        model_name=model_config.name,
    )


__all__ = [
    "DEFAULT_LADDER",
    "HeadAssignment",
    "HeadSensitivity",
    "POLICY_FORMAT",
    "POLICY_VERSION",
    "QuantPolicy",
    "SCHEMES",
    "derive_policy",
    "measure_head_sensitivity",
    "million_variant",
]
