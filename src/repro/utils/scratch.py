"""Reusable scratch buffers for per-step decode kernels.

The ADC attention kernels need several temporaries per decode step (gather
indices, LUT gathers, packed probabilities, centroid aggregates).  Allocating
them anew every step makes the allocator the hot path once the numpy calls
themselves are fused; a :class:`ScratchArena` keeps one growable buffer per
logical name and hands out leading views, so steady-state decoding performs
no per-step allocations (a test asserts the arena stops growing).
"""

from __future__ import annotations

import numpy as np


def _round_up_pow2(n: int) -> int:
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


class ScratchArena:
    """Named, growable scratch buffers handed out as leading views.

    ``get(name, shape, dtype)`` returns a C-contiguous view of the requested
    shape backed by a buffer that is only reallocated when the requested
    element count exceeds its capacity (growth is rounded to powers of two,
    so repeated steps with slowly growing contexts reallocate O(log n)
    times).  Contents are *not* zeroed — callers own initialisation.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self.grow_count = 0
        self.hit_count = 0
        # Free-form per-buffer annotations: kernels stash a content key here
        # (e.g. the shape parameters an index map was built from) so repeat
        # calls can skip refilling an unchanged buffer.
        self.memo: dict[str, object] = {}

    def get(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        size = int(np.prod(shape)) if shape else 1
        dtype = np.dtype(dtype)
        buffer = self._buffers.get(name)
        if buffer is None or buffer.dtype != dtype or buffer.size < size:
            capacity = _round_up_pow2(size)
            buffer = np.empty(capacity, dtype=dtype)
            self._buffers[name] = buffer
            self.grow_count += 1
        else:
            self.hit_count += 1
        return buffer[:size].reshape(shape)

    def zeros(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        out = self.get(name, shape, dtype)
        out[...] = 0
        return out

    @property
    def total_bytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def stats(self) -> dict:
        return {
            "buffers": len(self._buffers),
            "total_bytes": self.total_bytes,
            "grow_count": self.grow_count,
            "hit_count": self.hit_count,
        }


__all__ = ["ScratchArena"]
