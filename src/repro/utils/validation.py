"""Small argument-validation helpers with informative error messages."""

from __future__ import annotations

from typing import Any


class ValidationError(ValueError):
    """Raised when a public API receives an invalid argument."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def require_positive(value: Any, name: str) -> None:
    """Require ``value`` to be a strictly positive number."""
    if not value > 0:
        raise ValidationError(f"{name} must be positive, got {value!r}")


def require_non_negative(value: Any, name: str) -> None:
    """Require ``value`` to be zero or positive."""
    if value < 0:
        raise ValidationError(f"{name} must be non-negative, got {value!r}")


def require_divisible(numerator: int, denominator: int, message: str) -> None:
    """Require ``numerator`` to be an exact multiple of ``denominator``."""
    if denominator <= 0 or numerator % denominator != 0:
        raise ValidationError(
            f"{message}: {numerator} is not divisible by {denominator}"
        )


def require_in(value: Any, allowed: tuple, name: str) -> None:
    """Require ``value`` to be one of ``allowed``."""
    if value not in allowed:
        raise ValidationError(f"{name} must be one of {allowed}, got {value!r}")
