"""Deterministic random number generation helpers.

Every stochastic component in the library (weight initialisation, k-means,
synthetic corpora, task generators) takes either an integer seed or a
``numpy.random.Generator``.  These helpers normalise between the two so that
call sites never touch the legacy global NumPy RNG.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

DEFAULT_SEED = 0


def get_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``seed`` may be ``None`` (uses :data:`DEFAULT_SEED` for reproducibility),
    an integer, or an existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(int(seed))


def spawn_rngs(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Useful when a component needs a separate stream per layer / per task so
    that changing the number of consumers does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seed_seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seed_seq = np.random.SeedSequence(DEFAULT_SEED if seed is None else int(seed))
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def derive_seed(seed: SeedLike, *salts: Union[int, str]) -> int:
    """Deterministically derive a new integer seed from ``seed`` and salts.

    The derivation is stable across processes and Python versions (it does not
    use ``hash``), so derived seeds can safely be persisted in experiment
    metadata.
    """
    mask = 0xFFFFFFFFFFFFFFFF
    if isinstance(seed, np.random.Generator):
        base = int(seed.integers(0, 2**31 - 1))
    else:
        base = DEFAULT_SEED if seed is None else int(seed)
    acc = (base * 0x9E3779B97F4A7C15) & mask
    for salt in salts:
        if isinstance(salt, str):
            salt_val = sum((i + 1) * b for i, b in enumerate(salt.encode("utf-8"))) & 0xFFFFFFFF
        else:
            salt_val = int(salt) & mask
        acc = (acc ^ salt_val) & mask
        acc = (acc * 0x9E3779B97F4A7C15) & mask
    return int(acc % (2**31 - 1))
