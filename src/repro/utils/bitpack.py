"""Bit packing for sub-byte quantization codes.

Product quantization stores one centroid index per subspace per token.  With
``nbits`` bits per index the natural in-memory representation (``uint8`` /
``uint16``) wastes space for non-power-of-two-byte widths such as the paper's
(M=32, nbits=12) 3-bit-equivalent configuration.  The helpers here pack an
integer code array into a dense bitstream and back, so reported cache sizes
reflect the true compressed footprint.

The packing is little-endian within the bitstream: code ``i`` occupies bits
``[i * nbits, (i + 1) * nbits)`` counted from bit 0 of byte 0.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require

_MAX_NBITS = 32


def bits_required(num_values: int) -> int:
    """Return the number of bits needed to represent ``num_values`` distinct codes."""
    require(num_values >= 1, f"num_values must be >= 1, got {num_values}")
    return max(1, int(np.ceil(np.log2(num_values))))


def code_dtype(nbits: int) -> np.dtype:
    """Return the smallest unsigned integer dtype that can hold an ``nbits`` code."""
    require(1 <= nbits <= _MAX_NBITS, f"nbits must be in [1, {_MAX_NBITS}], got {nbits}")
    if nbits <= 8:
        return np.dtype(np.uint8)
    if nbits <= 16:
        return np.dtype(np.uint16)
    return np.dtype(np.uint32)


def packed_nbytes(num_codes: int, nbits: int) -> int:
    """Number of bytes used to store ``num_codes`` codes of ``nbits`` bits each."""
    require(num_codes >= 0, f"num_codes must be >= 0, got {num_codes}")
    require(1 <= nbits <= _MAX_NBITS, f"nbits must be in [1, {_MAX_NBITS}], got {nbits}")
    return (num_codes * nbits + 7) // 8


def pack_codes(codes: np.ndarray, nbits: int) -> bytes:
    """Pack an integer array of codes into a dense little-endian bitstream.

    Parameters
    ----------
    codes:
        Integer array of any shape; flattened in C order before packing.
    nbits:
        Bits per code.  All codes must fit in ``nbits`` bits.
    """
    require(1 <= nbits <= _MAX_NBITS, f"nbits must be in [1, {_MAX_NBITS}], got {nbits}")
    flat = np.ascontiguousarray(codes).reshape(-1).astype(np.uint64)
    if flat.size and int(flat.max()) >= (1 << nbits):
        raise ValueError(
            f"code value {int(flat.max())} does not fit in {nbits} bits"
        )
    total_bits = flat.size * nbits
    out = np.zeros((total_bits + 7) // 8, dtype=np.uint8)
    if flat.size == 0:
        return out.tobytes()
    # Expand each code into its bits, then repack 8 bits per byte.
    bit_idx = np.arange(nbits, dtype=np.uint64)
    bits = ((flat[:, None] >> bit_idx[None, :]) & np.uint64(1)).astype(np.uint8)
    bitstream = bits.reshape(-1)
    positions = np.arange(bitstream.size)
    byte_pos = positions // 8
    bit_pos = positions % 8
    np.bitwise_or.at(out, byte_pos, (bitstream << bit_pos).astype(np.uint8))
    return out.tobytes()


def unpack_codes(
    packed: bytes | np.ndarray, nbits: int, num_codes: int
) -> np.ndarray:
    """Inverse of :func:`pack_codes`.

    Returns a 1-D array of ``num_codes`` codes with the smallest dtype that
    fits ``nbits``.
    """
    require(1 <= nbits <= _MAX_NBITS, f"nbits must be in [1, {_MAX_NBITS}], got {nbits}")
    require(num_codes >= 0, f"num_codes must be >= 0, got {num_codes}")
    buf = np.frombuffer(bytes(packed), dtype=np.uint8)
    needed = packed_nbytes(num_codes, nbits)
    require(
        buf.size >= needed,
        f"packed buffer has {buf.size} bytes, need at least {needed}",
    )
    if num_codes == 0:
        return np.zeros(0, dtype=code_dtype(nbits))
    bitstream = np.unpackbits(buf[:needed], bitorder="little")[: num_codes * nbits]
    bits = bitstream.reshape(num_codes, nbits).astype(np.uint64)
    weights = (np.uint64(1) << np.arange(nbits, dtype=np.uint64))[None, :]
    values = (bits * weights).sum(axis=1)
    return values.astype(code_dtype(nbits))
