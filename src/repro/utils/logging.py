"""Thin logging wrapper so the library logs consistently.

The library never configures the root logger; applications stay in control.
``get_logger`` only attaches a ``NullHandler`` so importing the package never
prints anything unless the application opts in.
"""

from __future__ import annotations

import logging

_LIBRARY_ROOT = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a library logger, namespaced under ``repro``.

    Parameters
    ----------
    name:
        Suffix appended to the library root namespace.  ``None`` returns the
        root library logger.
    """
    full_name = _LIBRARY_ROOT if not name else f"{_LIBRARY_ROOT}.{name}"
    logger = logging.getLogger(full_name)
    root = logging.getLogger(_LIBRARY_ROOT)
    if not root.handlers:
        root.addHandler(logging.NullHandler())
    return logger


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a simple console handler to the library logger.

    Intended for examples and benchmark scripts; library code never calls it.
    """
    root = logging.getLogger(_LIBRARY_ROOT)
    has_stream = any(isinstance(h, logging.StreamHandler) for h in root.handlers)
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(level)
