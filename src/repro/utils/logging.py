"""Thin logging wrapper so the library logs consistently.

The library never configures the root logger; applications stay in control.
``get_logger`` only attaches a ``NullHandler`` so importing the package never
prints anything unless the application opts in — via
:func:`enable_console_logging` (human-readable lines) or
:func:`enable_json_logging` (one JSON object per line, carrying the request
id the gateway binds per completion, so log lines join against trace spans
and metrics by the same key).

Both enablers are idempotent: repeated calls reuse the handler they
installed and only adjust the level, and each looks for *its own* handler
class — a console handler never masks a JSON one or vice versa (both are
``StreamHandler`` subclasses, so an ``isinstance`` check against the base
class would conflate them).
"""

from __future__ import annotations

import json
import logging
from typing import Optional, TextIO

from repro.obs.context import current_request_id

_LIBRARY_ROOT = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a library logger, namespaced under ``repro``.

    Parameters
    ----------
    name:
        Suffix appended to the library root namespace.  ``None`` returns the
        root library logger.
    """
    full_name = _LIBRARY_ROOT if not name else f"{_LIBRARY_ROOT}.{name}"
    logger = logging.getLogger(full_name)
    root = logging.getLogger(_LIBRARY_ROOT)
    if not any(isinstance(h, logging.NullHandler) for h in root.handlers):
        root.addHandler(logging.NullHandler())
    return logger


class _ConsoleHandler(logging.StreamHandler):
    """Marker subclass so the console enabler finds exactly its handler."""


class _JsonHandler(logging.StreamHandler):
    """Marker subclass so the JSON enabler finds exactly its handler."""


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line: timestamp, level, logger, message.

    ``request_id`` is included whenever the emitting context has one bound
    (see :func:`repro.obs.context.bind_request_id` — the gateway binds the
    engine-assigned id for the duration of each completion handler).
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S")
            + f".{int(record.msecs):03d}",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = current_request_id()
        if request_id is not None:
            payload["request_id"] = request_id
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"))


def enable_console_logging(level: int = logging.INFO) -> None:
    """Attach a console handler to the library logger (idempotent).

    Repeated calls — including with a different ``level`` — adjust the level
    of the handler installed by the first call instead of stacking a second
    one (which would print every line twice).

    Intended for examples and benchmark scripts; library code never calls it.
    """
    root = logging.getLogger(_LIBRARY_ROOT)
    handler = next(
        (h for h in root.handlers if isinstance(h, _ConsoleHandler)), None
    )
    if handler is None:
        handler = _ConsoleHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(level)


def enable_json_logging(
    level: int = logging.INFO, stream: Optional[TextIO] = None
) -> None:
    """Attach a structured JSON handler to the library logger (idempotent).

    Each line is one JSON object (see :class:`JsonLogFormatter`); pass
    ``stream`` to direct output somewhere other than stderr (tests pass an
    ``io.StringIO``).  Repeated calls adjust the level; a ``stream`` on a
    repeat call rebinds the existing handler's output.
    """
    root = logging.getLogger(_LIBRARY_ROOT)
    handler = next((h for h in root.handlers if isinstance(h, _JsonHandler)), None)
    if handler is None:
        handler = _JsonHandler(stream)
        handler.setFormatter(JsonLogFormatter())
        root.addHandler(handler)
    elif stream is not None:
        handler.setStream(stream)
    root.setLevel(level)
