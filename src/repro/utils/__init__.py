"""Shared low-level utilities used by every subsystem.

The helpers here are intentionally small and dependency-free: deterministic
random number generation, bit packing for sub-byte quantization codes,
argument validation and a thin logging wrapper.
"""

from repro.utils.bitpack import (
    bits_required,
    code_dtype,
    pack_codes,
    packed_nbytes,
    unpack_codes,
)
from repro.utils.logging import get_logger
from repro.utils.rng import get_rng, spawn_rngs
from repro.utils.validation import (
    ValidationError,
    require,
    require_positive,
    require_divisible,
)

__all__ = [
    "bits_required",
    "code_dtype",
    "pack_codes",
    "packed_nbytes",
    "unpack_codes",
    "get_logger",
    "get_rng",
    "spawn_rngs",
    "ValidationError",
    "require",
    "require_positive",
    "require_divisible",
]
