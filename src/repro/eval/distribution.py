"""KV-cache distribution analysis (paper Figs. 2 and 3).

The motivation section of the paper rests on two observations: key-cache
outliers concentrate in a few channels while value-cache outliers are
isotropic, and the per-channel standard deviation of keys has pronounced
spikes.  This module measures exactly those statistics on our models so the
Fig. 2 / Fig. 3 benchmarks can report them (and so tests can assert that the
structured weight initialisation reproduces the qualitative shape).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import collect_kv_samples
from repro.models.transformer import TransformerLM
from repro.utils.validation import require


@dataclass
class ChannelStatistics:
    """Per-channel statistics of one layer's key or value cache."""

    layer: int
    kind: str  # "key" or "value"
    minimum: np.ndarray
    maximum: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    abs_max: np.ndarray

    @property
    def n_channels(self) -> int:
        return int(self.std.size)

    @property
    def dynamic_range(self) -> np.ndarray:
        """Per-channel ``max - min`` (the quantization range of Eq. 2)."""
        return self.maximum - self.minimum

    def std_outlier_ratio(self) -> float:
        """Largest channel std divided by the median channel std (Fig. 3 spikes)."""
        median = float(np.median(self.std))
        if median <= 0:
            return float("inf")
        return float(np.max(self.std) / median)

    def magnitude_outlier_ratio(self) -> float:
        """Largest channel |x| divided by the median channel |x| (Fig. 2 spikes)."""
        median = float(np.median(self.abs_max))
        if median <= 0:
            return float("inf")
        return float(np.max(self.abs_max) / median)

    def top_channels(self, count: int = 5) -> np.ndarray:
        """Indices of the ``count`` channels with the largest magnitude."""
        count = min(count, self.n_channels)
        return np.argsort(-self.abs_max)[:count]


def channel_statistics_from_samples(
    samples: np.ndarray, layer: int, kind: str
) -> ChannelStatistics:
    """Compute channel statistics from a ``(tokens, channels)`` sample matrix."""
    samples = np.asarray(samples, dtype=np.float64)
    require(samples.ndim == 2, f"samples must be 2-D, got shape {samples.shape}")
    require(kind in ("key", "value"), f"kind must be 'key' or 'value', got {kind!r}")
    return ChannelStatistics(
        layer=layer,
        kind=kind,
        minimum=samples.min(axis=0),
        maximum=samples.max(axis=0),
        mean=samples.mean(axis=0),
        std=samples.std(axis=0),
        abs_max=np.abs(samples).max(axis=0),
    )


def collect_kv_statistics(
    model: TransformerLM,
    tokens: np.ndarray,
    chunk_size: int = 128,
    layers: list[int] | None = None,
) -> list[ChannelStatistics]:
    """Run the model on ``tokens`` and return per-layer key/value channel stats."""
    collector = collect_kv_samples(
        model, tokens, chunk_size=chunk_size, max_samples_per_layer=1_000_000
    )
    layer_indices = layers if layers is not None else list(range(model.config.n_layers))
    stats: list[ChannelStatistics] = []
    for layer in layer_indices:
        stats.append(
            channel_statistics_from_samples(collector.key_channels(layer), layer, "key")
        )
        stats.append(
            channel_statistics_from_samples(collector.value_channels(layer), layer, "value")
        )
    return stats


def summarize_outlier_structure(stats: list[ChannelStatistics]) -> dict[str, float]:
    """Aggregate the Fig. 2/3 observation into four scalars.

    Returns the mean magnitude- and std-outlier ratios for keys and values;
    the paper's claim corresponds to the key ratios being markedly larger
    than the value ratios.
    """
    key_stats = [s for s in stats if s.kind == "key"]
    value_stats = [s for s in stats if s.kind == "value"]
    require(key_stats and value_stats, "stats must contain both key and value entries")
    return {
        "key_magnitude_outlier_ratio": float(
            np.mean([s.magnitude_outlier_ratio() for s in key_stats])
        ),
        "value_magnitude_outlier_ratio": float(
            np.mean([s.magnitude_outlier_ratio() for s in value_stats])
        ),
        "key_std_outlier_ratio": float(np.mean([s.std_outlier_ratio() for s in key_stats])),
        "value_std_outlier_ratio": float(
            np.mean([s.std_outlier_ratio() for s in value_stats])
        ),
    }
