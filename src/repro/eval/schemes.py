"""Registry of evaluatable KV-cache schemes.

Benchmarks refer to schemes by the names used in the paper's tables
("baseline", "kvquant-4b-1%", "million-3b", ...); this module turns a name
plus a model (and calibration text, for the calibrated schemes) into a cache
factory ready to plug into :meth:`TransformerLM.reset_cache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.calibration import calibrate_kvquant, calibrate_million
from repro.core.config import MillionConfig
from repro.models.kv_cache import FullPrecisionCacheFactory, KVCacheFactory
from repro.models.transformer import TransformerLM
from repro.quant.cache_adapters import KiviCacheFactory
from repro.quant.kivi import KiviConfig
from repro.utils.rng import SeedLike
from repro.utils.validation import require


@dataclass(frozen=True)
class SchemeDefinition:
    """How to build a cache factory for one named scheme."""

    name: str
    family: str  # "fp16" | "kivi" | "kvquant" | "million"
    bits: int = 16
    outlier_fraction: float = 0.0
    recent_window: int = 0
    needs_calibration: bool = False


SCHEME_DEFINITIONS: dict[str, SchemeDefinition] = {
    "baseline": SchemeDefinition(name="baseline", family="fp16", bits=16),
    "kivi-2b": SchemeDefinition(name="kivi-2b", family="kivi", bits=2),
    "kivi-4b": SchemeDefinition(name="kivi-4b", family="kivi", bits=4),
    "kvquant-3b": SchemeDefinition(
        name="kvquant-3b", family="kvquant", bits=3, needs_calibration=True
    ),
    "kvquant-4b": SchemeDefinition(
        name="kvquant-4b", family="kvquant", bits=4, needs_calibration=True
    ),
    "kvquant-3b-1pct": SchemeDefinition(
        name="kvquant-3b-1pct",
        family="kvquant",
        bits=3,
        outlier_fraction=0.01,
        needs_calibration=True,
    ),
    "kvquant-4b-1pct": SchemeDefinition(
        name="kvquant-4b-1pct",
        family="kvquant",
        bits=4,
        outlier_fraction=0.01,
        needs_calibration=True,
    ),
    "million-3b": SchemeDefinition(
        name="million-3b", family="million", bits=3, needs_calibration=True
    ),
    "million-4b": SchemeDefinition(
        name="million-4b", family="million", bits=4, needs_calibration=True
    ),
    "million-3b-1pct": SchemeDefinition(
        name="million-3b-1pct",
        family="million",
        bits=3,
        outlier_fraction=0.01,
        needs_calibration=True,
    ),
    "million-4b-1pct": SchemeDefinition(
        name="million-4b-1pct",
        family="million",
        bits=4,
        outlier_fraction=0.01,
        needs_calibration=True,
    ),
}


def available_schemes() -> list[str]:
    """Names accepted by :func:`build_cache_factory`."""
    return sorted(SCHEME_DEFINITIONS)


def build_cache_factory(
    name: str,
    model: TransformerLM,
    calibration_tokens: Optional[np.ndarray] = None,
    seed: SeedLike = 0,
    kmeans_iters: int = 10,
    calibration_samples: int = 4096,
    recent_window: Optional[int] = None,
) -> Optional[KVCacheFactory]:
    """Build a ready-to-use cache factory for scheme ``name`` on ``model``.

    Returns ``None`` for the fp16 baseline (meaning "use the default
    full-precision cache").  Calibrated schemes (KVQuant, MILLION) require
    ``calibration_tokens``.
    """
    require(name in SCHEME_DEFINITIONS, f"unknown scheme {name!r}; see available_schemes()")
    definition = SCHEME_DEFINITIONS[name]
    window = definition.recent_window if recent_window is None else recent_window
    if definition.needs_calibration and calibration_tokens is None:
        raise ValueError(f"scheme {name!r} requires calibration_tokens")

    if definition.family == "fp16":
        return FullPrecisionCacheFactory()
    if definition.family == "kivi":
        return KiviCacheFactory(
            KiviConfig(nbits=definition.bits, group_size=32, residual_length=max(window, 32))
        )
    if definition.family == "kvquant":
        return calibrate_kvquant(
            model,
            calibration_tokens,
            nbits=definition.bits,
            outlier_fraction=definition.outlier_fraction,
            residual_window=window,
            max_samples_per_layer=calibration_samples,
            seed=seed,
        )
    if definition.family == "million":
        million_config = MillionConfig.for_equivalent_bits(
            model.config.head_dim,
            bits=definition.bits,
            recent_window=window,
            prefer_small_codebooks=True,
            kmeans_iters=kmeans_iters,
            calibration_samples=calibration_samples,
            outlier_fraction=definition.outlier_fraction,
            seed=int(np.random.default_rng().integers(2**31 - 1)) if seed is None else int(seed),
        )
        return calibrate_million(model, calibration_tokens, million_config)
    raise ValueError(f"unhandled scheme family {definition.family!r}")


def build_scheme_factories(
    names: list[str],
    model: TransformerLM,
    calibration_tokens: Optional[np.ndarray] = None,
    seed: SeedLike = 0,
    **kwargs,
) -> dict[str, Optional[KVCacheFactory]]:
    """Build factories for several schemes at once (shared calibration text)."""
    return {
        name: build_cache_factory(
            name, model, calibration_tokens=calibration_tokens, seed=seed, **kwargs
        )
        for name in names
    }
