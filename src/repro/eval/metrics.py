"""Scoring metrics for the accuracy experiments."""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.models.tensor_ops import log_softmax, softmax


def exact_match(prediction: Sequence[int], reference: Sequence[int]) -> float:
    """1.0 if the first ``len(reference)`` predicted tokens equal the reference."""
    prediction = list(int(t) for t in prediction)
    reference = list(int(t) for t in reference)
    if not reference:
        return 1.0
    return float(prediction[: len(reference)] == reference)


def token_accuracy(prediction: Sequence[int], reference: Sequence[int]) -> float:
    """Fraction of reference positions predicted correctly (position-wise)."""
    reference = list(int(t) for t in reference)
    if not reference:
        return 1.0
    prediction = list(int(t) for t in prediction)[: len(reference)]
    prediction += [-1] * (len(reference) - len(prediction))
    correct = sum(p == r for p, r in zip(prediction, reference))
    return correct / len(reference)


def token_f1(prediction: Sequence[int], reference: Sequence[int]) -> float:
    """Bag-of-tokens F1 (the LongBench QA-style metric)."""
    pred_counts = Counter(int(t) for t in prediction)
    ref_counts = Counter(int(t) for t in reference)
    if not pred_counts and not ref_counts:
        return 1.0
    if not pred_counts or not ref_counts:
        return 0.0
    overlap = sum((pred_counts & ref_counts).values())
    if overlap == 0:
        return 0.0
    precision = overlap / sum(pred_counts.values())
    recall = overlap / sum(ref_counts.values())
    return 2 * precision * recall / (precision + recall)


def rouge_like_overlap(prediction: Sequence[int], reference: Sequence[int], n: int = 2) -> float:
    """N-gram overlap recall (a ROUGE-N stand-in for summarisation tasks)."""
    reference = [int(t) for t in reference]
    prediction = [int(t) for t in prediction]
    if len(reference) < n:
        return token_f1(prediction, reference)
    ref_ngrams = Counter(tuple(reference[i : i + n]) for i in range(len(reference) - n + 1))
    if len(prediction) < n:
        return 0.0
    pred_ngrams = Counter(tuple(prediction[i : i + n]) for i in range(len(prediction) - n + 1))
    overlap = sum((ref_ngrams & pred_ngrams).values())
    return overlap / max(1, sum(ref_ngrams.values()))


def top1_agreement(logits_a: np.ndarray, logits_b: np.ndarray) -> float:
    """Fraction of positions where two logit sets agree on the argmax token."""
    logits_a = np.asarray(logits_a)
    logits_b = np.asarray(logits_b)
    if logits_a.shape != logits_b.shape:
        raise ValueError(f"shape mismatch: {logits_a.shape} vs {logits_b.shape}")
    return float(np.mean(np.argmax(logits_a, axis=-1) == np.argmax(logits_b, axis=-1)))


def mean_kl_divergence(logits_p: np.ndarray, logits_q: np.ndarray) -> float:
    """Mean KL(P || Q) between per-position softmax distributions (nats)."""
    logits_p = np.asarray(logits_p, dtype=np.float64)
    logits_q = np.asarray(logits_q, dtype=np.float64)
    if logits_p.shape != logits_q.shape:
        raise ValueError(f"shape mismatch: {logits_p.shape} vs {logits_q.shape}")
    p = softmax(logits_p, axis=-1).astype(np.float64)
    log_p = log_softmax(logits_p, axis=-1).astype(np.float64)
    log_q = log_softmax(logits_q, axis=-1).astype(np.float64)
    return float(np.mean(np.sum(p * (log_p - log_q), axis=-1)))


def relative_loss_percent(baseline_score: float, score: float) -> float:
    """Percentage loss of ``score`` relative to ``baseline_score`` (Fig. 6 right axis)."""
    if baseline_score == 0:
        return 0.0 if score == 0 else -100.0 * np.sign(score - baseline_score)
    return float(100.0 * (baseline_score - score) / abs(baseline_score))
