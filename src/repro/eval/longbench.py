"""Synthetic LongBench substitute (paper Fig. 6).

LongBench's 16 English tasks cannot be used offline (no datasets, no natural-
language models), so each task is replaced by a synthetic long-context task
of the same *family* that exercises the same attention behaviour: retrieving
facts buried deep in a long context, combining two facts, counting or
identifying passages, copying few-shot label patterns, recovering repeated
"topic" phrases, and continuing structured code-like patterns.  Every task is
expressed directly over token ids (see :mod:`repro.data.longcontext`) and is
scored with the metric family LongBench uses for the corresponding task
(F1 / accuracy / ROUGE-like overlap / edit-style accuracy).

The headline quantity reproduced from Fig. 6 is the per-task score of the
MILLION-4b cache relative to the fp16 cache (the "performance loss" axis).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.data.longcontext import SPECIAL_TOKENS, ContextBuilder, SpecialTokens
from repro.eval.metrics import exact_match, rouge_like_overlap, token_accuracy, token_f1
from repro.models.kv_cache import FullPrecisionCacheFactory, KVCacheFactory
from repro.models.transformer import TransformerLM
from repro.utils.rng import SeedLike, derive_seed, get_rng
from repro.utils.validation import require


@dataclass
class TaskInstance:
    """One generated example: a prompt, its reference answer and metadata."""

    prompt_tokens: np.ndarray
    answer_tokens: np.ndarray
    metadata: dict = field(default_factory=dict)

    @property
    def prompt_length(self) -> int:
        return int(self.prompt_tokens.size)


class TaskGenerator(ABC):
    """Base class for synthetic long-context task generators."""

    #: Scoring metric name, for reporting.
    metric: str = "f1"

    def __init__(
        self,
        name: str,
        category: str,
        context_length: int = 768,
        answer_length: int = 3,
        specials: SpecialTokens = SPECIAL_TOKENS,
    ) -> None:
        require(context_length >= 64, "context_length must be >= 64")
        require(answer_length >= 1, "answer_length must be >= 1")
        self.name = name
        self.category = category
        self.context_length = context_length
        self.answer_length = answer_length
        self.specials = specials

    @abstractmethod
    def generate(self, vocab_size: int, rng: np.random.Generator) -> TaskInstance:
        """Create one example for a model with ``vocab_size`` tokens."""

    def score(self, prediction: Sequence[int], instance: TaskInstance) -> float:
        """Score a generated answer in [0, 100] (LongBench convention)."""
        reference = instance.answer_tokens
        if self.metric == "f1":
            return 100.0 * token_f1(prediction, reference)
        if self.metric == "accuracy":
            return 100.0 * exact_match(prediction, reference)
        if self.metric == "rouge":
            return 100.0 * rouge_like_overlap(prediction, reference)
        if self.metric == "edit":
            return 100.0 * token_accuracy(prediction, reference)
        raise ValueError(f"unknown metric {self.metric!r}")

    # Shared helpers -----------------------------------------------------------

    def _builder(self, vocab_size: int, rng: np.random.Generator) -> ContextBuilder:
        return ContextBuilder(vocab_size, seed=rng, specials=self.specials)


class SingleDocQATask(TaskGenerator):
    """A single fact buried in filler; the question asks for its value (F1)."""

    metric = "f1"

    def generate(self, vocab_size: int, rng: np.random.Generator) -> TaskInstance:
        builder = self._builder(vocab_size, rng)
        key = builder.new_key()
        value = builder.new_value(self.answer_length)
        fact_position = rng.uniform(0.15, 0.75)
        before = int(self.context_length * fact_position)
        builder.append_filler(before)
        builder.append_fact(key, value)
        builder.append_filler(max(self.context_length - builder.length - 8, 8))
        builder.append_question(key)
        return TaskInstance(
            prompt_tokens=builder.tokens(),
            answer_tokens=np.asarray(value),
            metadata={"key": key, "depth": fact_position},
        )


class MultiHopQATask(TaskGenerator):
    """Two chained facts (A -> B, B -> value); the question asks about A (F1)."""

    metric = "f1"

    def generate(self, vocab_size: int, rng: np.random.Generator) -> TaskInstance:
        builder = self._builder(vocab_size, rng)
        key_a = builder.new_key()
        key_b = builder.new_key()
        value = builder.new_value(self.answer_length)
        third = max(self.context_length // 3, 16)
        builder.append_filler(third // 2)
        builder.append_fact(key_a, key_b)
        builder.append_filler(third)
        builder.append_fact(key_b, value)
        builder.append_filler(max(self.context_length - builder.length - 8, 8))
        builder.append_question(key_a)
        return TaskInstance(
            prompt_tokens=builder.tokens(),
            answer_tokens=np.asarray(value),
            metadata={"hops": 2},
        )


class SummarizationTask(TaskGenerator):
    """A topic phrase repeated throughout the document must be reproduced (ROUGE)."""

    metric = "rouge"

    def __init__(self, *args, repetitions: int = 6, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.repetitions = repetitions

    def generate(self, vocab_size: int, rng: np.random.Generator) -> TaskInstance:
        builder = self._builder(vocab_size, rng)
        topic = builder.new_value(self.answer_length)
        segment = max(self.context_length // (self.repetitions + 1), 16)
        for _ in range(self.repetitions):
            builder.append_filler(segment)
            builder.append(topic, kind="topic")
        builder.append_filler(max(self.context_length - builder.length - 4, 4))
        builder.append_question(np.asarray([self.specials.separator]))
        return TaskInstance(
            prompt_tokens=builder.tokens(),
            answer_tokens=np.asarray(topic),
            metadata={"repetitions": self.repetitions},
        )


class FewShotLabelTask(TaskGenerator):
    """Few-shot classification: copy the label associated with a repeated prompt."""

    metric = "accuracy"

    def __init__(self, *args, n_classes: int = 4, n_shots: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.n_classes = n_classes
        self.n_shots = n_shots

    def generate(self, vocab_size: int, rng: np.random.Generator) -> TaskInstance:
        builder = self._builder(vocab_size, rng)
        patterns = [builder.new_key(2) for _ in range(self.n_classes)]
        labels = [builder.new_value(1) for _ in range(self.n_classes)]
        filler_per_shot = max(
            (self.context_length - self.n_shots * 8) // max(self.n_shots, 1), 4
        )
        for shot in range(self.n_shots):
            cls = int(rng.integers(self.n_classes))
            builder.append_filler(filler_per_shot)
            builder.append_example(patterns[cls], labels[cls])
        target_cls = int(rng.integers(self.n_classes))
        builder.append_filler(8)
        builder.append_question(patterns[target_cls])
        return TaskInstance(
            prompt_tokens=builder.tokens(),
            answer_tokens=np.asarray(labels[target_cls]),
            metadata={"n_classes": self.n_classes, "target_class": target_cls},
        )


class PassageCountTask(TaskGenerator):
    """Count how many *unique* passages appear (LongBench passage_count)."""

    metric = "accuracy"

    def __init__(self, *args, n_passages: int = 6, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.n_passages = n_passages

    def generate(self, vocab_size: int, rng: np.random.Generator) -> TaskInstance:
        builder = self._builder(vocab_size, rng)
        n_unique = int(rng.integers(2, self.n_passages + 1))
        passage_length = max(self.context_length // (self.n_passages + 1), 16)
        unique_bodies = [
            builder.new_value(passage_length) for _ in range(n_unique)
        ]
        order = [int(rng.integers(n_unique)) for _ in range(self.n_passages)]
        # Guarantee every unique passage appears at least once.
        order[:n_unique] = list(range(n_unique))
        rng.shuffle(order)
        for idx in order:
            builder.append_marker(self.specials.passage_start)
            builder.append(unique_bodies[idx], kind="passage", passage_id=idx)
            builder.append_marker(self.specials.passage_end)
        builder.append_question(np.asarray([self.specials.passage_start]))
        answer_token = self.specials.content_start + n_unique
        return TaskInstance(
            prompt_tokens=builder.tokens(),
            answer_tokens=np.asarray([answer_token]),
            metadata={"n_unique": n_unique, "n_passages": self.n_passages},
        )


class PassageRetrievalTask(TaskGenerator):
    """Identify which passage contains a quoted snippet (passage_retrieval_en)."""

    metric = "accuracy"

    def __init__(self, *args, n_passages: int = 6, snippet_length: int = 8, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.n_passages = n_passages
        self.snippet_length = snippet_length

    def generate(self, vocab_size: int, rng: np.random.Generator) -> TaskInstance:
        builder = self._builder(vocab_size, rng)
        passage_length = max(self.context_length // self.n_passages, 32)
        bodies = []
        id_tokens = []
        for index in range(self.n_passages):
            id_token = self.specials.content_start + index
            id_tokens.append(id_token)
            body = builder.new_value(passage_length)
            bodies.append(body)
            builder.append_marker(self.specials.passage_start)
            builder.append(np.asarray([id_token]), kind="passage_id", passage_id=index)
            builder.append(body, kind="passage", passage_id=index)
            builder.append_marker(self.specials.passage_end)
        target = int(rng.integers(self.n_passages))
        start = int(rng.integers(0, max(passage_length - self.snippet_length, 1)))
        snippet = bodies[target][start : start + self.snippet_length]
        builder.append_question(snippet)
        return TaskInstance(
            prompt_tokens=builder.tokens(),
            answer_tokens=np.asarray([id_tokens[target]]),
            metadata={"target_passage": target},
        )


class CodeCompletionTask(TaskGenerator):
    """Continue a rigid line-structured pattern (lcc / repobench-p stand-in)."""

    metric = "edit"

    def __init__(self, *args, line_length: int = 6, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.line_length = line_length

    def generate(self, vocab_size: int, rng: np.random.Generator) -> TaskInstance:
        builder = self._builder(vocab_size, rng)
        # A small library of "identifier" lines that repeat in a fixed cycle.
        cycle = [builder.new_value(self.line_length) for _ in range(4)]
        n_lines = max(self.context_length // (self.line_length + 1), 8)
        for line_index in range(n_lines):
            builder.append(cycle[line_index % len(cycle)], kind="code_line")
            builder.append_marker(self.specials.line_break)
        next_line = cycle[n_lines % len(cycle)]
        builder.append_question(np.asarray([self.specials.line_break]))
        return TaskInstance(
            prompt_tokens=builder.tokens(),
            answer_tokens=np.asarray(next_line[: self.answer_length]),
            metadata={"cycle_length": len(cycle)},
        )


def _default_tasks(context_length: int) -> dict[str, TaskGenerator]:
    """The 16 LongBench task names mapped onto the synthetic generators."""
    long = context_length
    short = max(context_length // 2, 256)
    return {
        # Single-document QA
        "narrativeqa": SingleDocQATask("narrativeqa", "single-doc QA", long),
        "qasper": SingleDocQATask("qasper", "single-doc QA", short),
        "multifieldqa_en": SingleDocQATask("multifieldqa_en", "single-doc QA", short),
        # Multi-document QA
        "hotpotqa": MultiHopQATask("hotpotqa", "multi-doc QA", long),
        "2wikimqa": MultiHopQATask("2wikimqa", "multi-doc QA", short),
        "musique": MultiHopQATask("musique", "multi-doc QA", long),
        # Summarisation
        "gov_report": SummarizationTask("gov_report", "summarization", long),
        "qmsum": SummarizationTask("qmsum", "summarization", long),
        "multi_news": SummarizationTask("multi_news", "summarization", short),
        # Few-shot learning
        "trec": FewShotLabelTask("trec", "few-shot", short),
        "triviaqa": FewShotLabelTask("triviaqa", "few-shot", long),
        "samsum": FewShotLabelTask("samsum", "few-shot", short),
        # Synthetic
        "passage_count": PassageCountTask("passage_count", "synthetic", short),
        "passage_retrieval_en": PassageRetrievalTask(
            "passage_retrieval_en", "synthetic", long
        ),
        # Code
        "lcc": CodeCompletionTask("lcc", "code", short),
        "repobench-p": CodeCompletionTask("repobench-p", "code", long),
    }


LONGBENCH_TASK_NAMES = tuple(_default_tasks(768))


def longbench_tasks(context_length: int = 768) -> dict[str, TaskGenerator]:
    """Instantiate the full synthetic LongBench suite."""
    return _default_tasks(context_length)


@dataclass
class TaskResult:
    """Aggregated result of one (task, scheme) pair."""

    task: str
    category: str
    scheme: str
    score: float
    n_examples: int
    scores: list[float] = field(default_factory=list)


def evaluate_task(
    model: TransformerLM,
    generator: TaskGenerator,
    cache_factory: Optional[KVCacheFactory],
    n_examples: int = 3,
    seed: SeedLike = 0,
    scheme_name: str = "baseline",
    max_new_tokens: Optional[int] = None,
) -> TaskResult:
    """Run ``n_examples`` of a task under one cache scheme and average the score."""
    require(n_examples >= 1, "n_examples must be >= 1")
    factory = cache_factory or FullPrecisionCacheFactory()
    scores: list[float] = []
    for example_index in range(n_examples):
        rng = get_rng(derive_seed(seed, generator.name, example_index))
        instance = generator.generate(model.config.vocab_size, rng)
        prompt = instance.prompt_tokens
        budget = model.config.max_seq_len - instance.answer_tokens.size - 2
        if prompt.size > budget:
            prompt = prompt[-budget:]
        model.reset_cache(factory)
        new_tokens = max_new_tokens or int(instance.answer_tokens.size)
        generated = model.generate(prompt, new_tokens, reset=False, seed=0)
        scores.append(generator.score(generated.tolist(), instance))
    return TaskResult(
        task=generator.name,
        category=generator.category,
        scheme=scheme_name,
        score=float(np.mean(scores)),
        n_examples=n_examples,
        scores=scores,
    )


def evaluate_longbench(
    model: TransformerLM,
    scheme_factories: dict[str, Optional[KVCacheFactory]],
    tasks: Optional[dict[str, TaskGenerator]] = None,
    n_examples: int = 3,
    seed: SeedLike = 0,
) -> list[TaskResult]:
    """Fig. 6 driver: every task under every scheme (same examples per scheme)."""
    tasks = tasks or longbench_tasks()
    results: list[TaskResult] = []
    for task_name, generator in tasks.items():
        for scheme_name, factory in scheme_factories.items():
            results.append(
                evaluate_task(
                    model,
                    generator,
                    factory,
                    n_examples=n_examples,
                    seed=seed,
                    scheme_name=scheme_name,
                )
            )
    return results


def average_scores(results: list[TaskResult]) -> dict[str, float]:
    """Mean score per scheme across tasks (the paper's average-loss summary)."""
    by_scheme: dict[str, list[float]] = {}
    for result in results:
        by_scheme.setdefault(result.scheme, []).append(result.score)
    return {scheme: float(np.mean(scores)) for scheme, scores in by_scheme.items()}
