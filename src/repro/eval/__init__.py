"""Evaluation harness: perplexity, KV-distribution analysis and LongBench substitute."""

from repro.eval.distribution import (
    ChannelStatistics,
    channel_statistics_from_samples,
    collect_kv_statistics,
    summarize_outlier_structure,
)
from repro.eval.longbench import (
    LONGBENCH_TASK_NAMES,
    TaskGenerator,
    TaskInstance,
    TaskResult,
    average_scores,
    evaluate_longbench,
    evaluate_task,
    longbench_tasks,
)
from repro.eval.metrics import (
    exact_match,
    mean_kl_divergence,
    relative_loss_percent,
    rouge_like_overlap,
    token_accuracy,
    token_f1,
    top1_agreement,
)
from repro.eval.perplexity import (
    FidelityResult,
    PerplexityResult,
    compute_perplexity,
    logit_fidelity,
    perplexity_by_scheme,
)
from repro.eval.schemes import (
    SCHEME_DEFINITIONS,
    SchemeDefinition,
    available_schemes,
    build_cache_factory,
    build_scheme_factories,
)

__all__ = [
    "ChannelStatistics",
    "channel_statistics_from_samples",
    "collect_kv_statistics",
    "summarize_outlier_structure",
    "LONGBENCH_TASK_NAMES",
    "TaskGenerator",
    "TaskInstance",
    "TaskResult",
    "average_scores",
    "evaluate_longbench",
    "evaluate_task",
    "longbench_tasks",
    "exact_match",
    "mean_kl_divergence",
    "relative_loss_percent",
    "rouge_like_overlap",
    "token_accuracy",
    "token_f1",
    "top1_agreement",
    "FidelityResult",
    "PerplexityResult",
    "compute_perplexity",
    "logit_fidelity",
    "perplexity_by_scheme",
    "SCHEME_DEFINITIONS",
    "SchemeDefinition",
    "available_schemes",
    "build_cache_factory",
    "build_scheme_factories",
]
