"""Perplexity evaluation under any KV-cache scheme (Tables II and III).

The sequence is fed in chunks: the attention of each chunk over *earlier*
chunks goes through the (possibly quantized) cache, while the current chunk's
own keys/values are still full precision — exactly the paper's prefill
dataflow, where KV pairs are quantized after the block that produced them.
A chunk size of 1 reproduces pure decode-style evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.eval.metrics import mean_kl_divergence, top1_agreement
from repro.models.kv_cache import FullPrecisionCacheFactory, KVCacheFactory
from repro.models.tensor_ops import log_softmax
from repro.models.transformer import TransformerLM
from repro.utils.validation import require


@dataclass
class PerplexityResult:
    """Outcome of one perplexity run."""

    scheme: str
    perplexity: float
    cross_entropy_nats: float
    n_tokens: int
    chunk_size: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.scheme}: ppl={self.perplexity:.3f} over {self.n_tokens} tokens"


def _chunked_logits(
    model: TransformerLM,
    tokens: np.ndarray,
    cache_factory: Optional[KVCacheFactory],
    chunk_size: int,
    window: Optional[int] = None,
) -> np.ndarray:
    """Teacher-forced logits, feeding ``chunk_size`` tokens per forward call.

    ``window`` caps the context length: the cache is reset every ``window``
    tokens, mirroring the strided/windowed perplexity evaluation used for
    models whose training length is shorter than the evaluation stream.
    """
    factory = cache_factory or FullPrecisionCacheFactory()
    model.reset_cache(factory)
    logits_blocks = []
    for start in range(0, tokens.size, chunk_size):
        if window is not None and start > 0 and start % window == 0:
            model.reset_cache(factory)
        logits_blocks.append(model.forward(tokens[start : start + chunk_size]))
    return np.concatenate(logits_blocks, axis=0)


def compute_perplexity(
    model: TransformerLM,
    tokens: np.ndarray,
    cache_factory: Optional[KVCacheFactory] = None,
    chunk_size: int = 32,
    window: Optional[int] = None,
    scheme_name: str = "fp16",
) -> PerplexityResult:
    """Teacher-forced perplexity of ``tokens`` under ``cache_factory``.

    The model predicts token ``i+1`` from tokens ``0..i``; the loss is averaged
    over all predicted positions.  ``window`` optionally resets the context
    every that many tokens (positions just after a reset are excluded from the
    loss so every scored position has context).
    """
    tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
    require(tokens.size >= 2, "need at least two tokens to compute perplexity")
    require(chunk_size >= 1, "chunk_size must be >= 1")
    if window is not None:
        require(window >= chunk_size, "window must be >= chunk_size")
        require(window % chunk_size == 0, "window must be a multiple of chunk_size")
    limit = min(tokens.size, model.config.max_seq_len)
    tokens = tokens[:limit]
    logits = _chunked_logits(model, tokens, cache_factory, chunk_size, window=window)
    log_probs = log_softmax(logits[:-1], axis=-1)
    targets = tokens[1:]
    picked = log_probs[np.arange(targets.size), targets]
    if window is not None:
        positions = np.arange(targets.size)
        keep = (positions + 1) % window != 0
        picked = picked[keep]
    cross_entropy = float(-np.mean(picked))
    return PerplexityResult(
        scheme=scheme_name,
        perplexity=float(np.exp(cross_entropy)),
        cross_entropy_nats=cross_entropy,
        n_tokens=int(picked.size),
        chunk_size=chunk_size,
    )


def perplexity_by_scheme(
    model: TransformerLM,
    tokens: np.ndarray,
    factories: dict[str, Optional[KVCacheFactory]],
    chunk_size: int = 32,
    window: Optional[int] = None,
) -> dict[str, PerplexityResult]:
    """Evaluate several cache schemes on the same token stream."""
    results = {}
    for name, factory in factories.items():
        results[name] = compute_perplexity(
            model,
            tokens,
            cache_factory=factory,
            chunk_size=chunk_size,
            window=window,
            scheme_name=name,
        )
    return results


@dataclass
class FidelityResult:
    """Divergence of a quantized scheme's predictions from the fp16 reference."""

    scheme: str
    mean_kl: float
    top1_agreement: float
    n_tokens: int


def logit_fidelity(
    model: TransformerLM,
    tokens: np.ndarray,
    cache_factory: KVCacheFactory,
    chunk_size: int = 32,
    scheme_name: str = "quantized",
) -> FidelityResult:
    """Compare a scheme's logits to the full-precision logits position by position."""
    tokens = np.asarray(tokens, dtype=np.int64).reshape(-1)
    limit = min(tokens.size, model.config.max_seq_len)
    tokens = tokens[:limit]
    reference = _chunked_logits(model, tokens, FullPrecisionCacheFactory(), chunk_size)
    quantized = _chunked_logits(model, tokens, cache_factory, chunk_size)
    return FidelityResult(
        scheme=scheme_name,
        mean_kl=mean_kl_divergence(reference, quantized),
        top1_agreement=top1_agreement(reference, quantized),
        n_tokens=int(tokens.size),
    )
