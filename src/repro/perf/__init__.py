"""Analytic GPU performance model (TPOT, latency breakdown, memory/OOM)."""

from repro.perf.breakdown import (
    LatencyBreakdown,
    SpeedupPoint,
    breakdown_sweep,
    latency_breakdown,
)
from repro.perf.device import A40, A100_80GB, DEVICE_PRESETS, DeviceSpec, get_device
from repro.perf.memory import (
    MemoryFootprint,
    is_oom,
    max_context_length,
    memory_footprint,
)
from repro.perf.operators import (
    ATTENTION_OPERATORS,
    OpCost,
    decode_step_ops,
    kv_cache_bytes,
)
from repro.perf.presets import LLAMA_2_7B, LLAMA_2_13B, PERF_MODEL_PRESETS, weights_bytes
from repro.perf.roofline import OpTiming, op_time, time_decode_ops
from repro.perf.schemes import (
    FP16_BASELINE,
    KIVI_4BIT,
    KVQUANT_4BIT,
    KVQUANT_4BIT_OUTLIER,
    MILLION_3BIT,
    MILLION_4BIT,
    MILLION_4BIT_SYNC,
    SCHEME_PRESETS,
    KVSchemeSpec,
    get_scheme,
)
from repro.perf.streams import (
    DEFAULT_OVERLAP_FRACTION,
    StepTiming,
    StreamEvent,
    build_timeline,
    schedule_step,
)
from repro.perf.tpot import TPOTResult, decode_step_latency_ms, estimate_tpot, tpot_table

__all__ = [
    "LatencyBreakdown",
    "SpeedupPoint",
    "breakdown_sweep",
    "latency_breakdown",
    "A40",
    "A100_80GB",
    "DEVICE_PRESETS",
    "DeviceSpec",
    "get_device",
    "MemoryFootprint",
    "is_oom",
    "max_context_length",
    "memory_footprint",
    "ATTENTION_OPERATORS",
    "OpCost",
    "decode_step_ops",
    "kv_cache_bytes",
    "LLAMA_2_7B",
    "LLAMA_2_13B",
    "PERF_MODEL_PRESETS",
    "weights_bytes",
    "OpTiming",
    "op_time",
    "time_decode_ops",
    "FP16_BASELINE",
    "KIVI_4BIT",
    "KVQUANT_4BIT",
    "KVQUANT_4BIT_OUTLIER",
    "MILLION_3BIT",
    "MILLION_4BIT",
    "MILLION_4BIT_SYNC",
    "SCHEME_PRESETS",
    "KVSchemeSpec",
    "get_scheme",
    "DEFAULT_OVERLAP_FRACTION",
    "StepTiming",
    "StreamEvent",
    "build_timeline",
    "schedule_step",
    "TPOTResult",
    "decode_step_latency_ms",
    "estimate_tpot",
    "tpot_table",
]
