"""Roofline timing of operator costs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.perf.device import DeviceSpec
from repro.perf.operators import OpCost
from repro.perf.schemes import KVSchemeSpec


@dataclass
class OpTiming:
    """Time attribution of one operator."""

    name: str
    time_s: float
    memory_time_s: float
    compute_time_s: float
    launch_time_s: float
    stream: str = "main"

    @property
    def time_ms(self) -> float:
        return self.time_s * 1e3


def op_time(cost: OpCost, device: DeviceSpec) -> OpTiming:
    """Roofline execution time of one operator.

    The operator takes the maximum of its memory time and its compute time
    (tensor-core and CUDA-core work modelled as separate pipes), plus kernel
    launch latency for each kernel it issues.
    """
    memory_time = cost.bytes_total / (
        device.memory_bandwidth_bytes_per_s * cost.memory_efficiency
    )
    tensor_time = cost.tensor_flops / (device.fp16_flops_per_s * cost.compute_efficiency)
    cuda_time = cost.cuda_flops / (device.fp32_flops_per_s * cost.compute_efficiency)
    compute_time = tensor_time + cuda_time
    launch_time = cost.n_kernels * device.kernel_launch_s
    total = max(memory_time, compute_time) + launch_time
    return OpTiming(
        name=cost.name,
        time_s=total,
        memory_time_s=memory_time,
        compute_time_s=compute_time,
        launch_time_s=launch_time,
        stream=cost.stream,
    )


def time_decode_ops(
    ops: list[OpCost],
    scheme: KVSchemeSpec,
    config: ModelConfig,
    device: DeviceSpec,
) -> list[OpTiming]:
    """Time every operator of a decode step, including scheme fixed overhead.

    ``scheme_overhead`` is the calibrated per-layer kernel overhead of the
    baseline implementations (see :mod:`repro.perf.schemes`); it has no
    traffic of its own, so its time is injected here rather than derived from
    a roofline.
    """
    timings: list[OpTiming] = []
    for cost in ops:
        if cost.name == "scheme_overhead":
            fixed = scheme.fixed_overhead_us_per_layer * 1e-6 * config.n_layers
            timings.append(
                OpTiming(
                    name=cost.name,
                    time_s=fixed,
                    memory_time_s=0.0,
                    compute_time_s=fixed,
                    launch_time_s=0.0,
                    stream=cost.stream,
                )
            )
        else:
            timings.append(op_time(cost, device))
    return timings
