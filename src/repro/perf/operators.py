"""Per-operator cost enumeration for one decode step.

Each operator is described by the tensor-core FLOPs, CUDA-core FLOPs, bytes
moved and kernel count it needs for a *single new token* at a given context
length.  The roofline model (:mod:`repro.perf.roofline`) turns these into
times; the breakdown and TPOT modules aggregate them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.config import ModelConfig
from repro.perf.schemes import KVSchemeSpec
from repro.utils.validation import require

FP16 = 2.0
FP32 = 4.0

# Operators that belong to the attention block (the subset shown in Fig. 7).
ATTENTION_OPERATORS = (
    "qkv_proj",
    "rotary_emb",
    "cat",
    "repeat_kv",
    "causal_mask",
    "contiguous",
    "sdpa",
    "o_proj",
)


@dataclass
class OpCost:
    """Resource usage of one operator for one decode step (all layers)."""

    name: str
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    tensor_flops: float = 0.0
    cuda_flops: float = 0.0
    n_kernels: int = 1
    memory_efficiency: float = 0.62
    compute_efficiency: float = 0.75
    stream: str = "main"

    @property
    def bytes_total(self) -> float:
        return self.bytes_read + self.bytes_written


def kv_cache_bytes(
    config: ModelConfig, scheme: KVSchemeSpec, context_len: int, batch: int = 1
) -> float:
    """Footprint of the whole KV cache under ``scheme`` at ``context_len``."""
    per_token_values = 2 * config.kv_dim  # keys + values
    quantized_tokens = max(context_len - scheme.residual_fp16_tokens, 0)
    residual_tokens = min(scheme.residual_fp16_tokens, context_len)
    data = quantized_tokens * per_token_values * scheme.kv_bytes_per_value
    data += residual_tokens * per_token_values * FP16
    metadata = quantized_tokens * scheme.metadata_bytes_per_token_per_layer
    codebooks = scheme.codebook_bytes_per_layer
    return float(batch * config.n_layers * (data + metadata) + config.n_layers * codebooks)


def decode_step_ops(
    config: ModelConfig,
    scheme: KVSchemeSpec,
    context_len: int,
    batch: int = 1,
) -> list[OpCost]:
    """Enumerate operator costs for generating one token at ``context_len``.

    The returned list covers the whole model (all layers), with attention
    operators named as in Fig. 7 plus the non-attention operators needed for
    an end-to-end total (ffn, norms, lm_head, embedding, quant).
    """
    require(context_len >= 1, "context_len must be >= 1")
    require(batch >= 1, "batch must be >= 1")
    L = config.n_layers
    d = config.d_model
    kv_dim = config.kv_dim
    head_dim = config.head_dim
    n_heads = config.n_heads
    ffn = config.ffn_dim
    vocab = config.vocab_size
    act = batch * d * FP16

    ops: list[OpCost] = []

    # --- attention-block operators (per layer, multiplied by L) -------------
    qkv_weights = d * (d + 2 * kv_dim) * FP16
    ops.append(
        OpCost(
            name="qkv_proj",
            bytes_read=L * (qkv_weights + act),
            bytes_written=L * batch * (d + 2 * kv_dim) * FP16,
            tensor_flops=L * 2.0 * batch * d * (d + 2 * kv_dim),
            n_kernels=L * 3,
            memory_efficiency=0.72,
        )
    )
    ops.append(
        OpCost(
            name="rotary_emb",
            bytes_read=L * batch * (d + kv_dim) * FP16 * 2,
            bytes_written=L * batch * (d + kv_dim) * FP16,
            cuda_flops=L * batch * (d + kv_dim) * 6.0,
            n_kernels=L * 2,
            memory_efficiency=0.5,
        )
    )

    cache_bytes = kv_cache_bytes(config, scheme, context_len, batch)
    new_token_bytes = batch * 2 * kv_dim * L * (
        FP16 if scheme.residual_fp16_tokens > 0 or scheme.kv_bits >= 16 else scheme.kv_bytes_per_value
    )
    if scheme.cat_rewrites_cache:
        cat_read, cat_write = cache_bytes, cache_bytes + new_token_bytes
    else:
        cat_read, cat_write = 0.0, new_token_bytes
    ops.append(
        OpCost(
            name="cat",
            bytes_read=cat_read,
            bytes_written=cat_write,
            n_kernels=L * 2,
            memory_efficiency=0.68,
        )
    )

    gqa_expand = 1.0 if config.kv_heads == config.n_heads else float(config.gqa_group_size)
    ops.append(
        OpCost(
            name="repeat_kv",
            bytes_read=L * batch * 2 * kv_dim * FP16,
            bytes_written=L * batch * 2 * kv_dim * FP16 * gqa_expand,
            n_kernels=L * (2 if gqa_expand > 1 else 1),
            memory_efficiency=0.5,
        )
    )
    ops.append(
        OpCost(
            name="causal_mask",
            bytes_read=L * batch * context_len * 1.0,
            bytes_written=L * batch * context_len * 1.0,
            n_kernels=L,
            memory_efficiency=0.4,
        )
    )
    ops.append(
        OpCost(
            name="contiguous",
            bytes_read=L * batch * d * FP16 * 2,
            bytes_written=L * batch * d * FP16 * 2,
            n_kernels=L,
            memory_efficiency=0.5,
        )
    )

    # Scaled dot-product attention over the cached context.
    attn_flops = L * 2.0 * batch * 2.0 * d * context_len  # q·K and p·V
    if scheme.uses_lut_attention:
        # LUT build (q x codebooks) on tensor cores + gather/aggregate on CUDA cores.
        n_centroids = 256
        lut_flops = L * 2.0 * batch * n_heads * head_dim * n_centroids
        sdpa = OpCost(
            name="sdpa",
            bytes_read=cache_bytes + L * batch * n_heads * context_len * FP16,
            bytes_written=L * batch * d * FP16,
            tensor_flops=lut_flops,
            cuda_flops=L * batch * 2.0 * context_len * (kv_dim / head_dim) * 64.0,
            n_kernels=L * (3 + scheme.extra_kernels_per_layer),
            memory_efficiency=scheme.sdpa_memory_efficiency,
        )
    else:
        dequant_flops = (
            scheme.dequant_flops_per_element * L * batch * 2.0 * kv_dim * context_len
        )
        sdpa = OpCost(
            name="sdpa",
            bytes_read=cache_bytes + L * batch * n_heads * context_len * FP16,
            bytes_written=L * batch * d * FP16,
            tensor_flops=attn_flops,
            cuda_flops=dequant_flops,
            n_kernels=L * (4 + scheme.extra_kernels_per_layer),
            memory_efficiency=scheme.sdpa_memory_efficiency,
            compute_efficiency=0.35,
        )
    ops.append(sdpa)

    ops.append(
        OpCost(
            name="o_proj",
            bytes_read=L * (d * d * FP16 + act),
            bytes_written=L * act,
            tensor_flops=L * 2.0 * batch * d * d,
            n_kernels=L,
            memory_efficiency=0.72,
        )
    )

    # --- the rest of the model ------------------------------------------------
    if config.activation == "silu":
        ffn_weights = 3.0 * d * ffn * FP16
        ffn_flops = 2.0 * batch * 3.0 * d * ffn
    else:
        ffn_weights = 2.0 * d * ffn * FP16
        ffn_flops = 2.0 * batch * 2.0 * d * ffn
    ops.append(
        OpCost(
            name="ffn",
            bytes_read=L * (ffn_weights + act),
            bytes_written=L * act,
            tensor_flops=L * ffn_flops,
            n_kernels=L * 4,
            memory_efficiency=0.72,
        )
    )
    ops.append(
        OpCost(
            name="norms",
            bytes_read=(2 * L + 1) * act * 2,
            bytes_written=(2 * L + 1) * act,
            cuda_flops=(2 * L + 1) * batch * d * 8.0,
            n_kernels=2 * L + 1,
            memory_efficiency=0.45,
        )
    )
    ops.append(
        OpCost(
            name="embed",
            bytes_read=act,
            bytes_written=act,
            n_kernels=1,
            memory_efficiency=0.4,
        )
    )
    ops.append(
        OpCost(
            name="lm_head",
            bytes_read=vocab * d * FP16 + act,
            bytes_written=batch * vocab * FP16,
            tensor_flops=2.0 * batch * d * vocab,
            n_kernels=1,
            memory_efficiency=0.72,
        )
    )

    # --- per-scheme fixed overhead and quantization work ----------------------
    if scheme.fixed_overhead_us_per_layer > 0:
        ops.append(
            OpCost(
                name="scheme_overhead",
                bytes_read=0.0,
                bytes_written=0.0,
                cuda_flops=0.0,
                n_kernels=0,
                memory_efficiency=1.0,
            )
        )
    if scheme.quant_flops_per_element > 0:
        quant_elements = batch * 2.0 * kv_dim * L
        ops.append(
            OpCost(
                name="quant",
                bytes_read=quant_elements * FP16,
                bytes_written=quant_elements * scheme.kv_bytes_per_value,
                cuda_flops=quant_elements * scheme.quant_flops_per_element,
                n_kernels=2 * L,
                memory_efficiency=0.5,
                compute_efficiency=0.4,
                stream="quant" if scheme.async_quant else "main",
            )
        )
    return ops
