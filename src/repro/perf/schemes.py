"""Cost-model descriptions of each KV-cache scheme.

A :class:`KVSchemeSpec` captures the properties of a scheme that matter for
decode latency and memory: how many bits each cached scalar occupies, whether
attention must de-quantize on CUDA cores, whether the cache is rewritten by a
``torch.cat``-style append, how much per-token metadata is kept, how much
scratch memory the implementation needs, and a per-layer fixed kernel
overhead.

The fixed overheads of the *baseline implementations* (KIVI, KVQuant) cannot
be derived from first principles without their kernels, so they are
calibrated once against the paper's 1K-context TPOT anchor (Table IV, first
column); every other behaviour — how latency scales with context length,
where OOM happens, how MILLION's savings grow — is predicted by the traffic
model.  EXPERIMENTS.md spells out which numbers are anchored and which are
predicted.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import require


@dataclass(frozen=True)
class KVSchemeSpec:
    """Performance-relevant description of one KV-cache scheme."""

    name: str
    kv_bits: float
    metadata_bytes_per_token_per_layer: float = 0.0
    codebook_bytes_per_layer: float = 0.0
    dequant_flops_per_element: float = 0.0
    quant_flops_per_element: float = 0.0
    uses_lut_attention: bool = False
    cat_rewrites_cache: bool = True
    async_quant: bool = False
    fixed_overhead_us_per_layer: float = 0.0
    extra_workspace_factor: float = 0.0
    residual_fp16_tokens: int = 0
    sdpa_memory_efficiency: float = 0.62
    extra_kernels_per_layer: int = 0

    def __post_init__(self) -> None:
        require(self.kv_bits > 0, "kv_bits must be positive")
        require(0 < self.sdpa_memory_efficiency <= 1.0, "sdpa_memory_efficiency in (0, 1]")
        require(self.extra_workspace_factor >= 0, "extra_workspace_factor must be >= 0")

    @property
    def kv_bytes_per_value(self) -> float:
        return self.kv_bits / 8.0

    def with_updates(self, **kwargs) -> "KVSchemeSpec":
        return replace(self, **kwargs)


# Baseline: fp16 KV cache managed with torch.cat, SDPA reads fp16 keys/values.
FP16_BASELINE = KVSchemeSpec(
    name="baseline-fp16",
    kv_bits=16.0,
    cat_rewrites_cache=True,
    sdpa_memory_efficiency=0.62,
)

# KIVI 4-bit: group-wise asymmetric INT4, per-group scales/zeros, fused
# dequantization on CUDA cores, a full-precision residual of recent tokens
# and (in the public implementation) large transient scratch buffers that
# reproduce the OOM the paper reports at 16K on a 48 GB A40.
KIVI_4BIT = KVSchemeSpec(
    name="kivi-4b",
    kv_bits=4.0,
    metadata_bytes_per_token_per_layer=512.0,
    dequant_flops_per_element=6.0,
    quant_flops_per_element=4.0,
    cat_rewrites_cache=True,
    fixed_overhead_us_per_layer=430.0,
    extra_workspace_factor=4.5,
    residual_fp16_tokens=128,
    sdpa_memory_efficiency=0.5,
    extra_kernels_per_layer=18,
)

# KVQuant 4-bit: per-channel non-uniform keys + per-token non-uniform values,
# de-quantized through lookup tables on CUDA cores; heavy fixed overhead from
# the non-uniform encode/decode path.
KVQUANT_4BIT = KVSchemeSpec(
    name="kvquant-4b",
    kv_bits=4.0,
    metadata_bytes_per_token_per_layer=288.0,
    codebook_bytes_per_layer=64 * 1024.0,
    dequant_flops_per_element=14.0,
    quant_flops_per_element=10.0,
    cat_rewrites_cache=True,
    fixed_overhead_us_per_layer=1280.0,
    extra_workspace_factor=0.6,
    sdpa_memory_efficiency=0.5,
    extra_kernels_per_layer=40,
)

# KVQuant 4-bit with 1 % sparse outliers: sparse gather/scatter adds work.
KVQUANT_4BIT_OUTLIER = KVQUANT_4BIT.with_updates(
    name="kvquant-4b-1pct",
    fixed_overhead_us_per_layer=1600.0,
    metadata_bytes_per_token_per_layer=288.0 + 0.01 * 2 * 4096 * 6.0,
    extra_kernels_per_layer=52,
)

# MILLION 4-bit: PQ codes read directly by the LUT attention kernel, codes
# appended in place (no full-cache rewrite), quantization on the async stream.
MILLION_4BIT = KVSchemeSpec(
    name="million-4b",
    kv_bits=4.0,
    codebook_bytes_per_layer=2 * 64 * 256 * 2 * 2.0,
    quant_flops_per_element=8.0,
    uses_lut_attention=True,
    cat_rewrites_cache=False,
    async_quant=True,
    fixed_overhead_us_per_layer=55.0,
    extra_workspace_factor=0.05,
    residual_fp16_tokens=0,
    sdpa_memory_efficiency=0.28,
    extra_kernels_per_layer=4,
)

# MILLION 3-bit: (M, nbits) = (32, 12) at head_dim 128.
MILLION_3BIT = MILLION_4BIT.with_updates(
    name="million-3b",
    kv_bits=3.0,
    codebook_bytes_per_layer=2 * 32 * 4096 * 4 * 2.0,
)

# Ablation: MILLION with quantization forced onto the main stream.
MILLION_4BIT_SYNC = MILLION_4BIT.with_updates(
    name="million-4b-sync",
    async_quant=False,
)

SCHEME_PRESETS: dict[str, KVSchemeSpec] = {
    spec.name: spec
    for spec in (
        FP16_BASELINE,
        KIVI_4BIT,
        KVQUANT_4BIT,
        KVQUANT_4BIT_OUTLIER,
        MILLION_4BIT,
        MILLION_3BIT,
        MILLION_4BIT_SYNC,
    )
}


def get_scheme(name: str) -> KVSchemeSpec:
    """Look up a scheme preset by name."""
    require(name in SCHEME_PRESETS, f"unknown scheme {name!r}; available: {sorted(SCHEME_PRESETS)}")
    return SCHEME_PRESETS[name]
