"""Dual-stream scheduling model (main stream + async quantization stream).

The decode phase is memory-bound, so the low-priority quantization stream can
use compute and bandwidth the main stream leaves idle (paper Fig. 5).  The
model exposes a single knob — the fraction of main-stream time during which
the quantization kernels can make progress — and reports how much
quantization time stays hidden versus spills onto the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.roofline import OpTiming
from repro.utils.validation import require

DEFAULT_OVERLAP_FRACTION = 0.85


@dataclass
class StepTiming:
    """Latency of one decode step after stream scheduling."""

    main_time_s: float
    quant_time_s: float
    hidden_quant_time_s: float
    exposed_quant_time_s: float

    @property
    def total_time_s(self) -> float:
        return self.main_time_s + self.exposed_quant_time_s

    @property
    def total_time_ms(self) -> float:
        return self.total_time_s * 1e3


def schedule_step(
    timings: list[OpTiming],
    async_enabled: bool,
    overlap_fraction: float = DEFAULT_OVERLAP_FRACTION,
) -> StepTiming:
    """Combine main-stream and quantization-stream operator times.

    With ``async_enabled`` the quantization stream overlaps with up to
    ``overlap_fraction`` of the main-stream time; any remainder is exposed on
    the critical path.  Without it, all quantization time is serialised.
    """
    require(0.0 <= overlap_fraction <= 1.0, "overlap_fraction must be in [0, 1]")
    main_time = sum(t.time_s for t in timings if t.stream == "main")
    quant_time = sum(t.time_s for t in timings if t.stream == "quant")
    if async_enabled:
        hidden = min(quant_time, overlap_fraction * main_time)
    else:
        hidden = 0.0
    exposed = quant_time - hidden
    return StepTiming(
        main_time_s=main_time,
        quant_time_s=quant_time,
        hidden_quant_time_s=hidden,
        exposed_quant_time_s=exposed,
    )


@dataclass
class StreamEvent:
    """One interval on the two-stream timeline (for inspection/plots)."""

    stream: str
    name: str
    start_s: float
    end_s: float


def build_timeline(
    timings: list[OpTiming],
    async_enabled: bool,
    overlap_fraction: float = DEFAULT_OVERLAP_FRACTION,
) -> list[StreamEvent]:
    """Lay the operators of one decode step out on a two-stream timeline.

    Main-stream operators execute back to back.  Quantization operators start
    as soon as the main stream has produced the new token's KV (modelled as
    the end of the attention block) and run concurrently, stretched by the
    inverse of ``overlap_fraction`` to account for bandwidth contention; if
    they would finish after the main stream, the difference is the exposed
    quantization time reported by :func:`schedule_step`.
    """
    events: list[StreamEvent] = []
    cursor = 0.0
    for timing in timings:
        if timing.stream != "main":
            continue
        events.append(
            StreamEvent("main", timing.name, cursor, cursor + timing.time_s)
        )
        cursor += timing.time_s
    main_end = cursor
    quant_timings = [t for t in timings if t.stream == "quant"]
    if quant_timings:
        quant_start = main_end * 0.5  # KV for the new token exists mid-step
        stretch = 1.0 / max(overlap_fraction, 1e-6) if async_enabled else 1.0
        q_cursor = quant_start if async_enabled else main_end
        for timing in quant_timings:
            duration = timing.time_s * (stretch if async_enabled else 1.0)
            events.append(
                StreamEvent("quant", timing.name, q_cursor, q_cursor + duration)
            )
            q_cursor += duration
    return events
