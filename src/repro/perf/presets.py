"""Full-size model configurations used by the performance model.

Accuracy experiments run on tiny NumPy models, but the latency model needs
the *real* dimensions of the paper's serving target (Llama-2-7B on an A40),
so the full-size configurations live here as ordinary :class:`ModelConfig`
objects that are never instantiated into weights.
"""

from __future__ import annotations

from repro.models.config import ModelConfig

# Llama-2-7B: 32 layers, d_model 4096, 32 heads of 128, SwiGLU FFN 11008,
# vocabulary 32000.  max_seq_len is set high enough for the 80K sweep of
# Fig. 7 (the real model needs RoPE scaling for that, which does not change
# the cost model).
LLAMA_2_7B = ModelConfig(
    name="llama-2-7b",
    vocab_size=32000,
    d_model=4096,
    n_layers=32,
    n_heads=32,
    d_ff=11008,
    max_seq_len=131072,
    positional="rope",
    norm="rmsnorm",
    activation="silu",
)

# Llama-2-13B, used for sensitivity studies.
LLAMA_2_13B = ModelConfig(
    name="llama-2-13b",
    vocab_size=32000,
    d_model=5120,
    n_layers=40,
    n_heads=40,
    d_ff=13824,
    max_seq_len=131072,
    positional="rope",
    norm="rmsnorm",
    activation="silu",
)

PERF_MODEL_PRESETS: dict[str, ModelConfig] = {
    "llama-2-7b": LLAMA_2_7B,
    "llama-2-13b": LLAMA_2_13B,
}


def weights_bytes(config: ModelConfig, bytes_per_param: float = 2.0) -> float:
    """Approximate fp16 weight footprint of a full-size model."""
    return float(config.num_parameters() * bytes_per_param)
