"""GPU device specifications for the analytic performance model.

The paper measures on an NVIDIA A40; we model it (and an A100 for
sensitivity studies) with the handful of parameters a roofline-style decode
model needs: memory bandwidth, dense fp16 throughput, CUDA-core fp32
throughput (de-quantization runs there), HBM capacity and kernel launch
latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require

GiB = 1024.0**3


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU."""

    name: str
    memory_gb: float
    memory_bandwidth_gbs: float
    fp16_tflops: float
    fp32_tflops: float
    sm_count: int
    l1_kb_per_sm: float
    kernel_launch_us: float

    def __post_init__(self) -> None:
        require(self.memory_gb > 0, "memory_gb must be positive")
        require(self.memory_bandwidth_gbs > 0, "memory_bandwidth_gbs must be positive")
        require(self.fp16_tflops > 0, "fp16_tflops must be positive")
        require(self.fp32_tflops > 0, "fp32_tflops must be positive")
        require(self.sm_count > 0, "sm_count must be positive")
        require(self.kernel_launch_us >= 0, "kernel_launch_us must be >= 0")

    @property
    def memory_bytes(self) -> float:
        return self.memory_gb * GiB

    @property
    def memory_bandwidth_bytes_per_s(self) -> float:
        return self.memory_bandwidth_gbs * 1e9

    @property
    def fp16_flops_per_s(self) -> float:
        return self.fp16_tflops * 1e12

    @property
    def fp32_flops_per_s(self) -> float:
        return self.fp32_tflops * 1e12

    @property
    def kernel_launch_s(self) -> float:
        return self.kernel_launch_us * 1e-6


# NVIDIA A40: 48 GB GDDR6, 696 GB/s, 74.8 dense fp16 TFLOPS (tensor cores),
# 37.4 fp32 TFLOPS on CUDA cores, 84 SMs, 128 KB unified L1 per SM.
A40 = DeviceSpec(
    name="A40",
    memory_gb=48.0,
    memory_bandwidth_gbs=696.0,
    fp16_tflops=74.8,
    fp32_tflops=37.4,
    sm_count=84,
    l1_kb_per_sm=128.0,
    kernel_launch_us=8.0,
)

# NVIDIA A100-80GB SXM: kept for sensitivity studies.
A100_80GB = DeviceSpec(
    name="A100-80GB",
    memory_gb=80.0,
    memory_bandwidth_gbs=2039.0,
    fp16_tflops=312.0,
    fp32_tflops=19.5,
    sm_count=108,
    l1_kb_per_sm=192.0,
    kernel_launch_us=8.0,
)

DEVICE_PRESETS: dict[str, DeviceSpec] = {"a40": A40, "a100-80gb": A100_80GB}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by case-insensitive name."""
    key = name.lower()
    require(key in DEVICE_PRESETS, f"unknown device {name!r}; available: {sorted(DEVICE_PRESETS)}")
    return DEVICE_PRESETS[key]
