"""Per-operator latency breakdown and speedup analysis (Fig. 7)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.config import ModelConfig
from repro.perf.device import A40, DeviceSpec
from repro.perf.memory import is_oom
from repro.perf.operators import ATTENTION_OPERATORS, decode_step_ops
from repro.perf.roofline import time_decode_ops
from repro.perf.schemes import FP16_BASELINE, MILLION_4BIT, KVSchemeSpec
from repro.perf.streams import schedule_step


@dataclass
class LatencyBreakdown:
    """Operator-level decode latency for one scheme at one context length."""

    scheme: str
    context_length: int
    operator_ms: dict[str, float] = field(default_factory=dict)
    oom: bool = False

    @property
    def total_ms(self) -> float:
        return sum(self.operator_ms.values())

    @property
    def attention_ms(self) -> float:
        return sum(
            value for name, value in self.operator_ms.items() if name in ATTENTION_OPERATORS
        )

    @property
    def sdpa_ms(self) -> float:
        return self.operator_ms.get("sdpa", 0.0)


@dataclass
class SpeedupPoint:
    """SDPA and end-to-end speedup of MILLION over the baseline (one length)."""

    context_length: int
    baseline: LatencyBreakdown
    million: LatencyBreakdown

    @property
    def sdpa_speedup(self) -> float:
        if self.baseline.oom or self.million.oom or self.million.sdpa_ms <= 0:
            return float("nan")
        return self.baseline.sdpa_ms / self.million.sdpa_ms

    @property
    def e2e_speedup(self) -> float:
        if self.baseline.oom or self.million.oom or self.million.total_ms <= 0:
            return float("nan")
        return self.baseline.total_ms / self.million.total_ms


def latency_breakdown(
    config: ModelConfig,
    scheme: KVSchemeSpec,
    context_length: int,
    device: DeviceSpec = A40,
    batch: int = 1,
) -> LatencyBreakdown:
    """Per-operator decode-step latency at ``context_length``."""
    if is_oom(config, scheme, context_length, device, batch):
        return LatencyBreakdown(
            scheme=scheme.name, context_length=context_length, oom=True
        )
    ops = decode_step_ops(config, scheme, context_length, batch=batch)
    timings = time_decode_ops(ops, scheme, config, device)
    step = schedule_step(timings, scheme.async_quant)
    operator_ms = {t.name: t.time_s * 1e3 for t in timings if t.stream == "main"}
    if step.exposed_quant_time_s > 0:
        operator_ms["quant_exposed"] = step.exposed_quant_time_s * 1e3
    return LatencyBreakdown(
        scheme=scheme.name, context_length=context_length, operator_ms=operator_ms
    )


def breakdown_sweep(
    config: ModelConfig,
    context_lengths: list[int],
    baseline: KVSchemeSpec = FP16_BASELINE,
    million: KVSchemeSpec = MILLION_4BIT,
    device: DeviceSpec = A40,
    batch: int = 1,
) -> list[SpeedupPoint]:
    """Fig. 7 driver: breakdowns + speedups across a context-length sweep."""
    points: list[SpeedupPoint] = []
    for context_length in context_lengths:
        points.append(
            SpeedupPoint(
                context_length=context_length,
                baseline=latency_breakdown(config, baseline, context_length, device, batch),
                million=latency_breakdown(config, million, context_length, device, batch),
            )
        )
    return points
