"""Time-per-output-token estimation (Table IV).

TPOT is the mean decode-step latency over a generation of ``n_decode_tokens``
tokens following a prefill of ``prefill_length`` tokens, exactly the protocol
of the paper's Table IV (100 generated tokens per prefill length).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.models.config import ModelConfig
from repro.perf.device import A40, DeviceSpec
from repro.perf.memory import memory_footprint
from repro.perf.operators import decode_step_ops
from repro.perf.roofline import time_decode_ops
from repro.perf.schemes import KVSchemeSpec, get_scheme
from repro.perf.streams import DEFAULT_OVERLAP_FRACTION, schedule_step
from repro.utils.validation import require


@dataclass
class TPOTResult:
    """Decode-latency estimate for one (scheme, prefill length) point."""

    scheme: str
    prefill_length: int
    n_decode_tokens: int
    tpot_ms: float
    breakdown_ms: dict[str, float] = field(default_factory=dict)
    oom: bool = False
    memory_gb: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.oom:
            return f"{self.scheme} @ {self.prefill_length}: OOM ({self.memory_gb:.1f} GiB)"
        return f"{self.scheme} @ {self.prefill_length}: {self.tpot_ms:.2f} ms/token"


def decode_step_latency_ms(
    config: ModelConfig,
    scheme: KVSchemeSpec,
    context_len: int,
    device: DeviceSpec = A40,
    batch: int = 1,
    overlap_fraction: float = DEFAULT_OVERLAP_FRACTION,
) -> tuple[float, dict[str, float]]:
    """Latency of a single decode step and its per-operator breakdown (ms)."""
    ops = decode_step_ops(config, scheme, context_len, batch=batch)
    timings = time_decode_ops(ops, scheme, config, device)
    step = schedule_step(timings, scheme.async_quant, overlap_fraction)
    breakdown = {t.name: t.time_s * 1e3 for t in timings if t.stream == "main"}
    breakdown["quant_exposed"] = step.exposed_quant_time_s * 1e3
    return step.total_time_ms, breakdown


def estimate_tpot(
    config: ModelConfig,
    scheme: KVSchemeSpec | str,
    prefill_length: int,
    device: DeviceSpec = A40,
    n_decode_tokens: int = 100,
    batch: int = 1,
    overlap_fraction: float = DEFAULT_OVERLAP_FRACTION,
    context_samples: int = 5,
) -> TPOTResult:
    """Average decode latency over ``n_decode_tokens`` generated tokens.

    The context grows during generation; rather than timing every step, the
    model samples ``context_samples`` context lengths across the generation
    window and averages them (step latency is affine in context length, so
    the sampled mean equals the true mean).
    """
    require(prefill_length >= 1, "prefill_length must be >= 1")
    require(n_decode_tokens >= 1, "n_decode_tokens must be >= 1")
    if isinstance(scheme, str):
        scheme = get_scheme(scheme)
    final_context = prefill_length + n_decode_tokens
    footprint = memory_footprint(config, scheme, final_context, batch=batch)
    if not footprint.fits(device):
        return TPOTResult(
            scheme=scheme.name,
            prefill_length=prefill_length,
            n_decode_tokens=n_decode_tokens,
            tpot_ms=float("nan"),
            oom=True,
            memory_gb=footprint.total_gb,
        )
    contexts = np.linspace(prefill_length, final_context, context_samples).astype(int)
    totals: list[float] = []
    breakdown_acc: dict[str, float] = {}
    for context in contexts:
        total_ms, breakdown = decode_step_latency_ms(
            config, scheme, int(context), device, batch, overlap_fraction
        )
        totals.append(total_ms)
        for name, value in breakdown.items():
            breakdown_acc[name] = breakdown_acc.get(name, 0.0) + value / len(contexts)
    return TPOTResult(
        scheme=scheme.name,
        prefill_length=prefill_length,
        n_decode_tokens=n_decode_tokens,
        tpot_ms=float(np.mean(totals)),
        breakdown_ms=breakdown_acc,
        oom=False,
        memory_gb=footprint.total_gb,
    )


def tpot_table(
    config: ModelConfig,
    schemes: list[str],
    prefill_lengths: list[int],
    device: DeviceSpec = A40,
    n_decode_tokens: int = 100,
    batch: int = 1,
) -> dict[str, list[TPOTResult]]:
    """Table IV driver: TPOT per scheme per prefill length."""
    table: dict[str, list[TPOTResult]] = {}
    for scheme_name in schemes:
        table[scheme_name] = [
            estimate_tpot(
                config,
                scheme_name,
                prefill_length,
                device=device,
                n_decode_tokens=n_decode_tokens,
                batch=batch,
            )
            for prefill_length in prefill_lengths
        ]
    return table
