"""Device-memory footprint model and out-of-memory detection."""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.config import ModelConfig
from repro.perf.device import DeviceSpec, GiB
from repro.perf.operators import FP16, kv_cache_bytes
from repro.perf.presets import weights_bytes
from repro.perf.schemes import KVSchemeSpec

# Persistent activations, CUDA context, cuBLAS workspaces, fragmentation slack.
RUNTIME_OVERHEAD_BYTES = 2.5 * GiB


@dataclass
class MemoryFootprint:
    """Breakdown of device memory usage at a given context length."""

    weights_bytes: float
    kv_cache_bytes: float
    workspace_bytes: float
    runtime_bytes: float
    prefill_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return (
            self.weights_bytes
            + self.kv_cache_bytes
            + self.workspace_bytes
            + self.runtime_bytes
            + self.prefill_bytes
        )

    @property
    def total_gb(self) -> float:
        return self.total_bytes / GiB

    def fits(self, device: DeviceSpec) -> bool:
        return self.total_bytes <= device.memory_bytes


def memory_footprint(
    config: ModelConfig,
    scheme: KVSchemeSpec,
    context_len: int,
    batch: int = 1,
) -> MemoryFootprint:
    """Model the memory footprint of serving ``config`` under ``scheme``.

    ``workspace_bytes`` models scheme-specific transient buffers as a
    multiple of the *full-precision* KV footprint (``extra_workspace_factor``)
    — this is how the KIVI implementation's reported OOM at 16K context is
    reproduced on a 48 GB A40.  ``prefill_bytes`` is the peak transient
    memory of the prefill pass (live hidden states and the final logits
    tensor), which is what pushes the fp16 baseline out of memory around 64K
    context in Fig. 7.
    """
    fp16_kv = batch * context_len * 2 * config.kv_dim * config.n_layers * FP16
    prefill_peak = batch * context_len * (8.0 * config.d_model + 2.0 * config.vocab_size)
    return MemoryFootprint(
        weights_bytes=weights_bytes(config),
        kv_cache_bytes=kv_cache_bytes(config, scheme, context_len, batch),
        workspace_bytes=scheme.extra_workspace_factor * fp16_kv,
        runtime_bytes=RUNTIME_OVERHEAD_BYTES,
        prefill_bytes=prefill_peak,
    )


def is_oom(
    config: ModelConfig,
    scheme: KVSchemeSpec,
    context_len: int,
    device: DeviceSpec,
    batch: int = 1,
) -> bool:
    """Whether serving at ``context_len`` exceeds the device memory."""
    return not memory_footprint(config, scheme, context_len, batch).fits(device)


def max_context_length(
    config: ModelConfig,
    scheme: KVSchemeSpec,
    device: DeviceSpec,
    batch: int = 1,
    upper_bound: int = 1 << 22,
) -> int:
    """Largest context length that still fits on the device (binary search)."""
    low, high = 0, upper_bound
    if is_oom(config, scheme, 1, device, batch):
        return 0
    while low < high:
        mid = (low + high + 1) // 2
        if is_oom(config, scheme, mid, device, batch):
            high = mid - 1
        else:
            low = mid
    return low
