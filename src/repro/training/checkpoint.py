"""Weight serialisation and a small on-disk cache of trained models.

Benchmarks reuse trained tiny models between runs: ``cached_trained_model``
trains once, stores the weights as an ``.npz`` next to the requested cache
directory and afterwards reloads them in milliseconds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

import numpy as np

from repro.models.config import ModelConfig
from repro.models.transformer import TransformerLM
from repro.models.weights import build_model
from repro.training.trainer import TrainingHistory, train_tiny_lm
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike
from repro.utils.validation import require

logger = get_logger("training.checkpoint")


def state_dict(model: TransformerLM) -> dict[str, np.ndarray]:
    """Flatten all weights of an inference model into a name → array mapping."""
    state: dict[str, np.ndarray] = {"token_embedding": model.token_embedding.weight}
    if model.position_embedding is not None:
        state["position_embedding"] = model.position_embedding.weight
    for index, block in enumerate(model.blocks):
        prefix = f"layer{index}."
        attention = block.attention
        state[prefix + "wq"] = attention.wq.weight
        state[prefix + "wk"] = attention.wk.weight
        state[prefix + "wv"] = attention.wv.weight
        state[prefix + "wo"] = attention.wo.weight
        for name, layer in (("wq", attention.wq), ("wk", attention.wk), ("wv", attention.wv), ("wo", attention.wo)):
            if layer.bias is not None:
                state[prefix + name + ".bias"] = layer.bias
        ffn = block.feed_forward
        state[prefix + "w_in"] = ffn.w_in.weight
        state[prefix + "w_out"] = ffn.w_out.weight
        if ffn.w_in.bias is not None:
            state[prefix + "w_in.bias"] = ffn.w_in.bias
        if ffn.w_out.bias is not None:
            state[prefix + "w_out.bias"] = ffn.w_out.bias
        if ffn.w_gate is not None:
            state[prefix + "w_gate"] = ffn.w_gate.weight
        state[prefix + "attn_norm.weight"] = block.attention_norm.weight
        if block.attention_norm.bias is not None:
            state[prefix + "attn_norm.bias"] = block.attention_norm.bias
        state[prefix + "ffn_norm.weight"] = block.ffn_norm.weight
        if block.ffn_norm.bias is not None:
            state[prefix + "ffn_norm.bias"] = block.ffn_norm.bias
    state["final_norm.weight"] = model.final_norm.weight
    if model.final_norm.bias is not None:
        state["final_norm.bias"] = model.final_norm.bias
    if model.lm_head is not None:
        state["lm_head"] = model.lm_head.weight
    return state


def load_state_dict(model: TransformerLM, state: dict[str, np.ndarray]) -> TransformerLM:
    """Copy a saved state into an existing model (shapes must match)."""
    target = state_dict(model)
    missing = set(target) - set(state)
    require(not missing, f"state dict is missing keys: {sorted(missing)}")
    for name, array in target.items():
        source = np.asarray(state[name], dtype=np.float32)
        require(
            source.shape == array.shape,
            f"shape mismatch for {name}: {source.shape} vs {array.shape}",
        )
        array[...] = source
    return model


def save_model(model: TransformerLM, path: str | Path) -> Path:
    """Persist config + weights to ``<path>.npz`` / ``<path>.json``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path.with_suffix(".npz"), **state_dict(model))
    path.with_suffix(".json").write_text(json.dumps(model.config.to_dict(), indent=2))
    return path.with_suffix(".npz")


def load_model_checkpoint(path: str | Path) -> TransformerLM:
    """Rebuild a model from :func:`save_model` output."""
    path = Path(path)
    config = ModelConfig.from_dict(json.loads(path.with_suffix(".json").read_text()))
    model = build_model(config, seed=0)
    with np.load(path.with_suffix(".npz")) as data:
        load_state_dict(model, {name: data[name] for name in data.files})
    return model


def cached_trained_model(
    config: ModelConfig,
    cache_dir: Optional[str | Path],
    corpus_name: str = "wikitext2-syn",
    steps: int = 200,
    seed: SeedLike = 0,
    **train_kwargs,
) -> tuple[TransformerLM, Optional[TrainingHistory]]:
    """Return a trained model, reusing an on-disk checkpoint when available.

    With ``cache_dir=None`` the model is always trained fresh and nothing is
    written to disk.  The cache key encodes the model name, corpus, step count
    and seed.
    """
    if cache_dir is not None:
        cache_dir = Path(cache_dir)
        corpus_key = corpus_name if isinstance(corpus_name, str) else "+".join(corpus_name)
        key = f"{config.name}-{corpus_key}-s{steps}-seed{seed}"
        checkpoint = cache_dir / key
        if checkpoint.with_suffix(".npz").exists():
            logger.info("loading cached trained model %s", checkpoint)
            return load_model_checkpoint(checkpoint), None
    model, history = train_tiny_lm(
        config, corpus_name=corpus_name, steps=steps, seed=seed, **train_kwargs
    )
    if cache_dir is not None:
        save_model(model, checkpoint)
    return model, history
